//! Active-attack demonstration: an adversary with physical access flips
//! bits on the untrusted on-DIMM bus and replays stale ciphertext. The
//! PMMAC machinery (counter-mode encryption + per-bucket MACs + counter
//! tracking) detects every attempt, and the CPU ↔ SDIMM session rejects
//! replayed or reordered link messages.
//!
//! Run with: `cargo run -p sdimm-examples --bin attack_demo`

use oram::bucket::{BlockEntry, Bucket};
use oram::geometry::BucketIdx;
use oram::integrity::SealedTree;
use oram::types::{BlockId, Leaf};
use sdimm_crypto::session::{handshake, DeviceId};
use sdimm_crypto::CryptoError;

fn main() {
    println!("=== attack 1: tampering with stored bucket ciphertext ===");
    let mut tree = SealedTree::new(4, 64, [13u8; 16]);
    let mut bucket = Bucket::new(4);
    bucket
        .insert(BlockEntry { id: BlockId(7), leaf: Leaf(3), data: b"confidential".to_vec() })
        .expect("empty bucket accepts a block");
    tree.store(BucketIdx(42), &bucket);
    tree.tamper_ciphertext(BucketIdx(42));
    match tree.load(BucketIdx(42)) {
        Err(CryptoError::MacMismatch { context }) => {
            println!("detected: mac mismatch while checking {context}")
        }
        other => println!("MISSED TAMPER: {other:?}"),
    }

    println!("\n=== attack 2: replaying a stale bucket version ===");
    let mut tree = SealedTree::new(4, 64, [14u8; 16]);
    tree.store(BucketIdx(9), &bucket);
    let stale = tree.raw(BucketIdx(9)).expect("present");
    // The victim overwrites the bucket (e.g. the balance was spent)...
    let mut newer = Bucket::new(4);
    newer
        .insert(BlockEntry { id: BlockId(7), leaf: Leaf(5), data: b"balance=0".to_vec() })
        .expect("insert");
    tree.store(BucketIdx(9), &newer);
    // ...and the attacker splices the old ciphertext back in.
    tree.replay(BucketIdx(9), stale);
    match tree.load(BucketIdx(9)) {
        Err(CryptoError::CounterOutOfSync { expected, got }) => {
            println!("detected: replay (counter {got}, expected {expected})")
        }
        other => println!("MISSED REPLAY: {other:?}"),
    }

    println!("\n=== attack 3: replaying a CPU->SDIMM link message ===");
    let (mut cpu, mut dimm) = handshake(DeviceId([1; 16]), [2; 16], [3; 16]);
    let msg = cpu.seal(b"ACCESS blk=7 op=write");
    dimm.open(&msg).expect("first delivery is fine");
    match dimm.open(&msg) {
        Err(CryptoError::CounterOutOfSync { .. }) => {
            println!("detected: link replay rejected by session counter")
        }
        other => println!("MISSED LINK REPLAY: {other:?}"),
    }

    println!("\n=== attack 4: reading the bus ===");
    let wire = cpu.seal(b"ACCESS blk=9 op=read leaf=511");
    let visible = &wire.ciphertext;
    let leaked = visible.windows(6).any(|w| w == b"ACCESS");
    println!(
        "ciphertext on the bus ({} bytes) contains plaintext commands: {}",
        visible.len(),
        if leaked { "YES (BROKEN)" } else { "no" }
    );
    println!("\nall four attacks handled as the design requires.");
}
