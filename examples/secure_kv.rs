//! A tiny oblivious key-value store over the Split ORAM — the in-memory
//! database use case the paper's introduction motivates (high-capacity
//! cloud databases whose access patterns must not leak).
//!
//! Keys hash to ORAM blocks; every `get`/`put` is a full `accessORAM`,
//! so an observer cannot tell a hot key from a cold one, a read from a
//! write, or even whether two operations touched the same key.
//!
//! Run with: `cargo run -p sdimm-examples --bin secure_kv`

use oram::types::{BlockId, Op, OramConfig};
use sdimm::obliviousness::{compare_shapes, Recorder, ShapeVerdict};
use sdimm::split::{SplitConfig, SplitOram};

/// Fixed-size value slot inside one 64-byte block: 8-byte key hash +
/// 1-byte length + up to 55 bytes of value.
const VALUE_MAX: usize = 55;

struct ObliviousKv {
    oram: SplitOram,
    slots: u64,
}

impl ObliviousKv {
    fn new(slots: u64) -> Self {
        let tree = OramConfig { levels: 11, ..OramConfig::default() };
        ObliviousKv { oram: SplitOram::new(SplitConfig::new(2, &tree), slots, 7), slots }
    }

    fn slot_of(&self, key: &str) -> BlockId {
        // FNV-1a keeps the example dependency-free.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        BlockId(h % self.slots)
    }

    fn put(&mut self, key: &str, value: &str) {
        assert!(value.len() <= VALUE_MAX, "value too large for one block");
        let mut block = vec![0u8; 64];
        block[..8].copy_from_slice(&self.slot_of(key).0.to_le_bytes());
        block[8] = value.len() as u8;
        block[9..9 + value.len()].copy_from_slice(value.as_bytes());
        self.oram.access(self.slot_of(key), Op::Write, Some(&block));
    }

    fn get(&mut self, key: &str) -> Option<String> {
        let (block, _) = self.oram.access(self.slot_of(key), Op::Read, None);
        if block.len() < 9 || block.iter().all(|&b| b == 0) {
            return None;
        }
        let len = block[8] as usize;
        Some(String::from_utf8_lossy(&block[9..9 + len]).into_owned())
    }
}

fn main() {
    let mut kv = ObliviousKv::new(2048);

    println!("populating the oblivious KV store...");
    kv.put("alice/balance", "1402.77");
    kv.put("bob/balance", "11.03");
    kv.put("carol/ssn", "REDACTED-BY-DESIGN");

    println!("alice/balance = {:?}", kv.get("alice/balance"));
    println!("bob/balance   = {:?}", kv.get("bob/balance"));
    println!("carol/ssn     = {:?}", kv.get("carol/ssn"));
    println!("missing key   = {:?}", kv.get("eve/balance"));

    // Demonstrate indistinguishability: a workload that hammers one hot
    // key produces exactly the same observable shape as one that scans
    // distinct keys.
    let shape_of = |keys: &[&str]| {
        let mut kv = ObliviousKv::new(2048);
        kv.put("seed", "x");
        kv.oram.set_recorder(Recorder::new());
        for k in keys {
            kv.get(k);
        }
        kv.oram.take_recorder().expect("attached")
    };
    let hot = shape_of(&["alice/balance"; 16]);
    let scan = shape_of(&[
        "k00", "k01", "k02", "k03", "k04", "k05", "k06", "k07", "k08", "k09", "k10", "k11", "k12",
        "k13", "k14", "k15",
    ]);
    match compare_shapes(&hot, &scan) {
        ShapeVerdict::Indistinguishable => {
            println!("\n16 hot-key reads and a 16-key scan are indistinguishable on the bus.")
        }
        v => println!("\nUNEXPECTED LEAK: {v:?}"),
    }
}
