//! Protocol comparison on a workload of your choice: runs the same trace
//! through the non-secure baseline, Freecursive, and the SDIMM designs,
//! printing cycles, latency, energy, and off-DIMM traffic — a miniature,
//! scriptable version of the paper's Figs 6/8/9/10.
//!
//! Run with:
//! `cargo run --release -p sdimm-examples --bin protocol_compare [workload]`
//! where `workload` is one of the ten `*-like` names (default
//! `gromacs-like`).

use dram_sim::spec::DramStandard;
use sdimm_system::machine::{MachineKind, SystemConfig};
use sdimm_system::runner::run;
use workloads::spec;

fn main() {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "gromacs-like".to_string());
    assert!(
        spec::ALL.contains(&workload.as_str()),
        "unknown workload {workload}; pick one of {:?}",
        spec::ALL
    );
    let trace = spec::generate(&workload, 4_000, 42);
    let profile = workloads::stats::characterize(&trace);
    println!(
        "workload {workload}: MLP≈{:.1}, row locality {:.2}, reuse {:.2}\n",
        profile.mlp_estimate, profile.row_locality, profile.reuse_fraction
    );

    let kinds = [
        MachineKind::NonSecure { channels: 2 },
        MachineKind::Freecursive { channels: 2 },
        MachineKind::Independent { sdimms: 4, channels: 2 },
        MachineKind::Split { ways: 4, channels: 2 },
        MachineKind::IndepSplit { groups: 2, ways: 2, channels: 2 },
    ];
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>14}",
        "machine", "cyc/record", "miss lat", "nJ/record", "offDIMM lines"
    );
    let mut baseline = None;
    for kind in kinds {
        let cfg = SystemConfig {
            kind,
            oram: oram::types::OramConfig {
                levels: 16,
                cached_levels: 7,
                ..oram::types::OramConfig::default()
            },
            data_blocks: 1 << 14,
            standard: DramStandard::default(),
            low_power: false,
            seed: 1,
        };
        let r = run(&cfg, &trace, 1_000, 2_000);
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>12.1} {:>14}",
            r.machine,
            r.cycles_per_record(),
            r.mean_miss_latency,
            r.energy_per_record_nj(),
            r.external_bus_bytes / 64,
        );
        if matches!(kind, MachineKind::Freecursive { .. }) {
            baseline = Some(r.cycles_per_record());
        } else if let (Some(base), false) =
            (baseline, matches!(kind, MachineKind::NonSecure { .. }))
        {
            let gain = 100.0 * (1.0 - r.cycles_per_record() / base);
            println!("{:<16} {:>11.1}% faster than Freecursive", "", gain);
        }
    }
}
