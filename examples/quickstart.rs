//! Quickstart: store and fetch secret blocks through a distributed
//! SDIMM ORAM, then look at what an attacker on the bus would see.
//!
//! Run with: `cargo run -p sdimm-examples --bin quickstart`

use oram::types::{BlockId, Op, OramConfig};
use sdimm::independent::{IndependentConfig, IndependentOram};
use sdimm::obliviousness::Recorder;

fn main() {
    // A 2^10-leaf global tree partitioned across two Secure DIMMs.
    let tree = OramConfig { levels: 10, ..OramConfig::default() };
    let mut oram = IndependentOram::new(IndependentConfig::new(2, &tree), 1024, 42);
    oram.set_recorder(Recorder::new());

    // Write a few secrets.
    println!("writing 8 blocks through the Independent protocol...");
    for i in 0..8u64 {
        let payload = format!("secret value #{i}");
        oram.access(BlockId(i), Op::Write, Some(payload.as_bytes()));
    }

    // Read them back — every access rerandomizes the block's location.
    for i in 0..8u64 {
        let (data, trace) = oram.access(BlockId(i), Op::Read, None);
        println!(
            "block {i}: {:<18} | {:>3} DRAM lines on-DIMM, {:>3} bytes off-DIMM",
            String::from_utf8_lossy(&data),
            trace.dram_lines(),
            trace.external_bytes(),
        );
    }

    // The attacker's view: per-SDIMM long-command counts must be uniform
    // (every access APPENDs to every SDIMM) and path lengths constant.
    let rec = oram.take_recorder().expect("recorder attached");
    let counts = rec.long_counts(2);
    println!("\nattacker-visible long commands per SDIMM: {counts:?}");
    println!(
        "target skew (0 = perfectly uniform): {:.3}",
        sdimm::obliviousness::target_skew(&counts)
    );
    println!("stats: {:?}", oram.stats());
    oram.check_invariants();
    println!("Path ORAM invariants verified on both SDIMMs.");
}
