#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
#
# Usage: scripts/check.sh
#
# Runs the same three checks a future CI job should run. Fails fast on the
# first broken step so local iterations stay quick.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> sdimm-lint (cycle arithmetic, secret hygiene, timing constants, panic budget, wall-clock, secret flow)"
cargo run --release -q -p sdimm-lint -- --json target/lint-report.json

echo "==> sdimm-lint L6 secret-flow self-scan (JSON kept as a CI artifact)"
cargo run --release -q -p sdimm-lint -- --pass l6 --json target/lint-l6.json > /dev/null

echo "==> cargo test -q"
cargo test -q

echo "==> telemetry overhead gate (disabled sink/wear <2%, enabled recorder/wear <5%)"
cargo run --release -q -p sdimm-bench --bin telemetry_overhead -- \
  --json target/telemetry-overhead.json

echo "==> audit-strict feature compiles"
cargo check -q -p sdimm-bench --features audit-strict

echo "==> audited quick-scale fig6 (DDR replay + ORAM oracle must be clean)"
# Build first so the timing below measures the run, not compilation.
cargo build --release -q -p sdimm-bench --bin fig6
fig6_t0=$(date +%s%N)
SDIMM_BENCH_SCALE=quick cargo run --release -q -p sdimm-bench --bin fig6 -- --audit \
  --flight-recorder target/quick-fig6-flight \
  --profile-folded target/quick-fig6.folded \
  --metrics-json target/quick-fig6.metrics.json \
  --trace-json target/quick-fig6.trace.json > /dev/null
fig6_t1=$(date +%s%N)
# One-line wall-clock record for the audited run, kept as a CI artifact
# so simulator-throughput trends are visible across commits.
echo "audited_quick_fig6_wall_ms=$(( (fig6_t1 - fig6_t0) / 1000000 ))" \
  | tee target/quick-fig6.timing.txt

echo "==> audited quick-scale fig6 on DDR4-2400 (spec-driven backend: bank-group replay must be clean)"
SDIMM_BENCH_SCALE=quick cargo run --release -q -p sdimm-bench --bin fig6 -- \
  --audit --standard ddr4_2400 > /dev/null

echo "==> protocol-crossover figure (all four standards; byte-stable across runs)"
# Two runs from sibling directories, compared byte-for-byte: the report
# must be a pure function of the simulated streams (provenance + cycles,
# no wall clock). The compared copy is kept as a CI artifact.
cargo build --release -q -p sdimm-bench --bin crossover
mkdir -p target/crossover-1 target/crossover-2
(cd target/crossover-1 && SDIMM_BENCH_SCALE=quick ../../target/release/crossover > /dev/null)
(cd target/crossover-2 && SDIMM_BENCH_SCALE=quick ../../target/release/crossover > /dev/null)
cmp target/crossover-1/BENCH_crossover.json target/crossover-2/BENCH_crossover.json \
  || { echo "crossover reports differ between runs — figure is nondeterministic"; exit 1; }
cp target/crossover-1/BENCH_crossover.json target/BENCH_crossover.json

echo "==> simulator-throughput + crypto perf gates (bench_compare vs committed baselines)"
cargo run --release -q -p sdimm-bench --bin bench_compare

echo "==> folded profile validates (no empty stacks, weights sum to sampled cycles)"
cargo run --release -q -p sdimm-bench --bin validate_folded -- target/quick-fig6.folded

echo "==> RowHammer threat report (wear counts must match the replay recount; byte-stable)"
# Two runs compared byte-for-byte, like the crossover figure: the wear
# observatory's report must be a pure function of the simulated command
# streams. The binary itself exits nonzero if any cell's per-row ACT
# totals disagree with the auditor's independent recount.
cargo build --release -q -p sdimm-bench --bin hammer_report
mkdir -p target/hammer-1 target/hammer-2
SDIMM_BENCH_SCALE=quick ./target/release/hammer_report \
  --report target/hammer-1/BENCH_hammer.json
SDIMM_BENCH_SCALE=quick ./target/release/hammer_report \
  --report target/hammer-2/BENCH_hammer.json > /dev/null
cmp target/hammer-1/BENCH_hammer.json target/hammer-2/BENCH_hammer.json \
  || { echo "hammer reports differ between runs — observatory is nondeterministic"; exit 1; }
cp target/hammer-1/BENCH_hammer.json target/BENCH_hammer.json

echo "==> timing-leakage gate (secure protocols indistinguishable, NonSecure detected)"
# Run twice and compare byte-for-byte: the verdict must be a pure
# function of the simulated streams, never of host timing or entropy.
SDIMM_BENCH_SCALE=quick cargo run --release -q -p sdimm-bench --bin leakage_gate -- \
  --report target/leakage-report.json
SDIMM_BENCH_SCALE=quick cargo run --release -q -p sdimm-bench --bin leakage_gate -- \
  --report target/leakage-report-2.json > /dev/null
cmp target/leakage-report.json target/leakage-report-2.json \
  || { echo "leakage reports differ between runs — gate is nondeterministic"; exit 1; }

echo "==> all checks passed"
