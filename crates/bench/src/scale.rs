//! Run-scale selection for the figure binaries.

use oram::types::OramConfig;

/// How big a run the figure binaries perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small trees and short windows: every figure in minutes.
    Quick,
    /// Larger trees and windows, closer to the paper's configuration.
    Full,
}

impl Scale {
    /// Reads `SDIMM_BENCH_SCALE` (`quick`/`full`); defaults to quick.
    pub fn from_env() -> Self {
        match std::env::var("SDIMM_BENCH_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// The global ORAM tree for this scale, with `cached_levels` of
    /// on-chip ORAM caching (0 or 7 in the paper's sweeps).
    pub fn oram(&self, cached_levels: u32) -> OramConfig {
        let levels = match self {
            Scale::Quick => 18,
            Scale::Full => 24,
        };
        OramConfig { levels, cached_levels, ..OramConfig::default() }
    }

    /// Logical data blocks the workloads address.
    pub fn data_blocks(&self) -> u64 {
        match self {
            Scale::Quick => 1 << 15,
            Scale::Full => 1 << 19,
        }
    }

    /// Trace records used to warm the LLC before measurement.
    pub fn warmup(&self) -> usize {
        match self {
            Scale::Quick => 3_000,
            Scale::Full => 50_000,
        }
    }

    /// Trace records measured cycle-accurately.
    pub fn measure(&self) -> usize {
        match self {
            Scale::Quick => 2_000,
            Scale::Full => 20_000,
        }
    }

    /// Total records to generate per workload.
    pub fn trace_len(&self) -> usize {
        self.warmup() + self.measure() + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_default() {
        // (Reads the real environment; in the test environment the
        // variable is unset.)
        if std::env::var("SDIMM_BENCH_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Quick);
        }
    }

    #[test]
    fn full_is_larger_everywhere() {
        let q = Scale::Quick;
        let f = Scale::Full;
        assert!(f.oram(0).levels > q.oram(0).levels);
        assert!(f.measure() > q.measure());
        assert!(f.data_blocks() > q.data_blocks());
    }

    #[test]
    fn trace_len_covers_windows() {
        let s = Scale::Quick;
        assert!(s.trace_len() >= s.warmup() + s.measure());
    }

    #[test]
    fn cached_levels_pass_through() {
        assert_eq!(Scale::Quick.oram(7).cached_levels, 7);
        assert_eq!(Scale::Quick.oram(0).cached_levels, 0);
    }
}
