//! `bench_compare` — the perf-regression gates for the crypto fast path
//! and the event-driven simulation core.
//!
//! Two suites, each with its own report and committed baseline:
//!
//! * **crypto** — wall-clock microbenchmarks (AES block/batch, CTR
//!   keystream, CMAC, bucket seal→open) plus two quick-scale
//!   fig6-style system microloops → `BENCH_crypto.json`, gated against
//!   `crates/bench/baselines/crypto.json`.
//! * **sim** — quick-scale fig6 cells, one per machine kind, measuring
//!   simulator throughput two ways: trace records retired per wall
//!   second (the gated ops/sec) and simulated memory cycles per wall
//!   second (reported alongside) → `BENCH_sim.json`, gated against
//!   `crates/bench/baselines/sim.json`.
//!
//! Reports carry ops/sec, wall time, and p50/p99 per-op latency per
//! benchmark; each suite diffs ops/sec against its baseline and exits
//! nonzero when any benchmark regressed by more than 15%. The p50/p99
//! columns ride along for tail-latency tracking; the hard gate stays on
//! throughput because ns-scale tail measurements are too noisy on
//! shared CI hosts to fail a build on.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p sdimm-bench --bin bench_compare
//! cargo run --release -p sdimm-bench --bin bench_compare -- --update-baseline
//! ```
//!
//! `--update-baseline` rewrites both baseline files after an intentional
//! performance change. `SDIMM_BENCH_BUDGET_MS` scales the per-benchmark
//! measurement budget (default 200 ms).

// Wall-clock bench binary: `Instant` is the measurement, and the regression gate exits nonzero.
#![allow(clippy::disallowed_methods)]

use dram_sim::spec::DramStandard;
use sdimm_bench::provenance::Provenance;
use std::hint::black_box;
use std::time::{Duration, Instant};

use sdimm_crypto::aes::{spec, Aes128};
use sdimm_crypto::ctr::CtrCipher;
use sdimm_crypto::mac::Cmac;
use sdimm_crypto::pmmac::BucketAuth;
use sdimm_system::machine::{MachineKind, SystemConfig};
use sdimm_system::runner::run;
use sdimm_telemetry::LatencyHistogram;
use workloads::spec as wl;

/// Regression threshold: fail when current ops/sec drops below
/// `baseline * (1 - 0.15)`.
const MAX_REGRESSION: f64 = 0.15;

/// Measurement attempts before an apparent regression is trusted. Extra
/// attempts run only when the first pass already looks regressed.
const RETRY_ATTEMPTS: usize = 3;

/// Committed crypto baseline, resolved relative to the crate so
/// `cargo run` works from any directory.
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/crypto.json");

/// Committed simulator-throughput baseline.
const SIM_BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/sim.json");

/// Crypto report written into the invoking directory.
const REPORT_PATH: &str = "BENCH_crypto.json";

/// Simulator-throughput report written into the invoking directory.
const SIM_REPORT_PATH: &str = "BENCH_sim.json";

#[derive(Debug, Clone)]
struct Measurement {
    name: &'static str,
    ops_per_sec: f64,
    wall_time_s: f64,
    /// Median per-op latency in ns (from per-batch wall-time deltas).
    p50_ns: u64,
    /// 99th-percentile per-op latency in ns.
    p99_ns: u64,
    /// Simulated memory cycles advanced per wall second (sim suite
    /// only; 0 for pure wall-clock microbenchmarks). Reported, not
    /// gated: it moves with both engine speed and machine behaviour.
    sim_cycles_per_sec: f64,
}

/// Runs `iter` repeatedly for roughly `budget`, returning ops/sec and the
/// wall time actually spent. The budget is split into eight slices and the
/// fastest slice wins: preemption on a busy host only ever slows a slice
/// down, so best-of-slices is a much more stable estimator than one long
/// average — which matters when a 15% regression gate rides on the number.
/// Batch size doubles until a slice fills so the `Instant` overhead never
/// dominates sub-microsecond operations.
fn measure(name: &'static str, budget: Duration, mut iter: impl FnMut()) -> Measurement {
    for _ in 0..3 {
        iter(); // warmup: touch tables, fault in pages
    }
    let slice_budget = budget / 8;
    let total = Instant::now();
    let mut best = 0.0f64;
    let mut batch = 1u64;
    let mut latency = LatencyHistogram::new();
    for _ in 0..8 {
        let start = Instant::now();
        let mut iters = 0u64;
        let mut prev = Duration::ZERO;
        loop {
            for _ in 0..batch {
                iter();
            }
            iters += batch;
            let elapsed = start.elapsed();
            // Per-op latency for this batch: the tail distribution the
            // p50/p99 report columns summarize.
            let delta = elapsed.saturating_sub(prev);
            latency.record((delta.as_nanos() as u64 / batch).max(1));
            prev = elapsed;
            if elapsed >= slice_budget {
                best = best.max(iters as f64 / elapsed.as_secs_f64());
                break;
            }
            batch = (batch * 2).min(1 << 16);
        }
    }
    Measurement {
        name,
        ops_per_sec: best,
        wall_time_s: total.elapsed().as_secs_f64(),
        p50_ns: latency.percentile(0.50),
        p99_ns: latency.percentile(0.99),
        sim_cycles_per_sec: 0.0,
    }
}

/// One-shot measurement for the expensive system microloops: a single run,
/// ops/sec = trace records retired per wall second. p50 = p99 = the mean
/// per-record time (one observation — no distribution to draw from).
fn measure_once(name: &'static str, records: u64, f: impl FnOnce()) -> Measurement {
    let start = Instant::now();
    f();
    let wall = start.elapsed().as_secs_f64();
    let per_op_ns = (wall * 1e9 / records.max(1) as f64) as u64;
    Measurement {
        name,
        ops_per_sec: records as f64 / wall.max(1e-12),
        wall_time_s: wall,
        p50_ns: per_op_ns,
        p99_ns: per_op_ns,
        sim_cycles_per_sec: 0.0,
    }
}

fn crypto_benchmarks(budget: Duration) -> Vec<Measurement> {
    let key = [0x42u8; 16];
    let fast = Aes128::new(&key);
    let slow = spec::Aes128::new(&key);
    let ctr = CtrCipher::new(Aes128::new(&key), 0xB34C_0000_0000_0001);
    let mac = Cmac::new(&key);
    let auth = BucketAuth::new(&key, &[0x24u8; 16]);

    let block = [7u8; 16];
    let mut batch = [[0u8; 16]; 32];
    let msg = vec![5u8; 1024];
    // Z=4 bucket of 64-byte blocks: 8-byte counter + 4 × (16 B header + 64 B).
    let bucket_image = vec![9u8; 8 + 4 * (16 + 64)];
    let mut line = vec![3u8; 4096];

    vec![
        measure("aes128_encrypt_block", budget, || {
            black_box(fast.encrypt_block(black_box(block)));
        }),
        measure("aes128_encrypt_block_spec", budget, || {
            black_box(slow.encrypt_block(black_box(block)));
        }),
        measure("aes128_encrypt_blocks_x32", budget, || {
            fast.encrypt_blocks(black_box(&mut batch));
        }),
        measure("ctr_keystream_line", budget, || {
            black_box(ctr.keystream_line(black_box(77)));
        }),
        measure("ctr_apply_4096B", budget, || {
            ctr.apply(black_box(77), black_box(&mut line));
        }),
        measure("cmac_tag_1024B", budget, || {
            black_box(mac.tag(black_box(&msg)));
        }),
        measure("bucket_seal_open_z4", budget, || {
            let sealed = auth.seal(black_box(5), black_box(9), black_box(&bucket_image));
            black_box(auth.open(5, &sealed).expect("fresh seal opens"));
        }),
    ]
}

fn fig6_microloops() -> Vec<Measurement> {
    // Quick-scale fig6 shape: one representative workload through the
    // non-secure and Freecursive machines on a small tree. Wall time here
    // is dominated by path crypto + simulation, so it tracks exactly what
    // the fast path is meant to speed up.
    let warmup = 300usize;
    let window = 500usize;
    let trace = wl::generate("mcf-like", warmup + window + 16, 42);
    let mut out = Vec::new();
    for (name, kind) in [
        ("fig6_quick_nonsecure", MachineKind::NonSecure { channels: 1 }),
        ("fig6_quick_freecursive", MachineKind::Freecursive { channels: 1 }),
    ] {
        let cfg = SystemConfig::small(kind);
        out.push(measure_once(name, window as u64, || {
            black_box(run(&cfg, &trace, warmup, window));
        }));
    }
    out
}

/// The simulator-throughput suite: one quick-scale fig6 cell per machine
/// kind, on the same workload/seed the audit goldens use. The gated
/// ops/sec is trace records retired per wall second; simulated cycles
/// per wall second rides along in the report. This is the wall-clock
/// regression gate for the event-driven tick/scan hot paths — a change
/// that slows the scheduler shows up here long before a full figure
/// regeneration would notice.
fn sim_benchmarks() -> Vec<Measurement> {
    let scale = sdimm_bench::Scale::Quick;
    let trace = wl::generate("milc-like", scale.trace_len(), 42);
    let warmup = scale.warmup();
    let window = scale.measure();
    let mut out = Vec::new();
    for (name, kind) in [
        ("sim_quick_nonsecure_1ch", MachineKind::NonSecure { channels: 1 }),
        ("sim_quick_freecursive_1ch", MachineKind::Freecursive { channels: 1 }),
        ("sim_quick_indep2_1ch", MachineKind::Independent { sdimms: 2, channels: 1 }),
        ("sim_quick_split2_1ch", MachineKind::Split { ways: 2, channels: 1 }),
    ] {
        let cfg = SystemConfig {
            kind,
            oram: scale.oram(7),
            data_blocks: scale.data_blocks(),
            standard: DramStandard::default(),
            low_power: false,
            seed: 1,
        };
        let mut sim_cycles = 0u64;
        let mut m = measure_once(name, window as u64, || {
            sim_cycles = black_box(run(&cfg, &trace, warmup, window)).cycles;
        });
        m.sim_cycles_per_sec = sim_cycles as f64 / m.wall_time_s.max(1e-12);
        out.push(m);
    }
    out
}

/// Serializes measurements in the (hand-rolled, dependency-free) report
/// format shared with the committed baseline. [`parse_baseline`] skips
/// the provenance object because it contains neither a `"name"` nor an
/// `"ops_per_sec"` key.
fn to_json(results: &[Measurement], prov: &Provenance) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"provenance\": {},\n", prov.to_json_object()));
    s.push_str("  \"benchmarks\": [\n");
    for (i, m) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"ops_per_sec\": {:.3}, \"wall_time_s\": {:.6}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"sim_cycles_per_sec\": {:.1}}}{sep}\n",
            m.name, m.ops_per_sec, m.wall_time_s, m.p50_ns, m.p99_ns, m.sim_cycles_per_sec
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extracts `(name, ops_per_sec)` pairs from a report produced by
/// [`to_json`]. A minimal scanner, not a general JSON parser: it walks the
/// whole text pairing each `"name"` with the next `"ops_per_sec"`, so it
/// tolerates reformatting (e.g. a pretty-printer splitting objects across
/// lines) as long as the key order inside each object is preserved.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(name_pos) = rest.find("\"name\":") {
        rest = &rest[name_pos + 7..];
        let Some(open) = rest.find('"') else { break };
        let Some(close) = rest[open + 1..].find('"') else { break };
        let name = rest[open + 1..open + 1 + close].to_string();
        rest = &rest[open + 2 + close..];
        let Some(ops_pos) = rest.find("\"ops_per_sec\":") else { break };
        let num: String = rest[ops_pos + 14..]
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| {
                c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == 'E' || *c == '+'
            })
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

fn human_rate(ops: f64) -> String {
    if ops >= 1e6 {
        format!("{:8.2} Mops/s", ops / 1e6)
    } else if ops >= 1e3 {
        format!("{:8.2} Kops/s", ops / 1e3)
    } else {
        format!("{ops:8.2}  ops/s")
    }
}

/// Measures, reports, and gates one suite. Writes `report_path`, diffs
/// against `baseline_path` (or rewrites it with `--update-baseline`),
/// and returns the number of persistent regressions. Exits the process
/// when the baseline is missing or unparseable — a misconfigured gate
/// must not pass silently.
fn run_suite(
    label: &str,
    report_path: &str,
    baseline_path: &str,
    update_baseline: bool,
    measure_suite: &dyn Fn() -> Vec<Measurement>,
    results: Vec<Measurement>,
    prov: &Provenance,
) -> usize {
    for m in &results {
        let cycles = if m.sim_cycles_per_sec > 0.0 {
            format!("   {:8.2} Mcyc/s", m.sim_cycles_per_sec / 1e6)
        } else {
            String::new()
        };
        println!(
            "  {:28} {}   p50 {:>9} ns  p99 {:>9} ns   ({:.3} s){cycles}",
            m.name,
            human_rate(m.ops_per_sec),
            m.p50_ns,
            m.p99_ns,
            m.wall_time_s
        );
    }

    let report = to_json(&results, prov);
    std::fs::write(report_path, &report).unwrap_or_else(|e| panic!("write {report_path}: {e}"));
    println!("  report written to {report_path}");

    if update_baseline {
        if let Some(dir) = std::path::Path::new(baseline_path).parent() {
            std::fs::create_dir_all(dir).expect("create baselines dir");
        }
        std::fs::write(baseline_path, &report).expect("write baseline");
        println!("  baseline updated at {baseline_path}");
        return 0;
    }

    let Ok(baseline_text) = std::fs::read_to_string(baseline_path) else {
        println!(
            "\n  no committed baseline at {baseline_path}; run with --update-baseline to create one"
        );
        std::process::exit(2);
    };
    let baseline = parse_baseline(&baseline_text);
    if baseline.is_empty() {
        eprintln!(
            "bench_compare: baseline at {baseline_path} has no parseable entries; \
             regenerate it with --update-baseline"
        );
        std::process::exit(2);
    }

    // A shared 1-vCPU host can steal the whole measurement window, making
    // every benchmark look ~20% slower at once. A real code regression
    // survives re-measurement; noise does not — so on apparent regression,
    // re-measure and keep each benchmark's best observation before failing.
    let mut merged = results;
    for attempt in 1..=RETRY_ATTEMPTS {
        if count_regressions(&merged, &baseline) == 0 || attempt == RETRY_ATTEMPTS {
            break;
        }
        println!(
            "\n  apparent {label} regression — re-measuring to rule out host noise \
             (attempt {}/{RETRY_ATTEMPTS})",
            attempt + 1
        );
        let retry = measure_suite();
        for m in &mut merged {
            if let Some(r) = retry.iter().find(|r| r.name == m.name) {
                if r.ops_per_sec > m.ops_per_sec {
                    *m = r.clone();
                }
            }
        }
    }

    println!("\n  {label} diff vs baseline ({baseline_path}):");
    let mut regressions = 0usize;
    for m in &merged {
        let Some((_, base)) = baseline.iter().find(|(n, _)| n == m.name) else {
            println!("    {:28} (new — no baseline entry)", m.name);
            continue;
        };
        let delta = m.ops_per_sec / base - 1.0;
        let flag = if delta < -MAX_REGRESSION {
            regressions += 1;
            "  << REGRESSION"
        } else {
            ""
        };
        println!("    {:28} {:+7.1}%{flag}", m.name, delta * 100.0);
    }
    regressions
}

fn main() {
    let mut update_baseline = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--update-baseline" => update_baseline = true,
            other => {
                eprintln!(
                    "bench_compare: unknown argument `{other}` \
                     (supported: --update-baseline; env SDIMM_BENCH_BUDGET_MS)"
                );
                std::process::exit(2);
            }
        }
    }
    let budget_ms: u64 =
        std::env::var("SDIMM_BENCH_BUDGET_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(200);
    let budget = Duration::from_millis(budget_ms);

    println!("bench_compare: {budget_ms} ms/crypto benchmark + fig6 quick microloops\n");
    let crypto_suite = move || {
        let mut r = crypto_benchmarks(budget);
        r.extend(fig6_microloops());
        r
    };
    let crypto_results = crypto_suite();

    let fast = crypto_results.iter().find(|m| m.name == "aes128_encrypt_block").expect("present");
    let slow =
        crypto_results.iter().find(|m| m.name == "aes128_encrypt_block_spec").expect("present");
    let speedup = fast.ops_per_sec / slow.ops_per_sec;

    let mut regressions = run_suite(
        "crypto",
        REPORT_PATH,
        BASELINE_PATH,
        update_baseline,
        &crypto_suite,
        crypto_results,
        &Provenance::new("quick", "nonsecure,freecursive"),
    );
    println!("\n  T-table vs spec AES speedup: {speedup:.2}x (acceptance floor: 4x)");

    println!("\nsimulator throughput (quick fig6, one cell per machine kind)\n");
    regressions += run_suite(
        "sim",
        SIM_REPORT_PATH,
        SIM_BASELINE_PATH,
        update_baseline,
        &sim_benchmarks,
        sim_benchmarks(),
        &Provenance::new("quick", "nonsecure,freecursive,indep2,split2"),
    );

    if regressions > 0 {
        eprintln!(
            "\nbench_compare: {regressions} benchmark(s) regressed more than {:.0}% \
             (persisted across {RETRY_ATTEMPTS} measurement attempts)",
            MAX_REGRESSION * 100.0
        );
        std::process::exit(1);
    }
    println!("\n  no regression beyond {:.0}% — OK", MAX_REGRESSION * 100.0);
}

fn count_regressions(results: &[Measurement], baseline: &[(String, f64)]) -> usize {
    results
        .iter()
        .filter(|m| {
            baseline
                .iter()
                .find(|(n, _)| n == m.name)
                .is_some_and(|(_, base)| m.ops_per_sec / base - 1.0 < -MAX_REGRESSION)
        })
        .count()
}
