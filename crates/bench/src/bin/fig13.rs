//! Fig 13: transfer-queue overflow models.
//!
//! (a) Probability a saturated random-walk queue exceeds 16/64/256/1024
//! blocks as steps grow; (b) steady-state M/M/1/K overflow probability
//! vs forced-drain probability p for several queue sizes.

use sdimm_analytic::{mm1k, random_walk};
use sdimm_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let (max_steps, points) = match scale {
        Scale::Quick => (100_000u64, 10usize),
        Scale::Full => (800_000, 16),
    };

    println!("== Fig 13a: random-walk overflow probability (no forced drain) ==");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "steps", "cap=16", "cap=64", "cap=256", "cap=1024"
    );
    for (steps, probs) in random_walk::fig13a_series(max_steps, points) {
        println!(
            "{steps:>10} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            probs[0], probs[1], probs[2], probs[3]
        );
    }

    println!("\n== Fig 13b: M/M/1/K overflow probability vs drain probability p ==");
    let ps = [0.01, 0.05, 0.1, 0.25, 0.5];
    let ks = [8u32, 16, 32, 64, 128];
    print!("{:>8}", "p \\ K");
    for k in ks {
        print!("{k:>12}");
    }
    println!();
    for (p, row) in mm1k::fig13b_series(&ps, &ks) {
        print!("{p:>8.2}");
        for (_, prob) in row {
            print!("{prob:>12.2e}");
        }
        println!();
    }
}
