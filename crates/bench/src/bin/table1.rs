//! Table I: the SDIMM command set and its DDR encodings.

use sdimm::commands::{CommandClass, SdimmCommand};

fn main() {
    println!("== Table I: details of commands used by SDIMM ==");
    println!("{:<16} {:<6} {:<9} cmd/addr bus", "Command", "Type", "RD vs WR");
    for cmd in SdimmCommand::ALL {
        let e = cmd.encode();
        let class = match cmd.class() {
            CommandClass::Short => "short",
            CommandClass::Long => "long",
        };
        let rw = if e.is_write { "WR" } else { "RD" };
        println!(
            "{:<16} {:<6} {:<9} RAS({:#x}) CAS({:#x})",
            cmd.to_string(),
            class,
            rw,
            e.ras,
            e.cas
        );
    }
}
