//! Extension experiment (the paper's §IV-B closing remark, "not evaluated
//! in this study"): how much does ORAM traffic hurt a co-resident
//! non-secure VM sharing the memory system?
//!
//! Setup: a secure VM drives ORAM traffic while a non-secure VM issues
//! plain reads. Under Freecursive, both share the main DDR channels, so
//! the non-secure VM queues behind path traffic. Under the SDIMM designs
//! the path traffic stays on-DIMM: the non-secure VM (an LRDIMM on the
//! same physical channel) only competes for the external bus slots the
//! protocol actually uses.

use dram_sim::spec::DramStandard;
use sdimm::trace::{Activity, Phase, RequestTrace};
use sdimm_bench::Scale;
use sdimm_system::executor::{ExecEvent, Executor};
use sdimm_system::machine::{Machine, MachineKind, SystemConfig};

/// Issues `n` secure ORAM requests while sampling non-secure read latency
/// every `gap` cycles; returns mean non-secure latency in bus cycles.
fn run(kind: MachineKind, scale: Scale) -> f64 {
    let cfg = SystemConfig {
        kind,
        oram: scale.oram(7),
        data_blocks: scale.data_blocks(),
        standard: DramStandard::default(),
        low_power: false,
        seed: 1,
    };
    let mut m = Machine::new(cfg.clone());
    let is_sdimm = !matches!(kind, MachineKind::NonSecure { .. } | MachineKind::Freecursive { .. });

    let mut secure_inflight = 0usize;
    let mut secure_issued = 0u64;
    let mut ns_outstanding: std::collections::HashMap<_, u64> = Default::default();
    let mut ns_latency = 0u64;
    let mut ns_count = 0u64;
    let mut next_ns = 0u64;
    let total_secure = 400u64;
    let mut secure_done = 0u64;
    let mut ids: std::collections::HashSet<_> = Default::default();

    while secure_done < total_secure {
        // Keep 8 secure requests in flight.
        while secure_inflight < 8 && secure_issued < total_secure {
            for t in m.request_traces((secure_issued * 1009 * 64) % (cfg.data_blocks * 64), false) {
                let id = m.executor.submit(t);
                ids.insert(id);
                secure_inflight += 1;
            }
            secure_issued += 1;
        }
        // One non-secure read every 200 cycles.
        let now = m.executor.now();
        if now >= next_ns {
            next_ns = now.saturating_add(200);
            let trace = non_secure_read(&mut m.executor, is_sdimm, ns_count);
            let id = m.executor.submit(trace);
            ns_outstanding.insert(id, now);
        }
        m.executor.tick(16);
        for ev in m.executor.poll() {
            match ev {
                ExecEvent::DataReady { id, at } => {
                    if let Some(start) = ns_outstanding.remove(&id) {
                        ns_latency += at - start;
                        ns_count += 1;
                    }
                }
                ExecEvent::Done { id, .. } => {
                    if ids.remove(&id) {
                        secure_inflight -= 1;
                        secure_done += 1;
                    }
                }
            }
        }
    }
    if ns_count == 0 {
        return 0.0;
    }
    ns_latency as f64 / ns_count as f64
}

/// A non-secure cache-line read. On baseline machines it shares the main
/// channels with the ORAM; on SDIMM machines it reads a co-resident
/// LRDIMM: its DRAM work rides channel 0's *bus slot* only (one external
/// transfer), since the paper's point is that path traffic no longer
/// crosses the shared channel. We model the LRDIMM access itself with a
/// fixed-latency crypto-free DRAM read on the least-loaded channel plus
/// the external transfer.
fn non_secure_read(ex: &mut Executor, is_sdimm: bool, n: u64) -> RequestTrace {
    let addr = (n * 761 * 64) % (1 << 28);
    if is_sdimm {
        RequestTrace::new(vec![Phase {
            par: vec![
                // One cache line over the shared external bus (the LRDIMM
                // answers with ordinary DDR timing folded into a fixed
                // 30-cycle device latency, modeled as crypto-free delay).
                Activity::ExtTransfer { sdimm: 0, bytes: 64 },
                Activity::Crypto { units: 10 }, // ≈30-cycle device access
            ],
        }])
    } else {
        let ch = (n % ex.channel_count() as u64) as usize;
        RequestTrace::new(vec![Phase::one(Activity::Dram {
            channel: ch,
            reads: vec![addr],
            writes: vec![],
        })])
    }
}

fn main() {
    let scale = Scale::from_env();
    println!("== Extension: non-secure co-resident VM latency under ORAM load ==");
    println!("(mean non-secure read latency in bus cycles, lower is better)\n");
    for (label, kind) in [
        ("FREECURSIVE-2ch (shared channels)", MachineKind::Freecursive { channels: 2 }),
        ("INDEP-4 (SDIMM, cleared channel)", MachineKind::Independent { sdimms: 4, channels: 2 }),
        (
            "INDEP-SPLIT (SDIMM, cleared channel)",
            MachineKind::IndepSplit { groups: 2, ways: 2, channels: 2 },
        ),
    ] {
        let lat = run(kind, scale);
        println!("{label:<40} {lat:>8.1}");
    }
    println!("\nExpected shape: the SDIMM designs leave the shared DDR bus nearly");
    println!("idle, so the co-resident VM sees near-unloaded latency, while under");
    println!("Freecursive it queues behind 2(Z+1)L path transfers per access.");
}
