//! Experiment X3 (IV-B): secure-buffer area estimate (<1 mm^2 at 32 nm).

use sdimm_analytic::area;

fn main() {
    println!("== X3: SDIMM secure-buffer area (32 nm) ==");
    println!("{:<24} {:.2} mm^2", area::ORAM_CONTROLLER.name, area::ORAM_CONTROLLER.mm2);
    let buf = area::sram_buffer(8.0);
    println!("{:<24} {:.2} mm^2 (8 KB)", buf.name, buf.mm2);
    println!("{:<24} {:.2} mm^2 (paper: < 1 mm^2)", "total", area::secure_buffer_mm2(8.0));
}
