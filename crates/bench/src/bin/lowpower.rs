//! Experiment X2 (IV-B): the low-power rank-localized layout costs <=4%
//! performance while letting idle ranks power down.

use sdimm_bench::{table, Scale, TelemetryArgs};
use sdimm_system::machine::{MachineKind, SystemConfig};
use workloads::spec;

fn main() {
    let telemetry = TelemetryArgs::from_env("lowpower");
    let instruments = telemetry.instruments();
    let _live = sdimm_bench::LiveView::spawn(instruments.live.clone());
    let mut all_cells = Vec::new();
    let scale = Scale::from_env();
    let kind = MachineKind::Independent { sdimms: 2, channels: 1 };

    for low_power in [false, true] {
        let cells = sdimm_bench::run_matrix_maybe_audited(
            &telemetry,
            &spec::ALL[..5],
            &[kind],
            scale,
            |kind| SystemConfig {
                kind,
                oram: scale.oram(7),
                data_blocks: scale.data_blocks(),
                standard: telemetry.standard,
                low_power,
                seed: 1,
            },
            &instruments,
            all_cells.len() as u32,
        );
        table::print_raw(
            &format!("X2: INDEP-2, low_power={low_power}"),
            &cells,
            "bus cycles / record",
            |c| c.result.cycles_per_record(),
        );
        table::print_raw(
            &format!("X2: INDEP-2 energy, low_power={low_power}"),
            &cells,
            "nJ / record",
            |c| c.result.energy_per_record_nj(),
        );
        all_cells.extend(cells);
    }
    sdimm_bench::leakage::write_if_requested(&telemetry, &[kind], scale, &instruments);
    telemetry.write_outputs(&all_cells, &instruments);
}
