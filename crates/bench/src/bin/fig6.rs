//! Fig 6: slowdown of Freecursive ORAM vs a non-secure baseline, for
//! single- and double-channel memory (paper: ≈8.8x and ≈5.2x with
//! 7 levels of ORAM caching).

use sdimm_bench::{harness, table, Scale, TelemetryArgs};
use sdimm_system::machine::{MachineKind, SystemConfig};
use workloads::spec;

fn main() {
    let telemetry = TelemetryArgs::from_env("fig6");
    let instruments = telemetry.instruments();
    let _live = sdimm_bench::LiveView::spawn(instruments.live.clone());
    let scale = Scale::from_env();
    let mut all_cells = Vec::new();
    for channels in [1usize, 2] {
        let kinds = [MachineKind::NonSecure { channels }, MachineKind::Freecursive { channels }];
        let cells = sdimm_bench::run_matrix_maybe_audited(
            &telemetry,
            &spec::ALL,
            &kinds,
            scale,
            |kind| SystemConfig {
                kind,
                oram: scale.oram(7),
                data_blocks: scale.data_blocks(),
                standard: telemetry.standard,
                low_power: false,
                seed: 1,
            },
            &instruments,
            all_cells.len() as u32,
        );
        table::print_normalized(
            &format!("Fig 6: Freecursive slowdown vs non-secure, {channels}-channel (7-level ORAM cache)"),
            &cells,
            &MachineKind::NonSecure { channels }.name(),
            |c| c.result.cycles_per_record(),
        );
        table::print_latency_percentiles(&format!("Fig 6, {channels}-channel"), &cells);
        let apr: Vec<f64> = cells
            .iter()
            .filter(|c| c.machine.starts_with("FREECURSIVE"))
            .map(|c| c.result.accesses_per_request)
            .collect();
        println!("accessORAMs per LLC request (paper ~1.4): {:.2}", harness::geomean(&apr));
        all_cells.extend(cells);
    }
    let leakage_kinds: Vec<MachineKind> = [1usize, 2]
        .iter()
        .flat_map(|&channels| {
            [MachineKind::NonSecure { channels }, MachineKind::Freecursive { channels }]
        })
        .collect();
    sdimm_bench::leakage::write_if_requested(&telemetry, &leakage_kinds, scale, &instruments);
    telemetry.write_outputs(&all_cells, &instruments);
}
