//! Fig 6: slowdown of Freecursive ORAM vs a non-secure baseline, for
//! single- and double-channel memory (paper: ≈8.8x and ≈5.2x with
//! 7 levels of ORAM caching).

use sdimm_bench::{harness, table, Scale};
use sdimm_system::machine::{MachineKind, SystemConfig};
use workloads::spec;

fn main() {
    let scale = Scale::from_env();
    for channels in [1usize, 2] {
        let kinds = [MachineKind::NonSecure { channels }, MachineKind::Freecursive { channels }];
        let cells = harness::run_matrix(&spec::ALL, &kinds, scale, |kind| SystemConfig {
            kind,
            oram: scale.oram(7),
            data_blocks: scale.data_blocks(),
            low_power: false,
            seed: 1,
        });
        table::print_normalized(
            &format!("Fig 6: Freecursive slowdown vs non-secure, {channels}-channel (7-level ORAM cache)"),
            &cells,
            &MachineKind::NonSecure { channels }.name(),
            |c| c.result.cycles_per_record(),
        );
        let apr: Vec<f64> = cells
            .iter()
            .filter(|c| c.machine.starts_with("FREECURSIVE"))
            .map(|c| c.result.accesses_per_request)
            .collect();
        println!("accessORAMs per LLC request (paper ~1.4): {:.2}", harness::geomean(&apr));
    }
}
