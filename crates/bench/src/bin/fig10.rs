//! Fig 10: memory energy overhead normalized to a non-secure baseline,
//! single channel (SPLIT-2) and double channel (INDEP-SPLIT), with the
//! low-power rank-localization enabled for the SDIMM designs (paper:
//! SPLIT-2 and INDEP-SPLIT improve energy ~2.4x / ~2.5x over
//! Freecursive).

use sdimm_bench::{table, Scale, TelemetryArgs};
use sdimm_system::machine::{MachineKind, SystemConfig};
use workloads::spec;

fn main() {
    let telemetry = TelemetryArgs::from_env("fig10");
    let instruments = telemetry.instruments();
    let _live = sdimm_bench::LiveView::spawn(instruments.live.clone());
    let scale = Scale::from_env();
    let mut all_cells = Vec::new();

    let single = [
        MachineKind::NonSecure { channels: 1 },
        MachineKind::Freecursive { channels: 1 },
        MachineKind::Split { ways: 2, channels: 1 },
    ];
    let double = [
        MachineKind::NonSecure { channels: 2 },
        MachineKind::Freecursive { channels: 2 },
        MachineKind::IndepSplit { groups: 2, ways: 2, channels: 2 },
    ];

    for (label, kinds, base) in [
        ("single channel", &single[..], "NONSECURE-1ch"),
        ("double channel", &double[..], "NONSECURE-2ch"),
    ] {
        let cells = sdimm_bench::run_matrix_maybe_audited(
            &telemetry,
            &spec::ALL,
            kinds,
            scale,
            |kind| SystemConfig {
                low_power: !matches!(
                    kind,
                    MachineKind::NonSecure { .. } | MachineKind::Freecursive { .. }
                ),
                kind,
                oram: scale.oram(7),
                data_blocks: scale.data_blocks(),
                standard: telemetry.standard,
                seed: 1,
            },
            &instruments,
            all_cells.len() as u32,
        );
        table::print_normalized(
            &format!("Fig 10: memory energy overhead vs non-secure, {label}"),
            &cells,
            base,
            |c| c.result.energy_per_record_nj(),
        );
        all_cells.extend(cells);
    }
    let leakage_kinds: Vec<MachineKind> = single.iter().chain(&double).copied().collect();
    sdimm_bench::leakage::write_if_requested(&telemetry, &leakage_kinds, scale, &instruments);
    telemetry.write_outputs(&all_cells, &instruments);
}
