//! `golden_streams` — fingerprint the audited DDR command streams.
//!
//! Runs a small fixed workload through one machine of each protocol
//! family with command capture attached and prints an FNV-1a digest of
//! every channel's complete command stream plus the run's cycle count.
//! Two engine builds that print identical lines issued byte-identical
//! command streams — the hand-shake check for any scheduler or tick-loop
//! change (the differential auditor checks *legality*; this checks
//! *identity*).
//!
//! Usage: `cargo run --release -p sdimm-bench --bin golden_streams`

use sdimm_system::machine::{MachineKind, SystemConfig};
use sdimm_system::runner::run_audited;
use sdimm_telemetry::TraceSink;
use workloads::spec;

/// FNV-1a over the debug rendering of every command record.
fn digest(records: &[dram_sim::cmdlog::CmdRecord]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for r in records {
        for b in format!("{:?}|{}|{:?};", r.cycle, r.rank, r.cmd).bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn main() {
    let trace = spec::generate("milc-like", 1200, 3);
    let kinds: [(&str, MachineKind); 4] = [
        ("nonsecure-1ch", MachineKind::NonSecure { channels: 1 }),
        ("freecursive-1ch", MachineKind::Freecursive { channels: 1 }),
        ("indep-2", MachineKind::Independent { sdimms: 2, channels: 1 }),
        ("split-2", MachineKind::Split { ways: 2, channels: 1 }),
    ];
    for (name, kind) in kinds {
        let cfg = SystemConfig::small(kind);
        let (result, capture) = run_audited(&cfg, &trace, 200, 400, TraceSink::disabled(), 0);
        let cmds: usize = capture.streams.iter().map(Vec::len).sum();
        print!("{name:18} cycles={:<9} cmds={cmds:<7}", result.cycles);
        for (i, s) in capture.streams.iter().enumerate() {
            print!(" ch{i}={:016x}", digest(s));
        }
        println!();
    }
}
