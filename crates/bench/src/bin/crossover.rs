//! `crossover` — secure-protocol slowdown vs memory standard
//! (DESIGN.md §12, EXPERIMENTS.md "Protocol crossover").
//!
//! Sweeps the four headline standards (DDR3-1600, DDR4-2400,
//! LPDDR4-3200, HBM2) over a fixed protocol set (non-secure baseline,
//! Freecursive, Independent×2, Split×2) and a three-workload subset
//! ([`wl::CROSSOVER`]), then reports each protocol's geomean slowdown
//! vs the non-secure baseline *on the same standard*. The question the
//! figure answers: do the paper's protocol rankings survive a change of
//! memory standard, or do bank-group penalties and burst shape move the
//! Independent/Split crossover point?
//!
//! The sweep itself is fixed — the shared `--standard` flag is accepted
//! (it parameterizes the optional `--leakage` side run) but does not
//! narrow the sweep. All other telemetry flags behave as in the other
//! figure binaries; `--audit` replays every command stream through the
//! per-standard differential auditor.
//!
//! Writes `BENCH_crossover.json` into the invoking directory. The
//! report carries provenance plus cycle-derived values only (no wall
//! clock), so two back-to-back runs on one checkout are byte-identical
//! — check.sh verifies exactly that.

use dram_sim::spec::DramStandard;
use sdimm_bench::provenance::Provenance;
use sdimm_bench::{harness, table, Scale, TelemetryArgs};
use sdimm_system::machine::{MachineKind, SystemConfig};
use sdimm_telemetry::recorder::write_atomic;
use workloads::spec as wl;

/// Report written into the invoking directory, following the
/// `BENCH_crypto.json` / `BENCH_sim.json` naming convention.
const REPORT_PATH: &str = "BENCH_crossover.json";

/// The standards the figure sweeps, in presentation order. DDR3-800 is
/// deliberately absent: it shares DDR3-1600's constraint structure and
/// adds no crossover information.
const STANDARDS: [DramStandard; 4] = [
    DramStandard::Ddr3_1600,
    DramStandard::Ddr4_2400,
    DramStandard::Lpddr4_3200,
    DramStandard::Hbm2,
];

/// The protocol set, baseline first (slowdowns normalize against index
/// 0). Single-channel keeps the quick sweep affordable; the crossover
/// is about per-channel timing structure, not channel count.
fn kinds() -> [MachineKind; 4] {
    [
        MachineKind::NonSecure { channels: 1 },
        MachineKind::Freecursive { channels: 1 },
        MachineKind::Independent { sdimms: 2, channels: 1 },
        MachineKind::Split { ways: 2, channels: 1 },
    ]
}

/// One standard's column: per-machine geomean cycles-per-record and the
/// slowdown vs the non-secure baseline on that same standard.
struct Column {
    standard: DramStandard,
    /// `(machine name, geomean cycles/record, slowdown)` in [`kinds`] order.
    rows: Vec<(String, f64, f64)>,
}

fn main() {
    let telemetry = TelemetryArgs::from_env("crossover");
    let instruments = telemetry.instruments();
    let _live = sdimm_bench::LiveView::spawn(instruments.live.clone());
    let scale = Scale::from_env();
    let kinds = kinds();

    let mut all_cells = Vec::new();
    let mut columns = Vec::new();
    for standard in STANDARDS {
        let cells = sdimm_bench::run_matrix_maybe_audited(
            &telemetry,
            &wl::CROSSOVER,
            &kinds,
            scale,
            |kind| SystemConfig {
                kind,
                oram: scale.oram(7),
                data_blocks: scale.data_blocks(),
                standard,
                low_power: false,
                seed: 1,
            },
            &instruments,
            all_cells.len() as u32,
        );
        table::print_normalized(
            &format!("Crossover: slowdown vs non-secure on {}", standard.name()),
            &cells,
            &kinds[0].name(),
            |c| c.result.cycles_per_record(),
        );
        let rows: Vec<(String, f64)> = kinds
            .iter()
            .map(|k| {
                let name = k.name();
                let vals: Vec<f64> = cells
                    .iter()
                    .filter(|c| c.machine == name)
                    .map(|c| c.result.cycles_per_record())
                    .collect();
                (name, harness::geomean(&vals))
            })
            .collect();
        let base = rows[0].1;
        columns.push(Column {
            standard,
            rows: rows.into_iter().map(|(n, v)| (n, v, v / base)).collect(),
        });
        all_cells.extend(cells);
    }

    print_crossover_table(&kinds, &columns);

    let scale_name = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let prov = Provenance::new(scale_name, "nonsecure,freecursive,indep2,split2");
    let report = to_json(&prov, &columns);
    if let Err(e) = write_atomic(REPORT_PATH, &report) {
        eprintln!("failed to write crossover report to {REPORT_PATH}: {e}");
        // Sanctioned exit: losing the figure's report must fail the run.
        #[allow(clippy::disallowed_methods)]
        std::process::exit(1);
    }
    println!("\ncrossover report written to {REPORT_PATH}");

    sdimm_bench::leakage::write_if_requested(&telemetry, &kinds, scale, &instruments);
    telemetry.write_outputs(&all_cells, &instruments);
}

/// The machine × standard summary table: one slowdown per cell, so the
/// crossover (which secure protocol wins where) is readable at a glance.
fn print_crossover_table(kinds: &[MachineKind], columns: &[Column]) {
    println!("\nProtocol crossover: geomean slowdown vs non-secure, per memory standard");
    print!("  {:<16}", "machine");
    for col in columns {
        print!("{:>13}", col.standard.name());
    }
    println!();
    for (ki, kind) in kinds.iter().enumerate() {
        print!("  {:<16}", kind.name());
        for col in columns {
            print!("{:>12.2}x", col.rows[ki].2);
        }
        println!();
    }
}

/// Serializes the report: provenance, the workload subset, then one
/// entry per standard with per-machine geomean cycles/record and
/// slowdown. Cycle-derived values only — byte-stable across runs.
fn to_json(prov: &Provenance, columns: &[Column]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"provenance\": {},\n", prov.to_json_object()));
    s.push_str(&format!("  \"workloads\": \"{}\",\n", wl::CROSSOVER.join(",")));
    s.push_str("  \"standards\": [\n");
    for (ci, col) in columns.iter().enumerate() {
        let outer_sep = if ci + 1 == columns.len() { "" } else { "," };
        s.push_str(&format!("    {{\"standard\": \"{}\", \"machines\": [\n", col.standard.name()));
        for (ri, (name, cpr, slowdown)) in col.rows.iter().enumerate() {
            let sep = if ri + 1 == col.rows.len() { "" } else { "," };
            s.push_str(&format!(
                "      {{\"machine\": \"{name}\", \"geomean_cycles_per_record\": {cpr:.4}, \
                 \"slowdown_vs_nonsecure\": {slowdown:.4}}}{sep}\n"
            ));
        }
        s.push_str(&format!("    ]}}{outer_sep}\n"));
    }
    s.push_str("  ]\n}\n");
    s
}
