//! Scratch diagnostic: where does figure wall-clock go — protocol
//! planning (ORAM data structures + crypto) or the cycle-level engine?

// Wall-clock probe: `Instant` is the measurement.
#![allow(clippy::disallowed_methods)]

use dram_sim::spec::DramStandard;
use std::time::Instant;

use dram_sim::channel::DramChannel;
use sdimm_system::machine::{Machine, MachineKind, SystemConfig};
use sdimm_system::runner::run;
use workloads::spec;

fn main() {
    let scale = sdimm_bench::Scale::from_env();
    let trace = spec::generate("milc-like", scale.trace_len(), 42);
    let kind = MachineKind::Freecursive { channels: 1 };
    let cfg = SystemConfig {
        kind,
        oram: scale.oram(7),
        data_blocks: scale.data_blocks(),
        standard: DramStandard::default(),
        low_power: false,
        seed: 1,
    };

    // Full run.
    let t0 = Instant::now();
    let r = run(&cfg, &trace, scale.warmup(), scale.measure());
    let full = t0.elapsed();
    println!(
        "full run:       {:>8.1} ms  ({} cycles, {} dram lines, {} sched invocations)",
        full.as_secs_f64() * 1e3,
        r.cycles,
        r.dram_lines,
        r.metrics.counter("dram.chan0.scheduler_invocations"),
    );

    // Planning only: same records through the ORAM backends, no executor.
    let mut m = Machine::new(cfg.clone());
    let records = &trace.records[scale.warmup()..scale.warmup() + scale.measure()];
    let t1 = Instant::now();
    let mut lines = 0u64;
    for rec in records {
        for t in m.request_traces(rec.addr, rec.is_write) {
            lines += t.dram_lines();
        }
    }
    let plan = t1.elapsed();
    println!("planning only:  {:>8.1} ms  ({lines} dram lines)", plan.as_secs_f64() * 1e3);

    // Raw channel: stream the same number of lines through one channel.
    let mut ch = DramChannel::new(kind.channel_config());
    let t2 = Instant::now();
    let mut issued = 0u64;
    let mut addr = 0u64;
    let mut done = 0u64;
    while done < lines {
        while issued < lines && issued - done < 48 {
            // Path-like access pattern: strided rows.
            if ch.enqueue_read(addr).is_none() {
                break;
            }
            addr = addr.wrapping_add(64 * 1031) % (1u64 << 30);
            issued += 1;
        }
        ch.tick(16);
        done += ch.drain_completions().len() as u64;
    }
    let raw = t2.elapsed();
    println!(
        "raw channel:    {:>8.1} ms  ({} cycles, {} sched invocations)",
        raw.as_secs_f64() * 1e3,
        ch.now(),
        ch.stats().scheduler_invocations
    );
}
