//! Experiment X1 (IV-B): off-DIMM accesses as a fraction of baseline
//! ORAM traffic (paper: INDEP-2 4.2%, INDEP-4 7.8%, SPLIT 12%, and
//! <3.2% without ORAM caching), cross-checked two ways: the analytic
//! message-count model and the cycle-level simulation's bus counters.

use sdimm_analytic::bandwidth::{self, TrafficParams};
use sdimm_bench::{Scale, TelemetryArgs};
use sdimm_system::machine::{MachineKind, SystemConfig};

fn main() {
    let telemetry = TelemetryArgs::from_env("offdimm");
    let instruments = telemetry.instruments();
    let _live = sdimm_bench::LiveView::spawn(instruments.live.clone());
    let scale = Scale::from_env();

    println!("== X1 (analytic): off-DIMM traffic as fraction of baseline ==");
    for (label, levels_in_memory) in [("with 7-level ORAM cache", 21u64), ("no ORAM cache", 28)] {
        for sdimms in [2u64, 4] {
            let p = TrafficParams { z: 4, levels_in_memory, sdimms, probes_per_access: 2 };
            println!(
                "INDEP-{sdimms} ({label}): {:.1}%  |  SPLIT ({label}): {:.1}%",
                100.0 * bandwidth::independent_fraction(&p),
                100.0 * bandwidth::split_fraction(&p),
            );
        }
    }

    println!("\n== X1 (measured): external bus line-equivalents / baseline DRAM lines ==");
    let wl = ["milc-like", "gromacs-like", "GemsFDTD-like"];
    let kinds = [
        MachineKind::Freecursive { channels: 1 },
        MachineKind::Independent { sdimms: 2, channels: 1 },
        MachineKind::Split { ways: 2, channels: 1 },
    ];
    let cells = sdimm_bench::run_matrix_maybe_audited(
        &telemetry,
        &wl,
        &kinds,
        scale,
        |kind| SystemConfig {
            kind,
            oram: scale.oram(7),
            data_blocks: scale.data_blocks(),
            standard: telemetry.standard,
            low_power: false,
            seed: 1,
        },
        &instruments,
        0,
    );
    for w in wl {
        let base = cells
            .iter()
            .find(|c| c.workload == w && c.machine.starts_with("FREECURSIVE"))
            .map(|c| c.result.dram_lines as f64)
            .unwrap_or(1.0);
        for c in cells.iter().filter(|c| c.workload == w && !c.machine.starts_with("FREECURSIVE")) {
            let ext = c.result.external_bus_bytes as f64 / 64.0;
            println!(
                "{w:<16} {:<10}: {:.1}% of baseline off-chip lines",
                c.machine,
                100.0 * ext / base
            );
        }
    }
    sdimm_bench::leakage::write_if_requested(&telemetry, &kinds, scale, &instruments);
    telemetry.write_outputs(&cells, &instruments);
}
