//! Stash-occupancy study: Path ORAM's stash stays small for Z >= 4 (the
//! premise the paper inherits from prior work), and background eviction
//! caps the tail. Prints occupancy percentiles per Z, straight from the
//! occupancy histogram the ORAM's telemetry already maintains.

use oram::types::{BlockId, Op, OramConfig};
use oram::PathOram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn study(z: usize, background_evict: bool, accesses: usize) -> (u64, u64, usize, u64) {
    let cfg = OramConfig { levels: 14, z, stash_limit: 200, ..OramConfig::default() };
    let blocks = cfg.block_capacity() / 4;
    let mut oram = PathOram::new(cfg, blocks, 99);
    let mut rng = StdRng::seed_from_u64(11);
    let mut evictions = 0u64;
    for _ in 0..accesses {
        let id = BlockId(rng.gen_range(0..blocks));
        if rng.gen_bool(0.5) {
            oram.access(id, Op::Write, Some(&[1u8; 8]));
        } else {
            oram.access(id, Op::Read, None);
        }
        if background_evict && oram.needs_background_evict() {
            oram.background_evict();
            evictions += 1;
        }
    }
    let hist = oram.stash_occupancy_hist();
    (hist.percentile(0.5), hist.percentile(0.99), oram.stash_peak(), evictions)
}

fn main() {
    let accesses = match sdimm_bench::Scale::from_env() {
        sdimm_bench::Scale::Quick => 20_000,
        sdimm_bench::Scale::Full => 200_000,
    };
    println!("== Stash occupancy, L14 tree at 25% utilization, {accesses} accesses ==");
    println!(
        "{:>3} {:>10} {:>8} {:>8} {:>8} {:>12}",
        "Z", "bg-evict", "p50", "p99", "peak", "evictions"
    );
    for z in [2usize, 3, 4, 5, 6] {
        for bg in [false, true] {
            let (p50, p99, peak, ev) = study(z, bg, accesses);
            println!("{z:>3} {bg:>10} {p50:>8} {p99:>8} {peak:>8} {ev:>12}");
        }
    }
    println!("\nExpected shape: Z >= 4 keeps the stash tiny (the paper's ~200-entry");
    println!("budget is never approached); Z = 2 needs background eviction to stay");
    println!("bounded, mirroring the Z >= 4 requirement cited in section IV-C.");
}
