//! `hammer_report` — the reliability observatory's figure bin
//! (DESIGN.md §15).
//!
//! Runs the protocol × standard × adversary matrix with the per-row
//! wear tracker enabled, prints the RowHammer verdict table, writes the
//! byte-stable `BENCH_hammer.json`, and exits nonzero when any cell's
//! engine wear counts disagree with the replay auditor's independent
//! activation recount from the command log.
//!
//! ```text
//! hammer_report [--report <path>] [--trace <path>]
//! ```
//!
//! `--report` defaults to `target/BENCH_hammer.json`. `--trace` writes
//! a Chrome-trace annotation of the verdicts and hottest rows. Scale
//! follows `SDIMM_BENCH_SCALE` (`quick` default). Fully deterministic:
//! two back-to-back runs produce byte-identical reports (check.sh
//! verifies exactly that).

use sdimm_bench::{hammer, Scale};
use sdimm_telemetry::recorder::write_atomic;
use sdimm_telemetry::TraceSink;

fn main() {
    let mut report_path = "target/BENCH_hammer.json".to_string();
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--report" => {
                report_path = args.next().unwrap_or_else(|| {
                    eprintln!("hammer_report: --report requires a path argument");
                    // Sanctioned exit: CLI usage error in a binary entry path.
                    #[allow(clippy::disallowed_methods)]
                    std::process::exit(2);
                });
            }
            "--trace" => {
                trace_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("hammer_report: --trace requires a path argument");
                    // Sanctioned exit: CLI usage error in a binary entry path.
                    #[allow(clippy::disallowed_methods)]
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "hammer_report: unknown argument `{other}`\n\
                     usage: hammer_report [--report <path>] [--trace <path>]"
                );
                // Sanctioned exit: CLI usage error in a binary entry path.
                #[allow(clippy::disallowed_methods)]
                std::process::exit(2);
            }
        }
    }

    let scale = Scale::from_env();
    let report = hammer::run_report(&hammer::gate_points(), &hammer::gate_workloads(), scale);
    report.print_table();

    if let Err(e) = write_atomic(&report_path, &report.to_json()) {
        eprintln!("failed to write hammer report to {report_path}: {e}");
        // Sanctioned exit: losing the report must fail the run.
        #[allow(clippy::disallowed_methods)]
        std::process::exit(1);
    }
    println!("hammer report written to {report_path}");

    if let Some(path) = trace_path {
        let sink = TraceSink::enabled();
        report.annotate(&sink, 9_100);
        match sink.export_chrome_json() {
            Some(json) => {
                if let Err(e) = write_atomic(&path, &json) {
                    eprintln!("failed to write hammer trace to {path}: {e}");
                    // Sanctioned exit: losing a requested output must fail.
                    #[allow(clippy::disallowed_methods)]
                    std::process::exit(1);
                }
                println!("hammer annotation trace written to {path}");
            }
            None => eprintln!("hammer_report: trace sink produced no export"),
        }
    }

    if !report.audit_pass() {
        eprintln!("hammer_report: FAIL — engine wear counts diverge from the replay recount");
        // Sanctioned exit: the gate's purpose is a nonzero exit when
        // the observatory's numbers cannot be independently reproduced.
        #[allow(clippy::disallowed_methods)]
        std::process::exit(1);
    }
    println!("hammer_report: PASS");
}
