//! Scratch diagnostic: full-scale single-cell cycle counts, for
//! verifying engine changes keep full-scale runs byte-identical.

use dram_sim::spec::DramStandard;
use sdimm_bench::Scale;
use sdimm_system::machine::{MachineKind, SystemConfig};
use sdimm_system::runner::run;
use workloads::spec;

fn main() {
    let scale = Scale::Full;
    let wl = std::env::args().nth(1).unwrap_or_else(|| "libquantum-like".into());
    let wi = spec::ALL.iter().position(|w| *w == wl).unwrap_or(0);
    let trace = spec::generate(&wl, scale.trace_len(), 42 + wi as u64);
    for kind in [MachineKind::NonSecure { channels: 1 }, MachineKind::Freecursive { channels: 1 }] {
        let cfg = SystemConfig {
            kind,
            oram: scale.oram(7),
            data_blocks: scale.data_blocks(),
            standard: DramStandard::default(),
            low_power: false,
            seed: 1,
        };
        let r = run(&cfg, &trace, scale.warmup(), scale.measure());
        println!(
            "{:14} {:22} cycles={:<12} misses={:<10} lat_mean={:.4}",
            wl, r.machine, r.cycles, r.llc_misses, r.mean_miss_latency,
        );
    }
}
