//! `telemetry_overhead` — the no-op telemetry overhead gate.
//!
//! The telemetry layer promises that a disabled [`TraceSink`] costs one
//! branch per touchpoint, keeping instrumented simulation within 2% of
//! un-instrumented speed. This binary checks that promise empirically:
//!
//! 1. measures the per-call wall cost of a disabled sink (span + instant
//!    + counter, the three call shapes the hot paths use),
//! 2. runs a quick-scale fig6-style Freecursive window with an *enabled*
//!    sink to count how many touchpoints one run actually hits,
//! 3. times the same window with telemetry disabled (best of three),
//!
//! then projects `touchpoints x per-call-cost` against the run's wall
//! time and exits nonzero above [`MAX_OVERHEAD_PCT`]. The projection is
//! conservative: enabled-sink event counts include call sites that the
//! disabled path short-circuits before any argument formatting.

// Wall-clock overhead gate: `Instant` is the measurement, and a blown budget exits nonzero.
#![allow(clippy::disallowed_methods)]

use std::hint::black_box;
use std::time::Instant;

use sdimm_system::machine::{MachineKind, SystemConfig};
use sdimm_system::runner::{run, run_traced};
use sdimm_telemetry::TraceSink;
use workloads::spec as wl;

/// Gate: projected disabled-sink cost must stay under this share of the
/// quick-scale fig6 wall time.
const MAX_OVERHEAD_PCT: f64 = 2.0;

/// Calls per shape when timing the disabled sink. Large enough that the
/// loop dwarfs `Instant` overhead; small enough to finish in well under
/// a second.
const CALLS: u64 = 10_000_000;

fn disabled_ns_per_call() -> f64 {
    let sink = TraceSink::disabled();
    let start = Instant::now();
    for i in 0..CALLS {
        sink.span("bench", "noop", 0, 0, black_box(i), black_box(i + 1));
        sink.instant("bench", "noop", 0, 0, black_box(i));
        sink.counter("bench", "noop", 0, black_box(i), black_box(i));
    }
    start.elapsed().as_nanos() as f64 / (CALLS * 3) as f64
}

fn main() {
    let warmup = 300usize;
    let window = 500usize;
    let trace = wl::generate("mcf-like", warmup + window + 16, 42);
    let cfg = SystemConfig::small(MachineKind::Freecursive { channels: 1 });

    let per_call_ns = disabled_ns_per_call();

    // Touchpoint census: every event an enabled sink captures is one
    // call the disabled path would have branched through.
    let census = TraceSink::with_capacity(1 << 22);
    run_traced(&cfg, &trace, warmup, window, census.clone(), 0);
    let touchpoints = census.len() as u64 + census.dropped();

    let mut best_wall_ns = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        black_box(run(&cfg, &trace, warmup, window));
        best_wall_ns = best_wall_ns.min(start.elapsed().as_nanos() as f64);
    }

    let projected_ns = touchpoints as f64 * per_call_ns;
    let pct = projected_ns / best_wall_ns * 100.0;

    println!("telemetry_overhead: disabled-sink cost projection, quick-scale fig6 window");
    println!("  disabled sink       {per_call_ns:.3} ns/call");
    println!("  touchpoints per run {touchpoints}");
    println!("  run wall time       {:.3} ms (best of 3)", best_wall_ns / 1e6);
    println!("  projected overhead  {:.4}% (budget {MAX_OVERHEAD_PCT}%)", pct);

    if pct > MAX_OVERHEAD_PCT {
        eprintln!(
            "telemetry_overhead: disabled telemetry projects to {pct:.2}% of run time, \
             above the {MAX_OVERHEAD_PCT}% budget"
        );
        std::process::exit(1);
    }
    println!("  OK");
}
