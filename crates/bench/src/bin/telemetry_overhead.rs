//! `telemetry_overhead` — the telemetry overhead gate.
//!
//! The telemetry layer makes two promises this binary checks
//! empirically against a quick-scale fig6-style Freecursive window:
//!
//! * a **disabled** [`TraceSink`] costs one branch per touchpoint,
//!   keeping instrumented simulation within 2% of un-instrumented
//!   speed, and
//! * an **enabled** flight recorder (the always-on black-box ring) is
//!   cheap enough to leave armed on long runs: under 5% of run time.
//!
//! Method, for each promise:
//!
//! 1. measure the per-call wall cost of the primitive (disabled-sink
//!    span/instant/counter calls; enabled-recorder `record_at` pushes
//!    into a full ring, which is the steady state of a bounded ring),
//! 2. count how many touchpoints one run actually hits (enabled-sink
//!    event census; flight-recorder ring length + dropped count),
//! 3. time the same window un-instrumented (best of three),
//!
//! then project `touchpoints x per-call-cost` against the run's wall
//! time and exit nonzero above the budget. The projection is
//! conservative: enabled-sink event counts include call sites that the
//! disabled path short-circuits before any argument formatting.
//!
//! Both gate numbers are also written as JSON (atomic write) when
//! `--json <path>` is given, so CI can archive the trend.

// Wall-clock overhead gate: `Instant` is the measurement, and a blown budget exits nonzero.
#![allow(clippy::disallowed_methods)]

use std::hint::black_box;
use std::time::Instant;

use sdimm_system::machine::{MachineKind, SystemConfig};
use sdimm_system::runner::{run, run_instrumented, run_traced};
use sdimm_telemetry::recorder::write_atomic;
use sdimm_telemetry::{FlightEventKind, FlightRecorder, FlightRecorderHub, Instruments, TraceSink};
use workloads::spec as wl;

/// Gate: projected disabled-sink cost must stay under this share of the
/// quick-scale fig6 wall time.
const MAX_OVERHEAD_PCT: f64 = 2.0;

/// Gate: projected cost of an *enabled* flight recorder must stay under
/// this share of the same run's wall time.
const MAX_RECORDER_OVERHEAD_PCT: f64 = 5.0;

/// Calls per shape when timing the disabled sink. Large enough that the
/// loop dwarfs `Instant` overhead; small enough to finish in well under
/// a second.
const CALLS: u64 = 10_000_000;

/// Events pushed when timing the enabled recorder ring (the ring wraps
/// many times over, so this times the steady wrapped state).
const RECORDER_CALLS: u64 = 2_000_000;

fn disabled_ns_per_call() -> f64 {
    let sink = TraceSink::disabled();
    let start = Instant::now();
    for i in 0..CALLS {
        sink.span("bench", "noop", 0, 0, black_box(i), black_box(i + 1));
        sink.instant("bench", "noop", 0, 0, black_box(i));
        sink.counter("bench", "noop", 0, black_box(i), black_box(i));
    }
    start.elapsed().as_nanos() as f64 / (CALLS * 3) as f64
}

fn recorder_ns_per_event() -> f64 {
    let recorder = FlightRecorder::enabled();
    let start = Instant::now();
    for i in 0..RECORDER_CALLS {
        recorder.record_at(
            black_box(i),
            FlightEventKind::StashTick { backend: 0, occupancy: black_box(i as u32) },
        );
    }
    start.elapsed().as_nanos() as f64 / RECORDER_CALLS as f64
}

fn main() {
    let json_path = {
        let mut args = std::env::args().skip(1);
        match (args.next().as_deref(), args.next()) {
            (None, _) => None,
            (Some("--json"), Some(path)) => Some(path),
            _ => {
                eprintln!("usage: telemetry_overhead [--json <path>]");
                std::process::exit(2);
            }
        }
    };

    let warmup = 300usize;
    let window = 500usize;
    let trace = wl::generate("mcf-like", warmup + window + 16, 42);
    let cfg = SystemConfig::small(MachineKind::Freecursive { channels: 1 });

    let per_call_ns = disabled_ns_per_call();
    let per_event_ns = recorder_ns_per_event();

    // Touchpoint census: every event an enabled sink captures is one
    // call the disabled path would have branched through.
    let census = TraceSink::with_capacity(1 << 22);
    run_traced(&cfg, &trace, warmup, window, census.clone(), 0);
    let touchpoints = census.len() as u64 + census.dropped();

    // Flight-recorder census: events the armed ring absorbs in one run
    // (ring length after the run plus everything that wrapped past).
    let hub = FlightRecorderHub::enabled("/tmp/telemetry-overhead-flight", 4096);
    let flight_instruments = Instruments { flight: hub.clone(), ..Instruments::disabled() };
    run_instrumented(&cfg, &trace, warmup, window, &flight_instruments, 0);
    let flight_recorder = hub.recorder_for(0);
    let flight_events = flight_recorder.len() as u64 + flight_recorder.dropped();

    let mut best_wall_ns = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        black_box(run(&cfg, &trace, warmup, window));
        best_wall_ns = best_wall_ns.min(start.elapsed().as_nanos() as f64);
    }

    let projected_ns = touchpoints as f64 * per_call_ns;
    let pct = projected_ns / best_wall_ns * 100.0;
    let recorder_projected_ns = flight_events as f64 * per_event_ns;
    let recorder_pct = recorder_projected_ns / best_wall_ns * 100.0;

    println!("telemetry_overhead: telemetry cost projections, quick-scale fig6 window");
    println!("  disabled sink       {per_call_ns:.3} ns/call");
    println!("  touchpoints per run {touchpoints}");
    println!("  enabled recorder    {per_event_ns:.3} ns/event");
    println!("  flight events/run   {flight_events}");
    println!("  run wall time       {:.3} ms (best of 3)", best_wall_ns / 1e6);
    println!("  disabled overhead   {pct:.4}% (budget {MAX_OVERHEAD_PCT}%)");
    println!("  recorder overhead   {recorder_pct:.4}% (budget {MAX_RECORDER_OVERHEAD_PCT}%)");

    if let Some(path) = &json_path {
        let json = format!(
            "{{\n  \"disabled_ns_per_call\": {per_call_ns:.4},\n  \"touchpoints\": {touchpoints},\n  \
             \"disabled_overhead_pct\": {pct:.5},\n  \"disabled_budget_pct\": {MAX_OVERHEAD_PCT},\n  \
             \"recorder_ns_per_event\": {per_event_ns:.4},\n  \"flight_events\": {flight_events},\n  \
             \"recorder_overhead_pct\": {recorder_pct:.5},\n  \"recorder_budget_pct\": {MAX_RECORDER_OVERHEAD_PCT},\n  \
             \"wall_ms_best_of_3\": {:.4}\n}}\n",
            best_wall_ns / 1e6
        );
        if let Err(e) = write_atomic(path, &json) {
            eprintln!("telemetry_overhead: failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("  gate numbers written to {path}");
    }

    let mut failed = false;
    if pct > MAX_OVERHEAD_PCT {
        eprintln!(
            "telemetry_overhead: disabled telemetry projects to {pct:.2}% of run time, \
             above the {MAX_OVERHEAD_PCT}% budget"
        );
        failed = true;
    }
    if recorder_pct > MAX_RECORDER_OVERHEAD_PCT {
        eprintln!(
            "telemetry_overhead: enabled flight recorder projects to {recorder_pct:.2}% of run \
             time, above the {MAX_RECORDER_OVERHEAD_PCT}% budget"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("  OK");
}
