//! `telemetry_overhead` — the telemetry overhead gate.
//!
//! The telemetry layer makes two promises this binary checks
//! empirically against a quick-scale fig6-style Freecursive window:
//!
//! * a **disabled** [`TraceSink`] costs one branch per touchpoint,
//!   keeping instrumented simulation within 2% of un-instrumented
//!   speed, and
//! * an **enabled** flight recorder (the always-on black-box ring) is
//!   cheap enough to leave armed on long runs: under 5% of run time.
//!
//! Method, for each promise:
//!
//! 1. measure the per-call wall cost of the primitive (disabled-sink
//!    span/instant/counter calls; enabled-recorder `record_at` pushes
//!    into a full ring, which is the steady state of a bounded ring),
//! 2. count how many touchpoints one run actually hits (enabled-sink
//!    event census; flight-recorder ring length + dropped count),
//! 3. time the same window un-instrumented (best of three),
//!
//! then project `touchpoints x per-call-cost` against the run's wall
//! time and exit nonzero above the budget. The projection is
//! conservative: enabled-sink event counts include call sites that the
//! disabled path short-circuits before any argument formatting.
//!
//! Both gate numbers are also written as JSON (atomic write) when
//! `--json <path>` is given, so CI can archive the trend.

// Wall-clock overhead gate: `Instant` is the measurement, and a blown budget exits nonzero.
#![allow(clippy::disallowed_methods)]

use std::hint::black_box;
use std::time::Instant;

use dram_sim::wear::{RowPressure, WearConfig};
use sdimm_system::machine::{MachineKind, SystemConfig};
use sdimm_system::runner::{run, run_hammer, run_instrumented, run_traced};
use sdimm_telemetry::recorder::write_atomic;
use sdimm_telemetry::{FlightEventKind, FlightRecorder, FlightRecorderHub, Instruments, TraceSink};
use workloads::spec as wl;

/// Gate: projected disabled-sink cost must stay under this share of the
/// quick-scale fig6 wall time.
const MAX_OVERHEAD_PCT: f64 = 2.0;

/// Gate: projected cost of an *enabled* flight recorder must stay under
/// this share of the same run's wall time.
const MAX_RECORDER_OVERHEAD_PCT: f64 = 5.0;

/// Calls per shape when timing the disabled sink. Large enough that the
/// loop dwarfs `Instant` overhead; small enough to finish in well under
/// a second.
const CALLS: u64 = 10_000_000;

/// Events pushed when timing the enabled recorder ring (the ring wraps
/// many times over, so this times the steady wrapped state).
const RECORDER_CALLS: u64 = 2_000_000;

fn disabled_ns_per_call() -> f64 {
    let sink = TraceSink::disabled();
    let start = Instant::now();
    for i in 0..CALLS {
        sink.span("bench", "noop", 0, 0, black_box(i), black_box(i + 1));
        sink.instant("bench", "noop", 0, 0, black_box(i));
        sink.counter("bench", "noop", 0, black_box(i), black_box(i));
    }
    start.elapsed().as_nanos() as f64 / (CALLS * 3) as f64
}

/// Events pushed when timing the wear tracker's hot paths (enough that
/// the maps reach their steady size and hash cost dominates setup).
const WEAR_CALLS: u64 = 2_000_000;

/// Per-touch cost of the *detached* wear tracker: the `Option` branch
/// every ACT/WR/REF hook takes when `enable_wear` was never called.
fn wear_disabled_ns_per_touch() -> f64 {
    let mut wear: Option<Box<RowPressure>> = black_box(None);
    let start = Instant::now();
    for i in 0..CALLS {
        if let Some(w) = wear.as_deref_mut() {
            w.on_act(0, 0, black_box(i as usize) & 0x3FFF);
        }
        black_box(&wear);
    }
    start.elapsed().as_nanos() as f64 / CALLS as f64
}

/// Per-event cost of an *enabled* tracker absorbing a realistic mix of
/// ACTs and write CAS. The working set (a few thousand distinct rows,
/// like an ORAM tree footprint) is touched once untimed so the timed
/// pass measures steady-state map updates, not first-touch insertion
/// and rehashing — the state a long run spends all its time in.
fn wear_enabled_ns_per_event() -> f64 {
    let mut w = RowPressure::new(WearConfig {
        ranks: 2,
        banks: 8,
        rows: 1 << 12,
        row_granularity: 1,
        rows_per_refresh: 4,
        hammer_threshold: u64::MAX,
    });
    let pass = |w: &mut RowPressure| {
        for i in 0..WEAR_CALLS {
            // Weyl-sequence row spread: deterministic, hash-unfriendly.
            let x = (i.wrapping_mul(0x9E37_79B9)) as usize;
            let (rank, bank, row) = (x & 1, (x >> 1) & 7, (x >> 4) & 0xFFF);
            w.on_act(rank, bank, black_box(row));
            if i & 1 == 0 {
                w.on_write(rank, bank, black_box(row));
            }
            if i & 0xFFF == 0 {
                w.on_refresh(rank);
            }
        }
    };
    pass(&mut w); // warm: populate every bucket and window the loop touches
    let start = Instant::now();
    pass(&mut w);
    let events = WEAR_CALLS + WEAR_CALLS / 2 + WEAR_CALLS / 4096;
    let ns = start.elapsed().as_nanos() as f64 / events as f64;
    black_box(w.snapshot());
    ns
}

fn recorder_ns_per_event() -> f64 {
    let recorder = FlightRecorder::enabled();
    let start = Instant::now();
    for i in 0..RECORDER_CALLS {
        recorder.record_at(
            black_box(i),
            FlightEventKind::StashTick { backend: 0, occupancy: black_box(i as u32) },
        );
    }
    start.elapsed().as_nanos() as f64 / RECORDER_CALLS as f64
}

fn main() {
    let json_path = {
        let mut args = std::env::args().skip(1);
        match (args.next().as_deref(), args.next()) {
            (None, _) => None,
            (Some("--json"), Some(path)) => Some(path),
            _ => {
                eprintln!("usage: telemetry_overhead [--json <path>]");
                std::process::exit(2);
            }
        }
    };

    let warmup = 300usize;
    let window = 500usize;
    let trace = wl::generate("mcf-like", warmup + window + 16, 42);
    let cfg = SystemConfig::small(MachineKind::Freecursive { channels: 1 });

    let per_call_ns = disabled_ns_per_call();
    let per_event_ns = recorder_ns_per_event();
    let wear_disabled_ns = wear_disabled_ns_per_touch();
    let wear_enabled_ns = wear_enabled_ns_per_event();

    // Touchpoint census: every event an enabled sink captures is one
    // call the disabled path would have branched through.
    let census = TraceSink::with_capacity(1 << 22);
    run_traced(&cfg, &trace, warmup, window, census.clone(), 0);
    let touchpoints = census.len() as u64 + census.dropped();

    // Flight-recorder census: events the armed ring absorbs in one run
    // (ring length after the run plus everything that wrapped past).
    let hub = FlightRecorderHub::enabled("/tmp/telemetry-overhead-flight", 4096);
    let flight_instruments = Instruments { flight: hub.clone(), ..Instruments::disabled() };
    run_instrumented(&cfg, &trace, warmup, window, &flight_instruments, 0);
    let flight_recorder = hub.recorder_for(0);
    let flight_events = flight_recorder.len() as u64 + flight_recorder.dropped();

    // Wear-touchpoint census: how many ACT/WR/REF hooks one run takes
    // (counted by the tracker itself on a wear-enabled twin run).
    let (wear_run, wear_cap) = run_hammer(&cfg, &trace, warmup, window, 1);
    let wear_touches: u64 =
        wear_cap.wear.iter().map(|s| s.total_acts + s.total_writes).sum::<u64>()
            + (0..wear_cap.wear.len())
                .map(|i| wear_run.metrics.counter(&format!("dram.chan{i}.refreshes")))
                .sum::<u64>();

    let mut best_wall_ns = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        black_box(run(&cfg, &trace, warmup, window));
        best_wall_ns = best_wall_ns.min(start.elapsed().as_nanos() as f64);
    }

    let projected_ns = touchpoints as f64 * per_call_ns;
    let pct = projected_ns / best_wall_ns * 100.0;
    let recorder_projected_ns = flight_events as f64 * per_event_ns;
    let recorder_pct = recorder_projected_ns / best_wall_ns * 100.0;
    let wear_disabled_pct = wear_touches as f64 * wear_disabled_ns / best_wall_ns * 100.0;
    let wear_enabled_pct = wear_touches as f64 * wear_enabled_ns / best_wall_ns * 100.0;

    println!("telemetry_overhead: telemetry cost projections, quick-scale fig6 window");
    println!("  disabled sink       {per_call_ns:.3} ns/call");
    println!("  touchpoints per run {touchpoints}");
    println!("  enabled recorder    {per_event_ns:.3} ns/event");
    println!("  flight events/run   {flight_events}");
    println!("  run wall time       {:.3} ms (best of 3)", best_wall_ns / 1e6);
    println!("  disabled overhead   {pct:.4}% (budget {MAX_OVERHEAD_PCT}%)");
    println!("  recorder overhead   {recorder_pct:.4}% (budget {MAX_RECORDER_OVERHEAD_PCT}%)");
    println!("  wear detached       {wear_disabled_ns:.3} ns/touch, {wear_touches} touches/run");
    println!("  wear enabled        {wear_enabled_ns:.3} ns/event");
    println!("  wear off overhead   {wear_disabled_pct:.4}% (budget {MAX_OVERHEAD_PCT}%)");
    println!("  wear on overhead    {wear_enabled_pct:.4}% (budget {MAX_RECORDER_OVERHEAD_PCT}%)");

    if let Some(path) = &json_path {
        let json = format!(
            "{{\n  \"disabled_ns_per_call\": {per_call_ns:.4},\n  \"touchpoints\": {touchpoints},\n  \
             \"disabled_overhead_pct\": {pct:.5},\n  \"disabled_budget_pct\": {MAX_OVERHEAD_PCT},\n  \
             \"recorder_ns_per_event\": {per_event_ns:.4},\n  \"flight_events\": {flight_events},\n  \
             \"recorder_overhead_pct\": {recorder_pct:.5},\n  \"recorder_budget_pct\": {MAX_RECORDER_OVERHEAD_PCT},\n  \
             \"wear_disabled_ns_per_touch\": {wear_disabled_ns:.4},\n  \"wear_enabled_ns_per_event\": {wear_enabled_ns:.4},\n  \
             \"wear_touches\": {wear_touches},\n  \"wear_disabled_overhead_pct\": {wear_disabled_pct:.5},\n  \
             \"wear_enabled_overhead_pct\": {wear_enabled_pct:.5},\n  \
             \"wall_ms_best_of_3\": {:.4}\n}}\n",
            best_wall_ns / 1e6
        );
        if let Err(e) = write_atomic(path, &json) {
            eprintln!("telemetry_overhead: failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("  gate numbers written to {path}");
    }

    let mut failed = false;
    if pct > MAX_OVERHEAD_PCT {
        eprintln!(
            "telemetry_overhead: disabled telemetry projects to {pct:.2}% of run time, \
             above the {MAX_OVERHEAD_PCT}% budget"
        );
        failed = true;
    }
    if recorder_pct > MAX_RECORDER_OVERHEAD_PCT {
        eprintln!(
            "telemetry_overhead: enabled flight recorder projects to {recorder_pct:.2}% of run \
             time, above the {MAX_RECORDER_OVERHEAD_PCT}% budget"
        );
        failed = true;
    }
    if wear_disabled_pct > MAX_OVERHEAD_PCT {
        eprintln!(
            "telemetry_overhead: detached wear tracker projects to {wear_disabled_pct:.2}% of \
             run time, above the {MAX_OVERHEAD_PCT}% budget"
        );
        failed = true;
    }
    if wear_enabled_pct > MAX_RECORDER_OVERHEAD_PCT {
        eprintln!(
            "telemetry_overhead: enabled wear tracker projects to {wear_enabled_pct:.2}% of run \
             time, above the {MAX_RECORDER_OVERHEAD_PCT}% budget"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("  OK");
}
