//! Fig 11: sensitivity of the best SDIMM designs to the number of ORAM
//! layers (Lx sweep; paper: improvements grow with layer count, 33-35%
//! single channel and 47-49% double channel).

use oram::types::OramConfig;
use sdimm_bench::{table, Scale, TelemetryArgs};
use sdimm_system::machine::{MachineKind, SystemConfig};

fn main() {
    let telemetry = TelemetryArgs::from_env("fig11");
    let instruments = telemetry.instruments();
    let _live = sdimm_bench::LiveView::spawn(instruments.live.clone());
    let mut all_cells = Vec::new();
    let scale = Scale::from_env();
    // A subset of workloads keeps the sweep fast while preserving the mix.
    let wl = ["mcf-like", "libquantum-like", "gromacs-like", "GemsFDTD-like"];
    let levels_sweep: &[u32] = match scale {
        Scale::Quick => &[14, 16, 18, 20],
        Scale::Full => &[16, 20, 24, 28],
    };

    for levels in levels_sweep {
        let oram = OramConfig { levels: *levels, cached_levels: 7, ..OramConfig::default() };
        // Smaller trees hold fewer blocks: keep utilization safe across
        // the sweep (distributed subtrees have half the capacity plus
        // imbalance headroom).
        let data_blocks = (1u64 << (levels - 4)).min(scale.data_blocks());
        let single =
            [MachineKind::Freecursive { channels: 1 }, MachineKind::Split { ways: 2, channels: 1 }];
        let cells = sdimm_bench::run_matrix_maybe_audited(
            &telemetry,
            &wl,
            &single,
            scale,
            |kind| SystemConfig {
                kind,
                oram: oram.clone(),
                data_blocks,
                standard: telemetry.standard,
                low_power: false,
                seed: 1,
            },
            &instruments,
            all_cells.len() as u32,
        );
        table::print_normalized(
            &format!("Fig 11 (1ch): SPLIT-2 vs Freecursive, L{levels}"),
            &cells,
            "FREECURSIVE-1ch",
            |c| c.result.cycles_per_record(),
        );
        all_cells.extend(cells);

        let double = [
            MachineKind::Freecursive { channels: 2 },
            MachineKind::IndepSplit { groups: 2, ways: 2, channels: 2 },
        ];
        let cells = sdimm_bench::run_matrix_maybe_audited(
            &telemetry,
            &wl,
            &double,
            scale,
            |kind| SystemConfig {
                kind,
                oram: oram.clone(),
                data_blocks,
                standard: telemetry.standard,
                low_power: false,
                seed: 1,
            },
            &instruments,
            all_cells.len() as u32,
        );
        table::print_normalized(
            &format!("Fig 11 (2ch): INDEP-SPLIT vs Freecursive, L{levels}"),
            &cells,
            "FREECURSIVE-2ch",
            |c| c.result.cycles_per_record(),
        );
        all_cells.extend(cells);
    }
    let leakage_kinds = [
        MachineKind::Freecursive { channels: 1 },
        MachineKind::Split { ways: 2, channels: 1 },
        MachineKind::Freecursive { channels: 2 },
        MachineKind::IndepSplit { groups: 2, ways: 2, channels: 2 },
    ];
    sdimm_bench::leakage::write_if_requested(&telemetry, &leakage_kinds, scale, &instruments);
    telemetry.write_outputs(&all_cells, &instruments);
}
