//! Scratch diagnostic: per-protocol service latency (MLP=1) and
//! saturated throughput (MLP=16).

use dram_sim::spec::DramStandard;
use sdimm_system::executor::ExecEvent;
use sdimm_system::machine::{Machine, MachineKind, SystemConfig};

fn probe(kind: MachineKind) {
    let scale = sdimm_bench::Scale::from_env();
    let cfg = SystemConfig {
        kind,
        oram: scale.oram(7),
        data_blocks: scale.data_blocks(),
        standard: DramStandard::default(),
        low_power: false,
        seed: 1,
    };
    let mut m = Machine::new(cfg.clone());
    // Warm PLB.
    for i in 0..64u64 {
        for t in m.request_traces(i * 64, false) {
            m.executor.submit(t);
        }
    }
    m.executor.run_until_quiescent(10_000_000);
    m.executor.poll();

    // MLP=1 latency.
    let mut lat_sum = 0u64;
    for i in 0..50u64 {
        let start = m.executor.now();
        for t in m.request_traces((i * 64) % (cfg.data_blocks * 64), false) {
            m.executor.submit(t);
            loop {
                m.executor.tick(8);
                let evs = m.executor.poll();
                if evs.iter().any(|e| matches!(e, ExecEvent::DataReady { .. })) {
                    break;
                }
            }
        }
        lat_sum = lat_sum.saturating_add(m.executor.now().saturating_sub(start));
        m.executor.run_until_quiescent(1_000_000);
        m.executor.poll();
    }

    // MLP=16 throughput: 400 requests, 16 outstanding.
    let t0 = m.executor.now();
    let mut submitted = 0u64;
    let mut done = 0u64;
    let mut inflight = 0u64;
    let mut total_parts = 0u64;
    while submitted < 400 || done < total_parts {
        while inflight < 16 && submitted < 400 {
            for t in m.request_traces((submitted * 997 * 64) % (cfg.data_blocks * 64), false) {
                m.executor.submit(t);
                inflight += 1;
                total_parts += 1;
            }
            submitted += 1;
        }
        m.executor.tick(16);
        for ev in m.executor.poll() {
            if matches!(ev, ExecEvent::Done { .. }) {
                done += 1;
                inflight -= 1;
            }
        }
    }
    let thr_cycles = m.executor.now().saturating_sub(t0) / 400;
    println!(
        "{:<16} latency(MLP=1) = {:>5} cycles   service/request(MLP=16) = {:>5} cycles",
        cfg.kind.name(),
        lat_sum / 50,
        thr_cycles
    );
}

fn main() {
    for kind in [
        MachineKind::Freecursive { channels: 2 },
        MachineKind::Independent { sdimms: 4, channels: 2 },
        MachineKind::Split { ways: 4, channels: 2 },
        MachineKind::IndepSplit { groups: 2, ways: 2, channels: 2 },
    ] {
        probe(kind);
    }
}
