//! `validate_folded` — structural validator for collapsed-stack
//! profiles written by `--profile-folded`.
//!
//! CI runs this against the quick-fig6 profile artifact to catch a
//! silently broken profiler before anyone feeds the file to flamegraph
//! tooling. Checks:
//!
//! * the file is non-empty and every line is `stack<space>weight`,
//! * no stack is empty and no frame within a stack is empty (a `;;` or
//!   trailing `;` renders as a blank flamegraph frame),
//! * every weight parses as a positive integer,
//! * the weights sum to exactly the `sampled_cycles` recorded in the
//!   `<path>.meta.json` sidecar — the profiler's core invariant
//!   (attributed time == sampled simulated time, nothing lost or
//!   double-counted).
//!
//! Usage: `validate_folded <profile.folded> [meta.json]` (the sidecar
//! defaults to `<profile.folded>.meta.json`). Exits nonzero with a
//! line naming the first problem.

use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("validate_folded: {msg}");
    ExitCode::from(1)
}

/// Pulls an integer field out of the (flat, known-shape) meta sidecar
/// without a JSON dependency.
fn meta_field(meta: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\"");
    let rest = &meta[meta.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        return fail("usage: validate_folded <profile.folded> [meta.json]");
    };
    let meta_path = args.next().unwrap_or_else(|| format!("{path}.meta.json"));

    let folded = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    if folded.trim().is_empty() {
        return fail(&format!("{path} is empty — the profiler recorded no samples"));
    }

    let mut total: u64 = 0;
    let mut stacks: u64 = 0;
    for (i, line) in folded.lines().enumerate() {
        let n = i + 1;
        let Some((stack, weight)) = line.rsplit_once(' ') else {
            return fail(&format!("{path}:{n}: no `stack weight` separator in {line:?}"));
        };
        if stack.is_empty() {
            return fail(&format!("{path}:{n}: empty stack"));
        }
        if stack.split(';').any(str::is_empty) {
            return fail(&format!("{path}:{n}: empty frame in stack {stack:?}"));
        }
        let w: u64 = match weight.parse() {
            Ok(w) if w > 0 => w,
            _ => return fail(&format!("{path}:{n}: bad weight {weight:?}")),
        };
        total += w;
        stacks += 1;
    }

    let meta = match std::fs::read_to_string(&meta_path) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read sidecar {meta_path}: {e}")),
    };
    let Some(sampled) = meta_field(&meta, "sampled_cycles") else {
        return fail(&format!("{meta_path}: no `sampled_cycles` field"));
    };
    if total != sampled {
        return fail(&format!(
            "weight sum {total} != sampled_cycles {sampled} ({meta_path}) — the profiler \
             lost or double-counted simulated time"
        ));
    }
    if let Some(meta_stacks) = meta_field(&meta, "stacks") {
        if meta_stacks != stacks {
            return fail(&format!("{stacks} stacks in {path} but sidecar claims {meta_stacks}"));
        }
    }

    println!(
        "validate_folded: OK — {stacks} stacks, {total} cycles attributed, \
         sum matches sampled_cycles"
    );
    ExitCode::SUCCESS
}
