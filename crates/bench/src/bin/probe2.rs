//! Scratch diagnostic: energy breakdown with and without low-power mode.

use dram_sim::spec::DramStandard;
use sdimm_system::machine::{MachineKind, SystemConfig};
use sdimm_system::runner::run;
use workloads::spec;

fn main() {
    let scale = sdimm_bench::Scale::from_env();
    let trace = spec::generate("milc-like", scale.trace_len(), 42);
    for low_power in [false, true] {
        let cfg = SystemConfig {
            kind: MachineKind::Independent { sdimms: 2, channels: 1 },
            oram: scale.oram(7),
            data_blocks: scale.data_blocks(),
            standard: DramStandard::default(),
            low_power,
            seed: 1,
        };
        let r = run(&cfg, &trace, scale.warmup(), scale.measure());
        let e = &r.energy;
        println!(
            "low_power={low_power}: cycles={} act={:.0} burst={:.0} refresh={:.0} background={:.0} io={:.0} (uJ)",
            r.cycles,
            e.activate_nj / 1000.0,
            e.burst_nj / 1000.0,
            e.refresh_nj / 1000.0,
            e.background_nj / 1000.0,
            e.io_nj / 1000.0
        );
    }
}
