//! `leakage_gate` — the CI gate of the timing-leakage observatory
//! (DESIGN.md §11).
//!
//! Runs the full protocol × workload-pair matrix at the configured
//! scale, prints the verdict table, writes the byte-stable report JSON,
//! and exits nonzero unless **both** halves of the acceptance criterion
//! hold: every secure protocol (PathOram, Freecursive, Independent,
//! Split, IndepSplit) is statistically indistinguishable on every pair,
//! *and* the NonSecure baseline is detected as distinguishable on every
//! pair — the power check proving the statistics aren't vacuously
//! passing everything.
//!
//! ```text
//! leakage_gate [--report <path>]     default: target/leakage-report.json
//! ```
//!
//! Scale follows `SDIMM_BENCH_SCALE` (`quick` default). The run is
//! fully deterministic: fixed workload pairs, fixed simulator seeds,
//! fixed bootstrap seed — two back-to-back runs produce byte-identical
//! reports (check.sh verifies exactly that).

use dram_sim::spec::DramStandard;
use sdimm_bench::{leakage, Scale};
use sdimm_telemetry::recorder::write_atomic;

fn main() {
    let mut report_path = "target/leakage-report.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--report" => {
                report_path = args.next().unwrap_or_else(|| {
                    eprintln!("leakage_gate: --report requires a path argument");
                    // Sanctioned exit: CLI usage error in a binary entry path.
                    #[allow(clippy::disallowed_methods)]
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "leakage_gate: unknown argument `{other}`\n\
                     usage: leakage_gate [--report <path>]"
                );
                // Sanctioned exit: CLI usage error in a binary entry path.
                #[allow(clippy::disallowed_methods)]
                std::process::exit(2);
            }
        }
    }

    let scale = Scale::from_env();
    // The gate pins the reference DDR3-1600 configuration: its acceptance
    // baseline (byte-stable report, indistinguishability verdicts) is
    // defined on the paper's Table II memory system.
    let report = leakage::run_report(&leakage::gate_kinds(), scale, DramStandard::default());
    leakage::print_table(&report);

    if let Err(e) = write_atomic(&report_path, &report.to_json()) {
        eprintln!("failed to write leakage report to {report_path}: {e}");
        // Sanctioned exit: losing the report must fail the gate.
        #[allow(clippy::disallowed_methods)]
        std::process::exit(1);
    }
    println!("leakage report written to {report_path}");

    if !report.gate_pass() {
        eprintln!(
            "leakage_gate: FAIL — {} secure protocol leak(s), {} power failure(s)",
            report.secure_failures(),
            report.power_failures()
        );
        // Sanctioned exit: the gate's entire purpose is a nonzero exit
        // on a security regression.
        #[allow(clippy::disallowed_methods)]
        std::process::exit(1);
    }
    println!("leakage_gate: PASS");
}
