//! Fig 9: normalized execution time of double-channel SDIMM designs
//! (INDEP-4, SPLIT-4, INDEP-SPLIT) vs Freecursive (paper: 20.3%, 20.4%,
//! and 47.4% improvement respectively).

use sdimm_bench::{table, Scale, TelemetryArgs};
use sdimm_system::machine::{MachineKind, SystemConfig};
use workloads::spec;

fn main() {
    let telemetry = TelemetryArgs::from_env("fig9");
    let instruments = telemetry.instruments();
    let _live = sdimm_bench::LiveView::spawn(instruments.live.clone());
    let scale = Scale::from_env();
    let kinds = [
        MachineKind::Freecursive { channels: 2 },
        MachineKind::Independent { sdimms: 4, channels: 2 },
        MachineKind::Split { ways: 4, channels: 2 },
        MachineKind::IndepSplit { groups: 2, ways: 2, channels: 2 },
    ];
    let mut all_cells = Vec::new();
    for cached in [7u32, 0] {
        let cells = sdimm_bench::run_matrix_maybe_audited(
            &telemetry,
            &spec::ALL,
            &kinds,
            scale,
            |kind| SystemConfig {
                kind,
                oram: scale.oram(cached),
                data_blocks: scale.data_blocks(),
                standard: telemetry.standard,
                low_power: false,
                seed: 1,
            },
            &instruments,
            all_cells.len() as u32,
        );
        table::print_normalized(
            &format!("Fig 9: double-channel SDIMM designs, {cached}-level ORAM cache"),
            &cells,
            "FREECURSIVE-2ch",
            |c| c.result.cycles_per_record(),
        );
        table::print_latency_percentiles(&format!("Fig 9, {cached}-level ORAM cache"), &cells);
        all_cells.extend(cells);
    }
    sdimm_bench::leakage::write_if_requested(&telemetry, &kinds, scale, &instruments);
    telemetry.write_outputs(&all_cells, &instruments);
}
