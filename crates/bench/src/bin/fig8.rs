//! Fig 8: normalized execution time of single-channel SDIMM designs
//! (INDEP-2, SPLIT-2) vs Freecursive, with and without the 7-level
//! on-chip ORAM cache (paper: ~32-35.7% reduction).

use sdimm_bench::{table, Scale, TelemetryArgs};
use sdimm_system::machine::{MachineKind, SystemConfig};
use workloads::spec;

fn main() {
    let telemetry = TelemetryArgs::from_env("fig8");
    let instruments = telemetry.instruments();
    let _live = sdimm_bench::LiveView::spawn(instruments.live.clone());
    let scale = Scale::from_env();
    let kinds = [
        MachineKind::Freecursive { channels: 1 },
        MachineKind::Independent { sdimms: 2, channels: 1 },
        MachineKind::Split { ways: 2, channels: 1 },
    ];
    let mut all_cells = Vec::new();
    for cached in [7u32, 0] {
        let cells = sdimm_bench::run_matrix_maybe_audited(
            &telemetry,
            &spec::ALL,
            &kinds,
            scale,
            |kind| SystemConfig {
                kind,
                oram: scale.oram(cached),
                data_blocks: scale.data_blocks(),
                standard: telemetry.standard,
                low_power: false,
                seed: 1,
            },
            &instruments,
            all_cells.len() as u32,
        );
        table::print_normalized(
            &format!("Fig 8: single-channel SDIMM designs, {cached}-level ORAM cache"),
            &cells,
            "FREECURSIVE-1ch",
            |c| c.result.cycles_per_record(),
        );
        table::print_latency_percentiles(&format!("Fig 8, {cached}-level ORAM cache"), &cells);
        all_cells.extend(cells);
    }
    sdimm_bench::leakage::write_if_requested(&telemetry, &kinds, scale, &instruments);
    telemetry.write_outputs(&all_cells, &instruments);
}
