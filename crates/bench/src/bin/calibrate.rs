use sdimm_system::llc::Llc;
use workloads::spec;

fn main() {
    for name in spec::ALL {
        let t = spec::generate(name, 20_000, 42);
        let mut llc = Llc::table2();
        for r in &t.records[..10_000] {
            llc.warm(r.addr, r.is_write);
        }
        for r in &t.records[10_000..] {
            llc.access(r.addr, r.is_write);
        }
        let s = llc.stats();
        println!("{name:<18} miss_rate={:.2} mean_gap={:.1}", s.miss_rate(), t.mean_gap());
    }
}
