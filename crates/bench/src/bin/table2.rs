//! Table II: simulator parameters in effect.

use dram_sim::config::{ChannelConfig, Timing, Topology};
use oram::types::OramConfig;
use sdimm_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let t = Timing::ddr3_1600();
    let topo = Topology::table2_channel();
    let cfg = ChannelConfig::table2();
    let oram = scale.oram(7);
    let paper = OramConfig::default();

    println!("== Table II: simulator parameters ==");
    println!("-- Cycle-accurate simulation --");
    println!("L2/LLC:                    2MB / 64B lines / 8-way shared, 10-cycle");
    println!("-- DRAM device parameters (DDR3-1600, MT41J256M8-class) --");
    println!("ranks per channel:         {}", topo.ranks);
    println!("banks per rank:            {}", topo.banks);
    println!("rows per bank:             {}", topo.rows);
    println!("row-buffer size:           {} bytes", topo.row_bytes);
    println!("channel width:             72 bits (9 x8 devices/rank)");
    println!("bus frequency:             1600 MT/s (800 MHz clock)");
    println!("CL/tRCD/tRP:               {}/{}/{} cycles", t.cl, t.t_rcd, t.t_rp);
    println!("tRAS/tRC/tFAW:             {}/{}/{} cycles", t.t_ras, t.t_rc, t.t_faw);
    println!("tWR/tWTR/tRTRS:            {}/{}/{} cycles", t.t_wr, t.t_wtr, t.t_rtrs);
    println!(
        "write queue:               {} entries, drain at {}",
        cfg.write_drain.capacity, cfg.write_drain.hi
    );
    println!("-- Freecursive parameters --");
    println!("PLB size:                  64KB (1024 blocks, 8-way)");
    println!("blocks per bucket (Z):     {}", paper.z);
    println!("data block size:           {} bytes", paper.block_bytes);
    println!("encryption latency:        21 cycles");
    println!("number of recursive maps:  {}", paper.max_recursion);
    println!("-- This run's scale ({scale:?}) --");
    println!("ORAM tree levels:          {}", oram.levels);
    println!("cached ORAM levels:        {}", oram.cached_levels);
    println!("data blocks:               {}", scale.data_blocks());
    println!("warmup/measured records:   {}/{}", scale.warmup(), scale.measure());
}
