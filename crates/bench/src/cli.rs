//! Shared telemetry CLI flags for the figure binaries.
//!
//! Every `run_matrix`-style binary accepts the same optional flags:
//!
//! ```text
//! --metrics-json <path>     write the merged metrics snapshot (JSON)
//! --trace-json <path>       capture a Chrome trace (open in Perfetto)
//! --audit                   replay every DRAM command stream through the
//!                           differential DDR3 auditor and lockstep-check
//!                           the ORAM protocols against a shadow memory
//! --flight-recorder <pfx>   keep a bounded ring of recent events per
//!                           cell; dumped as <pfx>-pid<N>.blackbox.txt
//!                           (+ .trace.json) on violations, stash
//!                           breaches, or panics
//! --profile-folded <path>   sample the executor every K simulated
//!                           cycles and write a collapsed-stack profile
//!                           (flamegraph.pl / inferno / speedscope)
//! --live                    redraw a one-line run dashboard on stderr
//! --leakage <report.json>   run the timing-leakage observatory matrix
//!                           over this binary's design points and write
//!                           the byte-stable report (DESIGN.md §11)
//! --standard <name>         memory standard every DRAM channel runs
//!                           (ddr3_1600 [default], ddr3_800, ddr4_2400,
//!                           lpddr4_3200, hbm2)
//! ```
//!
//! Parsing is intentionally minimal (no external argument-parser
//! dependency): unknown arguments abort with a usage message so typos
//! never silently run a multi-minute experiment with telemetry dropped.

use dram_sim::spec::DramStandard;
use sdimm_telemetry::recorder::{write_atomic, DEFAULT_FLIGHT_CAPACITY};
use sdimm_telemetry::{
    CycleProfiler, FlightRecorderHub, Instruments, LiveProgress, MetricsRegistry, TraceSink,
};

use crate::harness::Cell;

/// Stacks shown in the profiler's top-k table after a profiled run.
const PROFILE_TOP_K: usize = 10;

/// Parsed telemetry flags shared by every figure binary.
#[derive(Debug, Clone, Default)]
pub struct TelemetryArgs {
    /// Destination for the merged metrics snapshot, if requested.
    pub metrics_json: Option<String>,
    /// Destination for the Chrome trace, if requested.
    pub trace_json: Option<String>,
    /// Run the differential correctness harness alongside the
    /// experiment: DDR3 command-stream replay audit plus the ORAM
    /// shadow-memory oracle. Any violation fails the run.
    pub audit: bool,
    /// Flight-recorder dump prefix: when set, every cell keeps a
    /// bounded ring of recent events, dumped as a black-box report on
    /// violations, stash breaches, or panics.
    pub flight_recorder: Option<String>,
    /// Destination for the collapsed-stack (folded) cycle-attribution
    /// profile, if requested. A `<path>.meta.json` sidecar records the
    /// sampled-cycle total for downstream validation.
    pub profile_folded: Option<String>,
    /// Redraw a live one-line dashboard on stderr while the matrix
    /// runs. Off by default.
    pub live: bool,
    /// Destination for a timing-leakage report: when set, the binary
    /// additionally runs the leakage observatory matrix over its design
    /// points and writes the byte-stable report JSON here (plus Perfetto
    /// verdict slices when a trace is captured).
    pub leakage: Option<String>,
    /// Memory standard every DRAM channel in the experiment runs
    /// (`--standard`; DDR3-1600 unless overridden).
    pub standard: DramStandard,
}

impl TelemetryArgs {
    /// Parses the shared telemetry flags from the process arguments.
    /// Exits with status 2 (and a usage line naming `bin`) on anything
    /// unrecognized.
    pub fn from_env(bin: &str) -> TelemetryArgs {
        let mut out = TelemetryArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let take = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
                args.next().unwrap_or_else(|| {
                    eprintln!("{bin}: {flag} requires a path argument");
                    // Sanctioned exit: CLI usage error in a binary entry path.
                    #[allow(clippy::disallowed_methods)]
                    std::process::exit(2);
                })
            };
            match arg.as_str() {
                "--metrics-json" => out.metrics_json = Some(take(&mut args, "--metrics-json")),
                "--trace-json" => out.trace_json = Some(take(&mut args, "--trace-json")),
                "--audit" => out.audit = true,
                "--flight-recorder" => {
                    out.flight_recorder = Some(take(&mut args, "--flight-recorder"));
                }
                "--profile-folded" => {
                    out.profile_folded = Some(take(&mut args, "--profile-folded"));
                }
                "--live" => out.live = true,
                "--leakage" => out.leakage = Some(take(&mut args, "--leakage")),
                "--standard" => {
                    let name = take(&mut args, "--standard");
                    out.standard = DramStandard::parse(&name).unwrap_or_else(|| {
                        let known: Vec<&str> = DramStandard::ALL.iter().map(|s| s.name()).collect();
                        eprintln!(
                            "{bin}: unknown memory standard `{name}` (known: {})",
                            known.join(", ")
                        );
                        // Sanctioned exit: CLI usage error in a binary entry path.
                        #[allow(clippy::disallowed_methods)]
                        std::process::exit(2);
                    });
                }
                other => {
                    eprintln!(
                        "{bin}: unknown argument `{other}`\n\
                         usage: {bin} [--metrics-json <path>] [--trace-json <path>] [--audit]\n\
                         {pad}[--flight-recorder <prefix>] [--profile-folded <path>] [--live]\n\
                         {pad}[--leakage <report.json>] [--standard <name>]",
                        pad = " ".repeat("usage: ".len() + bin.len() + 1),
                    );
                    // Sanctioned exit: CLI usage error in a binary entry path.
                    #[allow(clippy::disallowed_methods)]
                    std::process::exit(2);
                }
            }
        }
        out
    }

    /// The sink the experiment should record into: enabled only when
    /// `--trace-json` was given, so the default run pays one branch per
    /// telemetry touchpoint and nothing else.
    pub fn sink(&self) -> TraceSink {
        if self.trace_json.is_some() {
            TraceSink::enabled()
        } else {
            TraceSink::disabled()
        }
    }

    /// The full observability bundle for these flags: trace sink,
    /// flight-recorder hub, cycle profiler, and live-dashboard state —
    /// each enabled only by its flag. When the flight recorder is on,
    /// this also installs a panic hook (chaining the previous one) that
    /// dumps every cell's black box before the panic message, so even a
    /// crashed run leaves its last events behind.
    pub fn instruments(&self) -> Instruments {
        let instruments = Instruments {
            sink: self.sink(),
            flight: match &self.flight_recorder {
                Some(prefix) => FlightRecorderHub::enabled(prefix, DEFAULT_FLIGHT_CAPACITY),
                None => FlightRecorderHub::disabled(),
            },
            profiler: if self.profile_folded.is_some() {
                CycleProfiler::enabled()
            } else {
                CycleProfiler::disabled()
            },
            live: if self.live { LiveProgress::enabled() } else { LiveProgress::disabled() },
        };
        if instruments.flight.is_enabled() {
            install_flight_panic_hook(&instruments.flight);
        }
        instruments
    }

    /// Writes whichever outputs were requested: the merged metrics
    /// snapshot of `cells`, the Chrome trace, and/or the folded
    /// cycle-attribution profile (with its top-k table on stdout).
    ///
    /// Every file goes through an atomic temp-file-then-rename write,
    /// so a crash mid-write never leaves a truncated JSON behind; any
    /// I/O failure prints the path and exits nonzero (a bench run that
    /// silently loses its telemetry is worse than one that dies).
    pub fn write_outputs(&self, cells: &[Cell], instruments: &Instruments) {
        if let Some(path) = &self.metrics_json {
            let merged = merge_metrics(cells);
            write_or_die(path, &merged.to_json(), "metrics snapshot");
            println!("\nmetrics snapshot written to {path}");
        }
        if let Some(path) = &self.trace_json {
            let sink = &instruments.sink;
            let Some(json) = sink.export_chrome_json() else {
                eprintln!("--trace-json {path}: trace sink is disabled, nothing to export");
                // Sanctioned exit: a requested output that cannot be produced must fail the run.
                #[allow(clippy::disallowed_methods)]
                std::process::exit(1);
            };
            write_or_die(path, &json, "chrome trace");
            println!(
                "chrome trace written to {path} ({} events, {} dropped) — open in Perfetto",
                sink.len(),
                sink.dropped()
            );
        }
        if let Some(path) = &self.profile_folded {
            self.write_profile(path, instruments);
        }
        if let Some(prefix) = &self.flight_recorder {
            println!(
                "flight recorder armed ({} cell ring(s), prefix {prefix}): dumps written only \
                 on audit violation, stash breach, or panic",
                instruments.flight.recorders().len()
            );
        }
    }

    /// Folded-profile output: the collapsed-stack file, its
    /// `.meta.json` sidecar (sampled-cycle total for validation), and
    /// the top-k attribution table on stdout.
    fn write_profile(&self, path: &str, instruments: &Instruments) {
        let profiler = &instruments.profiler;
        let Some(folded) = profiler.export_folded() else {
            eprintln!("--profile-folded {path}: profiler is disabled, nothing to export");
            // Sanctioned exit: a requested output that cannot be produced must fail the run.
            #[allow(clippy::disallowed_methods)]
            std::process::exit(1);
        };
        write_or_die(path, &folded, "folded profile");
        let sampled = profiler.sampled_cycles();
        let meta = format!(
            "{{\n  \"sampled_cycles\": {sampled},\n  \"sample_interval\": {},\n  \"stacks\": {}\n}}\n",
            profiler.interval(),
            profiler.stack_count()
        );
        let meta_path = format!("{path}.meta.json");
        write_or_die(&meta_path, &meta, "profile metadata");
        println!(
            "\nfolded profile written to {path} ({} stacks, {sampled} sampled cycles; \
             meta in {meta_path})",
            profiler.stack_count()
        );
        println!("cycle attribution (top {PROFILE_TOP_K}):");
        for (stack, weight) in profiler.top_k(PROFILE_TOP_K) {
            let share = if sampled > 0 { weight as f64 / sampled as f64 * 100.0 } else { 0.0 };
            println!("  {weight:>14} cyc  {share:5.1}%  {stack}");
        }
    }
}

/// Atomic write with the shared "print the path and exit nonzero"
/// failure path used by every requested output file.
fn write_or_die(path: &str, contents: &str, what: &str) {
    if let Err(e) = write_atomic(path, contents) {
        eprintln!("failed to write {what} to {path}: {e}");
        // Sanctioned exit: losing a requested output file must fail the run.
        #[allow(clippy::disallowed_methods)]
        std::process::exit(1);
    }
}

/// Chains a panic hook that dumps every flight-recorder ring in `hub`
/// before the default (or previously installed) panic output runs.
fn install_flight_panic_hook(hub: &FlightRecorderHub) {
    let hub = hub.clone();
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        for line in hub.dump_all("panic") {
            eprintln!("flight recorder: {line}");
        }
        prev(info);
    }));
}

/// Merges every cell's metrics snapshot into one registry, namespaced
/// `"<workload>.<machine>."` so a matrix of runs stays one flat JSON
/// document with byte-stable key order.
pub fn merge_metrics(cells: &[Cell]) -> MetricsRegistry {
    let mut merged = MetricsRegistry::new();
    for c in cells {
        merged.absorb(&format!("{}.{}", c.workload, c.machine), &c.result.metrics);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_have_disabled_sink() {
        let args = TelemetryArgs::default();
        assert!(!args.sink().is_enabled());
    }

    #[test]
    fn trace_flag_enables_sink() {
        let args = TelemetryArgs {
            trace_json: Some("/tmp/t.json".to_string()),
            ..TelemetryArgs::default()
        };
        assert!(args.sink().is_enabled());
    }

    #[test]
    fn default_args_build_fully_disabled_instruments() {
        let ins = TelemetryArgs::default().instruments();
        assert!(!ins.any_enabled(), "no flag set means every handle is a one-branch no-op");
    }

    #[test]
    fn each_flag_enables_exactly_its_instrument() {
        let ins = TelemetryArgs {
            flight_recorder: Some("/tmp/fr".to_string()),
            profile_folded: Some("/tmp/p.folded".to_string()),
            live: true,
            ..TelemetryArgs::default()
        }
        .instruments();
        assert!(!ins.sink.is_enabled());
        assert!(ins.flight.is_enabled());
        assert!(ins.profiler.is_enabled());
        assert!(ins.live.is_enabled());
        assert_eq!(ins.flight.prefix(), "/tmp/fr");
    }
}
