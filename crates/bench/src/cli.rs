//! Shared telemetry CLI flags for the figure binaries.
//!
//! Every `run_matrix`-style binary accepts the same two optional flags:
//!
//! ```text
//! --metrics-json <path>   write the merged metrics snapshot (JSON)
//! --trace-json <path>     capture a Chrome trace (open in Perfetto)
//! --audit                 replay every DRAM command stream through the
//!                         differential DDR3 auditor and lockstep-check
//!                         the ORAM protocols against a shadow memory
//! ```
//!
//! Parsing is intentionally minimal (no external argument-parser
//! dependency): unknown arguments abort with a usage message so typos
//! never silently run a multi-minute experiment with telemetry dropped.

use sdimm_telemetry::{MetricsRegistry, TraceSink};

use crate::harness::Cell;

/// Parsed telemetry flags shared by every figure binary.
#[derive(Debug, Clone, Default)]
pub struct TelemetryArgs {
    /// Destination for the merged metrics snapshot, if requested.
    pub metrics_json: Option<String>,
    /// Destination for the Chrome trace, if requested.
    pub trace_json: Option<String>,
    /// Run the differential correctness harness alongside the
    /// experiment: DDR3 command-stream replay audit plus the ORAM
    /// shadow-memory oracle. Any violation fails the run.
    pub audit: bool,
}

impl TelemetryArgs {
    /// Parses `--metrics-json <path>` / `--trace-json <path>` from the
    /// process arguments. Exits with status 2 (and a usage line naming
    /// `bin`) on anything unrecognized.
    pub fn from_env(bin: &str) -> TelemetryArgs {
        let mut out = TelemetryArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let take = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
                args.next().unwrap_or_else(|| {
                    eprintln!("{bin}: {flag} requires a path argument");
                    // Sanctioned exit: CLI usage error in a binary entry path.
                    #[allow(clippy::disallowed_methods)]
                    std::process::exit(2);
                })
            };
            match arg.as_str() {
                "--metrics-json" => out.metrics_json = Some(take(&mut args, "--metrics-json")),
                "--trace-json" => out.trace_json = Some(take(&mut args, "--trace-json")),
                "--audit" => out.audit = true,
                other => {
                    eprintln!(
                        "{bin}: unknown argument `{other}`\n\
                         usage: {bin} [--metrics-json <path>] [--trace-json <path>] [--audit]"
                    );
                    // Sanctioned exit: CLI usage error in a binary entry path.
                    #[allow(clippy::disallowed_methods)]
                    std::process::exit(2);
                }
            }
        }
        out
    }

    /// The sink the experiment should record into: enabled only when
    /// `--trace-json` was given, so the default run pays one branch per
    /// telemetry touchpoint and nothing else.
    pub fn sink(&self) -> TraceSink {
        if self.trace_json.is_some() {
            TraceSink::enabled()
        } else {
            TraceSink::disabled()
        }
    }

    /// Writes whichever outputs were requested: the merged metrics
    /// snapshot of `cells` and/or the Chrome trace captured by `sink`.
    /// Prints where each file went; panics on I/O failure (a bench run
    /// that silently loses its telemetry is worse than one that dies).
    pub fn write_outputs(&self, cells: &[Cell], sink: &TraceSink) {
        if let Some(path) = &self.metrics_json {
            let merged = merge_metrics(cells);
            // lint: panic-ok(invariant: write metrics snapshot)
            std::fs::write(path, merged.to_json()).expect("write metrics snapshot");
            println!("\nmetrics snapshot written to {path}");
        }
        if let Some(path) = &self.trace_json {
            // lint: panic-ok(invariant: trace-json flag implies enabled sink)
            let json = sink.export_chrome_json().expect("trace-json flag implies enabled sink");
            // lint: panic-ok(invariant: write chrome trace)
            std::fs::write(path, &json).expect("write chrome trace");
            println!(
                "chrome trace written to {path} ({} events, {} dropped) — open in Perfetto",
                sink.len(),
                sink.dropped()
            );
        }
    }
}

/// Merges every cell's metrics snapshot into one registry, namespaced
/// `"<workload>.<machine>."` so a matrix of runs stays one flat JSON
/// document with byte-stable key order.
pub fn merge_metrics(cells: &[Cell]) -> MetricsRegistry {
    let mut merged = MetricsRegistry::new();
    for c in cells {
        merged.absorb(&format!("{}.{}", c.workload, c.machine), &c.result.metrics);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_have_disabled_sink() {
        let args = TelemetryArgs::default();
        assert!(!args.sink().is_enabled());
    }

    #[test]
    fn trace_flag_enables_sink() {
        let args = TelemetryArgs {
            trace_json: Some("/tmp/t.json".to_string()),
            ..TelemetryArgs::default()
        };
        assert!(args.sink().is_enabled());
    }
}
