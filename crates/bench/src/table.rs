//! Plain-text table formatting for the figure binaries.

use crate::harness::{geomean, Cell};

/// Prints a figure as a table: rows = workloads, columns = machines,
/// values = `metric(cell)` normalized to the `baseline` machine's value
/// for the same workload (the papers' "normalized execution time" style),
/// with a geometric-mean footer row.
pub fn print_normalized(
    title: &str,
    cells: &[Cell],
    baseline: &str,
    metric: impl Fn(&Cell) -> f64,
) {
    let mut workloads: Vec<String> = Vec::new();
    let mut machines: Vec<String> = Vec::new();
    for c in cells {
        if !workloads.contains(&c.workload) {
            workloads.push(c.workload.clone());
        }
        if !machines.contains(&c.machine) {
            machines.push(c.machine.clone());
        }
    }

    println!("\n== {title} ==");
    print!("{:<18}", "workload");
    for m in &machines {
        print!("{m:>16}");
    }
    println!();

    let lookup = |w: &str, m: &str| -> Option<f64> {
        cells.iter().find(|c| c.workload == w && c.machine == m).map(&metric)
    };

    let mut per_machine: Vec<Vec<f64>> = vec![Vec::new(); machines.len()];
    for w in &workloads {
        let base = lookup(w, baseline).unwrap_or(1.0);
        print!("{w:<18}");
        for (mi, m) in machines.iter().enumerate() {
            match lookup(w, m) {
                Some(v) => {
                    let norm = if base > 0.0 { v / base } else { 0.0 };
                    per_machine[mi].push(norm);
                    print!("{norm:>16.3}");
                }
                None => print!("{:>16}", "-"),
            }
        }
        println!();
    }
    print!("{:<18}", "geomean");
    for col in &per_machine {
        print!("{:>16.3}", geomean(col));
    }
    println!();
}

/// Prints the miss-latency distribution table: rows = workloads,
/// columns = machines, each value `p50/p90/p99` in bus cycles (from the
/// per-run miss-latency histogram). Column layout matches
/// [`print_normalized`] so figure output lines up vertically.
pub fn print_latency_percentiles(title: &str, cells: &[Cell]) {
    let mut workloads: Vec<String> = Vec::new();
    let mut machines: Vec<String> = Vec::new();
    for c in cells {
        if !workloads.contains(&c.workload) {
            workloads.push(c.workload.clone());
        }
        if !machines.contains(&c.machine) {
            machines.push(c.machine.clone());
        }
    }
    println!("\n== {title} (miss latency p50/p90/p99, bus cycles) ==");
    print!("{:<18}", "workload");
    for m in &machines {
        print!("{m:>16}");
    }
    println!();
    for w in &workloads {
        print!("{w:<18}");
        for m in &machines {
            match cells.iter().find(|c| &c.workload == w && &c.machine == m) {
                Some(c) => {
                    let r = &c.result;
                    let v = format!(
                        "{}/{}/{}",
                        r.miss_latency_p50, r.miss_latency_p90, r.miss_latency_p99
                    );
                    print!("{v:>16}");
                }
                None => print!("{:>16}", "-"),
            }
        }
        println!();
    }
}

/// Prints a raw (un-normalized) metric table.
pub fn print_raw(title: &str, cells: &[Cell], unit: &str, metric: impl Fn(&Cell) -> f64) {
    let mut workloads: Vec<String> = Vec::new();
    let mut machines: Vec<String> = Vec::new();
    for c in cells {
        if !workloads.contains(&c.workload) {
            workloads.push(c.workload.clone());
        }
        if !machines.contains(&c.machine) {
            machines.push(c.machine.clone());
        }
    }
    println!("\n== {title} ({unit}) ==");
    print!("{:<18}", "workload");
    for m in &machines {
        print!("{m:>16}");
    }
    println!();
    for w in &workloads {
        print!("{w:<18}");
        for m in &machines {
            match cells.iter().find(|c| &c.workload == w && &c.machine == m) {
                Some(c) => print!("{:>16.1}", metric(c)),
                None => print!("{:>16}", "-"),
            }
        }
        println!();
    }
}
