//! Run provenance embedded in every deterministic benchmark report.
//!
//! Shared by `bench_compare` (`BENCH_crypto.json` / `BENCH_sim.json`)
//! and `crossover` (`BENCH_crossover.json`): enough context to answer
//! "which build produced these numbers" when a stale report surfaces in
//! a CI artifact bucket, without anything that would break byte
//! stability between two runs on one checkout (no timestamps, no host
//! names, no wall-clock values).

/// The provenance object serialized at the top of a report.
#[derive(Debug, Clone)]
pub struct Provenance {
    /// Abbreviated commit SHA of the working tree, or `unknown` outside
    /// a git checkout (e.g. a source tarball).
    pub git_sha: String,
    /// Scale the suite ran at (`quick` or `full`).
    pub scale: &'static str,
    /// Execution-engine version the measurements were taken on.
    pub engine: &'static str,
    /// Comma-separated protocol/machine set exercised by the suite.
    pub protocols: &'static str,
}

impl Provenance {
    /// Provenance for the current checkout at `scale` over `protocols`.
    pub fn new(scale: &'static str, protocols: &'static str) -> Self {
        Self { git_sha: git_sha(), scale, engine: sdimm_system::ENGINE_VERSION, protocols }
    }

    /// The inline JSON object (no trailing newline or comma) every
    /// report embeds under its `"provenance"` key.
    pub fn to_json_object(&self) -> String {
        format!(
            "{{\"git_sha\": \"{}\", \"scale\": \"{}\", \"engine\": \"{}\", \"protocols\": \"{}\"}}",
            self.git_sha, self.scale, self.engine, self.protocols
        )
    }
}

/// Resolves the current commit's abbreviated SHA, falling back to
/// `unknown` when git is unavailable or the tree is not a checkout.
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty() && s.chars().all(|c| c.is_ascii_hexdigit()))
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_object_is_flat_and_carries_every_field() {
        let p = Provenance {
            git_sha: "abc123".into(),
            scale: "quick",
            engine: "test-engine",
            protocols: "nonsecure",
        };
        let json = p.to_json_object();
        for key in ["git_sha", "scale", "engine", "protocols"] {
            assert!(json.contains(&format!("\"{key}\"")), "{json}");
        }
        assert!(!json.contains('\n'), "inline object embeds in one report line");
    }

    #[test]
    fn git_sha_is_hex_or_unknown() {
        let sha = git_sha();
        assert!(sha == "unknown" || sha.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
