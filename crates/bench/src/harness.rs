//! Parallel experiment matrix runner.

use crossbeam::thread;
use parking_lot::Mutex;
use sdimm_system::machine::{MachineKind, SystemConfig};
use sdimm_system::runner::{run, RunResult};
use workloads::spec;

use crate::scale::Scale;

/// One measured cell of an experiment matrix.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Workload name.
    pub workload: String,
    /// Machine/design-point name.
    pub machine: String,
    /// The full run result.
    pub result: RunResult,
}

/// Runs every (workload × machine) combination in parallel and returns
/// the cells in deterministic (workload-major) order.
///
/// `make_cfg` builds the system configuration for a machine kind —
/// letting callers vary cached levels, low-power mode, etc.
pub fn run_matrix(
    workload_names: &[&str],
    kinds: &[MachineKind],
    scale: Scale,
    make_cfg: impl Fn(MachineKind) -> SystemConfig + Sync,
) -> Vec<Cell> {
    let results: Mutex<Vec<(usize, Cell)>> = Mutex::new(Vec::new());
    let warmup = scale.warmup();
    let measure = scale.measure();
    let trace_len = scale.trace_len();

    thread::scope(|s| {
        let mut job = 0usize;
        for (wi, wname) in workload_names.iter().enumerate() {
            for kind in kinds.iter().copied() {
                let order = job;
                job += 1;
                let results = &results;
                let make_cfg = &make_cfg;
                s.spawn(move |_| {
                    let trace = spec::generate(wname, trace_len, 42 + wi as u64);
                    let cfg = make_cfg(kind);
                    let result = run(&cfg, &trace, warmup, measure);
                    results.lock().push((
                        order,
                        Cell {
                            workload: wname.to_string(),
                            machine: kind.name(),
                            result,
                        },
                    ));
                });
            }
        }
    })
    .expect("worker thread panicked");

    let mut cells = results.into_inner();
    cells.sort_by_key(|(order, _)| *order);
    cells.into_iter().map(|(_, c)| c).collect()
}

/// Geometric mean of a slice (0.0 for empty input).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_mixes() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_empty_is_zero() {
        assert_eq!(geomean(&[]), 0.0);
    }
}
