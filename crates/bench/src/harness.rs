//! Parallel experiment matrix runner.

use std::sync::Mutex;

use sdimm_audit::ddr::{violation_recorder, DdrAuditor, BLACKBOX_CONTEXT};
use sdimm_system::machine::{MachineKind, SystemConfig};
use sdimm_system::runner::{run_audited_instrumented, run_instrumented, RunResult};
use sdimm_telemetry::Instruments;
use workloads::spec;

use crate::scale::Scale;

/// One measured cell of an experiment matrix.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Workload name.
    pub workload: String,
    /// Machine/design-point name.
    pub machine: String,
    /// The full run result.
    pub result: RunResult,
}

/// Runs every (workload × machine) combination in parallel and returns
/// the cells in deterministic (workload-major) order.
///
/// Concurrency is bounded by [`std::thread::available_parallelism`]:
/// jobs are pulled from a shared queue by a fixed pool of workers, so a
/// large matrix never spawns more threads than the machine has cores.
///
/// `make_cfg` builds the system configuration for a machine kind —
/// letting callers vary cached levels, low-power mode, etc.
pub fn run_matrix(
    workload_names: &[&str],
    kinds: &[MachineKind],
    scale: Scale,
    make_cfg: impl Fn(MachineKind) -> SystemConfig + Sync,
) -> Vec<Cell> {
    run_matrix_traced(workload_names, kinds, scale, make_cfg, &Instruments::disabled(), 0)
}

/// [`run_matrix`], but with the observability bundle attached: each
/// cell gets its own trace process id (`pid_base` + its matrix order),
/// named `"<machine> / <workload>"`, so one Chrome trace (and one
/// flight-recorder ring per cell) holds the whole matrix side by side.
/// Callers invoking this repeatedly on one bundle should advance
/// `pid_base` past the previous matrix's cell count to keep process
/// ids distinct. Pass [`Instruments::disabled`] for the plain path —
/// every disabled handle costs one branch per touchpoint.
pub fn run_matrix_traced(
    workload_names: &[&str],
    kinds: &[MachineKind],
    scale: Scale,
    make_cfg: impl Fn(MachineKind) -> SystemConfig + Sync,
    instruments: &Instruments,
    pid_base: u32,
) -> Vec<Cell> {
    let warmup = scale.warmup();
    let measure = scale.measure();
    let trace_len = scale.trace_len();

    // (order, workload index, workload name, machine kind)
    let jobs: Vec<(usize, usize, &str, MachineKind)> = workload_names
        .iter()
        .enumerate()
        .flat_map(|(wi, wname)| kinds.iter().copied().map(move |kind| (wi, *wname, kind)))
        .enumerate()
        .map(|(order, (wi, wname, kind))| (order, wi, wname, kind))
        .collect();
    instruments.live.add_cells(jobs.len());

    let workers =
        std::thread::available_parallelism().map_or(4, |n| n.get()).min(jobs.len().max(1));
    let next_job = Mutex::new(0usize);
    let results: Mutex<Vec<(usize, Cell)>> = Mutex::new(Vec::with_capacity(jobs.len()));

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let idx = {
                    // lint: panic-ok(lock poisoning means a worker panicked; propagating the panic is intended)
                    let mut cursor = next_job.lock().expect("job cursor poisoned");
                    let idx = *cursor;
                    *cursor += 1;
                    idx
                };
                let Some(&(order, wi, wname, kind)) = jobs.get(idx) else {
                    break;
                };
                let trace = spec::generate(wname, trace_len, 42 + wi as u64);
                let cfg = make_cfg(kind);
                let result = run_instrumented(
                    &cfg,
                    &trace,
                    warmup,
                    measure,
                    instruments,
                    pid_base + order as u32,
                );
                // lint: panic-ok(lock poisoning means a worker panicked; propagating the panic is intended)
                results.lock().expect("results poisoned").push((
                    order,
                    Cell { workload: wname.to_string(), machine: kind.name(), result },
                ));
            });
        }
    });

    // lint: panic-ok(lock poisoning means a worker panicked; propagating the panic is intended)
    let mut cells = results.into_inner().expect("results poisoned");
    cells.sort_by_key(|(order, _)| *order);
    cells.into_iter().map(|(_, c)| c).collect()
}

/// Aggregate result of replaying a matrix's DRAM command streams
/// through the differential DDR3 auditor.
#[derive(Debug, Clone, Default)]
pub struct DdrAuditLog {
    /// Matrix cells audited.
    pub cells: u64,
    /// DDR commands replayed across every channel of every cell.
    pub commands: u64,
    /// Refresh commands observed (a zero here on a long run means the
    /// capture itself is broken — refresh is always on in the machines).
    pub refreshes: u64,
    /// One formatted line per violating cell (empty on a clean matrix).
    pub violations: Vec<String>,
    /// Flight-recorder black-box dumps written for violating cells
    /// (one formatted `path` line per dump; empty on a clean matrix).
    pub blackbox_dumps: Vec<String>,
}

/// [`run_matrix_traced`], with every cell's DRAM command streams
/// replayed through [`DdrAuditor`] as the cell finishes. Streams are
/// audited inside the worker and dropped immediately, so memory stays
/// bounded by one cell's traffic per worker rather than the whole
/// matrix's.
pub fn run_matrix_audited(
    workload_names: &[&str],
    kinds: &[MachineKind],
    scale: Scale,
    make_cfg: impl Fn(MachineKind) -> SystemConfig + Sync,
    instruments: &Instruments,
    pid_base: u32,
) -> (Vec<Cell>, DdrAuditLog) {
    let warmup = scale.warmup();
    let measure = scale.measure();
    let trace_len = scale.trace_len();

    let jobs: Vec<(usize, usize, &str, MachineKind)> = workload_names
        .iter()
        .enumerate()
        .flat_map(|(wi, wname)| kinds.iter().copied().map(move |kind| (wi, *wname, kind)))
        .enumerate()
        .map(|(order, (wi, wname, kind))| (order, wi, wname, kind))
        .collect();
    instruments.live.add_cells(jobs.len());

    let workers =
        std::thread::available_parallelism().map_or(4, |n| n.get()).min(jobs.len().max(1));
    let next_job = Mutex::new(0usize);
    let results: Mutex<Vec<(usize, Cell)>> = Mutex::new(Vec::with_capacity(jobs.len()));
    let audit: Mutex<DdrAuditLog> = Mutex::new(DdrAuditLog::default());

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let idx = {
                    // lint: panic-ok(lock poisoning means a worker panicked; propagating the panic is intended)
                    let mut cursor = next_job.lock().expect("job cursor poisoned");
                    let idx = *cursor;
                    *cursor += 1;
                    idx
                };
                let Some(&(order, wi, wname, kind)) = jobs.get(idx) else {
                    break;
                };
                let trace = spec::generate(wname, trace_len, 42 + wi as u64);
                let cfg = make_cfg(kind);
                let pid = pid_base + order as u32;
                let (result, capture) =
                    run_audited_instrumented(&cfg, &trace, warmup, measure, instruments, pid);
                // lint: panic-ok(lock poisoning means a worker panicked; propagating the panic is intended)
                let mut log = audit.lock().expect("audit log poisoned");
                log.cells += 1;
                for (ch, stream) in capture.streams.iter().enumerate() {
                    match DdrAuditor::check_stream_indexed(&capture.channel_cfg, stream) {
                        Ok(summary) => {
                            log.commands += summary.commands;
                            log.refreshes += summary.refreshes;
                        }
                        Err((idx, v)) => {
                            let line = format!("{} / {} channel {ch}: {v}", kind.name(), wname);
                            // Black box from the captured stream, not the live
                            // per-cell ring: the context window is guaranteed
                            // present even if the cell's ring was disabled or
                            // had wrapped past the offending commands.
                            let recorder = violation_recorder(
                                stream,
                                ch.min(u8::MAX as usize) as u8,
                                idx,
                                BLACKBOX_CONTEXT,
                            );
                            // Under strict mode the run stops *at* the
                            // violation, black box first.
                            #[cfg(feature = "audit-strict")]
                            sdimm_audit::strict::abort_with_blackbox(
                                &instruments.sink,
                                &recorder,
                                &line,
                            );
                            #[cfg(not(feature = "audit-strict"))]
                            {
                                let prefix = if instruments.flight.is_enabled() {
                                    format!("{}-violation-pid{pid}", instruments.flight.prefix())
                                } else {
                                    format!("audit-violation-pid{pid}")
                                };
                                if recorder.arm_dump() {
                                    match recorder.dump_to_files(&prefix, &line, pid) {
                                        Some(Ok((txt, json))) => {
                                            log.blackbox_dumps.push(txt);
                                            log.blackbox_dumps.push(json);
                                        }
                                        Some(Err(e)) => log
                                            .blackbox_dumps
                                            .push(format!("(dump to {prefix} failed: {e})")),
                                        None => {}
                                    }
                                }
                                log.violations.push(line);
                            }
                        }
                    }
                }
                drop(log);
                // lint: panic-ok(lock poisoning means a worker panicked; propagating the panic is intended)
                results.lock().expect("results poisoned").push((
                    order,
                    Cell { workload: wname.to_string(), machine: kind.name(), result },
                ));
            });
        }
    });

    // lint: panic-ok(lock poisoning means a worker panicked; propagating the panic is intended)
    let mut cells = results.into_inner().expect("results poisoned");
    cells.sort_by_key(|(order, _)| *order);
    // lint: panic-ok(lock poisoning means a worker panicked; propagating the panic is intended)
    (cells.into_iter().map(|(_, c)| c).collect(), audit.into_inner().expect("audit log poisoned"))
}

/// Geometric mean of a slice (0.0 for empty input).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_mixes() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_empty_is_zero() {
        assert_eq!(geomean(&[]), 0.0);
    }
}
