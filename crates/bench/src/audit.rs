//! `--audit` routing for the figure binaries.
//!
//! When the flag is absent this is a zero-cost pass-through to
//! [`harness::run_matrix_traced`]. When present, every cell's DRAM
//! command streams are replayed through the differential DDR3 auditor
//! as it finishes, and each ORAM protocol kind appearing in the matrix
//! is additionally lockstep-checked against a shadow memory. Any
//! violation fails the process (exit 1); under the `audit-strict`
//! feature it aborts at the first DDR violation after dumping the
//! Chrome trace for Perfetto triage.

use std::collections::HashSet;

use sdimm_audit::oracle::{check_protocol, ProtocolKind};
use sdimm_system::machine::{MachineKind, SystemConfig};
use sdimm_telemetry::Instruments;

use crate::cli::TelemetryArgs;
use crate::harness::{self, Cell};
use crate::scale::Scale;

/// Tree depth of the oracle's lockstep runs: deep enough to exercise
/// recursion and eviction, small enough to stay a per-run rounding
/// error next to the experiment itself.
const ORACLE_LEVELS: u32 = 10;

/// Blocks and requests per oracle lockstep run.
const ORACLE_BLOCKS: u64 = 512;
const ORACLE_STEPS: usize = 300;

/// Runs the matrix, honoring `--audit`: pass-through when the flag is
/// off; full differential audit (DDR replay + ORAM oracle) when on.
///
/// On a violation, prints every finding and exits with status 1 so an
/// audited figure run can gate CI. With the `audit-strict` feature the
/// first DDR violation aborts immediately via
/// [`sdimm_audit::strict::abort_with_trace`].
pub fn run_matrix_maybe_audited(
    args: &TelemetryArgs,
    workload_names: &[&str],
    kinds: &[MachineKind],
    scale: Scale,
    make_cfg: impl Fn(MachineKind) -> SystemConfig + Sync,
    instruments: &Instruments,
    pid_base: u32,
) -> Vec<Cell> {
    if !args.audit {
        return harness::run_matrix_traced(
            workload_names,
            kinds,
            scale,
            make_cfg,
            instruments,
            pid_base,
        );
    }

    let (cells, ddr) =
        harness::run_matrix_audited(workload_names, kinds, scale, make_cfg, instruments, pid_base);

    let mut failed = false;
    for v in &ddr.violations {
        eprintln!("audit: DDR violation: {v}");
        failed = true;
    }
    for p in &ddr.blackbox_dumps {
        eprintln!("audit: black box at {p}");
    }
    // Under audit-strict a DDR violation already aborted inside the
    // worker (black box first); reaching this point with violations
    // means the feature is off and the run fails at the end instead.
    #[cfg(feature = "audit-strict")]
    if let Some(v) = ddr.violations.first() {
        sdimm_audit::strict::abort_with_trace(&instruments.sink, v);
    }

    // One oracle lockstep run per distinct protocol in the matrix. The
    // non-secure baseline has no ORAM to check.
    let mut seen: HashSet<String> = HashSet::new();
    let oracle_cfg = oram::types::OramConfig {
        levels: ORACLE_LEVELS,
        stash_limit: 100,
        ..oram::types::OramConfig::default()
    };
    for kind in kinds {
        let Some(proto) = oracle_kind(kind) else { continue };
        if !seen.insert(proto.to_string()) {
            continue;
        }
        match check_protocol(&proto, &oracle_cfg, ORACLE_BLOCKS, ORACLE_STEPS, 42) {
            Ok(rep) => eprintln!(
                "audit: oracle {}: {} requests in lockstep, stash peak {}",
                rep.protocol, rep.steps, rep.stash_peak
            ),
            Err(m) => {
                eprintln!("audit: ORACLE MISMATCH: {m}");
                #[cfg(feature = "audit-strict")]
                sdimm_audit::strict::abort_with_trace(&instruments.sink, &m.to_string());
                #[cfg(not(feature = "audit-strict"))]
                {
                    failed = true;
                }
            }
        }
    }

    if failed {
        eprintln!("audit: FAILED — see violations above");
        // Sanctioned exit: the audit gate failing must fail the run.
        #[allow(clippy::disallowed_methods)]
        std::process::exit(1);
    }
    eprintln!(
        "audit: clean — {} cells, {} DDR commands replayed ({} refreshes), {} protocol(s) in lockstep",
        ddr.cells,
        ddr.commands,
        ddr.refreshes,
        seen.len()
    );
    cells
}

/// The oracle configuration matching a machine kind, if it has an ORAM.
fn oracle_kind(kind: &MachineKind) -> Option<ProtocolKind> {
    match *kind {
        MachineKind::NonSecure { .. } => None,
        MachineKind::PathOram { .. } => Some(ProtocolKind::PathOram { sealed: false }),
        MachineKind::Freecursive { .. } => Some(ProtocolKind::Freecursive { tiny_plb: false }),
        MachineKind::Independent { sdimms, .. } => Some(ProtocolKind::Independent { sdimms }),
        MachineKind::Split { ways, .. } => Some(ProtocolKind::Split { ways }),
        MachineKind::IndepSplit { groups, ways, .. } => {
            Some(ProtocolKind::IndepSplit { groups, ways })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_kind_covers_every_machine() {
        assert!(oracle_kind(&MachineKind::NonSecure { channels: 1 }).is_none());
        assert_eq!(
            oracle_kind(&MachineKind::Independent { sdimms: 4, channels: 2 }),
            Some(ProtocolKind::Independent { sdimms: 4 })
        );
        assert_eq!(
            oracle_kind(&MachineKind::IndepSplit { groups: 2, ways: 2, channels: 2 }),
            Some(ProtocolKind::IndepSplit { groups: 2, ways: 2 })
        );
    }
}
