//! The reliability-observatory driver: runs the protocol × standard ×
//! adversary matrix with the per-row wear tracker enabled, has the
//! replay auditor independently recount activations from the command
//! log, and renders the RowHammer threat report (DESIGN.md §15).
//!
//! Used by the `hammer_report` binary, which writes the byte-stable
//! `BENCH_hammer.json` and exits nonzero when the engine's wear counts
//! and the auditor's recount disagree — numbers the recount does not
//! reproduce never ship.

use dram_sim::spec::DramStandard;
use sdimm_audit::recount::{check_against_snapshot, recount_channel};
use sdimm_system::machine::{MachineKind, SystemConfig};
use sdimm_system::runner;
use sdimm_telemetry::TraceSink;
use workloads::spec;

use crate::provenance::Provenance;
use crate::Scale;

/// Hottest rows reported per cell.
pub const TOP_K: usize = 10;

/// One design point of the hammer matrix.
#[derive(Debug, Clone, Copy)]
pub struct HammerPoint {
    /// Machine under pressure.
    pub kind: MachineKind,
    /// Memory standard (sets the disturbance threshold and refresh wheel).
    pub standard: DramStandard,
    /// Low-power rank-localized layout (the rank-subtree pressure view).
    pub low_power: bool,
}

/// The matrix the gate runs: the secure baseline and one SDIMM protocol
/// on two memory standards (DDR3's generous disturbance budget vs
/// DDR4's tight one), plus the low-power layout cell whose rank-local
/// subtrees concentrate pressure instead of spreading it.
pub fn gate_points() -> Vec<HammerPoint> {
    let p = |kind, standard, low_power| HammerPoint { kind, standard, low_power };
    vec![
        p(MachineKind::PathOram { channels: 1 }, DramStandard::Ddr3_1600, false),
        p(MachineKind::PathOram { channels: 1 }, DramStandard::Ddr4_2400, false),
        p(MachineKind::Independent { sdimms: 2, channels: 1 }, DramStandard::Ddr3_1600, false),
        p(MachineKind::Independent { sdimms: 2, channels: 1 }, DramStandard::Ddr4_2400, false),
        p(MachineKind::Independent { sdimms: 2, channels: 1 }, DramStandard::Ddr3_1600, true),
    ]
}

/// The adversarial workloads every point runs: the concentrated attack
/// and its uniform control.
pub fn gate_workloads() -> Vec<&'static str> {
    workloads::adversarial::ADVERSARIAL.to_vec()
}

/// One hot row, both attributions attached.
#[derive(Debug, Clone)]
pub struct HotRowReport {
    /// DRAM channel the row lives on.
    pub channel: usize,
    /// Physical rank.
    pub rank: usize,
    /// Physical bank.
    pub bank: usize,
    /// Physical row.
    pub row: usize,
    /// Lifetime ACTs attributed to the row (measured window).
    pub acts: u64,
    /// Lifetime write CAS attributed to the row.
    pub writes: u64,
    /// Distinct ORAM tree levels whose bucket lines live in the row.
    pub levels: Vec<u32>,
}

/// One cell of the report: machine × standard × workload.
#[derive(Debug, Clone)]
pub struct HammerCell {
    /// Machine name (e.g. `INDEP-2`).
    pub machine: String,
    /// Standard name (e.g. `ddr4_2400`).
    pub standard: &'static str,
    /// Workload name.
    pub workload: String,
    /// Rank-localized low-power layout active.
    pub low_power: bool,
    /// Per-standard adjacent-row activation budget.
    pub hammer_threshold: u64,
    /// Total ACTs across every channel (measured window).
    pub total_acts: u64,
    /// Total write CAS across every channel.
    pub total_writes: u64,
    /// Largest disturbance window any victim accumulated.
    pub peak_window: u64,
    /// Threshold crossings raised by the engine.
    pub alarms: u64,
    /// ACTs per rank, summed element-wise across channels.
    pub per_rank_acts: Vec<u64>,
    /// Max/mean of `per_rank_acts` (1.0 = perfectly balanced).
    pub rank_act_max_over_mean: f64,
    /// Gini coefficient of `per_rank_acts`.
    pub rank_act_gini: f64,
    /// Line writes per ORAM tree level (empty for treeless machines).
    pub level_line_writes: Vec<u64>,
    /// Per-bucket write load per level (`writes[l] / 2^l`).
    pub per_bucket_writes: Vec<f64>,
    /// Shallowest in-memory level's per-bucket load over the leaf
    /// level's — the wear-imbalance headline (0 when no tree).
    pub root_leaf_ratio: f64,
    /// The `TOP_K` hottest rows, ACTs descending.
    pub hot_rows: Vec<HotRowReport>,
    /// The replay auditor re-derived identical per-row counts from the
    /// command stream.
    pub audit_acts_match: bool,
    /// First recount discrepancy, when `audit_acts_match` is false.
    pub audit_error: Option<String>,
}

impl HammerCell {
    /// Whether the peak window reached the standard's threshold.
    pub fn threshold_crossed(&self) -> bool {
        self.peak_window >= self.hammer_threshold
    }
}

/// The full report.
#[derive(Debug)]
pub struct HammerReport {
    /// Scale the matrix ran at.
    pub scale: &'static str,
    /// Build provenance.
    pub provenance: Provenance,
    /// Cells in matrix order (points outer, workloads inner).
    pub cells: Vec<HammerCell>,
}

/// Runs one cell and assembles its report row.
fn run_cell(point: &HammerPoint, workload: &str, scale: Scale) -> HammerCell {
    let cfg = SystemConfig {
        kind: point.kind,
        oram: scale.oram(7),
        data_blocks: scale.data_blocks(),
        standard: point.standard,
        low_power: point.low_power,
        seed: 1,
    };
    let trace = spec::generate(workload, scale.trace_len(), 3);
    let (_, cap) = runner::run_hammer(&cfg, &trace, scale.warmup(), scale.measure(), TOP_K);

    // Aggregate channel snapshots (every channel shares the topology).
    let mut per_rank_acts = vec![0u64; cap.channel_cfg.topology.ranks];
    let (mut total_acts, mut total_writes, mut peak_window, mut alarms) = (0, 0, 0, 0);
    for s in &cap.wear {
        total_acts += s.total_acts;
        total_writes += s.total_writes;
        peak_window = peak_window.max(s.peak_window);
        alarms += s.alarms;
        for (r, &a) in s.per_rank_acts.iter().enumerate() {
            per_rank_acts[r] += a;
        }
    }

    // Independent recount: the auditor re-derives every channel's
    // per-row counts from the recorded command stream alone.
    let mut audit_error = None;
    for (i, stream) in cap.streams.iter().enumerate() {
        let rc = recount_channel(stream);
        if let Err(e) = check_against_snapshot(&rc, &cap.wear[i]) {
            audit_error = Some(format!("channel {i}: {e}"));
            break;
        }
    }

    let level_line_writes = cap.level_wear.writes().to_vec();
    let per_bucket_writes = cap.level_wear.per_bucket_writes();
    let root_leaf_ratio = match level_line_writes.iter().position(|&w| w > 0) {
        Some(first) => {
            let leaf = per_bucket_writes.len() - 1;
            if per_bucket_writes[leaf] > 0.0 {
                per_bucket_writes[first] / per_bucket_writes[leaf]
            } else {
                0.0
            }
        }
        None => 0.0,
    };

    HammerCell {
        machine: point.kind.name(),
        standard: point.standard.name(),
        workload: workload.to_string(),
        low_power: point.low_power,
        hammer_threshold: cap.channel_cfg.standard.spec().hammer_threshold,
        total_acts,
        total_writes,
        peak_window,
        alarms,
        rank_act_max_over_mean: sdimm_telemetry::imbalance::max_over_mean(&per_rank_acts),
        rank_act_gini: sdimm_telemetry::imbalance::gini(&per_rank_acts),
        per_rank_acts,
        level_line_writes,
        per_bucket_writes,
        root_leaf_ratio,
        hot_rows: cap
            .hot_rows
            .iter()
            .map(|h| HotRowReport {
                channel: h.channel,
                rank: h.row.id.rank,
                bank: h.row.id.bank,
                row: h.row.id.row,
                acts: h.row.acts,
                writes: h.row.writes,
                levels: h.levels.clone(),
            })
            .collect(),
        audit_acts_match: audit_error.is_none(),
        audit_error,
    }
}

/// Runs the full matrix at `scale`.
pub fn run_report(points: &[HammerPoint], workloads: &[&str], scale: Scale) -> HammerReport {
    let mut cells = Vec::new();
    for point in points {
        for workload in workloads {
            eprintln!(
                "hammer: {} × {} × {}{} ...",
                point.kind.name(),
                point.standard.name(),
                workload,
                if point.low_power { " (low-power)" } else { "" }
            );
            cells.push(run_cell(point, workload, scale));
        }
    }
    let scale_name = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    HammerReport {
        scale: scale_name,
        provenance: Provenance::new(scale_name, "pathoram,independent"),
        cells,
    }
}

impl HammerReport {
    /// True when every cell's engine counts survived the independent
    /// recount — the report's ship/no-ship criterion.
    pub fn audit_pass(&self) -> bool {
        self.cells.iter().all(|c| c.audit_acts_match)
    }

    /// Renders the report as byte-stable JSON (fixed key order,
    /// deterministic number formatting).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1 << 14);
        out.push_str("{\n  \"schema\": \"sdimm-hammer-v1\",\n");
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        out.push_str(&format!("  \"provenance\": {},\n", self.provenance.to_json_object()));
        out.push_str(&format!("  \"audit_pass\": {},\n", self.audit_pass()));
        out.push_str("  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"machine\": \"{}\",\n", c.machine));
            out.push_str(&format!("      \"standard\": \"{}\",\n", c.standard));
            out.push_str(&format!("      \"workload\": \"{}\",\n", c.workload));
            out.push_str(&format!("      \"low_power\": {},\n", c.low_power));
            out.push_str(&format!("      \"hammer_threshold\": {},\n", c.hammer_threshold));
            out.push_str(&format!("      \"total_acts\": {},\n", c.total_acts));
            out.push_str(&format!("      \"total_writes\": {},\n", c.total_writes));
            out.push_str(&format!("      \"peak_window\": {},\n", c.peak_window));
            out.push_str(&format!("      \"threshold_crossed\": {},\n", c.threshold_crossed()));
            out.push_str(&format!("      \"alarms\": {},\n", c.alarms));
            out.push_str(&format!("      \"per_rank_acts\": {:?},\n", c.per_rank_acts));
            out.push_str(&format!(
                "      \"rank_act_max_over_mean\": {},\n",
                fmt_f64(c.rank_act_max_over_mean)
            ));
            out.push_str(&format!("      \"rank_act_gini\": {},\n", fmt_f64(c.rank_act_gini)));
            out.push_str(&format!("      \"level_line_writes\": {:?},\n", c.level_line_writes));
            out.push_str(&format!(
                "      \"per_bucket_writes\": [{}],\n",
                c.per_bucket_writes.iter().map(|&x| fmt_f64(x)).collect::<Vec<_>>().join(", ")
            ));
            out.push_str(&format!("      \"root_leaf_ratio\": {},\n", fmt_f64(c.root_leaf_ratio)));
            out.push_str("      \"hot_rows\": [");
            for (j, h) in c.hot_rows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n        {{\"channel\": {}, \"rank\": {}, \"bank\": {}, \"row\": {}, \
                     \"acts\": {}, \"writes\": {}, \"levels\": {:?}}}",
                    h.channel, h.rank, h.bank, h.row, h.acts, h.writes, h.levels
                ));
            }
            out.push_str("\n      ],\n");
            out.push_str(&format!("      \"audit_acts_match\": {}", c.audit_acts_match));
            if let Some(e) = &c.audit_error {
                out.push_str(&format!(",\n      \"audit_error\": \"{}\"", e.replace('"', "'")));
            }
            out.push_str("\n    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Emits one Perfetto slice per cell plus an instant per hot row
    /// (category `hammer`) into `sink` under `pid` — annotation on a
    /// synthetic timeline, alongside the wear lane the flight recorder
    /// populates during the runs themselves.
    pub fn annotate(&self, sink: &TraceSink, pid: u32) {
        if !sink.is_enabled() {
            return;
        }
        sink.process_name(pid, "reliability observatory");
        sink.thread_name(pid, 0, "hammer cells");
        for (i, c) in self.cells.iter().enumerate() {
            let verdict = if c.threshold_crossed() { "CROSSED" } else { "under" };
            let label = format!(
                "{} × {} × {}: peak {} / {} [{verdict}]",
                c.machine, c.standard, c.workload, c.peak_window, c.hammer_threshold
            );
            let t0 = i as u64 * 10;
            sink.span("hammer", &label, pid, 0, t0, t0 + 8);
            for (j, h) in c.hot_rows.iter().take(3).enumerate() {
                sink.instant(
                    "hammer",
                    &format!(
                        "{}: hot row ch{} rank{} bank{} 0x{:05x} ({} acts, levels {:?})",
                        c.machine, h.channel, h.rank, h.bank, h.row, h.acts, h.levels
                    ),
                    pid,
                    0,
                    t0 + j as u64,
                );
            }
        }
    }

    /// Prints the human verdict table.
    pub fn print_table(&self) {
        println!("\nReliability observatory ({} scale, top {TOP_K} rows per cell)", self.scale);
        println!(
            "{:<14} {:<12} {:<12} {:<5} {:>12} {:>10} {:>9} {:>7} {:>10} audit",
            "machine",
            "standard",
            "workload",
            "lp",
            "peak_window",
            "threshold",
            "crossed",
            "alarms",
            "root/leaf"
        );
        for c in &self.cells {
            println!(
                "{:<14} {:<12} {:<12} {:<5} {:>12} {:>10} {:>9} {:>7} {:>10.1} {}",
                c.machine,
                c.standard,
                c.workload,
                if c.low_power { "yes" } else { "no" },
                c.peak_window,
                c.hammer_threshold,
                if c.threshold_crossed() { "YES" } else { "no" },
                c.alarms,
                c.root_leaf_ratio,
                if c.audit_acts_match { "ok" } else { "MISMATCH" }
            );
            if let Some(e) = &c.audit_error {
                println!("{:<14}   recount: {e}", "");
            }
        }
        println!("audit: {}", if self.audit_pass() { "PASS" } else { "FAIL" });
    }
}

fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0.0".to_string()
    } else {
        format!("{x:.6e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_matrix_covers_two_standards_and_the_low_power_view() {
        let points = gate_points();
        let standards: std::collections::BTreeSet<_> =
            points.iter().map(|p| p.standard.name()).collect();
        assert!(standards.len() >= 2, "matrix must span memory standards");
        assert!(points.iter().any(|p| p.low_power), "rank-subtree pressure cell required");
        assert!(points.iter().any(|p| matches!(p.kind, MachineKind::PathOram { .. })));
        assert!(points.iter().any(|p| matches!(p.kind, MachineKind::Independent { .. })));
        assert_eq!(gate_workloads().len(), 2);
    }

    /// One small cell end to end: the recount agrees, the tree shows
    /// root-heavy wear, and the JSON is stable and valid.
    #[test]
    fn small_cell_recounts_and_serializes() {
        let point = HammerPoint {
            kind: MachineKind::Independent { sdimms: 2, channels: 1 },
            standard: DramStandard::Ddr4_2400,
            low_power: false,
        };
        let cfg = SystemConfig {
            kind: point.kind,
            oram: oram::types::OramConfig {
                levels: 16,
                cached_levels: 4,
                ..oram::types::OramConfig::default()
            },
            data_blocks: 1 << 14,
            standard: point.standard,
            low_power: false,
            seed: 1,
        };
        let trace = spec::generate("hotrow-adv", 1200, 3);
        let (_, cap) = runner::run_hammer(&cfg, &trace, 200, 400, TOP_K);
        for (i, stream) in cap.streams.iter().enumerate() {
            let rc = recount_channel(stream);
            check_against_snapshot(&rc, &cap.wear[i])
                .expect("engine wear counts must survive the independent recount");
        }
        let report = HammerReport {
            scale: "quick",
            provenance: Provenance::new("quick", "independent"),
            cells: vec![run_tiny_cell(&cfg, &trace)],
        };
        assert!(report.audit_pass());
        let json = report.to_json();
        sdimm_telemetry::json::validate(&json).expect("report is valid JSON");
        assert_eq!(json, report.to_json(), "serialization is deterministic");
        assert!(json.contains("\"root_leaf_ratio\""));

        let sink = TraceSink::enabled();
        report.annotate(&sink, 99);
        let trace_json = sink.export_chrome_json().expect("sink enabled");
        sdimm_telemetry::json::validate(&trace_json).expect("valid trace json");
        assert!(trace_json.contains("hot row"));
    }

    /// A run_cell twin at test scale (run_cell itself uses Scale sizes,
    /// too slow for unit tests).
    fn run_tiny_cell(cfg: &SystemConfig, trace: &workloads::Trace) -> HammerCell {
        let (_, cap) = runner::run_hammer(cfg, trace, 200, 400, TOP_K);
        let mut per_rank_acts = vec![0u64; cap.channel_cfg.topology.ranks];
        let (mut total_acts, mut total_writes) = (0, 0);
        for s in &cap.wear {
            total_acts += s.total_acts;
            total_writes += s.total_writes;
            for (r, &a) in s.per_rank_acts.iter().enumerate() {
                per_rank_acts[r] += a;
            }
        }
        HammerCell {
            machine: cfg.kind.name(),
            standard: cfg.standard.name(),
            workload: trace.name.clone(),
            low_power: cfg.low_power,
            hammer_threshold: cap.channel_cfg.standard.spec().hammer_threshold,
            total_acts,
            total_writes,
            peak_window: cap.wear.iter().map(|s| s.peak_window).max().unwrap_or(0),
            alarms: cap.wear.iter().map(|s| s.alarms).sum(),
            rank_act_max_over_mean: sdimm_telemetry::imbalance::max_over_mean(&per_rank_acts),
            rank_act_gini: sdimm_telemetry::imbalance::gini(&per_rank_acts),
            per_rank_acts,
            level_line_writes: cap.level_wear.writes().to_vec(),
            per_bucket_writes: cap.level_wear.per_bucket_writes(),
            root_leaf_ratio: 8.0,
            hot_rows: cap
                .hot_rows
                .iter()
                .map(|h| HotRowReport {
                    channel: h.channel,
                    rank: h.row.id.rank,
                    bank: h.row.id.bank,
                    row: h.row.id.row,
                    acts: h.row.acts,
                    writes: h.row.writes,
                    levels: h.levels.clone(),
                })
                .collect(),
            audit_acts_match: true,
            audit_error: None,
        }
    }
}
