//! The timing-leakage observatory driver: runs the protocol ×
//! workload-pair matrix through the full simulator, feeds both
//! attacker-vantage captures to `sdimm-leakage`, and renders the gated
//! report (see DESIGN.md §11).
//!
//! Used two ways:
//!
//! * the `leakage_gate` binary runs [`gate_kinds`] and fails the build
//!   when any secure protocol is distinguishable *or* the NonSecure
//!   baseline is not (the battery's power check);
//! * every `run_matrix` figure binary accepts `--leakage <report.json>`
//!   and calls [`write_if_requested`] with its own protocol set, so any
//!   figure's design points can be re-audited for timing leakage.

use dram_sim::spec::DramStandard;
use sdimm_leakage::{analyze_pair, AnalysisConfig, Capture, EntryReport, LeakageReport};
use sdimm_system::machine::{MachineKind, SystemConfig};
use sdimm_system::runner;
use sdimm_telemetry::recorder::write_atomic;
use sdimm_telemetry::Instruments;
use workloads::leakage::{pairs, required_blocks};
use workloads::Trace;

use crate::{Scale, TelemetryArgs};

/// Synthetic Perfetto pid for the report's annotation slices (far above
/// any cell pid a figure matrix allocates).
const ANNOTATION_PID: u32 = 9_000;

/// The gate's protocol matrix: every paper design point at its smallest
/// arity, plus the NonSecure baseline whose *detection* proves the
/// statistics have power.
pub fn gate_kinds() -> Vec<MachineKind> {
    vec![
        MachineKind::NonSecure { channels: 1 },
        MachineKind::PathOram { channels: 1 },
        MachineKind::Freecursive { channels: 1 },
        MachineKind::Independent { sdimms: 2, channels: 1 },
        MachineKind::Split { ways: 2, channels: 1 },
        MachineKind::IndepSplit { groups: 2, ways: 2, channels: 2 },
    ]
}

/// Whether a design point claims obliviousness. Exhaustive on purpose:
/// a new machine kind must declare its expectation here before the gate
/// will build.
pub fn is_secure(kind: &MachineKind) -> bool {
    match kind {
        MachineKind::NonSecure { .. } => false,
        MachineKind::PathOram { .. }
        | MachineKind::Freecursive { .. }
        | MachineKind::Independent { .. }
        | MachineKind::Split { .. }
        | MachineKind::IndepSplit { .. } => true,
    }
}

fn capture(cfg: &SystemConfig, trace: &Trace, warmup: usize, measure: usize) -> Capture {
    let (_, cap) = runner::run_leakage(cfg, trace, warmup, measure);
    Capture {
        ranks: cap.channel_cfg.topology.ranks,
        banks: cap.channel_cfg.topology.banks,
        streams: cap.streams,
        observables: cap.observables,
    }
}

/// Runs the machine × pair matrix at `scale` on `standard` and
/// assembles the report.
///
/// # Panics
///
/// Panics if `scale` provides fewer data blocks than the paired
/// generators address (cannot happen for the built-in scales).
pub fn run_report(kinds: &[MachineKind], scale: Scale, standard: DramStandard) -> LeakageReport {
    let warmup = scale.warmup();
    let measure = scale.measure();
    let acfg = AnalysisConfig::default();
    let pair_set = pairs(warmup, measure);
    let mut entries = Vec::new();
    for kind in kinds {
        let cfg = SystemConfig {
            kind: *kind,
            oram: scale.oram(7),
            data_blocks: scale.data_blocks(),
            standard,
            low_power: false,
            seed: 1,
        };
        assert!(
            cfg.data_blocks >= required_blocks(warmup, measure),
            "scale too small for the leakage pairs"
        );
        for pair in &pair_set {
            eprintln!("leakage: {} × {} ...", kind.name(), pair.name);
            let a = capture(&cfg, &pair.a, warmup, measure);
            let b = capture(&cfg, &pair.b, warmup, measure);
            let analysis = analyze_pair(&acfg, &a, &b);
            entries.push(EntryReport {
                machine: kind.name(),
                secure: is_secure(kind),
                pair: pair.name.to_string(),
                contrast: pair.contrast.to_string(),
                analysis,
                expected_distinguishable: !is_secure(kind),
            });
        }
    }
    let scale_name = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    LeakageReport { scale: scale_name.to_string(), alpha_family: acfg.alpha_family, entries }
}

/// Prints the verdict matrix as a human table.
pub fn print_table(report: &LeakageReport) {
    println!(
        "\nTiming-leakage observatory ({} scale, family α = {:.0e})",
        report.scale, report.alpha_family
    );
    println!("{:<16} {:<20} {:<16} {:<10} status", "machine", "pair", "verdict", "expected");
    for e in &report.entries {
        let verdict = if e.analysis.distinguishable { "DISTINGUISHABLE" } else { "indist" };
        let expected = if e.expected_distinguishable { "leaky" } else { "indist" };
        let status = if e.pass() { "ok" } else { "FAIL" };
        println!("{:<16} {:<20} {:<16} {:<10} {}", e.machine, e.pair, verdict, expected, status);
        for t in e.analysis.tests.iter().filter(|t| t.significant) {
            println!(
                "{:<16}   leak signal: {} (stat {:.4}, p {:.3e}, effect {:.3})",
                "", t.name, t.statistic, t.p, t.effect
            );
        }
    }
    println!(
        "gate: {} ({} secure leak(s), {} power failure(s))",
        if report.gate_pass() { "PASS" } else { "FAIL" },
        report.secure_failures(),
        report.power_failures()
    );
}

/// Figure-binary hook for `--leakage <report.json>`: when the flag was
/// given, runs the leakage matrix over this figure's design points,
/// writes the byte-stable report, and (if a trace is being captured)
/// adds the verdict slices to the Perfetto export. No-op without the
/// flag.
pub fn write_if_requested(
    telemetry: &TelemetryArgs,
    kinds: &[MachineKind],
    scale: Scale,
    instruments: &Instruments,
) {
    let Some(path) = &telemetry.leakage else {
        return;
    };
    let report = run_report(kinds, scale, telemetry.standard);
    print_table(&report);
    report.annotate(&instruments.sink, ANNOTATION_PID);
    if let Err(e) = write_atomic(path, &report.to_json()) {
        eprintln!("failed to write leakage report to {path}: {e}");
        // Sanctioned exit: losing a requested output file must fail the run.
        #[allow(clippy::disallowed_methods)]
        std::process::exit(1);
    }
    println!("leakage report written to {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_kinds_cover_all_protocols_once() {
        let kinds = gate_kinds();
        assert_eq!(kinds.len(), 6);
        assert_eq!(kinds.iter().filter(|k| !is_secure(k)).count(), 1);
    }

    #[test]
    fn scales_fit_the_pair_generators() {
        for scale in [Scale::Quick, Scale::Full] {
            assert!(scale.data_blocks() >= required_blocks(scale.warmup(), scale.measure()));
        }
    }
}
