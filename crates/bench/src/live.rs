//! Wall-clock renderer for the `--live` run dashboard.
//!
//! The split keeps responsibilities clean: library crates publish
//! simulated-time facts into [`LiveProgress`] (print-free under the L3
//! lint, no wall clocks under the clippy `Instant::now` ban), while
//! this bench-side renderer owns the two things only a binary should:
//! the wall clock (for ETA) and the redraw cadence. The actual stderr
//! write still goes through [`LiveProgress::write_status`], the one
//! sanctioned choke point.
//!
//! A [`LiveView`] spawned from a disabled [`LiveProgress`] is a no-op
//! handle, so figure binaries can construct one unconditionally.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use sdimm_telemetry::{LiveProgress, LiveSnapshot};

/// Redraw period of the status line.
const REDRAW: Duration = Duration::from_millis(250);

/// Background status-line renderer; stops (and erases the line) when
/// dropped or explicitly [`finish`](LiveView::finish)ed.
#[derive(Debug)]
pub struct LiveView {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    live: LiveProgress,
}

impl LiveView {
    /// Spawns the renderer thread over `live`; a disabled handle yields
    /// an inert view (no thread, no output).
    pub fn spawn(live: LiveProgress) -> LiveView {
        if !live.is_enabled() {
            return LiveView { stop: Arc::new(AtomicBool::new(true)), handle: None, live };
        }
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let state = live.clone();
        // Wall clock is the point here: ETA for the human watching the
        // run. Confined to this renderer thread in a bench binary path.
        #[allow(clippy::disallowed_methods)]
        let start = std::time::Instant::now();
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                if let Some(snap) = state.snapshot() {
                    #[allow(clippy::disallowed_methods)]
                    let elapsed = start.elapsed().as_secs_f64();
                    state.write_status(&render(&snap, elapsed));
                }
                std::thread::sleep(REDRAW);
            }
        });
        LiveView { stop, handle: Some(handle), live }
    }

    /// Stops the renderer and erases the status line.
    pub fn finish(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            let _ = handle.join();
            self.live.finish_status();
        }
    }
}

impl Drop for LiveView {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Formats one status line from a snapshot and the wall time elapsed
/// since the view started. Pure, so the format is unit-testable.
fn render(snap: &LiveSnapshot, elapsed_secs: f64) -> String {
    let eta = if snap.done > 0 && snap.total > snap.done {
        let per_cell = elapsed_secs / snap.done as f64;
        format!("ETA {:.0}s", per_cell * (snap.total - snap.done) as f64)
    } else {
        "ETA --".to_string()
    };
    let cell = if snap.label.is_empty() { "(starting)".to_string() } else { snap.label.clone() };
    format!(
        "[live] {}/{} cells · {eta} · {cell} · miss p50 {} p99 {} cyc ({} misses) · stash peak {}",
        snap.done, snap.total, snap.miss_p50, snap.miss_p99, snap.misses, snap.stash_peak
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(done: usize, total: usize) -> LiveSnapshot {
        LiveSnapshot {
            done,
            total,
            label: "linear.SDIMM-SPLIT".to_string(),
            miss_p50: 400,
            miss_p99: 1900,
            misses: 1234,
            stash_peak: 37,
        }
    }

    #[test]
    fn render_shows_progress_and_eta_from_throughput() {
        let line = render(&snap(2, 8), 10.0);
        assert!(line.contains("2/8 cells"), "{line}");
        // 5 s/cell observed, 6 cells left.
        assert!(line.contains("ETA 30s"), "{line}");
        assert!(line.contains("linear.SDIMM-SPLIT"), "{line}");
        assert!(line.contains("p50 400 p99 1900"), "{line}");
        assert!(line.contains("stash peak 37"), "{line}");
    }

    #[test]
    fn render_has_no_eta_before_the_first_cell_or_after_the_last() {
        assert!(render(&snap(0, 8), 3.0).contains("ETA --"));
        assert!(render(&snap(8, 8), 3.0).contains("ETA --"));
    }

    #[test]
    fn disabled_view_is_inert() {
        let view = LiveView::spawn(LiveProgress::disabled());
        assert!(view.handle.is_none());
        view.finish();
    }
}
