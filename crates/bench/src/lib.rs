//! `sdimm-bench` — the harness regenerating every table and figure of the
//! paper's evaluation (see DESIGN.md §3 for the experiment index).
//!
//! Each `fig*`/`table*` binary in `src/bin/` prints the rows/series of
//! one paper artifact; Criterion micro-benchmarks live in `benches/`.
//! Extension experiments (`stash`, `coresident`) and diagnostics
//! (`probe`, `probe2`, `calibrate`) are binaries here too — see
//! EXPERIMENTS.md for what each one demonstrates.
//!
//! Run scale is controlled by the `SDIMM_BENCH_SCALE` environment
//! variable: `quick` (default — minutes, smaller trees/windows) or
//! `full` (closer to the paper's 28-level trees and larger windows).
//! Absolute numbers differ from the paper's Simics/USIMM testbed either
//! way; the reproduction target is the *shape* (who wins, by roughly
//! what factor), recorded in EXPERIMENTS.md.

#![deny(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod audit;
pub mod cli;
pub mod hammer;
pub mod harness;
pub mod leakage;
pub mod live;
pub mod provenance;
pub mod scale;
pub mod table;

pub use audit::run_matrix_maybe_audited;
pub use cli::TelemetryArgs;
pub use harness::{run_matrix, run_matrix_audited, run_matrix_traced, Cell, DdrAuditLog};
pub use live::LiveView;
pub use scale::Scale;
