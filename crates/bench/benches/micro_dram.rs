//! Microbenchmarks for the DDR3 channel model: simulation rate for
//! streaming and random request mixes (simulator performance, not DRAM
//! performance).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dram_sim::channel::DramChannel;
use dram_sim::config::ChannelConfig;

fn quiet() -> ChannelConfig {
    let mut cfg = ChannelConfig::table2();
    cfg.refresh_enabled = false;
    cfg
}

fn bench_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram_channel");
    g.throughput(Throughput::Elements(256));
    g.bench_function("stream_256_reads", |b| {
        b.iter(|| {
            let mut ch = DramChannel::new(quiet());
            let mut issued = 0u64;
            while issued < 256 {
                if ch.enqueue_read(issued * 64).is_some() {
                    issued += 1;
                } else {
                    ch.tick(64);
                    ch.drain_completions();
                }
            }
            ch.run_until_idle(1_000_000)
        })
    });
    g.bench_function("random_256_reads", |b| {
        b.iter(|| {
            let mut ch = DramChannel::new(quiet());
            let mut issued = 0u64;
            while issued < 256 {
                let addr = (issued * 1_000_003) % (1 << 30);
                if ch.enqueue_read(addr / 64 * 64).is_some() {
                    issued += 1;
                } else {
                    ch.tick(64);
                    ch.drain_completions();
                }
            }
            ch.run_until_idle(2_000_000)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
