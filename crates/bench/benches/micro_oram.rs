//! Microbenchmarks for the ORAM layer: raw accessORAM rate, stash
//! eviction, Freecursive requests (recursion + PLB), and the distributed
//! protocols' functional access rate.

use criterion::{criterion_group, criterion_main, Criterion};
use oram::types::{BlockId, Op, OramConfig};
use oram::{FreecursiveOram, PathOram};
use sdimm::independent::{IndependentConfig, IndependentOram};
use sdimm::split::{SplitConfig, SplitOram};

fn cfg() -> OramConfig {
    OramConfig { levels: 14, stash_limit: 200, ..OramConfig::default() }
}

fn bench_path_oram(c: &mut Criterion) {
    let mut oram = PathOram::new(cfg(), 4096, 1);
    let mut i = 0u64;
    c.bench_function("path_oram/access", |b| {
        b.iter(|| {
            i = (i + 1) % 4096;
            oram.access(BlockId(i), Op::Read, None)
        })
    });
}

fn bench_freecursive(c: &mut Criterion) {
    let mut oram = FreecursiveOram::new(cfg(), 4096, 2);
    let mut i = 0u64;
    c.bench_function("freecursive/request", |b| {
        b.iter(|| {
            i = (i + 7) % 4096;
            oram.request(i, Op::Read, None)
        })
    });
}

fn bench_independent(c: &mut Criterion) {
    let global = cfg();
    let mut oram = IndependentOram::new(IndependentConfig::new(2, &global), 4096, 3);
    let mut i = 0u64;
    c.bench_function("independent/access", |b| {
        b.iter(|| {
            i = (i + 13) % 4096;
            oram.access(BlockId(i), Op::Read, None)
        })
    });
}

fn bench_split(c: &mut Criterion) {
    let mut oram = SplitOram::new(SplitConfig::new(2, &cfg()), 4096, 4);
    let mut i = 0u64;
    c.bench_function("split/access", |b| {
        b.iter(|| {
            i = (i + 17) % 4096;
            oram.access(BlockId(i), Op::Read, None)
        })
    });
}

criterion_group!(benches, bench_path_oram, bench_freecursive, bench_independent, bench_split);
criterion_main!(benches);
