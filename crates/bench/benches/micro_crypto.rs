//! Microbenchmarks for the cryptographic substrate: AES block rate, CTR
//! cache-line encryption, CMAC tagging, and PMMAC bucket seal/open — the
//! operations behind the 21-cycle crypto latency charged in simulation.
//!
//! `aes128/encrypt_block` vs `aes128/encrypt_block_spec` is the acceptance
//! measurement for the T-table fast path: the first runs the production
//! cipher, the second the retained byte-oriented reference module.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sdimm_crypto::aes::{spec, Aes128};
use sdimm_crypto::ctr::CtrCipher;
use sdimm_crypto::mac::Cmac;
use sdimm_crypto::pmmac::BucketAuth;

/// Serialized Z=4 bucket of 64-byte payloads: 8-byte counter plus four
/// (16-byte header + 64-byte payload) slots.
const BUCKET_IMAGE_LEN: usize = 8 + 4 * (16 + 64);

fn bench_aes(c: &mut Criterion) {
    let cipher = Aes128::new(&[7u8; 16]);
    let reference = spec::Aes128::new(&[7u8; 16]);
    let mut g = c.benchmark_group("aes128");
    g.throughput(Throughput::Bytes(16));
    g.bench_function("encrypt_block", |b| {
        b.iter(|| cipher.encrypt_block(std::hint::black_box([42u8; 16])))
    });
    g.bench_function("encrypt_block_spec", |b| {
        b.iter(|| reference.encrypt_block(std::hint::black_box([42u8; 16])))
    });
    g.finish();

    // Batched path: 32 blocks per call, the shape used by path-granularity
    // keystream sweeps. Throughput covers the whole batch.
    let mut g = c.benchmark_group("aes128_batch");
    g.throughput(Throughput::Bytes(32 * 16));
    g.bench_function("encrypt_blocks_x32", |b| {
        let mut blocks = [[0x42u8; 16]; 32];
        b.iter(|| {
            cipher.encrypt_blocks(std::hint::black_box(&mut blocks));
        })
    });
    g.finish();
}

fn bench_ctr(c: &mut Criterion) {
    let ctr = CtrCipher::new(Aes128::new(&[1u8; 16]), 99);
    let mut g = c.benchmark_group("ctr");
    g.throughput(Throughput::Bytes(64));
    g.bench_function("cache_line_64B", |b| {
        b.iter_batched(|| [0xA5u8; 64], |mut line| ctr.apply(123, &mut line), BatchSize::SmallInput)
    });
    g.bench_function("keystream_line", |b| {
        // Pure pad generation for one 64-byte line: four pads in one
        // batched AES pass, no data XOR.
        b.iter(|| ctr.keystream_line(std::hint::black_box(123)))
    });
    g.finish();
}

fn bench_cmac(c: &mut Criterion) {
    let mac = Cmac::new(&[2u8; 16]);
    let bucket_image = vec![0x5Au8; BUCKET_IMAGE_LEN];
    let mut g = c.benchmark_group("cmac");
    g.throughput(Throughput::Bytes(bucket_image.len() as u64));
    g.bench_function("bucket_tag", |b| b.iter(|| mac.tag(std::hint::black_box(&bucket_image))));
    g.finish();
}

fn bench_pmmac(c: &mut Criterion) {
    let auth = BucketAuth::new(&[3u8; 16], &[4u8; 16]);
    let plain = vec![0xC3u8; BUCKET_IMAGE_LEN];
    let sealed = auth.seal(77, 5, &plain);
    let mut g = c.benchmark_group("pmmac");
    g.throughput(Throughput::Bytes(BUCKET_IMAGE_LEN as u64));
    g.bench_function("seal_bucket", |b| b.iter(|| auth.seal(std::hint::black_box(77), 5, &plain)));
    g.bench_function("open_bucket", |b| {
        b.iter(|| auth.open(77, std::hint::black_box(&sealed)).expect("valid"))
    });
    g.bench_function("seal_open_roundtrip", |b| {
        // The full integrity path for one bucket store+load: encrypt and
        // tag, then verify and decrypt.
        b.iter(|| {
            let s = auth.seal(std::hint::black_box(77), 5, &plain);
            auth.open(77, &s).expect("fresh seal opens")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_aes, bench_ctr, bench_cmac, bench_pmmac);
criterion_main!(benches);
