//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! FR-FCFS vs FCFS scheduling, subtree-packed vs flat ORAM layout, PLB
//! size, blocks-per-bucket Z, and the transfer-queue drain probability.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dram_sim::channel::DramChannel;
use dram_sim::config::{ChannelConfig, SchedulerPolicy};
use oram::layout::TreeLayout;
use oram::plb::Plb;
use oram::types::{BlockId, Op, OramConfig};
use oram::{FreecursiveOram, PathOram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdimm::transfer_queue::TransferQueue;

/// FR-FCFS vs FCFS on an ORAM-like line pattern (bursts of adjacent
/// lines from different rows).
fn ablation_sched(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_sched");
    for policy in [SchedulerPolicy::FrFcfs, SchedulerPolicy::Fcfs] {
        g.bench_with_input(
            BenchmarkId::new("path_replay", format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut cfg = ChannelConfig::table2();
                    cfg.refresh_enabled = false;
                    cfg.scheduler = policy;
                    let mut ch = DramChannel::new(cfg);
                    // 16 buckets x 5 adjacent lines at scattered rows.
                    let mut issued = 0;
                    for bucket in 0..16u64 {
                        let base = bucket * 7919 * 320;
                        for line in 0..5u64 {
                            if ch.enqueue_read(base + line * 64).is_some() {
                                issued += 1;
                            }
                        }
                    }
                    let done = ch.run_until_idle(1_000_000);
                    assert_eq!(done.len(), issued);
                    ch.now()
                })
            },
        );
    }
    g.finish();
}

/// Subtree-packed layout (4 levels/row) vs degenerate 1-level packing:
/// row-buffer hit rate shows up as total replay cycles.
fn ablation_layout(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_layout");
    for subtree_levels in [1u32, 4] {
        g.bench_with_input(
            BenchmarkId::new("path_cycles", subtree_levels),
            &subtree_levels,
            |b, &lv| {
                let cfg = OramConfig { levels: 14, ..OramConfig::default() };
                let mut oram = PathOram::new(cfg.clone(), 4096, 9);
                oram.set_layout(TreeLayout::subtree_packed(&cfg, lv));
                b.iter(|| {
                    let (_, plan) = oram.access(BlockId(1), Op::Read, None);
                    let mut ch_cfg = ChannelConfig::table2();
                    ch_cfg.refresh_enabled = false;
                    let mut ch = DramChannel::new(ch_cfg);
                    for addr in &plan.read_lines {
                        while ch.enqueue_read(*addr).is_none() {
                            ch.tick(64);
                            ch.drain_completions();
                        }
                    }
                    ch.run_until_idle(1_000_000);
                    ch.now()
                })
            },
        );
    }
    g.finish();
}

/// PLB size sweep: accesses per request drop as the PLB grows.
fn ablation_plb(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_plb");
    for blocks in [64usize, 256, 1024] {
        g.bench_with_input(BenchmarkId::new("requests", blocks), &blocks, |b, &blocks| {
            b.iter(|| {
                let cfg = OramConfig { levels: 14, ..OramConfig::default() };
                let mut f = FreecursiveOram::new(cfg, 8192, 31);
                f.set_plb(Plb::new(blocks, 8));
                let mut rng = StdRng::seed_from_u64(5);
                for _ in 0..200 {
                    let idx = rng.gen_range(0..8192u64);
                    f.request(idx, Op::Read, None);
                }
                f.stats().accesses_per_request()
            })
        });
    }
    g.finish();
}

/// Z sweep: total lines per access is 2(Z+1)L — and stash pressure falls
/// as Z grows.
fn ablation_z(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_z");
    for z in [2usize, 4, 6] {
        g.bench_with_input(BenchmarkId::new("accesses", z), &z, |b, &z| {
            b.iter(|| {
                let cfg = OramConfig { levels: 12, z, ..OramConfig::default() };
                let blocks = cfg.block_capacity() / 4;
                let mut oram = PathOram::new(cfg, blocks, 17);
                let mut rng = StdRng::seed_from_u64(7);
                for _ in 0..100 {
                    let id = BlockId(rng.gen_range(0..blocks));
                    oram.access(id, Op::Read, None);
                    if oram.needs_background_evict() {
                        oram.background_evict();
                    }
                }
                oram.stash_peak()
            })
        });
    }
    g.finish();
}

/// Drain-probability sweep (ties to Fig 13b): forced drains per 10k
/// arrivals vs peak occupancy.
fn ablation_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_drain");
    for p in [0.02f64, 0.1, 0.25] {
        g.bench_with_input(BenchmarkId::new("walk", format!("{p}")), &p, |b, &p| {
            b.iter(|| {
                let mut q = TransferQueue::new(128, p);
                let mut rng = StdRng::seed_from_u64(3);
                for _ in 0..10_000 {
                    match rng.gen_range(0..4) {
                        0 => {
                            q.arrive();
                        }
                        1 => {
                            q.vacancy();
                        }
                        _ => {}
                    }
                    q.maybe_force_drain(&mut rng);
                }
                (q.peak(), q.forced_drains(), q.overflows())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_sched,
    ablation_layout,
    ablation_plb,
    ablation_z,
    ablation_drain
);
criterion_main!(benches);
