//! `sdimm-analytic` — the closed-form models backing §IV-B/§IV-C of the
//! Secure DIMM paper.
//!
//! * [`random_walk`] — the transfer-queue random walk of Fig 13a: any
//!   finite queue saturates without forced drains.
//! * [`mm1k`] — the M/M/1/K overflow model of Fig 13b: a small drain
//!   probability makes overflow negligible.
//! * [`bandwidth`] — off-DIMM traffic formulas (`2(Z+1)L` baseline vs
//!   the Independent/Split message counts) behind experiment X1.
//! * [`area`] — the <1 mm² secure-buffer area estimate.
//!
//! # Example
//!
//! ```
//! // A 16-slot transfer queue overflows almost surely without draining…
//! let p = sdimm_analytic::random_walk::overflow_probability(
//!     16, 100_000, sdimm_analytic::random_walk::WalkParams::default());
//! assert!(p > 0.9);
//! // …but a 10% forced-drain probability makes a 32-slot queue safe.
//! assert!(sdimm_analytic::mm1k::overflow_probability(0.1, 32) < 1e-4);
//! ```

#![deny(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod area;
pub mod bandwidth;
pub mod mm1k;
pub mod random_walk;
