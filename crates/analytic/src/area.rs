//! Secure-buffer area model (§IV-B, "Area Overhead").
//!
//! The SDIMM buffer chip adds two components to an LRDIMM buffer: an
//! ORAM controller (Fletcher et al. report 0.47 mm² at 32 nm for the
//! Tiny ORAM controller) and an 8 KB overflow buffer (≈0.42 mm² at the
//! same node per CACTI 6.5). The paper's claim: total overhead < 1 mm².

/// Area of one secure-buffer component, in mm² at 32 nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    /// Component name.
    pub name: &'static str,
    /// Area in mm².
    pub mm2: f64,
}

/// The ORAM controller macro (Fletcher et al., 32 nm).
pub const ORAM_CONTROLLER: Component = Component { name: "ORAM controller", mm2: 0.47 };

/// SRAM area per KB at 32 nm, calibrated so an 8 KB buffer costs the
/// paper's 0.42 mm² (CACTI 6.5 includes decoders/sense amps, hence the
/// seemingly high per-KB figure at this small macro size).
pub const SRAM_MM2_PER_KB: f64 = 0.42 / 8.0;

/// Area of an SRAM buffer of `kb` kilobytes.
pub fn sram_buffer(kb: f64) -> Component {
    Component { name: "SRAM buffer", mm2: kb * SRAM_MM2_PER_KB }
}

/// Full secure-buffer area estimate: controller plus an overflow buffer
/// of `buffer_kb` kilobytes.
pub fn secure_buffer_mm2(buffer_kb: f64) -> f64 {
    ORAM_CONTROLLER.mm2 + sram_buffer(buffer_kb).mm2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_under_one_mm2() {
        let total = secure_buffer_mm2(8.0);
        assert!(total < 1.0, "paper claims <1 mm², got {total}");
        assert!((total - 0.89).abs() < 0.01);
    }

    #[test]
    fn eight_kb_buffer_matches_cacti_figure() {
        assert!((sram_buffer(8.0).mm2 - 0.42).abs() < 1e-9);
    }

    #[test]
    fn area_scales_with_buffer() {
        assert!(secure_buffer_mm2(16.0) > secure_buffer_mm2(8.0));
    }
}
