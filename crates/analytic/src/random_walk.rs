//! The transfer-queue random-walk model of §IV-C (Fig 13a).
//!
//! Without forced draining, a dual-SDIMM transfer queue gains a block
//! with probability 1/4 (an arrival), loses one with probability 1/4 (a
//! vacancy), and stays put with probability 1/2, per access. The paper
//! models occupancy as a one-dimensional random walk and evaluates
//!
//! ```text
//! F(s,k) = 0.5·F(s−1,k) + 0.25·F(s−1,k−1) + 0.25·F(s−1,k+1)
//! ```
//!
//! to show that *any* finite buffer overflows with high probability over
//! enough steps: ≈97% within 100K steps for 16 blocks, and 91%/70%/10%
//! for 64/256/1024 blocks within 800K steps.

/// The walk's single-step probabilities (arrive, depart, stay).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkParams {
    /// Probability a step adds a block (paper: 1/4).
    pub p_up: f64,
    /// Probability a step removes a block (paper: 1/4).
    pub p_down: f64,
}

impl Default for WalkParams {
    fn default() -> Self {
        WalkParams { p_up: 0.25, p_down: 0.25 }
    }
}

/// Evolves the occupancy distribution of a queue with capacity `cap`
/// (reflecting at 0, absorbing once occupancy would exceed `cap`) for
/// `steps` steps, returning the overflow probability — the absorbed mass.
///
/// # Panics
///
/// Panics if the probabilities are invalid or `cap` is zero.
pub fn overflow_probability(cap: usize, steps: u64, params: WalkParams) -> f64 {
    assert!(cap > 0, "capacity must be positive");
    assert!(
        params.p_up >= 0.0 && params.p_down >= 0.0 && params.p_up + params.p_down <= 1.0,
        "invalid step probabilities"
    );
    let p_stay = 1.0 - params.p_up - params.p_down;
    let mut dist = vec![0.0f64; cap + 1];
    let mut next = vec![0.0f64; cap + 1];
    dist[0] = 1.0;
    let mut absorbed = 0.0f64;
    for _ in 0..steps {
        for v in next.iter_mut() {
            *v = 0.0;
        }
        for (pos, &p) in dist.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            // Stay (and the reflected down-step at 0).
            let stay = if pos == 0 { p_stay + params.p_down } else { p_stay };
            next[pos] += p * stay;
            if pos > 0 {
                next[pos - 1] += p * params.p_down;
            }
            if pos < cap {
                next[pos + 1] += p * params.p_up;
            } else {
                absorbed += p * params.p_up;
            }
        }
        std::mem::swap(&mut dist, &mut next);
    }
    absorbed
}

/// Sweeps overflow probability over step counts for Fig 13a's four
/// buffer sizes. Returns `(steps, [p16, p64, p256, p1024])` rows.
pub fn fig13a_series(max_steps: u64, points: usize) -> Vec<(u64, [f64; 4])> {
    let caps = [16usize, 64, 256, 1024];
    let mut rows = Vec::with_capacity(points);
    for i in 1..=points {
        let steps = max_steps * i as u64 / points as u64;
        let mut vals = [0.0f64; 4];
        for (j, &cap) in caps.iter().enumerate() {
            vals[j] = overflow_probability(cap, steps, WalkParams::default());
        }
        rows.push((steps, vals));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_steps_zero_overflow() {
        assert_eq!(overflow_probability(16, 0, WalkParams::default()), 0.0);
    }

    #[test]
    fn overflow_grows_with_steps() {
        let p1 = overflow_probability(16, 1_000, WalkParams::default());
        let p2 = overflow_probability(16, 10_000, WalkParams::default());
        assert!(p2 > p1);
    }

    #[test]
    fn bigger_buffers_overflow_less() {
        let small = overflow_probability(16, 50_000, WalkParams::default());
        let big = overflow_probability(256, 50_000, WalkParams::default());
        assert!(small > big * 2.0, "16-cap {small} vs 256-cap {big}");
    }

    #[test]
    fn paper_datapoint_16_blocks_100k_steps() {
        // Fig 13a: ≈97% chance of exceeding 16 blocks within 100K steps.
        let p = overflow_probability(16, 100_000, WalkParams::default());
        assert!((0.90..=1.0).contains(&p), "expected ≈0.97 overflow probability, got {p}");
    }

    #[test]
    fn probability_is_bounded() {
        let p = overflow_probability(16, 500_000, WalkParams::default());
        assert!((0.0..=1.0).contains(&p));
        assert!(p > 0.99, "saturated walk must overflow a.s., got {p}");
    }

    #[test]
    fn drained_walk_overflows_rarely() {
        // p_down > p_up models the forced drain: positive recurrent.
        let p = overflow_probability(64, 100_000, WalkParams { p_up: 0.25, p_down: 0.35 });
        assert!(p < 1e-3, "drained queue should almost never overflow, got {p}");
    }

    #[test]
    fn series_is_monotone_per_capacity() {
        let rows = fig13a_series(20_000, 4);
        for j in 0..4 {
            for w in rows.windows(2) {
                assert!(w[1].1[j] >= w[0].1[j]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        overflow_probability(0, 10, WalkParams::default());
    }
}
