//! The M/M/1/K transfer-queue model of §IV-C (Fig 13b).
//!
//! With a forced-drain probability `p`, a queued block is serviced either
//! by a departing-block vacancy (rate 1/4) or by an extra `accessORAM`
//! (rate `p`). Treating the queue as M/M/1/K with utilization
//! ρ = 0.25 / (0.25 + p), the steady-state probability the K-slot queue
//! is full is ρ^K·(1−ρ)/(1−ρ^{K+1}) — vanishing even for small queues
//! once p > 0.

/// Arrival rate of the dual-SDIMM model (a block arrives per access with
/// probability 1/4).
pub const ARRIVAL_RATE: f64 = 0.25;

/// Queue utilization ρ for forced-drain probability `p`.
///
/// # Panics
///
/// Panics if `p` is negative.
pub fn utilization(p: f64) -> f64 {
    assert!(p >= 0.0, "drain probability must be non-negative");
    ARRIVAL_RATE / (ARRIVAL_RATE + p)
}

/// Steady-state probability that a K-slot M/M/1/K queue with utilization
/// `rho` is full (i.e. an arriving block overflows).
///
/// # Panics
///
/// Panics if `rho` is not positive or `k` is zero.
pub fn full_probability(rho: f64, k: u32) -> f64 {
    assert!(rho > 0.0, "utilization must be positive");
    assert!(k > 0, "queue must have slots");
    if (rho - 1.0).abs() < 1e-12 {
        // Degenerate uniform case: P_n = 1/(K+1).
        return 1.0 / (k as f64 + 1.0);
    }
    rho.powi(k as i32) * (1.0 - rho) / (1.0 - rho.powi(k as i32 + 1))
}

/// Overflow probability for drain probability `p` and queue size `k`
/// (the quantity Fig 13b plots).
pub fn overflow_probability(p: f64, k: u32) -> f64 {
    full_probability(utilization(p), k)
}

/// Generates the Fig 13b sweep: for each drain probability, the overflow
/// probability at each queue size. Returns `(p, Vec<(k, probability)>)`.
pub fn fig13b_series(ps: &[f64], ks: &[u32]) -> Vec<(f64, Vec<(u32, f64)>)> {
    ps.iter().map(|&p| (p, ks.iter().map(|&k| (k, overflow_probability(p, k))).collect())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_drain_saturates() {
        // p = 0 ⇒ ρ = 1 ⇒ the queue is full with probability 1/(K+1) in
        // the degenerate stationary regime — but more importantly, the
        // utilization is exactly 1 (the paper's "it will overflow in the
        // future with a probability of 1" regime).
        assert!((utilization(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn drain_lowers_utilization() {
        assert!(utilization(0.25) < utilization(0.05));
        assert!((utilization(0.25) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overflow_decreases_with_queue_size() {
        let p = 0.1;
        let small = overflow_probability(p, 8);
        let large = overflow_probability(p, 64);
        assert!(small > large * 100.0, "{small} vs {large}");
    }

    #[test]
    fn overflow_decreases_with_drain_probability() {
        let lo = overflow_probability(0.02, 32);
        let hi = overflow_probability(0.3, 32);
        assert!(lo > hi);
    }

    #[test]
    fn small_queue_with_modest_drain_is_safe() {
        // The paper's Fig 13b takeaway: even a small queue has a very
        // small overflow rate with occasional forced drains.
        let p = overflow_probability(0.25, 32);
        assert!(p < 1e-9, "expected negligible overflow, got {p}");
    }

    #[test]
    fn probabilities_are_normalized() {
        for &p in &[0.01, 0.1, 0.5, 1.0] {
            for &k in &[1u32, 4, 16, 128] {
                let f = overflow_probability(p, k);
                assert!((0.0..=1.0).contains(&f), "p={p} k={k} gave {f}");
            }
        }
    }

    #[test]
    fn series_shape() {
        let s = fig13b_series(&[0.05, 0.25], &[8, 16]);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].1.len(), 2);
        // Larger p ⇒ smaller overflow at the same k.
        assert!(s[0].1[0].1 > s[1].1[0].1);
    }

    #[test]
    fn rho_one_degenerate_case() {
        assert!((full_probability(1.0, 9) - 0.1).abs() < 1e-12);
    }
}
