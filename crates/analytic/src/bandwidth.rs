//! Closed-form off-DIMM traffic model (§IV-B).
//!
//! Freecursive moves the whole path over the main channel — `2(Z+1)L`
//! line transfers per `accessORAM`. The Independent protocol replaces
//! that with one `ACCESS` block down, one `FETCH_RESULT` block up, and an
//! `APPEND` block to every SDIMM (plus `PROBE` command slots); the Split
//! protocol moves per-bucket metadata shares, the requested block's
//! pieces, and the eviction lists. These formulas back the X1 experiment
//! and cross-check what the cycle-level simulation measures.

/// Parameters of the traffic model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficParams {
    /// Blocks per bucket (Z = 4).
    pub z: u64,
    /// Tree levels resident in memory (tree levels + 1 − cached levels).
    pub levels_in_memory: u64,
    /// SDIMMs (Independent fan-out) or split ways.
    pub sdimms: u64,
    /// PROBE polls issued per access (command-bus only).
    pub probes_per_access: u64,
}

impl TrafficParams {
    /// The paper's headline configuration: Z=4, 28-level ORAM with
    /// 7 levels cached, 4 SDIMMs.
    pub fn paper_default() -> Self {
        TrafficParams { z: 4, levels_in_memory: 21, sdimms: 4, probes_per_access: 2 }
    }
}

/// Line transfers per access on the main channel under Freecursive:
/// `2(Z+1)L`.
pub fn baseline_lines(p: &TrafficParams) -> u64 {
    2 * (p.z + 1) * p.levels_in_memory
}

/// Line transfers per access on the main channel under the Independent
/// protocol: 1 ACCESS + 1 FETCH_RESULT + `sdimms` APPENDs.
pub fn independent_lines(p: &TrafficParams) -> u64 {
    1 + 1 + p.sdimms
}

/// Command-bus slots per Independent access (line transfers + probes).
pub fn independent_commands(p: &TrafficParams) -> u64 {
    independent_lines(p) + p.probes_per_access
}

/// Line-equivalents per access on the main channel under the Split
/// protocol: metadata (one 64-byte-equivalent line per bucket,
/// reassembled from `sdimms` shares), the requested block, and the
/// eviction list/counters (modeled at `(2Z+8)` bytes per bucket).
pub fn split_line_equivalents(p: &TrafficParams) -> f64 {
    let meta = p.levels_in_memory as f64; // L buckets × 64 B (in shares)
    let block = 1.0;
    let list = (p.levels_in_memory * (2 * p.z + 8)) as f64 / 64.0;
    meta + block + list
}

/// Fraction of baseline off-DIMM traffic the Independent protocol needs.
pub fn independent_fraction(p: &TrafficParams) -> f64 {
    independent_commands(p) as f64 / baseline_lines(p) as f64
}

/// Fraction of baseline off-DIMM traffic the Split protocol needs.
pub fn split_fraction(p: &TrafficParams) -> f64 {
    split_line_equivalents(p) / baseline_lines(p) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_formula() {
        let p = TrafficParams::paper_default();
        assert_eq!(baseline_lines(&p), 2 * 5 * 21);
    }

    #[test]
    fn independent_is_single_digit_lines() {
        let p = TrafficParams::paper_default();
        assert_eq!(independent_lines(&p), 6, "1 read + 5 writes with 4 SDIMMs");
    }

    #[test]
    fn independent_fraction_in_paper_band() {
        // §IV-B: INDEP-4 reduces off-DIMM accesses to ≈7.8% with caching
        // and ≲3.2% without; our command-count model with 2 probes lands
        // in that band.
        let mut p = TrafficParams::paper_default();
        let with_cache = independent_fraction(&p);
        assert!((0.02..=0.10).contains(&with_cache), "INDEP-4 fraction {with_cache}");
        p.levels_in_memory = 28; // no ORAM cache
        let without = independent_fraction(&p);
        assert!(without < with_cache);
        assert!(without <= 0.032 + 0.005, "no-cache fraction {without}");
    }

    #[test]
    fn split_fraction_near_twelve_percent() {
        // §IV-B: "For the Split architecture, the off-DIMM accesses are
        // reduced to 12% of the baseline ORAM."
        let p = TrafficParams::paper_default();
        let f = split_fraction(&p);
        assert!((0.08..=0.16).contains(&f), "Split fraction {f} vs paper ≈0.12");
    }

    #[test]
    fn split_costs_more_than_independent() {
        let p = TrafficParams::paper_default();
        assert!(split_fraction(&p) > independent_fraction(&p));
    }

    #[test]
    fn indep2_cheaper_than_indep4_on_channel() {
        let p4 = TrafficParams::paper_default();
        let p2 = TrafficParams { sdimms: 2, ..p4 };
        assert!(independent_fraction(&p2) < independent_fraction(&p4));
    }

    #[test]
    fn more_cached_levels_raises_fractions() {
        // Caching shrinks the baseline denominator, so the *fraction*
        // grows — matching the paper's "overheads drop to less than 3.2%
        // when ORAM caching is not used".
        let cached = TrafficParams::paper_default();
        let uncached = TrafficParams { levels_in_memory: 28, ..cached };
        assert!(independent_fraction(&cached) > independent_fraction(&uncached));
        assert!(split_fraction(&cached) > split_fraction(&uncached));
    }
}
