//! The shared last-level cache (Table II: 2 MB, 64 B lines, 8-way,
//! 10-cycle access).
//!
//! The trace records are L1 misses; this LLC filters them. Misses (and
//! dirty evictions) are what reach the ORAM, so LLC behavior directly
//! sets the `accessORAM` rate.

/// Result of one LLC access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// Dirty line evicted by the fill (its address), if any — it must be
    /// written back to memory.
    pub writeback: Option<u64>,
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LlcStats {
    /// Hits served.
    pub hits: u64,
    /// Misses (fills).
    pub misses: u64,
    /// Dirty evictions (writebacks generated).
    pub writebacks: u64,
}

impl LlcStats {
    /// Miss rate over all accesses.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    dirty: bool,
    lru: u64,
}

/// A set-associative write-back, write-allocate cache.
#[derive(Debug)]
pub struct Llc {
    sets: Vec<Vec<Line>>,
    ways: usize,
    line_bytes: u64,
    tick: u64,
    stats: LlcStats,
}

impl Llc {
    /// Creates a cache of `capacity_bytes` with `ways` associativity and
    /// 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics unless the set count works out to a power of two.
    pub fn new(capacity_bytes: usize, ways: usize) -> Self {
        let line_bytes = 64u64;
        let lines = capacity_bytes / line_bytes as usize;
        assert!(ways >= 1 && lines.is_multiple_of(ways));
        let sets = lines / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Llc { sets: vec![Vec::new(); sets], ways, line_bytes, tick: 0, stats: LlcStats::default() }
    }

    /// The Table II LLC: 2 MB, 8-way.
    pub fn table2() -> Self {
        Llc::new(2 * 1024 * 1024, 8)
    }

    /// Access latency in CPU cycles (Table II).
    pub const LATENCY_CPU_CYCLES: u64 = 10;

    /// Statistics so far.
    pub fn stats(&self) -> LlcStats {
        self.stats
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.line_bytes) as usize) & (self.sets.len() - 1)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes / self.sets.len() as u64
    }

    /// Accesses `addr`; on a miss the line is filled (write-allocate) and
    /// a victim may be written back.
    pub fn access(&mut self, addr: u64, is_write: bool) -> LlcAccess {
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_of(addr);
        let tag = self.tag_of(addr);
        let ways = self.ways;
        let sets_len = self.sets.len() as u64;
        let line_bytes = self.line_bytes;
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.lru = tick;
            line.dirty |= is_write;
            self.stats.hits += 1;
            return LlcAccess { hit: true, writeback: None };
        }

        self.stats.misses += 1;
        let mut writeback = None;
        if set.len() >= ways {
            let victim_idx = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                // lint: panic-ok(invariant: set not empty)
                .expect("set not empty");
            let victim = set.swap_remove(victim_idx);
            if victim.dirty {
                self.stats.writebacks += 1;
                writeback = Some((victim.tag * sets_len + set_idx as u64) * line_bytes);
            }
        }
        set.push(Line { tag, dirty: is_write, lru: tick });
        LlcAccess { hit: false, writeback }
    }

    /// Warm-up access: identical replacement behavior, but does not
    /// disturb the measured statistics.
    pub fn warm(&mut self, addr: u64, is_write: bool) {
        let before = self.stats;
        let _ = self.access(addr, is_write);
        self.stats = before;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = Llc::new(64 * 1024, 8);
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn dirty_eviction_reports_victim_address() {
        let mut c = Llc::new(64 * 64, 1); // 64 sets, direct-mapped
        let a = 0u64;
        let b = 64 * 64; // same set, different tag
        c.access(a, true);
        let res = c.access(b, false);
        assert!(!res.hit);
        assert_eq!(res.writeback, Some(a), "victim address must round-trip");
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = Llc::new(64 * 64, 1);
        c.access(0, false);
        assert_eq!(c.access(64 * 64, false).writeback, None);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = Llc::new(2 * 64, 2); // one... two lines per set
                                         // Set count = 1: all map to set 0.
        c.access(0, false);
        c.access(64, false);
        c.access(0, false); // refresh 0
        c.access(128, false); // evicts 64
        assert!(c.access(0, false).hit);
        assert!(!c.access(64, false).hit);
    }

    #[test]
    fn write_marks_dirty_on_hit() {
        let mut c = Llc::new(64 * 64, 1);
        c.access(0, false);
        c.access(0, true); // dirty via hit
        let res = c.access(64 * 64, false);
        assert!(res.writeback.is_some());
    }

    #[test]
    fn warm_does_not_count() {
        let mut c = Llc::table2();
        c.warm(0, false);
        assert_eq!(c.stats().misses, 0);
        // …but the line is resident:
        assert!(c.access(0, false).hit);
    }

    #[test]
    fn table2_capacity() {
        let c = Llc::table2();
        assert_eq!(c.sets.len() * c.ways * 64, 2 * 1024 * 1024);
    }

    #[test]
    fn footprint_larger_than_cache_produces_misses() {
        let mut c = Llc::new(64 * 1024, 8);
        let mut misses = 0;
        for round in 0..2 {
            for i in 0..4096u64 {
                // 256 KB footprint vs 64 KB cache
                if !c.access(i * 64, false).hit {
                    misses += 1;
                }
            }
            if round == 0 {
                assert_eq!(misses, 4096);
            }
        }
        assert!(misses > 4096 + 3000, "thrashing footprint must keep missing");
    }
}
