//! The trace-replay runner: warm-up then cycle-measured execution.
//!
//! Mirrors the paper's methodology (§IV-A): L1-miss records are replayed
//! through the LLC; after a warm-up window that only touches the LLC,
//! the measured window runs cycle-accurately. The CPU model is an
//! in-order core with a 128-entry ROB: a miss can issue once its
//! inter-arrival gap has elapsed and the number of outstanding misses is
//! below the window the ROB supports; dirty LLC evictions generate
//! write requests that do not block retirement.

use std::collections::HashMap;

use dram_sim::address::Coords;
use dram_sim::config::Cycle;
use dram_sim::power::EnergyBreakdown;
use dram_sim::wear::{RowWear, WearSnapshot};
use sdimm_telemetry::{
    imbalance, FlightEventKind, FlightRecorder, FlightRecorderHub, Instruments, LatencyHistogram,
    MetricsRegistry, TraceSink,
};
use workloads::Trace;

use crate::executor::ExecEvent;
use crate::llc::Llc;
use crate::machine::{Machine, SystemConfig};

/// CPU cycles per memory-bus cycle (1.6 GHz core vs 800 MHz bus).
pub const CPU_PER_MEM_CYCLE: u64 = 2;

/// ROB capacity in instructions (Table II: 128-entry re-order buffer).
/// The core can only run this far ahead of its oldest incomplete miss,
/// so achievable memory-level parallelism is the number of misses that
/// fit in this window — the property separating the Independent and
/// Split protocols.
pub const ROB_INSTRS: u64 = 128;

/// Miss-status registers: a hard cap on outstanding LLC misses.
pub const MSHR_LIMIT: usize = 16;

/// Result of one measured run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Machine name (e.g. `INDEP-4`).
    pub machine: String,
    /// Workload name.
    pub workload: String,
    /// Memory-bus cycles the measured window took.
    pub cycles: Cycle,
    /// Trace records retired in the measured window.
    pub records: u64,
    /// LLC misses in the measured window.
    pub llc_misses: u64,
    /// Mean memory latency per LLC miss (bus cycles, issue → data ready).
    pub mean_miss_latency: f64,
    /// Median miss latency (bus cycles).
    pub miss_latency_p50: u64,
    /// 90th-percentile miss latency (bus cycles).
    pub miss_latency_p90: u64,
    /// 99th-percentile miss latency (bus cycles).
    pub miss_latency_p99: u64,
    /// accessORAMs per LLC request (paper: ≈1.4).
    pub accesses_per_request: f64,
    /// Peak stash occupancy over the run (0 for baselines).
    pub stash_peak: u64,
    /// PLB hit rate over the run (0 for baselines).
    pub plb_hit_rate: f64,
    /// Energy over the measured window.
    pub energy: EnergyBreakdown,
    /// External-bus bytes (0 for baselines).
    pub external_bus_bytes: u64,
    /// Total DRAM line transfers issued.
    pub dram_lines: u64,
    /// Full metrics snapshot of the run (channel latency histograms,
    /// PLB/stash stats, executor attribution, run-level distributions).
    pub metrics: MetricsRegistry,
}

impl RunResult {
    /// Cycles per record: the normalized execution-time metric of
    /// Figs 6/8/9/11.
    pub fn cycles_per_record(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.cycles as f64 / self.records as f64
        }
    }

    /// Energy per record in nJ (Fig 10's metric, normalized elsewhere).
    pub fn energy_per_record_nj(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.energy.total_nj() / self.records as f64
        }
    }
}

/// Runs `trace` on a machine built from `cfg`: `warmup` records touch
/// only the LLC, then `measure` records run cycle-accurately.
///
/// # Panics
///
/// Panics if the trace is shorter than `warmup + measure`.
pub fn run(cfg: &SystemConfig, trace: &Trace, warmup: usize, measure: usize) -> RunResult {
    run_traced(cfg, trace, warmup, measure, TraceSink::disabled(), 0)
}

/// [`run`], with the full [`Instruments`] bundle attached: Chrome trace
/// sink, per-cell flight recorder (keyed by `pid`), cycle-attribution
/// profiler, and live-dashboard state. Disabled instruments cost one
/// branch per touch point.
///
/// # Panics
///
/// Panics if the trace is shorter than `warmup + measure`.
pub fn run_instrumented(
    cfg: &SystemConfig,
    trace: &Trace,
    warmup: usize,
    measure: usize,
    instruments: &Instruments,
    pid: u32,
) -> RunResult {
    run_inner(cfg, trace, warmup, measure, instruments, pid, false, false, None).0
}

/// [`run_audited`] with the full [`Instruments`] bundle attached.
///
/// # Panics
///
/// Panics if the trace is shorter than `warmup + measure`.
pub fn run_audited_instrumented(
    cfg: &SystemConfig,
    trace: &Trace,
    warmup: usize,
    measure: usize,
    instruments: &Instruments,
    pid: u32,
) -> (RunResult, AuditCapture) {
    let (result, capture, _, _) =
        run_inner(cfg, trace, warmup, measure, instruments, pid, true, false, None);
    // lint: panic-ok(invariant: capture requested)
    (result, capture.expect("capture requested"))
}

/// Everything the timing-leakage analyzer (`crates/leakage`) needs from
/// one run: both attacker vantage points of the §III-G threat model.
#[derive(Debug)]
pub struct LeakageCapture {
    /// Channel configuration shared by every captured channel (rank and
    /// bank counts size the touch-distribution features).
    pub channel_cfg: dram_sim::config::ChannelConfig,
    /// Per-channel DRAM command streams, cycle-stamped, complete from
    /// cycle 0 — the on-DIMM (or main-memory) bus vantage.
    pub streams: Vec<Vec<dram_sim::cmdlog::CmdRecord>>,
    /// The external-bus observable stream, stamped from the executor's
    /// shared clock — the off-DIMM vantage. Empty for machines without
    /// an external SDIMM bus (NonSecure, PathOram, Freecursive).
    pub observables: Vec<(Cycle, sdimm::obliviousness::Observable)>,
}

/// [`run`], additionally capturing both attacker-visible streams for
/// statistical distinguishability analysis: every DRAM command each
/// channel issues and the cycle-stamped external-bus observable stream.
/// Fully deterministic: same config + trace reproduce both streams
/// byte-for-byte.
///
/// # Panics
///
/// Panics if the trace is shorter than `warmup + measure`.
pub fn run_leakage(
    cfg: &SystemConfig,
    trace: &Trace,
    warmup: usize,
    measure: usize,
) -> (RunResult, LeakageCapture) {
    let instruments = Instruments::with_sink(TraceSink::disabled());
    let (result, capture, observables, _) =
        run_inner(cfg, trace, warmup, measure, &instruments, 0, true, true, None);
    // lint: panic-ok(invariant: capture requested)
    let capture = capture.expect("capture requested");
    (
        result,
        LeakageCapture { channel_cfg: capture.channel_cfg, streams: capture.streams, observables },
    )
}

/// One of the hottest physical rows of a run, attributed both ways: by
/// DRAM coordinates (channel/rank/bank/row) and by the ORAM tree levels
/// whose bucket lines live in that row.
#[derive(Debug, Clone)]
pub struct HotRow {
    /// Owning DRAM channel.
    pub channel: usize,
    /// Physical identity and lifetime ACT/WR counts.
    pub row: RowWear,
    /// Distinct ORAM tree levels mapped into the row (sorted; empty for
    /// machines without a tree or rows outside it).
    pub levels: Vec<u32>,
}

/// Everything the reliability observatory needs from one run: the wear
/// and disturbance state of every channel, the protocol-side per-level
/// attribution, the hottest rows with both attributions, and the raw
/// command streams so an independent auditor can re-derive the
/// activation counts from first principles.
#[derive(Debug)]
pub struct HammerCapture {
    /// Channel configuration shared by every captured channel (names
    /// the standard whose hammer threshold the windows are judged
    /// against).
    pub channel_cfg: dram_sim::config::ChannelConfig,
    /// Per-channel command streams, complete from cycle 0, for the
    /// replay auditor's independent ACT recount.
    pub streams: Vec<Vec<dram_sim::cmdlog::CmdRecord>>,
    /// Per-channel wear snapshots (measured window only).
    pub wear: Vec<WearSnapshot>,
    /// Per-tree-level wear merged across the backend's ORAM instances.
    pub level_wear: oram::wear::LevelWear,
    /// The `top_k` hottest rows across all channels, ACTs descending
    /// (ties by channel then physical order — deterministic).
    pub hot_rows: Vec<HotRow>,
}

/// [`run`], with the per-row wear tracker enabled on every channel and
/// command logs attached: returns the run result plus a
/// [`HammerCapture`] for RowHammer threat reporting. Fully
/// deterministic: same config + trace reproduce the capture exactly.
///
/// # Panics
///
/// Panics if the trace is shorter than `warmup + measure`.
pub fn run_hammer(
    cfg: &SystemConfig,
    trace: &Trace,
    warmup: usize,
    measure: usize,
    top_k: usize,
) -> (RunResult, HammerCapture) {
    let instruments = Instruments::with_sink(TraceSink::disabled());
    let (result, capture, _, wear) =
        run_inner(cfg, trace, warmup, measure, &instruments, 0, true, false, Some(top_k));
    // lint: panic-ok(invariant: captures requested)
    let capture = capture.expect("capture requested");
    // lint: panic-ok(invariant: captures requested)
    let wear = wear.expect("wear capture requested");
    (
        result,
        HammerCapture {
            channel_cfg: capture.channel_cfg,
            streams: capture.streams,
            wear: wear.snapshots,
            level_wear: wear.level_wear,
            hot_rows: wear.hot_rows,
        },
    )
}

/// The wear part of a [`HammerCapture`], harvested while the machine is
/// still alive (level attribution needs the backend's layouts).
struct WearCapture {
    snapshots: Vec<WearSnapshot>,
    level_wear: oram::wear::LevelWear,
    hot_rows: Vec<HotRow>,
}

/// Harvests per-channel wear snapshots and attributes each channel's
/// `top_k` hottest rows to ORAM tree levels by re-encoding every line
/// of the row through the channel's own address mapper.
fn harvest_wear(machine: &Machine, top_k: usize) -> WearCapture {
    let mut snapshots = Vec::new();
    let mut hot_rows = Vec::new();
    for i in 0..machine.executor.channel_count() {
        let ch = machine.executor.channel(i);
        // lint: panic-ok(invariant: run_hammer enables wear before traffic)
        let snap = ch.wear().expect("wear enabled for hammer runs").snapshot();
        let cols = ch.config().topology.lines_per_row();
        for row in snap.hottest(top_k) {
            let mut levels: Vec<u32> = (0..cols)
                .filter_map(|col| {
                    let addr = ch.mapper().encode(Coords {
                        rank: row.id.rank,
                        bank: row.id.bank,
                        row: row.id.row,
                        col,
                    });
                    machine.level_of_channel_line(i, addr)
                })
                .collect();
            levels.sort_unstable();
            levels.dedup();
            hot_rows.push(HotRow { channel: i, row, levels });
        }
        snapshots.push(snap);
    }
    hot_rows.sort_by(|a, b| {
        b.row.acts.cmp(&a.row.acts).then(a.channel.cmp(&b.channel)).then(a.row.id.cmp(&b.row.id))
    });
    hot_rows.truncate(top_k);
    WearCapture { snapshots, level_wear: machine.level_wear(), hot_rows }
}

/// Everything a differential replay auditor needs to re-validate a run:
/// the exact per-channel DRAM configuration the machine was built with
/// and the complete command stream of every channel, from cycle 0.
#[derive(Debug)]
pub struct AuditCapture {
    /// Channel configuration shared by every captured channel.
    pub channel_cfg: dram_sim::config::ChannelConfig,
    /// Per-channel command streams in channel order, complete from the
    /// first command the channel ever issued (replaying a stream that
    /// starts mid-flight would check against unknown bank state).
    pub streams: Vec<Vec<dram_sim::cmdlog::CmdRecord>>,
}

/// [`run_traced`], additionally recording every DRAM command each
/// channel issues so the run can be replayed through an independent
/// constraint checker (`sdimm-audit`). The logs attach before any
/// traffic reaches the channels, so each stream is complete.
///
/// # Panics
///
/// Panics if the trace is shorter than `warmup + measure`.
pub fn run_audited(
    cfg: &SystemConfig,
    trace: &Trace,
    warmup: usize,
    measure: usize,
    sink: TraceSink,
    pid: u32,
) -> (RunResult, AuditCapture) {
    run_audited_instrumented(cfg, trace, warmup, measure, &Instruments::with_sink(sink), pid)
}

/// [`run`], but with a [`TraceSink`] attached to the machine's executor:
/// phase spans, DRAM command events, and backend acquire/release land in
/// `sink` under process id `pid`, so concurrent runs (one pid each) can
/// share a sink and export a single Chrome trace.
///
/// # Panics
///
/// Panics if the trace is shorter than `warmup + measure`.
pub fn run_traced(
    cfg: &SystemConfig,
    trace: &Trace,
    warmup: usize,
    measure: usize,
    sink: TraceSink,
    pid: u32,
) -> RunResult {
    run_instrumented(cfg, trace, warmup, measure, &Instruments::with_sink(sink), pid)
}

/// Dump `flight`'s ring as a stash-bound black box: the runner calls
/// this the moment a machine's steady-state stash occupancy escapes the
/// configured bound, and it fires at most once per recorder (the
/// arm-dump latch). Returns the `(report, trace-slice)` paths when the
/// dump was written, `None` when the recorder is disabled, already
/// dumped, or the write failed (failure is reported on stderr — the run
/// itself must not die because a diagnostic could not be saved).
pub fn dump_stash_breach(
    hub: &FlightRecorderHub,
    flight: &FlightRecorder,
    machine: &str,
    cycle: Cycle,
    occupancy: usize,
    bound: usize,
    pid: u32,
) -> Option<(String, String)> {
    if !flight.arm_dump() {
        return None;
    }
    let reason = format!(
        "[stash-bound] cycle {cycle} machine {machine}: \
         occupancy {occupancy} blocks, bound {bound} blocks"
    );
    let prefix = format!("{}-pid{pid}", hub.prefix());
    match flight.dump_to_files(&prefix, &reason, pid) {
        Some(Ok((txt, json))) => {
            eprintln!("flight recorder: {reason}; dumped {txt} and {json}");
            Some((txt, json))
        }
        Some(Err(e)) => {
            eprintln!("flight recorder: {reason}; dump failed: {e}");
            None
        }
        None => None,
    }
}

/// Everything one [`run_inner`] invocation yields: the result plus each
/// optional capture (present only when its capture flag was set).
type InnerOutput = (
    RunResult,
    Option<AuditCapture>,
    Vec<(Cycle, sdimm::obliviousness::Observable)>,
    Option<WearCapture>,
);

#[allow(clippy::too_many_arguments)]
fn run_inner(
    cfg: &SystemConfig,
    trace: &Trace,
    warmup: usize,
    measure: usize,
    instruments: &Instruments,
    pid: u32,
    capture_cmds: bool,
    capture_obs: bool,
    wear_top_k: Option<usize>,
) -> InnerOutput {
    assert!(
        trace.records.len() >= warmup + measure,
        "trace too short: {} < {}",
        trace.records.len(),
        warmup + measure
    );
    let mut machine = Machine::new(cfg.clone());
    // Wear tracking and command logs attach before any request touches
    // a channel, so lifetime counts and streams agree from cycle 0.
    if wear_top_k.is_some() {
        machine.enable_wear();
    }
    let cmd_logs = if capture_cmds { machine.executor.attach_cmd_logs() } else { Vec::new() };
    if capture_obs {
        machine.set_observable_recorder();
    }
    let sink = instruments.sink.clone();
    if sink.is_enabled() {
        sink.process_name(pid, &format!("{} / {}", cfg.kind.name(), trace.name));
    }
    machine.executor.set_trace(sink, pid);
    // Flight recorder: one ring per cell, keyed by the cell's trace pid.
    let flight = instruments.flight.recorder_for(pid);
    let flight_on = flight.is_enabled();
    if flight_on {
        machine.set_flight_recorder(flight.clone());
    }
    if instruments.profiler.is_enabled() {
        machine.set_profiler(instruments.profiler.clone());
    }
    let live = instruments.live.clone();
    if live.is_enabled() {
        live.cell_started(&format!("{}.{}", trace.name, cfg.kind.name()));
    }
    let mut llc = Llc::table2();

    // Warm-up: LLC state only (the paper fast-forwards 1M accesses).
    for r in &trace.records[..warmup] {
        llc.warm(r.addr, r.is_write);
    }
    // Warm-up must not leak into measured stats: clear everything the
    // executor and its channels accumulated (today the warm-up touches
    // only the LLC, but this keeps the boundary explicit and guarded).
    machine.executor.reset_stats();
    flight.record_at(machine.executor.now(), FlightEventKind::Marker { tag: "measure.start" });

    // Measured window.
    //
    // The core model: instruction position advances by each record's gap;
    // a miss occupies a ROB slot until its (final chained part's) data
    // returns, and the core can run at most `ROB_INSTRS` instructions past
    // its oldest incomplete miss. Dependent (pointer-chase) records
    // additionally wait for the previous miss's data. Dirty-LLC
    // write-backs go out through the store buffer: they consume memory
    // bandwidth but no ROB slot. Each LLC request expands into a chain of
    // `accessORAM` traces executed in order; part k+1 is submitted when
    // part k's data is ready, and each part serializes only on its own
    // ORAM backend.
    struct Chain {
        parts: std::collections::VecDeque<sdimm::trace::RequestTrace>,
        instr_pos: u64,
        issued_at: Cycle,
        is_writeback: bool,
    }
    let mut chains: HashMap<crate::executor::ExecId, Chain> = HashMap::new();
    let mut miss_latency = LatencyHistogram::new();
    let mut latency_sum: u64 = 0;
    let mut latency_count: u64 = 0;
    let mut dram_lines: u64 = 0;
    let mut retired: u64 = 0;
    let mut instr_pos: u64 = 0;
    let mut next_issue_at: Cycle = 0;
    let mut last_miss: Option<crate::executor::ExecId> = None;

    let records = &trace.records[warmup..warmup + measure];
    let mut idx = 0usize;

    let rob_len = |chains: &HashMap<crate::executor::ExecId, Chain>| {
        chains.values().filter(|c| !c.is_writeback).count()
    };

    while retired < measure as u64 {
        let now = machine.executor.now();

        // Issue as many records as the ROB window, MSHRs, gaps, and
        // dependences allow.
        while idx < records.len() && rob_len(&chains) < MSHR_LIMIT && now >= next_issue_at {
            let r = records[idx];
            let window_open = chains
                .values()
                .filter(|c| !c.is_writeback)
                .map(|c| c.instr_pos)
                .min()
                .is_none_or(|oldest| instr_pos.saturating_sub(oldest) < ROB_INSTRS);
            if !window_open {
                break;
            }
            if r.depends_on_prev {
                if let Some(prev) = last_miss {
                    if chains.contains_key(&prev) {
                        break; // the chased pointer has not returned yet
                    }
                }
            }
            idx += 1;
            instr_pos += r.gap as u64 + 1;
            next_issue_at = now.saturating_add((r.gap as u64) / CPU_PER_MEM_CYCLE);
            let res = llc.access(r.addr, r.is_write);
            if res.hit {
                // Served on-chip; its 10-cycle latency overlaps the gap.
                retired += 1;
                continue;
            }
            let mut parts: std::collections::VecDeque<_> =
                machine.request_traces(r.addr, r.is_write).into();
            dram_lines += parts.iter().map(|t| t.dram_lines()).sum::<u64>();
            // lint: panic-ok(invariant: at least the demand access)
            let first = parts.pop_front().expect("at least the demand access");
            let id = machine.executor.submit(first);
            chains.insert(id, Chain { parts, instr_pos, issued_at: now, is_writeback: false });
            last_miss = Some(id);
            // A dirty victim drains through the store buffer.
            if let Some(victim) = res.writeback {
                let mut wparts: std::collections::VecDeque<_> =
                    machine.request_traces(victim, true).into();
                dram_lines += wparts.iter().map(|t| t.dram_lines()).sum::<u64>();
                // lint: panic-ok(invariant: non-empty)
                let wfirst = wparts.pop_front().expect("non-empty");
                let wid = machine.executor.submit(wfirst);
                chains.insert(
                    wid,
                    Chain { parts: wparts, instr_pos, issued_at: now, is_writeback: true },
                );
            }
        }

        // Advance time. The loop observes the executor on an absolute
        // 16-cycle grid (one fixed tick per iteration, historically);
        // jump over stretches where neither a new issue nor an executor
        // event can occur. Both bounds are conservative lower bounds, so
        // an early stop is a no-op poll on the same grid — every event
        // is still polled, and every record still issued, at the exact
        // cycle the fixed-quantum loop would have used. Flight-recorder
        // runs keep the fixed cadence so the stash probe below samples
        // every iteration.
        let dt = if flight_on {
            16
        } else {
            // The floor is this loop's own next grid point: any horizon
            // at or below it aligns up to the same 16-cycle poll, so the
            // executor may stop refining there.
            let mut h = machine.executor.next_event_horizon_clamped(now.saturating_add(16));
            if idx < records.len() && next_issue_at > now {
                h = h.min(next_issue_at);
            }
            if h == Cycle::MAX {
                // No event can ever occur: everything retired and
                // nothing is left to issue (any blocked issue keeps a
                // chain alive, which keeps the horizon finite). This is
                // the loop's final iteration; take the historical
                // 16-cycle step so the stopped clock matches the
                // fixed-quantum engine's final reading exactly.
                16
            } else {
                let target = h.max(now.saturating_add(1));
                let rem = target % 16;
                let aligned = if rem == 0 { target } else { target.saturating_add(16 - rem) };
                // Cap the jump so a (hypothetical) unbounded horizon
                // cannot wedge the loop in a single enormous tick.
                aligned.saturating_sub(now).min(65_536)
            }
        };
        machine.executor.tick(dt);
        for ev in machine.executor.poll() {
            if let ExecEvent::DataReady { id, at } = ev {
                if let Some(mut chain) = chains.remove(&id) {
                    match chain.parts.pop_front() {
                        Some(next) => {
                            // Continue the chain under a fresh exec id.
                            let nid = machine.executor.submit(next);
                            if last_miss == Some(id) {
                                last_miss = Some(nid);
                            }
                            chains.insert(nid, chain);
                        }
                        None => {
                            if !chain.is_writeback {
                                let lat = at.saturating_sub(chain.issued_at);
                                miss_latency.record(lat);
                                live.record_miss(lat);
                                latency_sum += lat;
                                latency_count += 1;
                                retired += 1;
                            }
                        }
                    }
                }
            }
        }

        // Stash-bound breach: the protocols' post-access relief must keep
        // every stash within the configured bound; if one escapes, dump
        // the flight recorder once with an actual-vs-expected reason so
        // the run is debuggable without a rerun.
        if flight_on {
            let occupancy = machine.stash_len();
            if occupancy > cfg.oram.stash_limit {
                dump_stash_breach(
                    &instruments.flight,
                    &flight,
                    &cfg.kind.name(),
                    machine.executor.now(),
                    occupancy,
                    cfg.oram.stash_limit,
                    pid,
                );
            }
        }

        // All records consumed and every chain finished: stop the clock
        // (trailing protocol cleanup does not delay the program).
        if idx >= records.len() && chains.is_empty() {
            break;
        }
    }

    let cycles = machine.executor.now();
    let energy = machine.executor.energy();
    let stash_peak = machine.stash_peak() as u64;
    if live.is_enabled() {
        live.observe_stash_peak(stash_peak);
        live.cell_finished();
    }
    let plb_hit_rate = machine.plb_hit_rate();
    let wear_capture = wear_top_k.map(|k| harvest_wear(&machine, k));
    let mut metrics = machine.metrics();
    if let Some(wc) = &wear_capture {
        for (i, s) in wc.snapshots.iter().enumerate() {
            let p = format!("dram.chan{i}.wear");
            metrics.gauge_set(&format!("{p}.peak_window"), s.peak_window as f64);
            metrics.gauge_set(
                &format!("{p}.rank_act_max_over_mean"),
                imbalance::max_over_mean(&s.per_rank_acts),
            );
            metrics.gauge_set(&format!("{p}.rank_act_gini"), imbalance::gini(&s.per_rank_acts));
        }
    }
    metrics.counter_add("run.cycles", cycles);
    metrics.counter_add("run.records", measure as u64);
    metrics.counter_add("run.llc_misses", llc.stats().misses);
    metrics.counter_add("run.dram_lines", dram_lines);
    metrics.histogram_set("run.miss_latency", miss_latency.clone());
    metrics.gauge_set("run.energy_nj", energy.total_nj());
    let capture = capture_cmds.then(|| AuditCapture {
        channel_cfg: cfg.kind.channel_config_for(cfg.standard),
        streams: cmd_logs.iter().map(|l| l.take()).collect(),
    });
    let observables = if capture_obs {
        machine.take_observable_recorder().map(|r| r.timed_events()).unwrap_or_default()
    } else {
        Vec::new()
    };
    let result = RunResult {
        machine: cfg.kind.name(),
        workload: trace.name.clone(),
        cycles,
        records: measure as u64,
        llc_misses: llc.stats().misses,
        mean_miss_latency: if latency_count == 0 {
            0.0
        } else {
            latency_sum as f64 / latency_count as f64
        },
        miss_latency_p50: miss_latency.percentile(0.50),
        miss_latency_p90: miss_latency.percentile(0.90),
        miss_latency_p99: miss_latency.percentile(0.99),
        accesses_per_request: machine.accesses_per_request(),
        stash_peak,
        plb_hit_rate,
        energy,
        external_bus_bytes: machine.executor.bus_bytes(),
        dram_lines,
        metrics,
    };
    (result, capture, observables, wear_capture)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineKind;
    use workloads::spec;

    fn quick(kind: MachineKind) -> RunResult {
        let cfg = SystemConfig::small(kind);
        let trace = spec::generate("milc-like", 1200, 3);
        run(&cfg, &trace, 200, 400)
    }

    #[test]
    fn nonsecure_run_completes() {
        let r = quick(MachineKind::NonSecure { channels: 1 });
        assert!(r.cycles > 0);
        assert!(r.llc_misses > 0);
        assert_eq!(r.records, 400);
    }

    #[test]
    fn freecursive_much_slower_than_nonsecure() {
        let ns = quick(MachineKind::NonSecure { channels: 1 });
        let fc = quick(MachineKind::Freecursive { channels: 1 });
        let slowdown = fc.cycles_per_record() / ns.cycles_per_record();
        assert!(
            slowdown > 3.0,
            "ORAM should cost several ×: got {slowdown} ({} vs {})",
            fc.cycles,
            ns.cycles
        );
    }

    #[test]
    fn sdimm_designs_beat_freecursive() {
        let fc = quick(MachineKind::Freecursive { channels: 1 });
        let indep = quick(MachineKind::Independent { sdimms: 2, channels: 1 });
        let split = quick(MachineKind::Split { ways: 2, channels: 1 });
        assert!(
            indep.cycles < fc.cycles,
            "INDEP-2 {} should beat Freecursive {}",
            indep.cycles,
            fc.cycles
        );
        assert!(
            split.cycles < fc.cycles,
            "SPLIT-2 {} should beat Freecursive {}",
            split.cycles,
            fc.cycles
        );
    }

    #[test]
    fn external_bus_traffic_tiny_for_independent() {
        let indep = quick(MachineKind::Independent { sdimms: 2, channels: 1 });
        let ext_lines = indep.external_bus_bytes / 64;
        assert!(ext_lines < indep.dram_lines / 5, "ext {ext_lines} vs dram {}", indep.dram_lines);
    }

    #[test]
    fn energy_populated() {
        let r = quick(MachineKind::Freecursive { channels: 1 });
        assert!(r.energy.total_nj() > 0.0);
        assert!(r.energy_per_record_nj() > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = SystemConfig::small(MachineKind::Independent { sdimms: 2, channels: 1 });
        let trace = spec::generate("soplex-like", 1200, 3);
        let a = run(&cfg, &trace, 200, 400);
        let b = run(&cfg, &trace, 200, 400);
        assert_eq!(a.cycles, b.cycles, "same seed and trace must reproduce exactly");
        assert_eq!(a.llc_misses, b.llc_misses);
        assert_eq!(a.dram_lines, b.dram_lines);
    }

    #[test]
    fn low_mlp_trace_runs_on_split() {
        let cfg = SystemConfig::small(MachineKind::Split { ways: 2, channels: 1 });
        let trace = spec::generate("GemsFDTD-like", 1200, 3);
        let r = run(&cfg, &trace, 200, 400);
        assert_eq!(r.records, 400);
        assert!(r.mean_miss_latency > 0.0);
    }

    #[test]
    fn miss_latency_percentiles_are_ordered() {
        let r = quick(MachineKind::Freecursive { channels: 1 });
        assert!(r.miss_latency_p50 > 0);
        assert!(r.miss_latency_p50 <= r.miss_latency_p90);
        assert!(r.miss_latency_p90 <= r.miss_latency_p99);
        assert!(r.miss_latency_p99 as f64 >= r.mean_miss_latency * 0.5);
    }

    #[test]
    fn oram_run_reports_stash_and_plb() {
        let r = quick(MachineKind::Independent { sdimms: 2, channels: 1 });
        assert!(r.stash_peak > 0, "stash peak should be populated");
        assert!(r.plb_hit_rate > 0.0 && r.plb_hit_rate <= 1.0, "plb {}", r.plb_hit_rate);
        assert!(r.metrics.histogram("run.miss_latency").is_some());
        assert!(r.metrics.gauge("oram.stash_peak") > 0.0);
        let json = r.metrics.to_json();
        sdimm_telemetry::json::validate(&json).expect("metrics snapshot is valid JSON");
    }

    #[test]
    fn baseline_run_has_empty_oram_metrics() {
        let r = quick(MachineKind::NonSecure { channels: 1 });
        assert_eq!(r.stash_peak, 0);
        assert_eq!(r.plb_hit_rate, 0.0);
        assert!(r.metrics.histogram("dram.chan0.read_latency").is_some());
    }

    #[test]
    fn traced_run_matches_untraced_and_exports_spans() {
        let cfg = SystemConfig::small(MachineKind::Split { ways: 2, channels: 1 });
        let trace = spec::generate("milc-like", 1200, 3);
        let plain = run(&cfg, &trace, 200, 400);
        let sink = TraceSink::with_capacity(1 << 16);
        let traced = run_traced(&cfg, &trace, 200, 400, sink.clone(), 7);
        assert_eq!(plain.cycles, traced.cycles, "tracing must not perturb timing");
        assert!(!sink.is_empty(), "sink should have captured events");
        let json = sink.export_chrome_json().expect("enabled sink exports");
        sdimm_telemetry::json::validate(&json).expect("chrome trace is valid JSON");
    }

    #[test]
    fn hammer_capture_reports_wear_and_level_imbalance() {
        let cfg = SystemConfig::small(MachineKind::Independent { sdimms: 2, channels: 1 });
        let trace = spec::generate("hotrow-adv", 1200, 3);
        let (r, cap) = run_hammer(&cfg, &trace, 200, 400, 8);
        assert_eq!(r.records, 400);

        // The engine's lifetime totals equal the per-channel stats
        // counters (same hooks, two exports).
        let snap_acts: u64 = cap.wear.iter().map(|s| s.total_acts).sum();
        let stat_acts: u64 = (0..cap.wear.len())
            .map(|i| r.metrics.counter(&format!("dram.chan{i}.activations")))
            .sum();
        assert_eq!(snap_acts, stat_acts, "wear snapshot and ChannelStats must agree");
        assert!(snap_acts > 0, "an ORAM run must activate rows");

        // Per-bucket wear falls geometrically from the shallowest
        // in-memory level to the leaves (cached levels absorb none).
        let per_bucket = cap.level_wear.per_bucket_writes();
        let first =
            cap.level_wear.writes().iter().position(|&w| w > 0).expect("some level absorbs writes");
        let leaf = per_bucket.len() - 1;
        assert!(first < leaf);
        assert!(
            per_bucket[first] > 4.0 * per_bucket[leaf],
            "root-side {} should dwarf leaf {}",
            per_bucket[first],
            per_bucket[leaf]
        );

        // Hot rows carry both attributions and respect the cap.
        assert!(!cap.hot_rows.is_empty() && cap.hot_rows.len() <= 8);
        assert!(cap.hot_rows.windows(2).all(|w| w[0].row.acts >= w[1].row.acts));
        assert!(
            cap.hot_rows.iter().any(|h| !h.levels.is_empty()),
            "hot rows of an ORAM machine should map into the tree"
        );

        // Streams captured for the replay auditor's recount.
        assert_eq!(cap.streams.len(), cap.wear.len());
        assert!(cap.streams.iter().any(|s| !s.is_empty()));

        // The wear gauges land in the metrics snapshot.
        assert!(r.metrics.gauge("dram.chan0.wear.peak_window") >= 0.0);
    }

    #[test]
    fn hammer_runs_are_deterministic_and_unperturbed() {
        let cfg = SystemConfig::small(MachineKind::Split { ways: 2, channels: 1 });
        let trace = spec::generate("uniform-adv", 1200, 3);
        let plain = run(&cfg, &trace, 200, 400);
        let (a, ca) = run_hammer(&cfg, &trace, 200, 400, 4);
        let (b, cb) = run_hammer(&cfg, &trace, 200, 400, 4);
        assert_eq!(plain.cycles, a.cycles, "wear tracking must not perturb timing");
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(ca.wear.len(), cb.wear.len());
        for (x, y) in ca.wear.iter().zip(cb.wear.iter()) {
            assert_eq!(x.total_acts, y.total_acts);
            assert_eq!(x.peak_window, y.peak_window);
            assert_eq!(x.rows, y.rows);
        }
        assert_eq!(ca.level_wear, cb.level_wear);
    }

    #[test]
    #[should_panic(expected = "trace too short")]
    fn short_trace_rejected() {
        let cfg = SystemConfig::small(MachineKind::NonSecure { channels: 1 });
        let trace = spec::generate("milc-like", 100, 3);
        run(&cfg, &trace, 90, 20);
    }
}
