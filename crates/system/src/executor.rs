//! The cycle-level trace executor: runs protocol [`RequestTrace`]s
//! against shared DRAM channels and external buses.
//!
//! Each in-flight request walks its phases in order. Starting a phase
//! reserves external-bus slots, schedules crypto completion times, and
//! enqueues DRAM line requests (incrementally when controller queues are
//! full). A phase finishes when all of its bus/crypto deadlines have
//! passed and all of its DRAM requests have completed; the next phase
//! then starts. Contention between concurrent requests arises naturally
//! from the shared channels and buses.

use std::collections::HashMap;

use dram_sim::bus::Bus;
use dram_sim::channel::DramChannel;
use dram_sim::config::{ChannelConfig, Cycle};
use dram_sim::power::EnergyBreakdown;
use dram_sim::request::RequestId;
use sdimm::trace::{Activity, RequestTrace};
use sdimm_telemetry::{
    BackendDecision, CycleProfiler, FlightEventKind, FlightRecorder, MetricsRegistry, TraceSink,
};

/// Handle identifying a submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExecId(pub u64);

/// Progress notifications from the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecEvent {
    /// The phase marked `data_ready_phase` completed: the CPU has its
    /// data.
    DataReady {
        /// Which request.
        id: ExecId,
        /// Completion cycle.
        at: Cycle,
    },
    /// All phases completed; protocol cleanup (appends, write-backs) is
    /// finished.
    Done {
        /// Which request.
        id: ExecId,
        /// Completion cycle.
        at: Cycle,
    },
}

#[derive(Debug)]
struct PendingLine {
    channel: usize,
    addr: u64,
    is_write: bool,
}

#[derive(Debug)]
struct Inflight {
    id: ExecId,
    trace: RequestTrace,
    phase: usize,
    /// Lines of the current phase not yet accepted by their controller.
    pending: Vec<PendingLine>,
    /// DRAM requests of the current phase still in flight.
    outstanding: usize,
    /// Latest bus/crypto completion time of the current phase.
    busy_until: Cycle,
    /// Cycle the current phase began (trace-span start).
    phase_started: Cycle,
    data_ready_sent: bool,
    backend_released: bool,
    started: bool,
}

/// Aggregate work attribution collected by the executor: how many cycles
/// of crypto and external-bus occupancy each run consumed, and the
/// high-water marks of its queues. Resettable at the warm-up boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total crypto-unit busy cycles scheduled (summed across requests;
    /// concurrent crypto on different requests counts multiply).
    pub crypto_cycles: u64,
    /// Data cycles reserved on the external buses.
    pub ext_data_cycles: u64,
    /// Command slots reserved on the external buses.
    pub ext_commands: u64,
    /// DRAM line requests issued to the internal channels.
    pub dram_lines: u64,
    /// Peak number of concurrently in-flight traces.
    pub max_inflight: u64,
    /// Peak depth of any serialized-backend wait queue.
    pub max_backend_queue: u64,
    /// Times a trace had to queue behind a busy ORAM backend.
    pub backend_conflicts: u64,
}

/// Executes request traces against channels and buses.
#[derive(Debug)]
pub struct Executor {
    channels: Vec<DramChannel>,
    buses: Vec<Bus>,
    /// Which bus serves each SDIMM (empty for baseline machines).
    bus_of: Vec<usize>,
    now: Cycle,
    next_id: u64,
    inflight: Vec<Inflight>,
    /// Traces waiting for their serialized ORAM backend to free up.
    backend_waiting: HashMap<usize, std::collections::VecDeque<Inflight>>,
    /// Backends currently executing a trace.
    backend_busy: std::collections::HashSet<usize>,
    /// Maps (channel, dram request id) → index key of the owning request.
    routing: HashMap<(usize, RequestId), ExecId>,
    events: Vec<ExecEvent>,
    /// Off-DIMM I/O energy per bit for bus transfers (pJ).
    bus_pj_per_bit: f64,
    /// When true, a `WakeRank` hint force-downs all other ranks
    /// (the §III-E low-power policy).
    lowpower_ranks: bool,
    /// Work-attribution counters (crypto/bus/DRAM split, queue peaks).
    exec_stats: ExecStats,
    /// Trace recording handle; disabled by default.
    sink: TraceSink,
    /// Chrome-trace process id for this executor's tracks.
    trace_pid: u32,
    /// Flight recorder for black-box dumps; disabled by default.
    flight: FlightRecorder,
    /// Simulated-time sampling profiler; disabled by default.
    profiler: CycleProfiler,
    /// Root frames for this executor's profiler stacks
    /// (`protocol;<machine-name>`).
    profile_prefix: String,
    /// Cycle of the most recent profiler sample.
    last_sample: Cycle,
    /// Cycle the next profiler sample is due.
    sample_due: Cycle,
    /// Shared simulated clock published every tick so out-of-band
    /// observers (the obliviousness recorder's cycle stamps) read the
    /// executor's `now` without holding a reference to it.
    clock: sdimm::obliviousness::SharedCycle,
}

/// Number of Chrome-trace lanes executor phase spans are spread over, so
/// concurrent requests render side by side instead of nesting.
const TRACE_LANES: u64 = 8;

/// Thread-id base for executor lanes (DRAM channels own the low tids).
const LANE_TID_BASE: u32 = 64;

impl Executor {
    /// Creates an executor over `n_channels` identical channels.
    ///
    /// `bus_map` assigns each channel/SDIMM to an external bus index
    /// (pass an empty slice for baseline machines where the channels
    /// *are* the main memory and no SDIMM bus exists).
    pub fn new(n_channels: usize, cfg: ChannelConfig, bus_map: &[usize]) -> Self {
        assert!(n_channels > 0);
        let bus_count = bus_map.iter().copied().max().map(|m| m + 1).unwrap_or(0);
        assert!(bus_map.is_empty() || bus_map.len() == n_channels);
        let bus_pj_per_bit = cfg.power.io_pj_per_bit_offdimm;
        Executor {
            channels: (0..n_channels).map(|_| DramChannel::new(cfg.clone())).collect(),
            buses: (0..bus_count).map(|_| Bus::new()).collect(),
            bus_of: bus_map.to_vec(),
            now: 0,
            next_id: 0,
            inflight: Vec::new(),
            backend_waiting: HashMap::new(),
            backend_busy: std::collections::HashSet::new(),
            routing: HashMap::new(),
            events: Vec::new(),
            bus_pj_per_bit,
            lowpower_ranks: false,
            exec_stats: ExecStats::default(),
            sink: TraceSink::disabled(),
            trace_pid: 0,
            flight: FlightRecorder::disabled(),
            profiler: CycleProfiler::disabled(),
            profile_prefix: String::new(),
            last_sample: 0,
            sample_due: 0,
            clock: sdimm::obliviousness::SharedCycle::new(),
        }
    }

    /// The executor's shared simulated clock: updated to `now` as time
    /// advances. Clone it into any observer that needs cycle stamps (the
    /// obliviousness [`Recorder`](sdimm::obliviousness::Recorder)).
    pub fn shared_clock(&self) -> sdimm::obliviousness::SharedCycle {
        self.clock.clone()
    }

    /// Attaches a trace sink under process track `pid`: DRAM channels get
    /// thread tracks `0..n_channels`, executor phase spans are spread
    /// over [`TRACE_LANES`] lanes above them.
    pub fn set_trace(&mut self, sink: TraceSink, pid: u32) {
        if sink.is_enabled() {
            for lane in 0..TRACE_LANES as u32 {
                sink.thread_name(pid, LANE_TID_BASE + lane, &format!("exec.lane{lane}"));
            }
        }
        for (i, ch) in self.channels.iter_mut().enumerate() {
            ch.set_trace(sink.clone(), pid, i as u32);
        }
        self.sink = sink;
        self.trace_pid = pid;
    }

    /// Attaches a flight recorder: the executor publishes its clock into
    /// the recorder every tick, mirrors phase completions and backend
    /// scheduling decisions into the ring, and taps every channel's DDR
    /// command stream. Disabled by default; one branch per event.
    pub fn set_flight_recorder(&mut self, recorder: FlightRecorder) {
        for (i, ch) in self.channels.iter_mut().enumerate() {
            ch.set_flight_recorder(recorder.clone(), i.min(u8::MAX as usize) as u8);
        }
        self.flight = recorder;
    }

    /// The executor's flight recorder (disabled unless attached).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Attaches a cycle-attribution profiler. Every
    /// [`CycleProfiler::interval`] simulated cycles the executor charges
    /// the elapsed window to the oldest in-flight request's current
    /// phase as a folded stack rooted at `protocol;<machine_name>`.
    pub fn set_profiler(&mut self, profiler: CycleProfiler, machine_name: &str) {
        self.profile_prefix = format!("protocol;{machine_name}");
        self.last_sample = self.now;
        self.sample_due = self.now.saturating_add(profiler.interval());
        self.profiler = profiler;
    }

    /// Attaches a fresh command log to every DRAM channel and returns the
    /// handles in channel order, for differential replay auditing
    /// (`sdimm-audit`). Must be called before any traffic reaches the
    /// channels: a replay auditor cannot validate a stream that starts
    /// mid-flight, with unknown bank state behind it.
    pub fn attach_cmd_logs(&mut self) -> Vec<dram_sim::cmdlog::CmdLog> {
        self.channels
            .iter_mut()
            .map(|ch| {
                let log = dram_sim::cmdlog::CmdLog::enabled();
                ch.set_cmd_log(log.clone());
                log
            })
            .collect()
    }

    /// Enables the per-row wear/disturbance tracker on every DRAM
    /// channel. Like the trace sinks, this is off by default (one
    /// `Option` branch per ACT when disabled) and should be switched on
    /// before traffic so lifetime counts cover the whole run.
    pub fn enable_wear(&mut self) {
        for ch in &mut self.channels {
            ch.enable_wear();
        }
    }

    /// The Chrome-trace lane a request's phase spans render on.
    fn lane_of(id: ExecId) -> u32 {
        LANE_TID_BASE + (id.0 % TRACE_LANES) as u32
    }

    /// Work-attribution counters collected so far.
    pub fn exec_stats(&self) -> &ExecStats {
        &self.exec_stats
    }

    /// Clears performance statistics on the executor and every channel —
    /// the warm-up/measured-window boundary. Timing and energy state are
    /// untouched; in-flight work continues unaffected.
    pub fn reset_stats(&mut self) {
        self.exec_stats = ExecStats::default();
        for ch in &mut self.channels {
            ch.reset_stats();
        }
    }

    /// Exports executor attribution plus per-channel stats as a metrics
    /// registry (`exec.*`, `dram.chan<i>.*`).
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.counter_add("exec.crypto_cycles", self.exec_stats.crypto_cycles);
        m.counter_add("exec.ext_data_cycles", self.exec_stats.ext_data_cycles);
        m.counter_add("exec.ext_commands", self.exec_stats.ext_commands);
        m.counter_add("exec.dram_lines", self.exec_stats.dram_lines);
        m.counter_add("exec.backend_conflicts", self.exec_stats.backend_conflicts);
        m.gauge_set("exec.max_inflight", self.exec_stats.max_inflight as f64);
        m.gauge_set("exec.max_backend_queue", self.exec_stats.max_backend_queue as f64);
        m.counter_add("bus.data_bytes", self.bus_bytes());
        m.counter_add("bus.commands", self.bus_commands());
        let busy: u64 = self.buses.iter().map(Bus::data_busy_cycles).sum();
        m.counter_add("bus.data_busy_cycles", busy);
        if self.now > 0 && !self.buses.is_empty() {
            m.gauge_set(
                "bus.utilization",
                busy as f64 / (self.now as f64 * self.buses.len() as f64),
            );
        }
        for (i, ch) in self.channels.iter().enumerate() {
            m.absorb(&format!("dram.chan{i}"), &ch.stats().to_metrics());
        }
        m
    }

    /// Enables the low-power rank policy: `WakeRank` hints wake the
    /// target rank and push every other rank of that channel down.
    pub fn set_lowpower_ranks(&mut self, on: bool) {
        self.lowpower_ranks = on;
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of requests still in flight (including traces queued on a
    /// busy backend).
    pub fn active(&self) -> usize {
        self.inflight.len() + self.backend_waiting.values().map(|q| q.len()).sum::<usize>()
    }

    /// Borrow a channel (stats).
    pub fn channel(&self, i: usize) -> &DramChannel {
        &self.channels[i]
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Total bytes moved over the external buses.
    pub fn bus_bytes(&self) -> u64 {
        self.buses.iter().map(Bus::data_bytes).sum()
    }

    /// Total command slots used on the external buses.
    pub fn bus_commands(&self) -> u64 {
        self.buses.iter().map(Bus::commands).sum()
    }

    /// Aggregate energy: channel energy plus external-bus I/O energy.
    pub fn energy(&mut self) -> EnergyBreakdown {
        let mut e = EnergyBreakdown::default();
        for ch in &mut self.channels {
            e.merge(&ch.energy());
        }
        let bus_bits = self.bus_bytes() * 8;
        e.io_nj += bus_bits as f64 * self.bus_pj_per_bit / 1000.0;
        e
    }

    /// Submits a request trace for execution. Traces claiming a busy
    /// ORAM backend queue behind it (FIFO) and start when it frees.
    pub fn submit(&mut self, trace: RequestTrace) -> ExecId {
        let id = ExecId(self.next_id);
        self.next_id += 1;
        let mut req = Inflight {
            id,
            trace,
            phase: 0,
            pending: Vec::new(),
            outstanding: 0,
            busy_until: self.now,
            phase_started: self.now,
            data_ready_sent: false,
            backend_released: false,
            started: false,
        };
        if req.trace.phases.is_empty() {
            self.events.push(ExecEvent::DataReady { id, at: self.now });
            self.events.push(ExecEvent::Done { id, at: self.now });
            return id;
        }
        if let Some(backend) = req.trace.backend {
            if self.backend_busy.contains(&backend) {
                self.exec_stats.backend_conflicts += 1;
                self.sink.instant(
                    "exec",
                    "backend.wait",
                    self.trace_pid,
                    Self::lane_of(id),
                    self.now,
                );
                self.flight.record_at(
                    self.now,
                    FlightEventKind::Backend { request: id.0, decision: BackendDecision::Wait },
                );
                let q = self.backend_waiting.entry(backend).or_default();
                q.push_back(req);
                self.exec_stats.max_backend_queue =
                    self.exec_stats.max_backend_queue.max(q.len() as u64);
                return id;
            }
            self.backend_busy.insert(backend);
            self.sink.instant(
                "exec",
                "backend.acquire",
                self.trace_pid,
                Self::lane_of(id),
                self.now,
            );
            self.flight.record_at(
                self.now,
                FlightEventKind::Backend { request: id.0, decision: BackendDecision::Acquire },
            );
        }
        self.start_phase(&mut req);
        self.inflight.push(req);
        self.exec_stats.max_inflight = self.exec_stats.max_inflight.max(self.inflight.len() as u64);
        id
    }

    /// Takes accumulated events.
    pub fn poll(&mut self) -> Vec<ExecEvent> {
        std::mem::take(&mut self.events)
    }

    fn start_phase(&mut self, req: &mut Inflight) {
        req.started = true;
        req.busy_until = self.now;
        req.phase_started = self.now;
        let phase = &req.trace.phases[req.phase];
        for act in &phase.par {
            match act {
                Activity::ExtShort { sdimm } => {
                    let bus = self.bus_of.get(*sdimm).copied().unwrap_or(0);
                    if let Some(b) = self.buses.get_mut(bus) {
                        let slot = b.reserve(self.now, 0);
                        req.busy_until = req.busy_until.max(slot.done_at);
                        self.exec_stats.ext_commands += 1;
                    }
                }
                Activity::ExtTransfer { sdimm, bytes } => {
                    let bus = self.bus_of.get(*sdimm).copied().unwrap_or(0);
                    if let Some(b) = self.buses.get_mut(bus) {
                        let busy_before = b.data_busy_cycles();
                        let slot = b.reserve(self.now, *bytes);
                        req.busy_until = req.busy_until.max(slot.done_at);
                        self.exec_stats.ext_commands += 1;
                        self.exec_stats.ext_data_cycles = self
                            .exec_stats
                            .ext_data_cycles
                            .saturating_add(b.data_busy_cycles().saturating_sub(busy_before));
                    }
                }
                Activity::Crypto { units } => {
                    let cycles = Activity::crypto_cycles(*units);
                    req.busy_until = req.busy_until.max(self.now.saturating_add(cycles));
                    self.exec_stats.crypto_cycles =
                        self.exec_stats.crypto_cycles.saturating_add(cycles);
                }
                Activity::Dram { channel, reads, writes } => {
                    self.exec_stats.dram_lines += (reads.len() + writes.len()) as u64;
                    for &addr in reads {
                        req.pending.push(PendingLine { channel: *channel, addr, is_write: false });
                    }
                    for &addr in writes {
                        req.pending.push(PendingLine { channel: *channel, addr, is_write: true });
                    }
                }
                Activity::WakeRank { channel, rank } => {
                    let ch = &mut self.channels[*channel];
                    ch.wake_rank(*rank);
                    if self.lowpower_ranks {
                        let ranks = ch.config().topology.ranks;
                        for r in 0..ranks {
                            if r != *rank {
                                ch.force_rank_down(r);
                            }
                        }
                    }
                }
            }
        }
        self.pump_pending(req);
    }

    /// Tries to enqueue a request's pending DRAM lines.
    fn pump_pending(&mut self, req: &mut Inflight) {
        let mut i = 0;
        while i < req.pending.len() {
            let line = &req.pending[i];
            let accepted = if line.is_write {
                self.channels[line.channel].enqueue_write(line.addr)
            } else {
                self.channels[line.channel].enqueue_read(line.addr)
            };
            match accepted {
                Some(rid) => {
                    self.routing.insert((line.channel, rid), req.id);
                    req.outstanding += 1;
                    req.pending.swap_remove(i);
                }
                None => {
                    i += 1; // queue full; retry on a later pump
                }
            }
        }
    }

    /// Observation grid for [`tick`](Self::tick): `process` runs only at
    /// absolute multiples of this step. Anchoring the grid in absolute
    /// time (rather than per `tick` call) makes the event schedule
    /// independent of how callers slice their calls, and matches the
    /// historical fixed-quantum loop at every production call site.
    const STEP: Cycle = 8;

    /// Advances simulated time, pumping all in-flight requests.
    ///
    /// Event-driven: instead of stepping a fixed quantum, the loop jumps
    /// straight to the next grid-aligned point at which anything
    /// *observable* can happen — a DRAM completion, a bus/crypto phase
    /// deadline, queue room for a pending line, a profiler sample — and
    /// calls `process` only there. Channels absorb arbitrary-sized jumps
    /// (their own tick is event-driven and split-invariant), so every
    /// skipped grid point is one where `process` would have been an
    /// observable no-op: the command streams, events, and metrics are
    /// identical to stepping [`STEP`](Self::STEP) cycles at a time.
    pub fn tick(&mut self, cycles: Cycle) {
        let end = self.now.saturating_add(cycles);
        while self.now < end {
            let next_grid = (self.now / Self::STEP + 1).saturating_mul(Self::STEP);
            // Observability sinks expect the historical cadence: the
            // inflight counter and the flight clock advance per step.
            let horizon = if self.sink.is_enabled() || self.flight.is_enabled() {
                next_grid
            } else {
                // The clamp floor lets the walk stop refining as soon as
                // it proves the next grid point must be visited anyway —
                // the common case while traffic is dense.
                self.next_horizon_clamped(next_grid).max(next_grid)
            };
            // First grid point that can observe the horizon event (an
            // event at `e >= horizon` is observed at the same grid point
            // the fixed-quantum loop would have seen it).
            let rem = horizon % Self::STEP;
            let target =
                if rem == 0 { horizon } else { horizon.saturating_add(Self::STEP - rem) }.min(end);
            let dt = target.saturating_sub(self.now);
            for ch in &mut self.channels {
                ch.tick(dt);
            }
            self.now = target;
            self.clock.publish(self.now);
            self.flight.set_clock(self.now);
            if self.now.is_multiple_of(Self::STEP) {
                self.process();
                if self.profiler.is_enabled() && self.now >= self.sample_due {
                    self.profile_sample();
                }
            }
        }
    }

    /// Earliest cycle at which this executor could emit an event or
    /// otherwise observably change state — `Cycle::MAX` when fully idle.
    /// A *conservative lower bound*: the real event may be later (`tick`
    /// re-derives horizons as it goes, so a driver that stops here and
    /// finds nothing simply jumps again), never earlier. External
    /// drivers may therefore advance straight to their own observation
    /// grid point at or after this cycle without missing anything.
    pub fn next_event_horizon(&self) -> Cycle {
        self.next_horizon_clamped(0)
    }

    /// [`next_event_horizon`](Self::next_event_horizon) with an early
    /// exit: once the walk proves the horizon is at or below `floor` it
    /// returns immediately with whatever bound it has. Callers that only
    /// use the horizon as `max(horizon, floor)` (i.e. their next
    /// observation point is at least `floor` anyway) get an identical
    /// answer for a fraction of the walk while traffic is dense.
    pub fn next_event_horizon_clamped(&self, floor: Cycle) -> Cycle {
        self.next_horizon_clamped(floor)
    }

    /// Earliest future cycle at which `process` could observe anything:
    /// a phase deadline expiring, a DRAM completion arriving, or queue
    /// room opening for a not-yet-accepted line. `Cycle::MAX` when fully
    /// idle (the caller then jumps straight to its requested end).
    /// Returns early once the bound reaches `floor` (see
    /// [`next_event_horizon_clamped`](Self::next_event_horizon_clamped));
    /// pass 0 for the exact horizon.
    fn next_horizon_clamped(&self, floor: Cycle) -> Cycle {
        let mut h = Cycle::MAX;
        if self.profiler.is_enabled() {
            h = h.min(self.sample_due);
            if h <= floor {
                return h;
            }
        }
        let mut pending_lines = false;
        for req in &self.inflight {
            if !req.pending.is_empty() {
                // Queue-full retries: room opens when a CAS dequeues an
                // entry, i.e. at some scheduler invocation, so fall back
                // to the channels' own wake horizon below. Pump timing
                // feeds request arrival times, which feed scheduling —
                // it must match the fixed-quantum cadence exactly.
                pending_lines = true;
            } else if req.outstanding == 0 {
                h = h.min(req.busy_until);
                if h <= floor {
                    return h;
                }
            }
        }
        for ch in &self.channels {
            h = h.min(if pending_lines { ch.next_event() } else { ch.completion_horizon() });
            if h <= floor {
                return h;
            }
        }
        h
    }

    /// Takes one profiler sample: charges the cycles since the previous
    /// sample to the stack describing what the executor is doing *now*
    /// (sampled attribution, like a wall-clock profiler but in simulated
    /// time, so results are deterministic).
    fn profile_sample(&mut self) {
        let weight = self.now.saturating_sub(self.last_sample);
        self.last_sample = self.now;
        self.sample_due = self.now.saturating_add(self.profiler.interval());
        if weight == 0 {
            return;
        }
        let stack = self.current_profile_stack();
        self.profiler.add_sample(&stack, weight);
    }

    /// The folded stack for the executor's current state: the oldest
    /// in-flight request's phase (role + bounding resource + channel),
    /// else `backend_wait` when requests are queued behind a busy ORAM
    /// backend, else `idle`.
    fn current_profile_stack(&self) -> String {
        let oldest = self
            .inflight
            .iter()
            .filter(|r| r.started && r.phase < r.trace.phases.len())
            .min_by_key(|r| r.id);
        if let Some(req) = oldest {
            let role = req.trace.phase_role(req.phase);
            let (resource, channel) = req.trace.phases[req.phase].profile_frame();
            return match channel {
                Some(c) => format!("{};{role};{resource};ch{c}", self.profile_prefix),
                None => format!("{};{role};{resource}", self.profile_prefix),
            };
        }
        if self.backend_waiting.values().any(|q| !q.is_empty()) {
            return format!("{};backend_wait", self.profile_prefix);
        }
        format!("{};idle", self.profile_prefix)
    }

    /// Runs until every submitted request is done or `limit` elapses.
    pub fn run_until_quiescent(&mut self, limit: Cycle) {
        let deadline = self.now.saturating_add(limit);
        while self.active() > 0 && self.now < deadline {
            self.tick(64.min(deadline.saturating_sub(self.now)).max(1));
        }
    }

    fn process(&mut self) {
        // Route channel completions to their owners.
        let mut finished: HashMap<ExecId, usize> = HashMap::new();
        for (ci, ch) in self.channels.iter_mut().enumerate() {
            for comp in ch.drain_completions() {
                if let Some(owner) = self.routing.remove(&(ci, comp.id)) {
                    *finished.entry(owner).or_insert(0) += 1;
                }
            }
        }

        // Advance requests.
        let mut requests = std::mem::take(&mut self.inflight);
        for req in &mut requests {
            if let Some(n) = finished.get(&req.id) {
                req.outstanding -= n;
            }
        }
        let now = self.now;
        let mut still_running = Vec::with_capacity(requests.len());
        for mut req in requests {
            if !req.pending.is_empty() {
                self.pump_pending(&mut req);
            }
            // Phase complete?
            while req.pending.is_empty() && req.outstanding == 0 && now >= req.busy_until {
                if self.sink.is_enabled() {
                    self.sink.span(
                        "exec",
                        &format!("req{}.phase{}", req.id.0, req.phase),
                        self.trace_pid,
                        Self::lane_of(req.id),
                        req.phase_started,
                        now.max(req.phase_started + 1),
                    );
                }
                self.flight.record_at(
                    now,
                    FlightEventKind::Phase {
                        request: req.id.0,
                        phase: req.phase.min(u32::MAX as usize) as u32,
                        started: req.phase_started,
                    },
                );
                if req.phase == req.trace.data_ready_phase && !req.data_ready_sent {
                    req.data_ready_sent = true;
                    self.events.push(ExecEvent::DataReady { id: req.id, at: now });
                }
                if req.phase >= req.trace.backend_release_phase && !req.backend_released {
                    req.backend_released = true;
                    if let Some(backend) = req.trace.backend {
                        self.sink.instant(
                            "exec",
                            "backend.release",
                            self.trace_pid,
                            Self::lane_of(req.id),
                            now,
                        );
                        self.flight.record_at(
                            now,
                            FlightEventKind::Backend {
                                request: req.id.0,
                                decision: BackendDecision::Release,
                            },
                        );
                        // Hand the backend to the next waiting trace; the
                        // remaining (CPU-side) phases run concurrently.
                        let next = self
                            .backend_waiting
                            .get_mut(&backend)
                            .and_then(std::collections::VecDeque::pop_front);
                        match next {
                            Some(mut waiting) => {
                                self.sink.instant(
                                    "exec",
                                    "backend.acquire",
                                    self.trace_pid,
                                    Self::lane_of(waiting.id),
                                    now,
                                );
                                self.flight.record_at(
                                    now,
                                    FlightEventKind::Backend {
                                        request: waiting.id.0,
                                        decision: BackendDecision::Acquire,
                                    },
                                );
                                self.start_phase(&mut waiting);
                                still_running.push(waiting);
                            }
                            None => {
                                self.backend_busy.remove(&backend);
                            }
                        }
                    }
                }
                if req.phase + 1 >= req.trace.phases.len() {
                    if !req.data_ready_sent {
                        req.data_ready_sent = true;
                        self.events.push(ExecEvent::DataReady { id: req.id, at: now });
                    }
                    self.events.push(ExecEvent::Done { id: req.id, at: now });
                    req.phase = usize::MAX; // sentinel: fully done
                    break;
                }
                req.phase += 1;
                self.start_phase(&mut req);
            }
            if req.phase != usize::MAX {
                still_running.push(req);
            }
        }
        self.inflight = still_running;
        self.exec_stats.max_inflight = self.exec_stats.max_inflight.max(self.inflight.len() as u64);
        if self.sink.is_enabled() {
            self.sink.counter("exec", "inflight", self.trace_pid, now, self.inflight.len() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdimm::trace::Phase;

    fn quiet_cfg() -> ChannelConfig {
        let mut cfg = ChannelConfig::sdimm_internal();
        cfg.refresh_enabled = false;
        cfg
    }

    fn dram_trace(channel: usize, n: u64) -> RequestTrace {
        RequestTrace::new(vec![Phase::one(Activity::Dram {
            channel,
            reads: (0..n).map(|i| i * 64).collect(),
            writes: Vec::new(),
        })])
    }

    #[test]
    fn single_dram_phase_completes() {
        let mut ex = Executor::new(1, quiet_cfg(), &[0]);
        let id = ex.submit(dram_trace(0, 4));
        ex.run_until_quiescent(100_000);
        let events = ex.poll();
        assert!(
            events.contains(&ExecEvent::Done { id, at: ex.now() })
                || events.iter().any(|e| matches!(e, ExecEvent::Done { id: i, .. } if *i == id))
        );
    }

    #[test]
    fn phases_serialize() {
        // Phase 2's DRAM work must not start before phase 1's crypto ends.
        let mut ex = Executor::new(1, quiet_cfg(), &[0]);
        let trace = RequestTrace::new(vec![
            Phase::one(Activity::Crypto { units: 100 }), // ≈120 cycles
            Phase::one(Activity::Dram { channel: 0, reads: vec![0], writes: vec![] }),
        ]);
        let id = ex.submit(trace);
        ex.run_until_quiescent(100_000);
        let done_at = ex
            .poll()
            .iter()
            .find_map(|e| match e {
                ExecEvent::Done { id: i, at } if *i == id => Some(*at),
                _ => None,
            })
            .expect("request finishes");
        assert!(done_at > 120, "crypto phase must delay the DRAM phase, done at {done_at}");
    }

    #[test]
    fn data_ready_precedes_done_when_marked() {
        let mut ex = Executor::new(2, quiet_cfg(), &[0, 0]);
        let mut trace = RequestTrace::new(vec![
            Phase::one(Activity::Dram { channel: 0, reads: vec![0], writes: vec![] }),
            Phase::one(Activity::Dram { channel: 1, reads: vec![64], writes: vec![] }),
        ]);
        trace.data_ready_phase = 0;
        let id = ex.submit(trace);
        ex.run_until_quiescent(100_000);
        let ev = ex.poll();
        let ready =
            ev.iter().position(|e| matches!(e, ExecEvent::DataReady { id: i, .. } if *i == id));
        let done = ev.iter().position(|e| matches!(e, ExecEvent::Done { id: i, .. } if *i == id));
        assert!(ready.unwrap() < done.unwrap());
    }

    #[test]
    fn parallel_channels_overlap() {
        // The same DRAM work split across 2 channels should finish much
        // faster than serialized on one.
        let run = |channels: usize| {
            let mut ex = Executor::new(channels, quiet_cfg(), &vec![0; channels]);
            let per = 64 / channels as u64;
            let phases = vec![Phase {
                par: (0..channels)
                    .map(|c| Activity::Dram {
                        channel: c,
                        reads: (0..per).map(|i| i * 64).collect(),
                        writes: Vec::new(),
                    })
                    .collect(),
            }];
            ex.submit(RequestTrace::new(phases));
            ex.run_until_quiescent(1_000_000);
            ex.now()
        };
        let one = run(1);
        let two = run(2);
        assert!((two as f64) < one as f64 * 0.7, "1ch={one} 2ch={two}");
    }

    #[test]
    fn bus_contention_serializes_transfers() {
        let mut ex = Executor::new(2, quiet_cfg(), &[0, 0]);
        // Two simultaneous 4 KB transfers on the same bus.
        for s in 0..2usize {
            ex.submit(RequestTrace::new(vec![Phase::one(Activity::ExtTransfer {
                sdimm: s,
                bytes: 4096,
            })]));
        }
        ex.run_until_quiescent(1_000_000);
        // 8 KB at 16 B/cycle = 512 cycles minimum.
        assert!(ex.now() >= 512, "bus must serialize: now = {}", ex.now());
        assert_eq!(ex.bus_bytes(), 8192);
    }

    #[test]
    fn many_requests_all_complete() {
        let mut ex = Executor::new(2, quiet_cfg(), &[0, 1]);
        let mut ids = Vec::new();
        for i in 0..20 {
            ids.push(ex.submit(dram_trace(i % 2, 8)));
        }
        ex.run_until_quiescent(1_000_000);
        let done: Vec<ExecId> = ex
            .poll()
            .iter()
            .filter_map(|e| match e {
                ExecEvent::Done { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(done.len(), 20);
    }

    #[test]
    fn empty_trace_completes_immediately() {
        let mut ex = Executor::new(1, quiet_cfg(), &[0]);
        let id = ex.submit(RequestTrace::default());
        let ev = ex.poll();
        assert!(ev.iter().any(|e| matches!(e, ExecEvent::Done { id: i, .. } if *i == id)));
    }

    #[test]
    fn backend_serialization_orders_traces() {
        let mut ex = Executor::new(1, quiet_cfg(), &[0]);
        let mut t1 = dram_trace(0, 8);
        t1.backend = Some(0);
        let mut t2 = dram_trace(0, 8);
        t2.backend = Some(0);
        let a = ex.submit(t1);
        let b = ex.submit(t2);
        assert_eq!(ex.active(), 2, "second trace queues behind the busy backend");
        ex.run_until_quiescent(1_000_000);
        let done: Vec<(ExecId, Cycle)> = ex
            .poll()
            .iter()
            .filter_map(|e| match e {
                ExecEvent::Done { id, at } => Some((*id, *at)),
                _ => None,
            })
            .collect();
        let ta = done.iter().find(|(i, _)| *i == a).unwrap().1;
        let tb = done.iter().find(|(i, _)| *i == b).unwrap().1;
        assert!(tb > ta, "backend must serialize: {ta} vs {tb}");
    }

    #[test]
    fn backend_release_phase_frees_backend_early() {
        let mut ex = Executor::new(1, quiet_cfg(), &[0]);
        // Trace A: a short DRAM phase then a long crypto tail; backend
        // released after the DRAM phase.
        let mut a = RequestTrace::new(vec![
            Phase::one(Activity::Dram { channel: 0, reads: vec![0], writes: vec![] }),
            Phase::one(Activity::Crypto { units: 2000 }), // ≈2 kcycle tail
        ]);
        a.backend = Some(0);
        a.backend_release_phase = 0;
        let mut b = RequestTrace::new(vec![Phase::one(Activity::Dram {
            channel: 0,
            reads: vec![64],
            writes: vec![],
        })]);
        b.backend = Some(0);
        ex.submit(a);
        let bid = ex.submit(b);
        ex.run_until_quiescent(1_000_000);
        let done_b = ex
            .poll()
            .iter()
            .find_map(|e| match e {
                ExecEvent::Done { id, at } if *id == bid => Some(*at),
                _ => None,
            })
            .expect("b finishes");
        assert!(
            done_b < 1000,
            "b should start as soon as a's DRAM phase ends, not after its crypto tail: {done_b}"
        );
    }

    #[test]
    fn lowpower_wakerank_forces_other_ranks_down() {
        let mut ex = Executor::new(1, quiet_cfg(), &[0]);
        ex.set_lowpower_ranks(true);
        ex.submit(RequestTrace::new(vec![Phase {
            par: vec![
                Activity::WakeRank { channel: 0, rank: 1 },
                Activity::Dram { channel: 0, reads: vec![0], writes: vec![] },
            ],
        }]));
        ex.run_until_quiescent(100_000);
        ex.tick(200); // give the scheduler time to close banks and sleep
        use dram_sim::rank::PowerState;
        let asleep = (0..ex.channel(0).config().topology.ranks)
            .filter(|r| matches!(ex.channel(0).rank_power_state(*r), PowerState::PowerDown { .. }))
            .count();
        assert!(asleep >= 2, "most idle ranks should be powered down, got {asleep}");
    }

    #[test]
    fn energy_includes_bus_io() {
        let mut ex = Executor::new(1, quiet_cfg(), &[0]);
        ex.submit(RequestTrace::new(vec![Phase::one(Activity::ExtTransfer {
            sdimm: 0,
            bytes: 64 * 1024,
        })]));
        ex.run_until_quiescent(1_000_000);
        let e = ex.energy();
        assert!(e.io_nj > 0.0, "bus transfers must show up as I/O energy");
    }
}
