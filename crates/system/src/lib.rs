//! `sdimm-system` — full-system trace-driven simulation tying everything
//! together.
//!
//! A [`machine::Machine`] couples:
//!
//! * the CPU-side frontend (`sdimm::frontend`, the PLB + recursion walk),
//! * a functional ORAM backend (baseline `oram::PathOram` or one of the
//!   SDIMM protocols from the `sdimm` crate),
//! * and the cycle-level [`executor::Executor`] over `dram-sim` channels
//!   and buses.
//!
//! [`runner::run`] replays a `workloads` trace through the Table II LLC
//! with a warm-up window, then measures cycles, latency, and energy —
//! the harness behind every performance figure in the paper.
//!
//! # Example
//!
//! ```no_run
//! use sdimm_system::machine::{MachineKind, SystemConfig};
//! use sdimm_system::runner;
//! use workloads::spec;
//!
//! let trace = spec::generate("gromacs-like", 3_000, 1);
//! let base = runner::run(
//!     &SystemConfig::small(MachineKind::Freecursive { channels: 1 }),
//!     &trace, 1_000, 1_000);
//! let indep = runner::run(
//!     &SystemConfig::small(MachineKind::Independent { sdimms: 2, channels: 1 }),
//!     &trace, 1_000, 1_000);
//! println!("speedup: {:.2}x",
//!     base.cycles_per_record() / indep.cycles_per_record());
//! ```

#![deny(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod executor;
pub mod llc;
pub mod machine;
pub mod runner;

/// Version tag of the event-horizon execution engine ([`executor`]).
/// Bumped whenever the advancement algorithm changes in a way that can
/// shift cycle counts, so persisted reports can be traced back to the
/// engine that produced them.
pub const ENGINE_VERSION: &str = "horizon-2";

pub use machine::{Machine, MachineKind, SystemConfig};
pub use runner::{run, RunResult};
