//! Machine configurations: one builder per evaluated design point.
//!
//! A [`Machine`] couples a functional ORAM backend (or none), the
//! CPU-side frontend, and the executor resources (channels, buses) for
//! one of the paper's design points: the non-secure baseline, Freecursive
//! on 1/2 channels, and the SDIMM organizations of Fig 7
//! (INDEP-2/SPLIT-2 on one channel, INDEP-4/SPLIT-4/INDEP-SPLIT on two).

use dram_sim::config::ChannelConfig;
use dram_sim::spec::DramStandard;
use oram::path_oram::PathOram;
use oram::types::{BlockId, Op, OramConfig};
use oram::wear::LevelWear;
use sdimm::frontend::Frontend;
use sdimm::indep_split::{IndepSplitConfig, IndepSplitOram};
use sdimm::independent::{IndependentConfig, IndependentOram};
use sdimm::split::{SplitConfig, SplitOram};
use sdimm::trace::{Activity, Phase, RequestTrace};

use crate::executor::Executor;

/// Which design point to build (Fig 7 naming).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineKind {
    /// No ORAM: LLC misses go straight to DRAM.
    NonSecure {
        /// Main-memory channels.
        channels: usize,
    },
    /// Plain Path ORAM with the whole position map on chip: exactly one
    /// `accessORAM` per request (no recursion, no PLB). The
    /// secure-baseline bound the recursive designs are measured against.
    PathOram {
        /// Main-memory channels.
        channels: usize,
    },
    /// The Freecursive ORAM baseline.
    Freecursive {
        /// Main-memory channels.
        channels: usize,
    },
    /// Independent protocol over `sdimms` SDIMMs (`channels` external
    /// buses; `sdimms / channels` SDIMMs share each bus).
    Independent {
        /// SDIMM count (INDEP-2, INDEP-4).
        sdimms: usize,
        /// External buses.
        channels: usize,
    },
    /// Split protocol across `ways` SDIMMs.
    Split {
        /// Split arity (SPLIT-2, SPLIT-4).
        ways: usize,
        /// External buses.
        channels: usize,
    },
    /// The combined INDEP-SPLIT design (2 groups × 2-way split).
    IndepSplit {
        /// Independent groups.
        groups: usize,
        /// Split arity within a group.
        ways: usize,
        /// External buses.
        channels: usize,
    },
}

impl MachineKind {
    /// Short display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            MachineKind::NonSecure { channels } => format!("NONSECURE-{channels}ch"),
            MachineKind::PathOram { channels } => format!("PATHORAM-{channels}ch"),
            MachineKind::Freecursive { channels } => format!("FREECURSIVE-{channels}ch"),
            MachineKind::Independent { sdimms, .. } => format!("INDEP-{sdimms}"),
            MachineKind::Split { ways, .. } => format!("SPLIT-{ways}"),
            MachineKind::IndepSplit { .. } => "INDEP-SPLIT".to_string(),
        }
    }

    /// Number of DRAM channels the executor needs (main channels for
    /// baselines, one internal channel per SDIMM otherwise).
    pub fn executor_channels(&self) -> usize {
        match *self {
            MachineKind::NonSecure { channels }
            | MachineKind::PathOram { channels }
            | MachineKind::Freecursive { channels } => channels,
            MachineKind::Independent { sdimms, .. } => sdimms,
            MachineKind::Split { ways, .. } => ways,
            MachineKind::IndepSplit { groups, ways, .. } => groups * ways,
        }
    }

    /// The per-channel DRAM configuration this machine runs on the
    /// default (Table II DDR3-1600) standard. Shorthand for
    /// [`channel_config_for`](Self::channel_config_for) with
    /// [`DramStandard::default`].
    pub fn channel_config(&self) -> ChannelConfig {
        self.channel_config_for(DramStandard::default())
    }

    /// The per-channel DRAM configuration this machine runs under
    /// `standard`: main-memory channels for the baselines, the
    /// SDIMM-internal channel otherwise, refresh enabled in both.
    /// Exposed so a replay auditor can rebuild the exact constraint
    /// table the channels ran under.
    pub fn channel_config_for(&self, standard: DramStandard) -> ChannelConfig {
        let mut ch_cfg = match self {
            MachineKind::NonSecure { .. }
            | MachineKind::PathOram { .. }
            | MachineKind::Freecursive { .. } => ChannelConfig::table2_for(standard),
            _ => ChannelConfig::sdimm_internal_for(standard),
        };
        ch_cfg.refresh_enabled = true;
        ch_cfg
    }
}

/// Full system parameters.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Design point.
    pub kind: MachineKind,
    /// Global ORAM tree parameters (levels, Z, cached levels).
    pub oram: OramConfig,
    /// Logical data blocks the CPU addresses.
    pub data_blocks: u64,
    /// Memory standard every DRAM channel runs (timing, geometry, and
    /// burst shape come from its [`DramSpec`](dram_sim::spec::DramSpec)).
    pub standard: DramStandard,
    /// Enable the low-power rank-localized scheme.
    pub low_power: bool,
    /// Deterministic seed.
    pub seed: u64,
}

impl SystemConfig {
    /// A small-but-representative configuration for tests and quick runs:
    /// a 16-level tree with the Table II Z and block size.
    pub fn small(kind: MachineKind) -> Self {
        SystemConfig {
            kind,
            oram: OramConfig { levels: 16, cached_levels: 4, ..OramConfig::default() },
            data_blocks: 1 << 14,
            standard: DramStandard::default(),
            low_power: false,
            seed: 1,
        }
    }
}

/// The functional backend behind a machine.
#[derive(Debug)]
enum Backend {
    NonSecure,
    /// Plain Path ORAM: on-chip posmap, one access per request.
    PathOramPlain {
        oram: PathOram,
        channels: usize,
    },
    Freecursive {
        oram: PathOram,
        channels: usize,
    },
    Independent(IndependentOram),
    Split(SplitOram),
    IndepSplit(IndepSplitOram),
}

/// A complete simulated machine: frontend + backend + executor.
#[derive(Debug)]
pub struct Machine {
    cfg: SystemConfig,
    frontend: Option<Frontend>,
    backend: Backend,
    /// Cycle-level resources.
    pub executor: Executor,
}

impl Machine {
    /// Builds the machine for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (e.g. more
    /// blocks than the tree holds).
    pub fn new(cfg: SystemConfig) -> Self {
        let kind = cfg.kind;
        let n_exec = kind.executor_channels();

        let (backend, frontend, executor) = match kind {
            MachineKind::NonSecure { channels } => (
                Backend::NonSecure,
                None,
                Executor::new(channels, kind.channel_config_for(cfg.standard), &[]),
            ),
            MachineKind::PathOram { channels } => {
                let oram = PathOram::new(cfg.oram.clone(), cfg.data_blocks, cfg.seed);
                (
                    Backend::PathOramPlain { oram, channels },
                    None,
                    Executor::new(channels, kind.channel_config_for(cfg.standard), &[]),
                )
            }
            MachineKind::Freecursive { channels } => {
                let frontend = Frontend::new(&cfg.oram, cfg.data_blocks);
                let total = frontend.id_space().total_blocks();
                let oram = PathOram::new(cfg.oram.clone(), total, cfg.seed);
                (
                    Backend::Freecursive { oram, channels },
                    Some(frontend),
                    Executor::new(channels, kind.channel_config_for(cfg.standard), &[]),
                )
            }
            MachineKind::Independent { sdimms, channels } => {
                let frontend = Frontend::new(&cfg.oram, cfg.data_blocks);
                let total = frontend.id_space().total_blocks();
                let mut icfg = IndependentConfig::new(sdimms, &cfg.oram);
                icfg.low_power = cfg.low_power;
                let oram = IndependentOram::new(icfg, total, cfg.seed);
                let bus_map = bus_assignment(sdimms, channels);
                let mut ex = Executor::new(n_exec, kind.channel_config_for(cfg.standard), &bus_map);
                ex.set_lowpower_ranks(cfg.low_power);
                (Backend::Independent(oram), Some(frontend), ex)
            }
            MachineKind::Split { ways, channels } => {
                let frontend = Frontend::new(&cfg.oram, cfg.data_blocks);
                let total = frontend.id_space().total_blocks();
                let mut scfg = SplitConfig::new(ways, &cfg.oram);
                scfg.low_power = cfg.low_power;
                let oram = SplitOram::new(scfg, total, cfg.seed);
                let bus_map = bus_assignment(ways, channels);
                let mut ex = Executor::new(n_exec, kind.channel_config_for(cfg.standard), &bus_map);
                ex.set_lowpower_ranks(cfg.low_power);
                (Backend::Split(oram), Some(frontend), ex)
            }
            MachineKind::IndepSplit { groups, ways, channels } => {
                let frontend = Frontend::new(&cfg.oram, cfg.data_blocks);
                let total = frontend.id_space().total_blocks();
                let mut ccfg = IndepSplitConfig::new(groups, ways, &cfg.oram);
                ccfg.low_power = cfg.low_power;
                let oram = IndepSplitOram::new(ccfg, total, cfg.seed);
                let bus_map = bus_assignment(groups * ways, channels);
                let mut ex = Executor::new(n_exec, kind.channel_config_for(cfg.standard), &bus_map);
                ex.set_lowpower_ranks(cfg.low_power);
                (Backend::IndepSplit(oram), Some(frontend), ex)
            }
        };

        Machine { cfg, frontend, backend, executor }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Mean `accessORAM`s per request so far (≈1.4 in the paper), or 0
    /// for the non-secure machine.
    pub fn accesses_per_request(&self) -> f64 {
        self.frontend.as_ref().map(|f| f.stats().accesses_per_request()).unwrap_or(0.0)
    }

    /// Current stash occupancy (the maximum across the backend's ORAM
    /// instances — the value the per-instance stash bound applies to),
    /// or 0 for the non-secure machine.
    pub fn stash_len(&self) -> usize {
        match &self.backend {
            Backend::NonSecure => 0,
            Backend::PathOramPlain { oram, .. } => oram.stash_len(),
            Backend::Freecursive { oram, .. } => oram.stash_len(),
            Backend::Independent(o) => o.max_stash_len(),
            Backend::Split(o) => o.stash_len(),
            Backend::IndepSplit(o) => o.max_stash_len(),
        }
    }

    /// Attaches a cycle-stamping observable recorder to the backend's
    /// external-bus tap, fed from the executor's shared clock. Only the
    /// SDIMM protocols emit [`sdimm::obliviousness::Observable`] events
    /// (the baselines have no external SDIMM bus), so this is a no-op
    /// for NonSecure/PathOram/Freecursive machines.
    pub fn set_observable_recorder(&mut self) {
        let rec = sdimm::obliviousness::Recorder::with_clock(self.executor.shared_clock());
        match &mut self.backend {
            Backend::NonSecure | Backend::PathOramPlain { .. } | Backend::Freecursive { .. } => {}
            Backend::Independent(o) => o.set_recorder(rec),
            Backend::Split(o) => o.set_recorder(rec),
            Backend::IndepSplit(o) => o.set_recorder(rec),
        }
    }

    /// Takes the observable recorder back from the backend, when one was
    /// attached and the backend has an external bus to observe.
    pub fn take_observable_recorder(&mut self) -> Option<sdimm::obliviousness::Recorder> {
        match &mut self.backend {
            Backend::NonSecure | Backend::PathOramPlain { .. } | Backend::Freecursive { .. } => {
                None
            }
            Backend::Independent(o) => o.take_recorder(),
            Backend::Split(o) => o.take_recorder(),
            Backend::IndepSplit(o) => o.take_recorder(),
        }
    }

    /// Attaches a flight recorder to the executor (clock publication,
    /// phase completions, backend decisions, per-channel DDR taps) and
    /// to every backend stash (occupancy ticks).
    pub fn set_flight_recorder(&mut self, recorder: sdimm_telemetry::FlightRecorder) {
        self.executor.set_flight_recorder(recorder.clone());
        match &mut self.backend {
            Backend::NonSecure => {}
            Backend::PathOramPlain { oram, .. } => oram.set_flight_recorder(recorder, 0),
            Backend::Freecursive { oram, .. } => oram.set_flight_recorder(recorder, 0),
            Backend::Independent(o) => o.set_flight_recorder(recorder),
            Backend::Split(o) => o.set_flight_recorder(recorder),
            Backend::IndepSplit(o) => o.set_flight_recorder(recorder),
        }
    }

    /// Attaches a cycle-attribution profiler, rooting this machine's
    /// folded stacks at `protocol;<machine-name>`.
    pub fn set_profiler(&mut self, profiler: sdimm_telemetry::CycleProfiler) {
        let name = self.cfg.kind.name();
        self.executor.set_profiler(profiler, &name);
    }

    /// Peak stash occupancy across the backend's ORAM instance(s), or 0
    /// for the non-secure machine.
    pub fn stash_peak(&self) -> usize {
        match &self.backend {
            Backend::NonSecure => 0,
            Backend::PathOramPlain { oram, .. } => oram.stash_peak(),
            Backend::Freecursive { oram, .. } => oram.stash_peak(),
            Backend::Independent(o) => o.stash_peak(),
            Backend::Split(o) => o.stash_peak(),
            Backend::IndepSplit(o) => o.stash_peak(),
        }
    }

    /// PLB (PosMap Lookaside Buffer) hit rate, or 0 for the non-secure
    /// machine.
    pub fn plb_hit_rate(&self) -> f64 {
        self.frontend.as_ref().map(|f| f.plb_stats().hit_rate()).unwrap_or(0.0)
    }

    /// Exports the whole machine's metrics: frontend PLB counters
    /// (`plb.*`), backend ORAM stats (`oram.*`), and executor/channel
    /// stats (`exec.*`, `dram.chan<i>.*`).
    pub fn metrics(&self) -> sdimm_telemetry::MetricsRegistry {
        let mut m = self.executor.metrics();
        if let Some(f) = &self.frontend {
            let plb = f.plb_stats();
            m.counter_add("plb.hits", plb.hits);
            m.counter_add("plb.misses", plb.misses);
            m.counter_add("plb.dirty_evictions", plb.dirty_evictions);
            m.gauge_set("plb.hit_rate", plb.hit_rate());
            m.gauge_set("frontend.accesses_per_request", f.stats().accesses_per_request());
        }
        match &self.backend {
            Backend::NonSecure => {}
            Backend::PathOramPlain { oram, .. } => m.absorb("oram", &oram.metrics()),
            Backend::Freecursive { oram, .. } => m.absorb("oram", &oram.metrics()),
            Backend::Independent(o) => m.absorb("oram", &o.metrics()),
            Backend::Split(o) => m.absorb("oram", &o.metrics()),
            Backend::IndepSplit(o) => m.absorb("oram", &o.metrics()),
        }
        m.gauge_max("oram.stash_peak", self.stash_peak() as f64);
        m
    }

    /// Enables the per-row wear/disturbance tracker on every DRAM
    /// channel (off by default; switch on before traffic).
    pub fn enable_wear(&mut self) {
        self.executor.enable_wear();
    }

    /// Attributes a channel-local line address (as seen by DRAM channel
    /// `channel`) back to the ORAM tree level whose bucket owns it, or
    /// `None` when the machine has no tree (NonSecure) or the address is
    /// outside the tree. Each backend speaks a different channel-address
    /// dialect, so the inversion is per-design:
    ///
    /// * baselines interleave the single tree's *global* lines across
    ///   channels (`global = local * channels + channel`, the inverse of
    ///   [`Machine::split_lines`]);
    /// * Independent sends each SDIMM's private layout addresses to its
    ///   own channel;
    /// * Split/IndepSplit byte-stripe one logical layout's addresses
    ///   over the member ways.
    pub fn level_of_channel_line(&self, channel: usize, addr: u64) -> Option<u32> {
        let unsplit = |channels: usize| ((addr / 64) * channels as u64 + channel as u64) * 64;
        match &self.backend {
            Backend::NonSecure => None,
            Backend::PathOramPlain { oram, channels } | Backend::Freecursive { oram, channels } => {
                oram.layout().level_of_line(unsplit(*channels))
            }
            Backend::Independent(o) => o.level_of_channel_line(channel, addr),
            Backend::Split(o) => o.level_of_channel_line(addr),
            Backend::IndepSplit(o) => o.level_of_channel_line(channel, addr),
        }
    }

    /// Per-tree-level wear merged across the backend's ORAM instance(s)
    /// (empty for the non-secure machine).
    pub fn level_wear(&self) -> LevelWear {
        match &self.backend {
            Backend::NonSecure => LevelWear::default(),
            Backend::PathOramPlain { oram, .. } | Backend::Freecursive { oram, .. } => {
                oram.level_wear().clone()
            }
            Backend::Independent(o) => o.level_wear(),
            Backend::Split(o) => o.level_wear().clone(),
            Backend::IndepSplit(o) => o.level_wear(),
        }
    }

    /// Maps a physical line address onto (channel, channel-local address)
    /// for baseline machines (line interleaving, as in `MemorySystem`).
    fn split_lines(lines: &[u64], channels: usize) -> Vec<(usize, Vec<u64>)> {
        let mut per: Vec<Vec<u64>> = vec![Vec::new(); channels];
        for &addr in lines {
            let line = addr / 64;
            let ch = (line % channels as u64) as usize;
            per[ch].push((line / channels as u64) * 64);
        }
        per.into_iter().enumerate().filter(|(_, v)| !v.is_empty()).collect()
    }

    /// Builds the request-trace chain for one LLC miss (or LLC
    /// write-back) at byte address `addr`: one trace per `accessORAM`
    /// the frontend plans (posmap walks, PLB write-backs, then the demand
    /// access). The parts must execute in order — each depends on the
    /// previous one's result — but each claims only its *own* backend,
    /// so accesses from different CPU requests overlap whenever their
    /// backends differ.
    pub fn request_traces(&mut self, addr: u64, is_write: bool) -> Vec<RequestTrace> {
        let op = if is_write { Op::Write } else { Op::Read };
        match &mut self.backend {
            Backend::NonSecure => {
                let channels = self.executor.channel_count();
                let line = addr / 64;
                let ch = (line % channels as u64) as usize;
                let local = (line / channels as u64) * 64;
                vec![RequestTrace::new(vec![Phase::one(Activity::Dram {
                    channel: ch,
                    reads: if is_write { vec![] } else { vec![local] },
                    writes: if is_write { vec![local] } else { vec![] },
                })])]
            }
            Backend::PathOramPlain { oram, channels } => {
                let index = (addr / 64) % self.cfg.data_blocks;
                let (_, plan) = oram.access(BlockId(index), op, Some(&[]));
                vec![Self::baseline_path_trace(&plan, *channels)]
            }
            Backend::Freecursive { oram, channels } => {
                // lint: panic-ok(invariant: ORAM machines have a frontend)
                let frontend = self.frontend.as_mut().expect("ORAM machines have a frontend");
                let index = (addr / 64) % self.cfg.data_blocks;
                let mut parts = Vec::new();
                for planned in frontend.plan_request(index, op) {
                    let (_, plan) = oram.access(planned.id, planned.op, Some(&[]));
                    parts.push(Self::baseline_path_trace(&plan, *channels));
                }
                parts
            }
            Backend::Independent(oram) => Self::plan_protocol(
                self.frontend.as_mut(),
                addr,
                op,
                self.cfg.data_blocks,
                |id, op| oram.access(id, op, Some(&[])).1,
            ),
            Backend::Split(oram) => Self::plan_protocol(
                self.frontend.as_mut(),
                addr,
                op,
                self.cfg.data_blocks,
                |id, op| oram.access(id, op, Some(&[])).1,
            ),
            Backend::IndepSplit(oram) => Self::plan_protocol(
                self.frontend.as_mut(),
                addr,
                op,
                self.cfg.data_blocks,
                |id, op| oram.access(id, op, Some(&[])).1,
            ),
        }
    }

    /// One whole-path `accessORAM` over the baseline main-memory
    /// channels: path read (+decrypt) then path write-back, serialized
    /// on the single ORAM controller. Shared by the plain-PathOram and
    /// Freecursive backends.
    fn baseline_path_trace(plan: &oram::plan::AccessPlan, channels: usize) -> RequestTrace {
        let mut phases = Vec::new();
        let mut read_phase = Phase::default();
        for (ch, lines) in Self::split_lines(&plan.read_lines, channels) {
            read_phase.par.push(Activity::Dram { channel: ch, reads: lines, writes: vec![] });
        }
        read_phase.par.push(Activity::Crypto { units: plan.read_lines.len() as u32 });
        phases.push(read_phase);
        let mut write_phase = Phase::default();
        for (ch, lines) in Self::split_lines(&plan.write_lines, channels) {
            write_phase.par.push(Activity::Dram { channel: ch, reads: vec![], writes: lines });
        }
        phases.push(write_phase);
        let mut t = RequestTrace::new(phases);
        // Data is ready after the path read; write-back drains
        // behind it inside the serialized backend.
        t.data_ready_phase = t.phases.len().saturating_sub(2);
        t.backend = Some(0);
        t
    }

    fn plan_protocol(
        frontend: Option<&mut Frontend>,
        addr: u64,
        op: Op,
        data_blocks: u64,
        mut access: impl FnMut(BlockId, Op) -> RequestTrace,
    ) -> Vec<RequestTrace> {
        // lint: panic-ok(invariant: ORAM machines have a frontend)
        let frontend = frontend.expect("ORAM machines have a frontend");
        let index = (addr / 64) % data_blocks;
        frontend
            .plan_request(index, op)
            .into_iter()
            .map(|planned| access(planned.id, planned.op))
            .collect()
    }
}

/// Assigns `sdimms` SDIMMs to `buses` external buses round-robin by
/// contiguous groups (2 DIMMs per channel, as in the evaluation).
fn bus_assignment(sdimms: usize, buses: usize) -> Vec<usize> {
    assert!(buses >= 1 && sdimms >= buses, "need at least one SDIMM per bus");
    let per = sdimms / buses;
    (0..sdimms).map(|i| (i / per).min(buses - 1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_assignment_groups_contiguously() {
        assert_eq!(bus_assignment(4, 2), vec![0, 0, 1, 1]);
        assert_eq!(bus_assignment(2, 1), vec![0, 0]);
        assert_eq!(bus_assignment(2, 2), vec![0, 1]);
    }

    #[test]
    fn names_match_figures() {
        assert_eq!(MachineKind::Independent { sdimms: 4, channels: 2 }.name(), "INDEP-4");
        assert_eq!(MachineKind::Split { ways: 2, channels: 1 }.name(), "SPLIT-2");
        assert_eq!(
            MachineKind::IndepSplit { groups: 2, ways: 2, channels: 2 }.name(),
            "INDEP-SPLIT"
        );
    }

    #[test]
    fn nonsecure_trace_is_single_line() {
        let mut m = Machine::new(SystemConfig::small(MachineKind::NonSecure { channels: 2 }));
        let parts = m.request_traces(0x4000, false);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].dram_lines(), 1);
        assert_eq!(parts[0].external_bytes(), 0);
    }

    #[test]
    fn freecursive_traces_move_whole_paths() {
        let mut m = Machine::new(SystemConfig::small(MachineKind::Freecursive { channels: 1 }));
        let parts = m.request_traces(0x4000, false);
        let per_access = m.config().oram.lines_per_access() as u64;
        for t in &parts {
            assert_eq!(t.dram_lines(), per_access, "each part is one whole access");
            assert_eq!(t.backend, Some(0));
        }
        assert!(!parts.is_empty());
    }

    #[test]
    fn independent_traces_are_light_on_external_bus() {
        let mut m =
            Machine::new(SystemConfig::small(MachineKind::Independent { sdimms: 2, channels: 1 }));
        // Warm the PLB so we compare single accesses.
        m.request_traces(0x1000, false);
        let parts = m.request_traces(0x1000, false);
        assert_eq!(parts.len(), 1, "warm request needs only the demand access");
        let baseline_lines = m.config().oram.lines_per_access() as f64;
        assert!(parts[0].external_line_equivalents() < baseline_lines * 0.15);
        assert!(parts[0].dram_lines() > 0);
    }

    #[test]
    fn split_engages_all_ways() {
        let mut m = Machine::new(SystemConfig::small(MachineKind::Split { ways: 2, channels: 1 }));
        let parts = m.request_traces(0x2000, false);
        let mut channels = std::collections::HashSet::new();
        for t in &parts {
            for a in t.iter_activities() {
                if let Activity::Dram { channel, .. } = a {
                    channels.insert(*channel);
                }
            }
        }
        assert_eq!(channels.len(), 2);
    }

    #[test]
    fn indep_split_builds_with_four_sdimms() {
        let m = Machine::new(SystemConfig::small(MachineKind::IndepSplit {
            groups: 2,
            ways: 2,
            channels: 2,
        }));
        assert_eq!(m.executor.channel_count(), 4);
    }

    #[test]
    fn split_low_power_traces_carry_wake_hints() {
        let mut cfg = SystemConfig::small(MachineKind::Split { ways: 2, channels: 1 });
        cfg.low_power = true;
        let mut m = Machine::new(cfg);
        let parts = m.request_traces(0x3000, false);
        assert!(
            parts
                .iter()
                .flat_map(|t| t.iter_activities())
                .any(|a| matches!(a, Activity::WakeRank { .. })),
            "low-power Split must emit rank hints"
        );
    }

    #[test]
    fn protocol_backends_differ_across_requests() {
        // Independent: different leaves route to different backends, so a
        // sample of requests must claim more than one backend id.
        let mut m =
            Machine::new(SystemConfig::small(MachineKind::Independent { sdimms: 4, channels: 2 }));
        let mut backends = std::collections::HashSet::new();
        for i in 0..32u64 {
            for t in m.request_traces(i * 64 * 131, false) {
                backends.extend(t.backend);
            }
        }
        assert!(backends.len() >= 3, "expected several backends, got {backends:?}");
    }

    #[test]
    fn writeback_traces_look_like_demand_traces() {
        let mut m = Machine::new(SystemConfig::small(MachineKind::Freecursive { channels: 1 }));
        let rd: u64 = m.request_traces(0x5000, false).iter().map(|t| t.dram_lines()).sum();
        let wr: u64 = m.request_traces(0x5000, true).iter().map(|t| t.dram_lines()).sum();
        // Same PLB-warm address: both are single accesses of a full path.
        assert_eq!(rd % m.config().oram.lines_per_access() as u64, 0);
        assert_eq!(wr % m.config().oram.lines_per_access() as u64, 0);
    }

    #[test]
    fn accesses_per_request_reported() {
        let mut m = Machine::new(SystemConfig::small(MachineKind::Freecursive { channels: 1 }));
        for i in 0..50 {
            m.request_traces(i * 64, false);
        }
        let apr = m.accesses_per_request();
        assert!((1.0..3.0).contains(&apr), "apr {apr}");
    }
}
