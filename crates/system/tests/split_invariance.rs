//! Split-invariance and deadline-truncation properties of the
//! event-driven executor: how callers slice `tick` must never change
//! what the machine does, and a deadline must cut a run short without
//! reordering or altering it.

use dram_sim::cmdlog::CmdRecord;
use dram_sim::config::Cycle;
use dram_sim::stats::ChannelStats;
use proptest::prelude::*;
use sdimm_system::executor::ExecEvent;
use sdimm_system::machine::{Machine, MachineKind, SystemConfig};

/// Deterministic request mix: a handful of reads/writes spread across
/// the small machine's address space (an LCG so the pattern has both
/// locality runs and jumps, without `rand`).
fn addresses(n: usize) -> Vec<(u64, bool)> {
    let mut x = 0x2545_f491_4f6c_dd1du64;
    (0..n)
        .map(|i| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let block = (x >> 33) % (1 << 14);
            (block * 64, i % 3 == 0)
        })
        .collect()
}

/// Builds a machine, submits the standard mix, then drives the executor
/// with the given tick slices, returning everything an outside observer
/// can see: final cycle, events, per-channel DDR command streams, and
/// per-channel stats.
fn drive(
    kind: MachineKind,
    n_reqs: usize,
    splits: &[u64],
) -> (Cycle, Vec<ExecEvent>, Vec<Vec<CmdRecord>>, Vec<ChannelStats>) {
    let mut m = Machine::new(SystemConfig::small(kind));
    let logs = m.executor.attach_cmd_logs();
    for (addr, is_write) in addresses(n_reqs) {
        for trace in m.request_traces(addr, is_write) {
            m.executor.submit(trace);
        }
    }
    let mut events = Vec::new();
    for s in splits {
        m.executor.tick(*s);
        events.extend(m.executor.poll());
    }
    let stats =
        (0..m.executor.channel_count()).map(|i| m.executor.channel(i).stats().clone()).collect();
    (m.executor.now(), events, logs.iter().map(|l| l.take()).collect(), stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary `tick` slicings observe the identical execution: the
    /// executor processes on a fixed internal grid, so slicing (and the
    /// event horizons it jumps between) is invisible to the caller.
    #[test]
    fn executor_tick_is_split_invariant(
        splits in proptest::collection::vec(1u64..5_000, 2..10),
        kind_pick in 0usize..3,
    ) {
        let kind = [
            MachineKind::NonSecure { channels: 1 },
            MachineKind::Freecursive { channels: 1 },
            MachineKind::Independent { sdimms: 2, channels: 1 },
        ][kind_pick];
        let total: u64 = splits.iter().sum();
        let (now_a, ev_a, logs_a, stats_a) = drive(kind, 8, &[total]);
        let (now_b, ev_b, logs_b, stats_b) = drive(kind, 8, &splits);
        prop_assert_eq!(now_a, now_b);
        prop_assert_eq!(ev_a, ev_b);
        prop_assert_eq!(logs_a, logs_b);
        prop_assert_eq!(stats_a, stats_b);
    }
}

/// `run_until_quiescent(d)` is the unlimited run truncated at the
/// deadline: identical command streams up to where the limited run
/// stopped, and never a cycle past the deadline.
#[test]
fn quiescent_deadline_is_a_truncation() {
    for deadline in [1u64, 100, 5_000, 50_000, 400_000] {
        let kind = MachineKind::Freecursive { channels: 1 };
        let mut a = Machine::new(SystemConfig::small(kind));
        let mut c = Machine::new(SystemConfig::small(kind));
        let logs_a = a.executor.attach_cmd_logs();
        let logs_c = c.executor.attach_cmd_logs();
        for (addr, is_write) in addresses(6) {
            for trace in a.request_traces(addr, is_write) {
                a.executor.submit(trace);
            }
            for trace in c.request_traces(addr, is_write) {
                c.executor.submit(trace);
            }
        }
        a.executor.run_until_quiescent(deadline);
        c.executor.run_until_quiescent(1 << 30);
        assert_eq!(c.executor.active(), 0, "unlimited run must quiesce");
        assert!(a.executor.now() <= deadline, "deadline overshoot");

        // A tick spanning [t, cut) runs the scheduler at cycles strictly
        // below `cut`, so the truncation is exclusive.
        let cut = a.executor.now();
        for (la, lc) in logs_a.iter().zip(&logs_c) {
            let truncated: Vec<_> = lc.take().into_iter().filter(|r| r.cycle < cut).collect();
            assert_eq!(la.take(), truncated, "stream diverges before the deadline cut");
        }
    }
}
