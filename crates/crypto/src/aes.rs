//! AES-128 block cipher (FIPS-197), encryption direction.
//!
//! Counter mode and CMAC only ever need the forward (encrypt) direction of
//! the block cipher, so the inverse cipher is not implemented.
//!
//! Two implementations live here:
//!
//! * [`Aes128`] — the fast path used everywhere: a 32-bit T-table cipher
//!   (four 1 KiB lookup tables combine SubBytes, ShiftRows and MixColumns
//!   into one table fetch + XOR per state word per round) with a batched
//!   [`Aes128::encrypt_blocks`] entry point that keeps the round keys hot
//!   across a whole run of blocks.
//! * [`spec::Aes128`] — the original table-free byte-oriented cipher,
//!   retained verbatim as the readable FIPS-197 reference. Property tests
//!   pin the fast path bit-identical to it for random keys and blocks.
//!
//! Both are validated against the FIPS-197 Appendix B/C vectors in the
//! unit tests.

/// The AES block size in bytes.
pub const BLOCK_SIZE: usize = 16;

/// The AES-128 key size in bytes.
pub const KEY_SIZE: usize = 16;

const ROUNDS: usize = 10;

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for the key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply a byte by `x` (i.e. 2) in GF(2^8) modulo the AES polynomial.
#[inline]
const fn xtime(b: u8) -> u8 {
    let shifted = b << 1;
    if b & 0x80 != 0 {
        shifted ^ 0x1b
    } else {
        shifted
    }
}

/// The four T-tables as one contiguous static. `TE[0]`: for each input
/// byte x with s = S[x], the big-endian column `[2s, s, s, 3s]` — one
/// round's worth of SubBytes + MixColumns for the byte landing in row 0.
/// `TE[1..4]` are byte rotations of `TE[0]` covering rows 1..3, so a full
/// round is four table fetches + XORs per state word.
///
/// A single 2-D static matters for codegen: four separate statics cost
/// four live base pointers (reloaded from the GOT under register
/// pressure), while `TE[j][i]` with constant `j` folds into one base
/// register plus a fixed displacement.
static TE: [[u32; 256]; 4] = [build_te(24), build_te(16), build_te(8), build_te(0)];

const fn build_te(rot: u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i] as u32;
        let s2 = xtime(SBOX[i]) as u32;
        let s3 = s2 ^ s;
        // Base (TE3 layout, rot = 0): [s3, s, s, s2] from MSB to LSB would
        // be wrong — derive from the canonical TE0 word and rotate.
        let te0 = (s2 << 24) | (s << 16) | (s << 8) | s3;
        t[i] = te0.rotate_right(24 - rot);
        i += 1;
    }
    t
}

/// An expanded AES-128 key, ready to encrypt 16-byte blocks.
///
/// This is the T-table fast path; see [`spec::Aes128`] for the
/// byte-oriented reference it is proven equivalent to.
///
/// # Example
///
/// ```
/// use sdimm_crypto::aes::Aes128;
///
/// let cipher = Aes128::new(&[0u8; 16]);
/// let ct = cipher.encrypt_block([0u8; 16]);
/// assert_eq!(ct.len(), 16);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    /// 44 big-endian round-key words (11 round keys × 4 columns).
    round_keys: [u32; 4 * (ROUNDS + 1)],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Deliberately opaque: never leak key schedule material into logs.
        f.debug_struct("Aes128").field("key", &"<redacted>").finish()
    }
}

impl Aes128 {
    /// Expands `key` into the 11 round keys of AES-128.
    pub fn new(key: &[u8; KEY_SIZE]) -> Self {
        let mut rk = [0u32; 4 * (ROUNDS + 1)];
        for i in 0..4 {
            rk[i] =
                u32::from_be_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        for i in 4..rk.len() {
            let mut temp = rk[i - 1];
            if i % 4 == 0 {
                // RotWord then SubWord then Rcon, in word form.
                temp = sub_word(temp.rotate_left(8)) ^ ((RCON[i / 4 - 1] as u32) << 24);
            }
            rk[i] = rk[i - 4] ^ temp;
        }
        Aes128 { round_keys: rk }
    }

    /// Encrypts one 16-byte block, returning the ciphertext block.
    #[inline]
    pub fn encrypt_block(&self, block: [u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
        encrypt_one(&self.round_keys, block)
    }

    /// Encrypts every block in `blocks` in place (ECB over the batch).
    ///
    /// One pass over the expanded key serves the whole slice, so the
    /// round keys and T-tables stay in registers/L1 across blocks. This
    /// is the building block for [`crate::ctr::CtrCipher::keystream_line`]
    /// and the bucket seal/open paths.
    #[inline]
    pub fn encrypt_blocks(&self, blocks: &mut [[u8; BLOCK_SIZE]]) {
        // One block at a time: interleaving two dependency chains was
        // measured slower here — eight live state words exceed what the
        // allocator can keep in registers alongside the table bases.
        let rk = &self.round_keys;
        for block in blocks.iter_mut() {
            *block = encrypt_one(rk, *block);
        }
    }
}

/// SubBytes applied to each byte of a big-endian word.
#[inline]
fn sub_word(w: u32) -> u32 {
    u32::from_be_bytes(w.to_be_bytes().map(|b| SBOX[b as usize]))
}

/// One block through the T-table cipher. `#[inline(always)]` so batched
/// callers keep `rk` in registers across iterations.
///
/// T-table AES is data-dependent table indexing by construction; it
/// stands in for the Secure DIMM controller's hardware AES engine, whose
/// latency is fixed. The software tables' cache behavior is outside the
/// simulator's timing model, and the returned ciphertext is public under
/// IND-CPA.
#[inline(always)]
// lint: declassify(models a fixed-latency hardware AES engine; T-table cache behavior is outside the simulated timing model and ciphertext is public under IND-CPA)
fn encrypt_one(rk: &[u32; 4 * (ROUNDS + 1)], block: [u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
    // State words are big-endian columns: word i holds bytes 4i..4i+4.
    // Slice-based conversion compiles to 4-byte loads + byte swaps,
    // where element-wise construction degrades to per-byte shifts.
    // lint: panic-ok(slice width is a compile-time constant)
    let mut s0 = u32::from_be_bytes(block[0..4].try_into().expect("4")) ^ rk[0];
    // lint: panic-ok(slice width is a compile-time constant)
    let mut s1 = u32::from_be_bytes(block[4..8].try_into().expect("4")) ^ rk[1];
    // lint: panic-ok(slice width is a compile-time constant)
    let mut s2 = u32::from_be_bytes(block[8..12].try_into().expect("4")) ^ rk[2];
    // lint: panic-ok(slice width is a compile-time constant)
    let mut s3 = u32::from_be_bytes(block[12..16].try_into().expect("4")) ^ rk[3];

    // The nine T-table rounds, fully unrolled with constant round-key
    // indices. A `for` loop here defeats the register allocator: the
    // compiler keeps a live loop counter and spills the four table base
    // pointers, reloading them every iteration. Unrolling keeps state,
    // keys, and table bases in registers for the whole block.
    macro_rules! ttable_round {
        ($k:expr) => {{
            let t0 = TE[0][(s0 >> 24) as usize]
                ^ TE[1][((s1 >> 16) & 0xff) as usize]
                ^ TE[2][((s2 >> 8) & 0xff) as usize]
                ^ TE[3][(s3 & 0xff) as usize]
                ^ rk[$k];
            let t1 = TE[0][(s1 >> 24) as usize]
                ^ TE[1][((s2 >> 16) & 0xff) as usize]
                ^ TE[2][((s3 >> 8) & 0xff) as usize]
                ^ TE[3][(s0 & 0xff) as usize]
                ^ rk[$k + 1];
            let t2 = TE[0][(s2 >> 24) as usize]
                ^ TE[1][((s3 >> 16) & 0xff) as usize]
                ^ TE[2][((s0 >> 8) & 0xff) as usize]
                ^ TE[3][(s1 & 0xff) as usize]
                ^ rk[$k + 2];
            let t3 = TE[0][(s3 >> 24) as usize]
                ^ TE[1][((s0 >> 16) & 0xff) as usize]
                ^ TE[2][((s1 >> 8) & 0xff) as usize]
                ^ TE[3][(s2 & 0xff) as usize]
                ^ rk[$k + 3];
            s0 = t0;
            s1 = t1;
            s2 = t2;
            s3 = t3;
        }};
    }
    ttable_round!(4);
    ttable_round!(8);
    ttable_round!(12);
    ttable_round!(16);
    ttable_round!(20);
    ttable_round!(24);
    ttable_round!(28);
    ttable_round!(32);
    ttable_round!(36);

    // Final round: SubBytes + ShiftRows only (no MixColumns), so plain
    // S-box lookups reassembled bytewise.
    let last = &rk[4 * ROUNDS..];
    let o0 = final_word(s0, s1, s2, s3) ^ last[0];
    let o1 = final_word(s1, s2, s3, s0) ^ last[1];
    let o2 = final_word(s2, s3, s0, s1) ^ last[2];
    let o3 = final_word(s3, s0, s1, s2) ^ last[3];

    let mut out = [0u8; BLOCK_SIZE];
    out[0..4].copy_from_slice(&o0.to_be_bytes());
    out[4..8].copy_from_slice(&o1.to_be_bytes());
    out[8..12].copy_from_slice(&o2.to_be_bytes());
    out[12..16].copy_from_slice(&o3.to_be_bytes());
    out
}

/// Assembles one final-round word from the ShiftRows byte sources.
///
/// Reads the S-box through `TE[1]` instead of a fifth table — with
/// `s = S[x]`, `TE[1][x] = TE[0][x] >>> 8 = [3s, 2s, s, s]`, so its low
/// byte is exactly `S[x]`. The final round then touches the same cache
/// lines and base pointer as the main rounds.
#[inline(always)]
fn final_word(a: u32, b: u32, c: u32, d: u32) -> u32 {
    ((TE[1][(a >> 24) as usize] & 0xff) << 24)
        | ((TE[1][((b >> 16) & 0xff) as usize] & 0xff) << 16)
        | ((TE[1][((c >> 8) & 0xff) as usize] & 0xff) << 8)
        | (TE[1][(d & 0xff) as usize] & 0xff)
}

pub mod spec {
    //! Byte-oriented FIPS-197 reference cipher.
    //!
    //! This is the original table-free implementation, kept as the
    //! readable specification the T-table fast path is tested against.
    //! Nothing on a hot path should use it.

    use super::{BLOCK_SIZE, KEY_SIZE, RCON, ROUNDS, SBOX};

    /// Reference AES-128: S-box substitution, row shifts, column mixing
    /// over GF(2^8), and the standard key schedule, all bytewise.
    #[derive(Clone)]
    pub struct Aes128 {
        round_keys: [[u8; 16]; ROUNDS + 1],
    }

    impl std::fmt::Debug for Aes128 {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Deliberately opaque: never leak key schedule material into logs.
            f.debug_struct("spec::Aes128").field("key", &"<redacted>").finish()
        }
    }

    impl Aes128 {
        /// Expands `key` into the 11 round keys of AES-128.
        pub fn new(key: &[u8; KEY_SIZE]) -> Self {
            let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
            for (i, word) in w.iter_mut().take(4).enumerate() {
                word.copy_from_slice(&key[4 * i..4 * i + 4]);
            }
            for i in 4..4 * (ROUNDS + 1) {
                let mut temp = w[i - 1];
                if i % 4 == 0 {
                    temp.rotate_left(1);
                    for b in &mut temp {
                        *b = SBOX[*b as usize];
                    }
                    temp[0] ^= RCON[i / 4 - 1];
                }
                for j in 0..4 {
                    w[i][j] = w[i - 4][j] ^ temp[j];
                }
            }
            let mut round_keys = [[0u8; 16]; ROUNDS + 1];
            for (r, rk) in round_keys.iter_mut().enumerate() {
                for c in 0..4 {
                    rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
                }
            }
            Aes128 { round_keys }
        }

        /// Encrypts one 16-byte block, returning the ciphertext block.
        pub fn encrypt_block(&self, block: [u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
            let mut state = block;
            add_round_key(&mut state, &self.round_keys[0]);
            for round in 1..ROUNDS {
                sub_bytes(&mut state);
                shift_rows(&mut state);
                mix_columns(&mut state);
                add_round_key(&mut state, &self.round_keys[round]);
            }
            sub_bytes(&mut state);
            shift_rows(&mut state);
            add_round_key(&mut state, &self.round_keys[ROUNDS]);
            state
        }
    }

    #[inline]
    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    #[inline]
    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    /// State is column-major: byte index `4*col + row`.
    #[inline]
    pub(super) fn shift_rows(state: &mut [u8; 16]) {
        // Row 1: rotate left by 1.
        let t = state[1];
        state[1] = state[5];
        state[5] = state[9];
        state[9] = state[13];
        state[13] = t;
        // Row 2: rotate left by 2.
        state.swap(2, 10);
        state.swap(6, 14);
        // Row 3: rotate left by 3 (= right by 1).
        let t = state[15];
        state[15] = state[11];
        state[11] = state[7];
        state[7] = state[3];
        state[3] = t;
    }

    #[inline]
    fn mix_columns(state: &mut [u8; 16]) {
        for col in 0..4 {
            let base = 4 * col;
            let a0 = state[base];
            let a1 = state[base + 1];
            let a2 = state[base + 2];
            let a3 = state[base + 3];
            let all = a0 ^ a1 ^ a2 ^ a3;
            state[base] = a0 ^ all ^ super::xtime(a0 ^ a1);
            state[base + 1] = a1 ^ all ^ super::xtime(a1 ^ a2);
            state[base + 2] = a2 ^ all ^ super::xtime(a2 ^ a3);
            state[base + 3] = a3 ^ all ^ super::xtime(a3 ^ a0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    fn arr16(v: &[u8]) -> [u8; 16] {
        v.try_into().unwrap()
    }

    #[test]
    fn fips197_appendix_b_example() {
        // FIPS-197 Appendix B worked example, on both implementations.
        let key = arr16(&hex("2b7e151628aed2a6abf7158809cf4f3c"));
        let pt = arr16(&hex("3243f6a8885a308d313198a2e0370734"));
        let expect = arr16(&hex("3925841d02dc09fbdc118597196a0b32"));
        assert_eq!(Aes128::new(&key).encrypt_block(pt), expect);
        assert_eq!(spec::Aes128::new(&key).encrypt_block(pt), expect);
    }

    #[test]
    fn fips197_appendix_c1_example() {
        // FIPS-197 Appendix C.1 AES-128 known-answer test.
        let key = arr16(&hex("000102030405060708090a0b0c0d0e0f"));
        let pt = arr16(&hex("00112233445566778899aabbccddeeff"));
        let expect = arr16(&hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(Aes128::new(&key).encrypt_block(pt), expect);
        assert_eq!(spec::Aes128::new(&key).encrypt_block(pt), expect);
    }

    #[test]
    fn nist_sp800_38a_ecb_vectors() {
        // NIST SP 800-38A F.1.1 ECB-AES128.Encrypt (four blocks).
        let key = arr16(&hex("2b7e151628aed2a6abf7158809cf4f3c"));
        let cipher = Aes128::new(&key);
        let cases = [
            ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"),
            ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"),
            ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"),
            ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"),
        ];
        for (pt, ct) in cases {
            assert_eq!(cipher.encrypt_block(arr16(&hex(pt))), arr16(&hex(ct)));
        }
    }

    #[test]
    fn encrypt_blocks_matches_blockwise_ecb() {
        // The batched path is plain ECB: identical to per-block calls.
        let key = arr16(&hex("2b7e151628aed2a6abf7158809cf4f3c"));
        let cipher = Aes128::new(&key);
        let mut batch: [[u8; 16]; 5] = core::array::from_fn(|i| [i as u8 * 17; 16]);
        let singles: Vec<[u8; 16]> = batch.iter().map(|&b| cipher.encrypt_block(b)).collect();
        cipher.encrypt_blocks(&mut batch);
        assert_eq!(batch.to_vec(), singles);
    }

    #[test]
    fn fast_matches_spec_on_structured_inputs() {
        // Deterministic sweep; the random-input sweep lives in the
        // proptest suite.
        for seed in 0..64u8 {
            let key = [seed; 16];
            let fast = Aes128::new(&key);
            let reference = spec::Aes128::new(&key);
            let pt: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(seed) ^ 0x5a);
            assert_eq!(fast.encrypt_block(pt), reference.encrypt_block(pt));
        }
    }

    #[test]
    fn different_keys_differ() {
        let pt = [7u8; 16];
        let c1 = Aes128::new(&[0u8; 16]).encrypt_block(pt);
        let c2 = Aes128::new(&[1u8; 16]).encrypt_block(pt);
        assert_ne!(c1, c2);
    }

    #[test]
    fn encryption_is_deterministic() {
        let cipher = Aes128::new(&[42u8; 16]);
        assert_eq!(cipher.encrypt_block([9; 16]), cipher.encrypt_block([9; 16]));
    }

    #[test]
    fn debug_never_prints_key_material() {
        let cipher = Aes128::new(&[0xAB; 16]);
        let dbg = format!("{cipher:?}");
        assert!(dbg.contains("redacted"));
        assert!(!dbg.contains("ab"), "debug output leaked key bytes: {dbg}");
        // The expanded schedule is as secret as the key: no round-key word
        // may appear in any radix the formatter would plausibly use.
        for word in cipher.round_keys {
            assert!(!dbg.contains(&format!("{word}")), "round-key word leaked: {dbg}");
            assert!(!dbg.contains(&format!("{word:x}")), "round-key word leaked as hex: {dbg}");
        }
        let dbg = format!("{:?}", spec::Aes128::new(&[0xAB; 16]));
        assert!(dbg.contains("redacted"));
    }

    #[test]
    fn xtime_matches_reference_multiplication() {
        // xtime(b) must equal carry-less multiply by 2 mod the AES polynomial.
        for b in 0..=255u8 {
            let wide = (b as u16) << 1;
            let expect = if wide & 0x100 != 0 { (wide ^ 0x11b) as u8 } else { wide as u8 };
            assert_eq!(xtime(b), expect);
        }
    }

    #[test]
    fn te_tables_are_rotations_of_te0() {
        for (i, &te0) in TE[0].iter().enumerate() {
            assert_eq!(TE[1][i], te0.rotate_right(8));
            assert_eq!(TE[2][i], te0.rotate_right(16));
            assert_eq!(TE[3][i], te0.rotate_right(24));
        }
    }

    #[test]
    fn shift_rows_permutation_has_order_four() {
        let mut state: [u8; 16] = core::array::from_fn(|i| i as u8);
        let orig = state;
        for _ in 0..4 {
            spec::shift_rows(&mut state);
        }
        assert_eq!(state, orig);
    }
}
