//! AES-CMAC (RFC 4493) message authentication.
//!
//! PMMAC in Freecursive ORAM attaches a MAC over (counter, data) to every
//! bucket; the SDIMM link additionally MACs control messages. We implement
//! CMAC because it reuses the AES forward direction we already have and has
//! public test vectors (RFC 4493 §4) used in the unit tests below.

use crate::aes::{Aes128, BLOCK_SIZE};

/// Length in bytes of a full CMAC tag.
pub const TAG_SIZE: usize = 16;

/// A truncated 8-byte MAC tag as stored in bucket metadata.
///
/// Freecursive's PMMAC stores compact MACs with each bucket; 64 bits is the
/// storage budget we model (the paper only says "its own MAC" per split).
pub type ShortTag = [u8; 8];

/// An AES-CMAC keyed instance.
///
/// # Example
///
/// ```
/// use sdimm_crypto::mac::Cmac;
///
/// let mac = Cmac::new(&[0u8; 16]);
/// let tag = mac.tag(b"bucket contents");
/// assert!(mac.verify(b"bucket contents", &tag));
/// assert!(!mac.verify(b"tampered bucket", &tag));
/// ```
#[derive(Clone)]
pub struct Cmac {
    cipher: Aes128,
    k1: [u8; BLOCK_SIZE],
    k2: [u8; BLOCK_SIZE],
}

impl std::fmt::Debug for Cmac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cmac").field("key", &"<redacted>").finish()
    }
}

/// Doubles a value in GF(2^128) as used by the CMAC subkey derivation.
///
/// Branch-free: the Rb reduction constant is applied under an arithmetic
/// mask of the carry bit, so the subkey derivation never branches on key
/// material (the MSB of `E_K(0)` is secret).
fn dbl(block: &[u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
    let mut out = [0u8; BLOCK_SIZE];
    let mut carry = 0u8;
    for i in (0..BLOCK_SIZE).rev() {
        out[i] = (block[i] << 1) | carry;
        carry = block[i] >> 7;
    }
    // 0x00 or 0xFF depending on the carry bit, without a branch.
    let mask = 0u8.wrapping_sub(carry);
    out[BLOCK_SIZE - 1] ^= mask & 0x87;
    out
}

impl Cmac {
    /// Creates a CMAC instance and derives the K1/K2 subkeys.
    pub fn new(key: &[u8; 16]) -> Self {
        let cipher = Aes128::new(key);
        let l = cipher.encrypt_block([0u8; BLOCK_SIZE]);
        let k1 = dbl(&l);
        let k2 = dbl(&k1);
        Cmac { cipher, k1, k2 }
    }

    /// Starts an incremental CMAC over a message supplied in parts.
    ///
    /// Lets callers MAC a logical concatenation (e.g. bucket id ‖ counter
    /// ‖ ciphertext) without first copying it into one buffer.
    pub fn stream(&self) -> CmacStream<'_> {
        CmacStream { mac: self, x: [0u8; BLOCK_SIZE], buf: [0u8; BLOCK_SIZE], buf_len: 0 }
    }

    /// Computes the full 16-byte CMAC tag of `msg`.
    pub fn tag(&self, msg: &[u8]) -> [u8; TAG_SIZE] {
        let mut s = self.stream();
        s.update(msg);
        s.finalize()
    }

    /// Computes an 8-byte truncated tag for bucket metadata storage.
    pub fn short_tag(&self, msg: &[u8]) -> ShortTag {
        // lint: panic-ok(slice width is a compile-time constant)
        self.tag(msg)[..8].try_into().expect("tag is 16 bytes")
    }

    /// Verifies a full tag in constant time. Returns `true` on match.
    pub fn verify(&self, msg: &[u8], tag: &[u8; TAG_SIZE]) -> bool {
        crate::ct::ct_eq(&self.tag(msg), tag)
    }

    /// Verifies a truncated tag in constant time. Returns `true` on match.
    pub fn verify_short(&self, msg: &[u8], tag: &ShortTag) -> bool {
        crate::ct::ct_eq(&self.short_tag(msg), tag)
    }
}

/// Incremental CMAC state from [`Cmac::stream`].
///
/// CBC-MAC chaining is inherently sequential, so the block cipher calls
/// cannot fan out; the win over the one-shot path is that multi-part
/// messages need no concatenation copy. The last (possibly partial) block
/// is held back until [`CmacStream::finalize`], where RFC 4493's K1/K2
/// subkey treatment is applied.
pub struct CmacStream<'a> {
    mac: &'a Cmac,
    /// CBC chaining value. Not covered by the lint's secret-name families
    /// (too short a name), so it carries an explicit annotation: leaking
    /// it mid-stream forges all suffix-extension tags.
    // lint: secret
    x: [u8; BLOCK_SIZE],
    /// Pending bytes not yet folded into `x` (the candidate last block).
    buf: [u8; BLOCK_SIZE],
    buf_len: usize,
}

impl std::fmt::Debug for CmacStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The chaining value is keyed state: keep it out of logs.
        f.debug_struct("CmacStream").field("state", &"<redacted>").finish()
    }
}

impl CmacStream<'_> {
    /// Absorbs the next part of the message.
    pub fn update(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            if self.buf_len == BLOCK_SIZE {
                // More data follows, so the buffered block is not the
                // last one — safe to chain it through the cipher.
                self.chain_buffered();
            }
            let take = (BLOCK_SIZE - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
        }
    }

    fn chain_buffered(&mut self) {
        for (xb, bb) in self.x.iter_mut().zip(self.buf.iter()) {
            *xb ^= bb;
        }
        self.x = self.mac.cipher.encrypt_block(self.x);
        self.buf_len = 0;
    }

    /// Applies the RFC 4493 last-block treatment and returns the tag.
    pub fn finalize(mut self) -> [u8; TAG_SIZE] {
        let subkey = if self.buf_len == BLOCK_SIZE {
            self.mac.k1
        } else {
            self.buf[self.buf_len] = 0x80;
            self.buf[self.buf_len + 1..].fill(0);
            self.mac.k2
        };
        for (bb, kb) in self.buf.iter_mut().zip(subkey.iter()) {
            *bb ^= kb;
        }
        for (xb, bb) in self.x.iter_mut().zip(self.buf.iter()) {
            *xb ^= bb;
        }
        self.mac.cipher.encrypt_block(self.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    fn rfc4493_mac() -> Cmac {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        Cmac::new(&key)
    }

    #[test]
    fn rfc4493_subkeys() {
        let mac = rfc4493_mac();
        assert_eq!(mac.k1.to_vec(), hex("fbeed618357133667c85e08f7236a8de"));
        assert_eq!(mac.k2.to_vec(), hex("f7ddac306ae266ccf90bc11ee46d513b"));
    }

    #[test]
    fn rfc4493_example_1_empty() {
        let tag = rfc4493_mac().tag(b"");
        assert_eq!(tag.to_vec(), hex("bb1d6929e95937287fa37d129b756746"));
    }

    #[test]
    fn rfc4493_example_2_one_block() {
        let msg = hex("6bc1bee22e409f96e93d7e117393172a");
        let tag = rfc4493_mac().tag(&msg);
        assert_eq!(tag.to_vec(), hex("070a16b46b4d4144f79bdd9dd04a287c"));
    }

    #[test]
    fn rfc4493_example_3_40_bytes() {
        let msg = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411"
        ));
        let tag = rfc4493_mac().tag(&msg);
        assert_eq!(tag.to_vec(), hex("dfa66747de9ae63030ca32611497c827"));
    }

    #[test]
    fn rfc4493_example_4_64_bytes() {
        let msg = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ));
        let tag = rfc4493_mac().tag(&msg);
        assert_eq!(tag.to_vec(), hex("51f0bebf7e3b9d92fc49741779363cfe"));
    }

    #[test]
    fn tamper_detection() {
        let mac = Cmac::new(&[9u8; 16]);
        let tag = mac.tag(b"authentic data");
        assert!(mac.verify(b"authentic data", &tag));
        assert!(!mac.verify(b"authentic dat5", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!mac.verify(b"authentic data", &bad));
    }

    #[test]
    fn short_tag_is_prefix_and_verifies() {
        let mac = Cmac::new(&[7u8; 16]);
        let full = mac.tag(b"abc");
        let short = mac.short_tag(b"abc");
        assert_eq!(&full[..8], &short);
        assert!(mac.verify_short(b"abc", &short));
        assert!(!mac.verify_short(b"abd", &short));
    }

    #[test]
    fn streamed_parts_match_one_shot() {
        // Any partition of the message must yield the same tag as tag().
        let mac = Cmac::new(&[5u8; 16]);
        let msg: Vec<u8> = (0..100u8).collect();
        let whole = mac.tag(&msg);
        for split_points in [vec![0], vec![8, 16], vec![1, 17, 33, 90], vec![16, 32, 48]] {
            let mut s = mac.stream();
            let mut prev = 0;
            for &p in &split_points {
                s.update(&msg[prev..p]);
                prev = p;
            }
            s.update(&msg[prev..]);
            assert_eq!(s.finalize(), whole, "splits {split_points:?}");
        }
    }

    #[test]
    fn stream_debug_redacts_state() {
        let mac = Cmac::new(&[5u8; 16]);
        let mut s = mac.stream();
        s.update(b"secret-dependent");
        assert!(format!("{s:?}").contains("redacted"));
    }

    #[test]
    fn debug_redacts_cmac_subkeys() {
        // K1/K2 are derived from the key by GF(2^128) doubling; leaking
        // either is equivalent to leaking AES_k(0). They must never reach
        // Debug output in decimal or hex.
        let mac = Cmac::new(&[0xAB; 16]);
        let dbg = format!("{mac:?}");
        assert!(dbg.contains("redacted"));
        for b in mac.k1.iter().chain(mac.k2.iter()) {
            assert!(!dbg.contains(&format!("{b}, ")), "subkey byte {b} leaked: {dbg}");
        }
        assert!(!dbg.contains("171"), "key byte leaked: {dbg}");
    }

    #[test]
    fn different_keys_different_tags() {
        let t1 = Cmac::new(&[0u8; 16]).tag(b"x");
        let t2 = Cmac::new(&[1u8; 16]).tag(b"x");
        assert_ne!(t1, t2);
    }
}
