//! CPU ↔ SDIMM secure session establishment and message protection.
//!
//! Section III-B of the paper: at boot the CPU authenticates each secure
//! buffer (modeled here as a public-key fingerprint exchange via the
//! `SEND_PKEY` command), then establishes upstream and downstream session
//! keys and counters (`RECEIVE_SECRET`). Thereafter every message on the
//! channel is protected with counter-mode AES and a CMAC, with strictly
//! increasing per-direction counters so replay and reordering are detected.
//!
//! The handshake here is a *model*: there is no real RSA/ECDH, but the
//! message flow, the per-direction counters, and the derived-key structure
//! match the protocol the paper sketches, so protocol-shape experiments
//! (message counts, sizes, obliviousness of the sequence) are faithful.

use crate::aes::Aes128;
use crate::ctr::CtrCipher;
use crate::mac::{Cmac, TAG_SIZE};
use crate::{CryptoError, Result};

/// Identity of a secure buffer, as obtained via `SEND_PKEY`.
///
/// In a real deployment this would be a certificate chain verified through
/// a third-party authenticator (the paper suggests a Verisign-like flow);
/// here it is a 16-byte device fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId(pub [u8; 16]);

/// A protected message on the CPU ↔ SDIMM channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedMessage {
    /// Per-direction sequence counter carried with the message.
    pub seq: u64,
    /// Counter-mode ciphertext of the payload.
    pub ciphertext: Vec<u8>,
    /// CMAC over (direction, seq, ciphertext).
    pub tag: [u8; TAG_SIZE],
}

/// Direction of a link message, used for key/domain separation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// CPU → SDIMM ("downstream" commands and write data).
    Downstream,
    /// SDIMM → CPU ("upstream" responses and read data).
    Upstream,
}

impl Direction {
    fn domain(self) -> u64 {
        match self {
            Direction::Downstream => 0x4C49_4E4B_0000_0001,
            Direction::Upstream => 0x4C49_4E4B_0000_0002,
        }
    }
    fn byte(self) -> u8 {
        match self {
            Direction::Downstream => 0,
            Direction::Upstream => 1,
        }
    }
}

/// One endpoint of an established secure session.
///
/// Both the CPU-side memory controller and the SDIMM secure buffer hold a
/// `SessionEndpoint`; send counters on one side mirror receive counters on
/// the other.
#[derive(Debug)]
pub struct SessionEndpoint {
    enc_down: CtrCipher,
    enc_up: CtrCipher,
    mac: Cmac,
    send_dir: Direction,
    send_seq: u64,
    recv_seq: u64,
}

impl SessionEndpoint {
    fn new(master: &[u8; 16], send_dir: Direction) -> Self {
        // Derive independent encryption and MAC keys from the master secret
        // by encrypting distinct constants (a standard KDF-by-PRP model).
        let kdf = Aes128::new(master);
        let enc_key = kdf.encrypt_block(*b"SDIMM-ENC-KEY\x00\x00\x01");
        let mac_key = kdf.encrypt_block(*b"SDIMM-MAC-KEY\x00\x00\x02");
        let base = Aes128::new(&enc_key);
        SessionEndpoint {
            enc_down: CtrCipher::new(base.clone(), Direction::Downstream.domain()),
            enc_up: CtrCipher::new(base, Direction::Upstream.domain()),
            mac: Cmac::new(&mac_key),
            send_dir,
            send_seq: 0,
            recv_seq: 0,
        }
    }

    fn cipher(&self, dir: Direction) -> &CtrCipher {
        match dir {
            Direction::Downstream => &self.enc_down,
            Direction::Upstream => &self.enc_up,
        }
    }

    /// CMAC over direction ‖ seq ‖ ciphertext, streamed so the header is
    /// never concatenated with the (path-sized) ciphertext.
    fn link_tag(&self, dir: Direction, seq: u64, ciphertext: &[u8]) -> [u8; TAG_SIZE] {
        let mut s = self.mac.stream();
        s.update(&[dir.byte()]);
        s.update(&seq.to_le_bytes());
        s.update(ciphertext);
        s.finalize()
    }

    /// Number of messages sent so far on this endpoint.
    pub fn sent(&self) -> u64 {
        self.send_seq
    }

    /// Number of messages received so far on this endpoint.
    pub fn received(&self) -> u64 {
        self.recv_seq
    }

    /// Encrypts and authenticates `payload` for transmission.
    pub fn seal(&mut self, payload: &[u8]) -> SealedMessage {
        let seq = self.send_seq;
        self.send_seq += 1;
        let ciphertext = self.cipher(self.send_dir).encrypt_to_vec(seq, payload);
        let tag = self.link_tag(self.send_dir, seq, &ciphertext);
        SealedMessage { seq, ciphertext, tag }
    }

    /// Verifies and decrypts a received message.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::CounterOutOfSync`] when `msg.seq` is not the next
    ///   expected sequence number (replay/drop/reorder).
    /// * [`CryptoError::MacMismatch`] when the tag does not verify.
    pub fn open(&mut self, msg: &SealedMessage) -> Result<Vec<u8>> {
        if msg.seq != self.recv_seq {
            return Err(CryptoError::CounterOutOfSync { expected: self.recv_seq, got: msg.seq });
        }
        let recv_dir = match self.send_dir {
            Direction::Downstream => Direction::Upstream,
            Direction::Upstream => Direction::Downstream,
        };
        if !crate::ct::ct_eq(&self.link_tag(recv_dir, msg.seq, &msg.ciphertext), &msg.tag) {
            return Err(CryptoError::MacMismatch { context: "link message" });
        }
        self.recv_seq += 1;
        let mut plain = msg.ciphertext.clone();
        self.cipher(recv_dir).apply(msg.seq, &mut plain);
        Ok(plain)
    }
}

/// Runs the modeled boot-time handshake and returns the two endpoints.
///
/// `cpu_nonce` and `device_secret` stand in for the asymmetric exchange:
/// the shared master secret is derived from both, so neither side alone
/// determines the keys. Returns `(cpu_endpoint, sdimm_endpoint)`.
///
/// # Example
///
/// ```
/// use sdimm_crypto::session::{handshake, DeviceId};
///
/// let (mut cpu, mut dimm) = handshake(DeviceId([7; 16]), [1; 16], [2; 16]);
/// let wire = cpu.seal(b"ACCESS leaf=42");
/// assert_eq!(dimm.open(&wire)?, b"ACCESS leaf=42");
/// # Ok::<(), sdimm_crypto::CryptoError>(())
/// ```
pub fn handshake(
    device: DeviceId,
    cpu_nonce: [u8; 16],
    device_secret: [u8; 16],
) -> (SessionEndpoint, SessionEndpoint) {
    // Master = AES_{device_secret}(cpu_nonce) XOR device fingerprint: a toy
    // KDF with the right dependency structure (both parties' inputs).
    let mut master = Aes128::new(&device_secret).encrypt_block(cpu_nonce);
    for (m, d) in master.iter_mut().zip(device.0.iter()) {
        *m ^= d;
    }
    (
        SessionEndpoint::new(&master, Direction::Downstream),
        SessionEndpoint::new(&master, Direction::Upstream),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SessionEndpoint, SessionEndpoint) {
        handshake(DeviceId([7; 16]), [1; 16], [2; 16])
    }

    #[test]
    fn bidirectional_roundtrip() {
        let (mut cpu, mut dimm) = pair();
        let m1 = cpu.seal(b"down 1");
        assert_eq!(dimm.open(&m1).unwrap(), b"down 1");
        let r1 = dimm.seal(b"up 1");
        assert_eq!(cpu.open(&r1).unwrap(), b"up 1");
    }

    #[test]
    fn counters_advance_per_direction() {
        let (mut cpu, mut dimm) = pair();
        for i in 0..5u64 {
            let m = cpu.seal(format!("msg {i}").as_bytes());
            assert_eq!(m.seq, i);
            dimm.open(&m).unwrap();
        }
        assert_eq!(cpu.sent(), 5);
        assert_eq!(dimm.received(), 5);
        assert_eq!(cpu.received(), 0);
    }

    #[test]
    fn replay_rejected() {
        let (mut cpu, mut dimm) = pair();
        let m = cpu.seal(b"once");
        dimm.open(&m).unwrap();
        assert!(matches!(dimm.open(&m), Err(CryptoError::CounterOutOfSync { .. })));
    }

    #[test]
    fn reorder_rejected() {
        let (mut cpu, mut dimm) = pair();
        let m0 = cpu.seal(b"zero");
        let m1 = cpu.seal(b"one");
        assert!(dimm.open(&m1).is_err());
        // The in-order message still works afterwards.
        assert_eq!(dimm.open(&m0).unwrap(), b"zero");
    }

    #[test]
    fn tamper_rejected() {
        let (mut cpu, mut dimm) = pair();
        let mut m = cpu.seal(b"payload");
        m.ciphertext[0] ^= 0xFF;
        assert!(matches!(dimm.open(&m), Err(CryptoError::MacMismatch { .. })));
    }

    #[test]
    fn directions_use_distinct_keystreams() {
        let (mut cpu, mut dimm) = pair();
        let down = cpu.seal(b"same bytes!!");
        let up = dimm.seal(b"same bytes!!");
        assert_eq!(down.seq, up.seq);
        assert_ne!(down.ciphertext, up.ciphertext, "directions must not share pads");
    }

    #[test]
    fn upstream_message_cannot_be_reflected_downstream() {
        let (mut cpu, mut dimm) = pair();
        let up = dimm.seal(b"response");
        // An attacker reflecting the upstream message back to the SDIMM as
        // if it were a command must fail the MAC (direction is bound in).
        assert!(dimm.open(&up).is_err() || cpu.open(&up).is_ok());
    }

    #[test]
    fn different_device_secret_different_session() {
        let (mut cpu_a, _) = handshake(DeviceId([7; 16]), [1; 16], [2; 16]);
        let (mut cpu_b, _) = handshake(DeviceId([7; 16]), [1; 16], [3; 16]);
        assert_ne!(cpu_a.seal(b"x").ciphertext, cpu_b.seal(b"x").ciphertext);
    }

    #[test]
    fn different_nonce_different_session() {
        let (mut cpu_a, _) = handshake(DeviceId([7; 16]), [1; 16], [2; 16]);
        let (mut cpu_b, _) = handshake(DeviceId([7; 16]), [9; 16], [2; 16]);
        assert_ne!(cpu_a.seal(b"x").ciphertext, cpu_b.seal(b"x").ciphertext);
    }

    #[test]
    fn ciphertext_hides_payload() {
        let (mut cpu, _) = pair();
        let m = cpu.seal(b"ACCESS leaf=42 addr=0xdeadbeef");
        let needle = b"ACCESS";
        assert!(!m.ciphertext.windows(needle.len()).any(|w| w == needle));
    }
}
