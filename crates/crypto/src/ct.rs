//! Constant-time comparison for MAC tags and other secret-derived values.
//!
//! A short-circuiting `==` on a MAC tag returns as soon as the first byte
//! differs, so the comparison's running time tells an active attacker how
//! long a prefix of their forgery was correct — the classic byte-at-a-time
//! MAC-forgery oracle. [`ct_eq`] always touches every byte and collapses
//! the result through a single data-independent reduction at the end.
//!
//! The `sdimm-lint` L3 `secret-eq` rule rejects `==`/`!=` on tag-named
//! values in this crate and in `crates/oram`; this module is the
//! sanctioned replacement.

/// Compares two byte slices in time independent of where they differ.
///
/// Returns `false` immediately on length mismatch: tag lengths are public
/// protocol constants (8 or 16 bytes here), so the length check leaks
/// nothing secret.
///
/// # Example
///
/// ```
/// use sdimm_crypto::ct::ct_eq;
///
/// assert!(ct_eq(b"abcd", b"abcd"));
/// assert!(!ct_eq(b"abcd", b"abce"));
/// assert!(!ct_eq(b"abcd", b"abc"));
/// ```
#[inline]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // `black_box` keeps the optimizer from reintroducing an early exit by
    // value-range reasoning on `diff` (a model-level guarantee only; real
    // hardened implementations audit the emitted assembly).
    std::hint::black_box(diff) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices_compare_equal() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(&[0u8; 16], &[0u8; 16]));
        let tag: Vec<u8> = (0..=255).collect();
        assert!(ct_eq(&tag, &tag.clone()));
    }

    #[test]
    fn any_single_byte_difference_is_detected() {
        let base = [0x5Au8; 16];
        for i in 0..16 {
            for bit in 0..8 {
                let mut other = base;
                other[i] ^= 1 << bit;
                assert!(!ct_eq(&base, &other), "flip at byte {i} bit {bit} missed");
            }
        }
    }

    #[test]
    fn length_mismatch_is_unequal() {
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(!ct_eq(b"abcd", b"abc"));
        assert!(!ct_eq(b"", b"x"));
    }

    #[test]
    fn agrees_with_operator_eq_on_random_pairs() {
        // ct_eq must be *functionally* identical to ==; only timing differs.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        for _ in 0..200 {
            let a: Vec<u8> = (0..8).map(|_| next()).collect();
            let mut b = a.clone();
            if next() % 2 == 0 {
                let idx = (next() % 8) as usize;
                b[idx] ^= next() | 1;
            }
            assert_eq!(ct_eq(&a, &b), a == b);
        }
    }
}
