//! PMMAC — position-map MAC integrity for ORAM buckets.
//!
//! Freecursive ORAM's PMMAC scheme authenticates each bucket with a MAC
//! over (bucket id, per-bucket write counter, bucket contents). Because the
//! counter increments on every write-back, replaying stale ciphertext is
//! detected. The Split protocol divides each bucket across `n` SDIMMs:
//! every split piece carries `1/n` of the counter bits but its **own** MAC
//! (the paper: "in n-way splitting, the MAC overhead is n times that in
//! Freecursive ORAM").
//!
//! This module provides [`BucketAuth`], the seal/verify engine used by both
//! the baseline Freecursive backend and the SDIMM secure buffers, plus the
//! counter-splitting helpers used by the Split protocol.

use crate::mac::{Cmac, ShortTag};
use crate::{CryptoError, Result};

/// Authenticated, encrypted bucket payload as stored in DRAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBucket {
    /// Counter-mode ciphertext of the serialized bucket.
    pub ciphertext: Vec<u8>,
    /// The per-bucket write counter at seal time (stored in plaintext, as
    /// in PMMAC; its integrity is protected by the MAC).
    pub counter: u64,
    /// Truncated MAC over (bucket id, counter, ciphertext).
    pub tag: ShortTag,
}

/// Seals and verifies buckets under one memory key.
///
/// # Example
///
/// ```
/// use sdimm_crypto::pmmac::BucketAuth;
///
/// let auth = BucketAuth::new(&[0u8; 16], &[1u8; 16]);
/// let sealed = auth.seal(42, 7, b"bucket bytes");
/// let plain = auth.open(42, &sealed)?;
/// assert_eq!(plain, b"bucket bytes");
/// # Ok::<(), sdimm_crypto::CryptoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BucketAuth {
    enc: crate::ctr::CtrCipher,
    mac: Cmac,
}

impl BucketAuth {
    /// Creates an authenticator from an encryption key and a MAC key.
    pub fn new(enc_key: &[u8; 16], mac_key: &[u8; 16]) -> Self {
        BucketAuth {
            enc: crate::ctr::CtrCipher::new(
                crate::aes::Aes128::new(enc_key),
                0x5344_494D_4D00_0001,
            ),
            mac: Cmac::new(mac_key),
        }
    }

    /// Truncated MAC over bucket id ‖ counter ‖ ciphertext, streamed so
    /// the header and ciphertext are never concatenated into a scratch
    /// buffer on the seal/open hot path.
    fn bucket_tag(&self, bucket_id: u64, counter: u64, ciphertext: &[u8]) -> ShortTag {
        let mut s = self.mac.stream();
        s.update(&bucket_id.to_le_bytes());
        s.update(&counter.to_le_bytes());
        s.update(ciphertext);
        // lint: panic-ok(slice width is a compile-time constant)
        s.finalize()[..8].try_into().expect("tag is 16 bytes")
    }

    /// Derives the CTR counter for a bucket: PMMAC uses (bucket id, write
    /// counter) as the encryption seed so pads are never reused.
    fn ctr_seed(bucket_id: u64, counter: u64) -> u64 {
        // bucket_id occupies the low 40 bits in any realistic tree
        // (2^40 buckets = 64 TiB at Z=4); counter gets the rest. Mix both
        // so even overflow cannot alias two (id, counter) pairs quickly.
        bucket_id ^ counter.rotate_left(40)
    }

    /// Encrypts and MACs `plaintext` for `bucket_id` at write `counter`.
    ///
    /// Encryption runs as one batched keystream sweep over the whole
    /// bucket image; the MAC is streamed over header ‖ ciphertext.
    pub fn seal(&self, bucket_id: u64, counter: u64, plaintext: &[u8]) -> SealedBucket {
        let ciphertext = self.enc.encrypt_to_vec(Self::ctr_seed(bucket_id, counter), plaintext);
        let tag = self.bucket_tag(bucket_id, counter, &ciphertext);
        SealedBucket { ciphertext, counter, tag }
    }

    /// Verifies and decrypts a sealed bucket.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MacMismatch`] if the ciphertext, counter, or
    /// bucket id was tampered with (including replay of an older sealed
    /// version with its old counter *and* old tag — the counter is also
    /// checked by the caller against the PMMAC counter tree; this layer
    /// catches splices).
    pub fn open(&self, bucket_id: u64, sealed: &SealedBucket) -> Result<Vec<u8>> {
        if !crate::ct::ct_eq(
            &self.bucket_tag(bucket_id, sealed.counter, &sealed.ciphertext),
            &sealed.tag,
        ) {
            return Err(CryptoError::MacMismatch { context: "sealed bucket" });
        }
        let mut plain = sealed.ciphertext.clone();
        self.enc.apply(Self::ctr_seed(bucket_id, sealed.counter), &mut plain);
        Ok(plain)
    }
}

/// Splits a 64-bit bucket counter into `n` equal bit-slices, one per SDIMM.
///
/// The Split protocol stores `1/n` of the counter bits in each SDIMM's
/// piece of the bucket; the CPU reassembles them with
/// [`reassemble_counter`]. Bits are sliced little-endian: piece 0 holds the
/// least-significant `64/n` bits.
///
/// # Panics
///
/// Panics if `n` is not a power of two in `1..=8` (the divisors of 64 the
/// protocol supports; the paper evaluates 2- and 4-way splits).
pub fn split_counter(counter: u64, n: usize) -> Vec<u64> {
    assert!(matches!(n, 1 | 2 | 4 | 8), "unsupported split arity {n}");
    let bits = 64 / n;
    let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    (0..n).map(|i| (counter >> (i * bits)) & mask).collect()
}

/// Reassembles a counter previously produced by [`split_counter`].
///
/// # Panics
///
/// Panics if `pieces.len()` is not a supported split arity.
pub fn reassemble_counter(pieces: &[u64]) -> u64 {
    let n = pieces.len();
    assert!(matches!(n, 1 | 2 | 4 | 8), "unsupported split arity {n}");
    let bits = 64 / n;
    pieces.iter().enumerate().fold(0u64, |acc, (i, &p)| acc | (p << (i * bits)))
}

/// Splits a byte buffer into `n` interleaved pieces (byte-striped).
///
/// Used by the Split layout: "each bucket has one half of each data block,
/// one half of each tag, ...". Byte-striping (round-robin) means each piece
/// sees a share of every block rather than whole blocks.
pub fn split_bytes(data: &[u8], n: usize) -> Vec<Vec<u8>> {
    assert!(n >= 1);
    let mut pieces = vec![Vec::with_capacity(data.len() / n + 1); n];
    for (i, &b) in data.iter().enumerate() {
        pieces[i % n].push(b);
    }
    pieces
}

/// Inverse of [`split_bytes`].
pub fn join_bytes(pieces: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = pieces.iter().map(Vec::len).sum();
    let n = pieces.len();
    let mut out = Vec::with_capacity(total);
    for i in 0..total {
        out.push(pieces[i % n][i / n]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn auth() -> BucketAuth {
        BucketAuth::new(&[1u8; 16], &[2u8; 16])
    }

    #[test]
    fn seal_open_roundtrip() {
        let a = auth();
        let sealed = a.seal(5, 10, b"hello bucket with a realistic 64B cache line payload....");
        assert_eq!(
            a.open(5, &sealed).unwrap(),
            b"hello bucket with a realistic 64B cache line payload...."
        );
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let sealed = auth().seal(1, 1, &[0u8; 64]);
        assert_ne!(sealed.ciphertext, vec![0u8; 64]);
    }

    #[test]
    fn counter_changes_ciphertext() {
        let a = auth();
        let s1 = a.seal(1, 1, &[7u8; 64]);
        let s2 = a.seal(1, 2, &[7u8; 64]);
        assert_ne!(s1.ciphertext, s2.ciphertext);
        assert_ne!(s1.tag, s2.tag);
    }

    #[test]
    fn bucket_id_changes_ciphertext() {
        let a = auth();
        assert_ne!(a.seal(1, 1, &[7u8; 64]).ciphertext, a.seal(2, 1, &[7u8; 64]).ciphertext);
    }

    #[test]
    fn tamper_ciphertext_detected() {
        let a = auth();
        let mut sealed = a.seal(3, 4, &[9u8; 32]);
        sealed.ciphertext[5] ^= 1;
        assert!(matches!(a.open(3, &sealed), Err(CryptoError::MacMismatch { .. })));
    }

    #[test]
    fn tamper_counter_detected() {
        let a = auth();
        let mut sealed = a.seal(3, 4, &[9u8; 32]);
        sealed.counter += 1;
        assert!(a.open(3, &sealed).is_err());
    }

    #[test]
    fn splice_to_other_bucket_detected() {
        // A sealed bucket moved to a different tree position must not verify.
        let a = auth();
        let sealed = a.seal(3, 4, &[9u8; 32]);
        assert!(a.open(4, &sealed).is_err());
    }

    #[test]
    fn split_counter_roundtrip_all_arities() {
        for n in [1usize, 2, 4, 8] {
            for c in [0u64, 1, u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
                let pieces = split_counter(c, n);
                assert_eq!(pieces.len(), n);
                assert_eq!(reassemble_counter(&pieces), c, "arity {n} counter {c:#x}");
            }
        }
    }

    #[test]
    fn split_counter_pieces_fit_bit_budget() {
        let pieces = split_counter(u64::MAX, 4);
        for p in pieces {
            assert!(p <= 0xFFFF, "4-way piece exceeds 16 bits: {p:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported split arity")]
    fn split_counter_rejects_arity_3() {
        split_counter(1, 3);
    }

    #[test]
    fn split_bytes_roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        for n in [1usize, 2, 3, 4, 7] {
            let pieces = split_bytes(&data, n);
            assert_eq!(join_bytes(&pieces), data, "arity {n}");
        }
    }

    #[test]
    fn split_bytes_balanced() {
        let pieces = split_bytes(&[0u8; 64], 2);
        assert_eq!(pieces[0].len(), 32);
        assert_eq!(pieces[1].len(), 32);
    }

    #[test]
    fn split_bytes_uneven_length() {
        let pieces = split_bytes(&[1, 2, 3, 4, 5], 2);
        assert_eq!(pieces[0], vec![1, 3, 5]);
        assert_eq!(pieces[1], vec![2, 4]);
        assert_eq!(join_bytes(&pieces), vec![1, 2, 3, 4, 5]);
    }
}
