//! Cryptographic substrate for the SDIMM reproduction.
//!
//! The Secure DIMM paper (HPCA 2018) protects the CPU ↔ SDIMM link with
//! counter-mode AES and protects memory integrity with PMMAC (per-block
//! counters plus MACs, as in Freecursive ORAM). This crate implements all
//! of those primitives from scratch:
//!
//! * [`aes`] — the AES-128 block cipher (FIPS-197), encryption direction
//!   only, which is all CTR mode and CMAC require.
//! * [`ctr`] — counter-mode keystream generation and in-place XOR
//!   encryption, the paper's "frequently-changing pad that is a function of
//!   the key and counter".
//! * [`mac`] — AES-CMAC (RFC 4493) used as the MAC in PMMAC and on link
//!   messages.
//! * [`pmmac`] — PMMAC bucket authentication: per-bucket counters, split
//!   counters for the Split protocol, MAC computation/verification.
//! * [`session`] — the boot-time authentication handshake between the CPU
//!   and a secure buffer (`SEND_PKEY` / `RECEIVE_SECRET`) and the resulting
//!   bidirectional encrypted session with upstream/downstream counters.
//! * [`ct`] — constant-time tag comparison; the `sdimm-lint` secret-eq
//!   rule forbids `==` on MAC tags in favor of [`ct::ct_eq`].
//!
//! None of this is hardened production cryptography (the T-table AES is
//! deliberately not cache-timing resistant); it is a faithful functional
//! model for architecture simulation, with real test vectors so the
//! bit-level behavior is honest. Tag comparisons and Debug redaction do
//! follow production discipline, because the static-analysis gate treats
//! this crate as the template for the secret-hygiene rules.
//!
//! # Example
//!
//! ```
//! use sdimm_crypto::{aes::Aes128, ctr::CtrCipher};
//!
//! let key = [0u8; 16];
//! let cipher = CtrCipher::new(Aes128::new(&key), 0xDEAD_BEEF);
//! let plain = *b"secret cacheline";
//! let mut buf = plain;
//! cipher.apply(1, &mut buf); // encrypt with counter value 1
//! assert_ne!(buf, plain);
//! cipher.apply(1, &mut buf); // decrypt = re-apply same pad
//! assert_eq!(buf, plain);
//! ```

#![deny(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod aes;
pub mod ct;
pub mod ctr;
pub mod mac;
pub mod pmmac;
pub mod session;

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the cryptographic layer.
///
/// All verification failures are surfaced as explicit errors rather than
/// panics so that a simulated active-attack experiment can observe them.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A MAC check failed: the data or counter was tampered with.
    MacMismatch {
        /// Human-readable description of what was being verified.
        context: &'static str,
    },
    /// A session message arrived with an unexpected sequence counter.
    CounterOutOfSync {
        /// Counter value the receiver expected.
        expected: u64,
        /// Counter value carried by the message.
        got: u64,
    },
    /// A handshake message was malformed or replayed.
    Handshake(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::MacMismatch { context } => {
                write!(f, "mac verification failed while checking {context}")
            }
            CryptoError::CounterOutOfSync { expected, got } => {
                write!(f, "session counter out of sync: expected {expected}, got {got}")
            }
            CryptoError::Handshake(msg) => write!(f, "handshake failed: {msg}"),
        }
    }
}

impl StdError for CryptoError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, CryptoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty_and_lowercase() {
        let errs = [
            CryptoError::MacMismatch { context: "bucket 3" },
            CryptoError::CounterOutOfSync { expected: 4, got: 9 },
            CryptoError::Handshake("replayed nonce"),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
