//! Property tests for the crypto substrate: fast-path ≡ spec equivalence
//! for the T-table AES backend, session ordering, seal/open inverses, and
//! ciphertext non-triviality for arbitrary payloads.

use proptest::prelude::*;
use sdimm_crypto::aes::{spec, Aes128};
use sdimm_crypto::ctr::CtrCipher;
use sdimm_crypto::mac::Cmac;
use sdimm_crypto::pmmac::BucketAuth;
use sdimm_crypto::session::{handshake, DeviceId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The T-table fast path is bit-identical to the byte-oriented
    /// FIPS-197 reference for random keys and blocks.
    #[test]
    fn fast_aes_matches_spec(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let fast = Aes128::new(&key);
        let reference = spec::Aes128::new(&key);
        prop_assert_eq!(fast.encrypt_block(block), reference.encrypt_block(block));
    }

    /// The batched entry point is exactly per-block ECB, for any batch.
    #[test]
    fn encrypt_blocks_matches_single_calls(key in any::<[u8; 16]>(),
                                           blocks in proptest::collection::vec(any::<[u8; 16]>(), 0..12)) {
        let cipher = Aes128::new(&key);
        let expect: Vec<[u8; 16]> = blocks.iter().map(|&b| cipher.encrypt_block(b)).collect();
        let mut batch = blocks.clone();
        cipher.encrypt_blocks(&mut batch);
        prop_assert_eq!(batch, expect);
    }

    /// CtrCipher pads computed through the batched fast path equal pads
    /// recomputed from the spec cipher: same pad-input mixing, same AES.
    #[test]
    fn ctr_pads_match_spec_cipher(key in any::<[u8; 16]>(), domain in any::<u64>(),
                                  counter in any::<u64>(), idx in 0u32..64) {
        let ctr = CtrCipher::new(Aes128::new(&key), domain);
        // Rebuild the pad input exactly as CtrCipher::pad documents it and
        // push it through the reference cipher.
        let mut input = [0u8; 16];
        input[..8].copy_from_slice(&domain.to_le_bytes());
        input[8..12].copy_from_slice(&(counter as u32).to_le_bytes());
        input[12..16].copy_from_slice(
            &(((counter >> 32) as u32) ^ idx.rotate_left(16)).to_le_bytes());
        input[8..12]
            .iter_mut()
            .zip(idx.to_le_bytes())
            .for_each(|(b, i)| *b ^= i.rotate_left(3));
        prop_assert_eq!(ctr.pad(counter, idx), spec::Aes128::new(&key).encrypt_block(input));
    }

    /// keystream_line is the concatenation of pads 0..4, and apply() XORs
    /// exactly those pads lane by lane for arbitrary message lengths.
    #[test]
    fn batched_keystream_matches_lane_pads(key in any::<[u8; 16]>(), domain in any::<u64>(),
                                           counter in any::<u64>(),
                                           data in proptest::collection::vec(any::<u8>(), 0..600)) {
        let ctr = CtrCipher::new(Aes128::new(&key), domain);
        let line = ctr.keystream_line(counter);
        for i in 0..4u32 {
            prop_assert_eq!(&line[i as usize * 16..(i as usize + 1) * 16], &ctr.pad(counter, i));
        }
        let mut buf = data.clone();
        ctr.apply(counter, &mut buf);
        for (i, (chunk, out)) in data.chunks(16).zip(buf.chunks(16)).enumerate() {
            let pad = ctr.pad(counter, i as u32);
            for (j, (&p, &o)) in chunk.iter().zip(out).enumerate() {
                prop_assert_eq!(o, p ^ pad[j], "lane {} byte {}", i, j);
            }
        }
    }

    /// The streaming CMAC equals the one-shot tag under any partition.
    #[test]
    fn cmac_stream_matches_tag(key in any::<[u8; 16]>(),
                               data in proptest::collection::vec(any::<u8>(), 0..200),
                               cut_seed in any::<usize>()) {
        let mac = Cmac::new(&key);
        let cut = if data.is_empty() { 0 } else { cut_seed % data.len() };
        let mut s = mac.stream();
        s.update(&data[..cut]);
        s.update(&data[cut..]);
        prop_assert_eq!(s.finalize(), mac.tag(&data));
    }

    /// Any message sequence delivered in order round-trips; the first
    /// out-of-order delivery fails.
    #[test]
    fn sessions_enforce_order(msgs in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..96), 1..12)) {
        let (mut cpu, mut dimm) = handshake(DeviceId([3; 16]), [1; 16], [2; 16]);
        let wires: Vec<_> = msgs.iter().map(|m| cpu.seal(m)).collect();
        if wires.len() >= 2 {
            // Skipping the first message must fail.
            let mut dimm2_pair = handshake(DeviceId([3; 16]), [1; 16], [2; 16]);
            prop_assert!(dimm2_pair.1.open(&wires[1]).is_err());
        }
        for (m, w) in msgs.iter().zip(&wires) {
            prop_assert_eq!(&dimm.open(w).unwrap(), m);
        }
    }

    /// Sealing is deterministic per position but never equal across
    /// positions (counter in the pad).
    #[test]
    fn seal_output_varies_by_position(msg in proptest::collection::vec(any::<u8>(), 16..64)) {
        let (mut cpu, _) = handshake(DeviceId([4; 16]), [9; 16], [8; 16]);
        let w1 = cpu.seal(&msg);
        let w2 = cpu.seal(&msg);
        prop_assert_ne!(w1.ciphertext, w2.ciphertext);
    }

    /// PMMAC: open(seal(x)) == x for arbitrary ids/counters/payloads and
    /// ciphertext differs from plaintext.
    #[test]
    fn pmmac_is_an_inverse_pair(id in any::<u64>(), ctr in any::<u64>(),
                                data in proptest::collection::vec(any::<u8>(), 1..256)) {
        let auth = BucketAuth::new(&[11; 16], &[22; 16]);
        let sealed = auth.seal(id, ctr, &data);
        prop_assert_ne!(&sealed.ciphertext, &data);
        prop_assert_eq!(auth.open(id, &sealed).unwrap(), data);
    }

    /// Flipping any single ciphertext byte breaks verification.
    #[test]
    fn pmmac_rejects_any_byte_flip(pos_seed in any::<usize>(),
                                   data in proptest::collection::vec(any::<u8>(), 1..128)) {
        let auth = BucketAuth::new(&[1; 16], &[2; 16]);
        let mut sealed = auth.seal(5, 9, &data);
        let pos = pos_seed % sealed.ciphertext.len();
        sealed.ciphertext[pos] ^= 0x80;
        prop_assert!(auth.open(5, &sealed).is_err());
    }
}
