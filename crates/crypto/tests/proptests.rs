//! Property tests for the crypto substrate: session ordering, seal/open
//! inverses, and ciphertext non-triviality for arbitrary payloads.

use proptest::prelude::*;
use sdimm_crypto::pmmac::BucketAuth;
use sdimm_crypto::session::{handshake, DeviceId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any message sequence delivered in order round-trips; the first
    /// out-of-order delivery fails.
    #[test]
    fn sessions_enforce_order(msgs in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..96), 1..12)) {
        let (mut cpu, mut dimm) = handshake(DeviceId([3; 16]), [1; 16], [2; 16]);
        let wires: Vec<_> = msgs.iter().map(|m| cpu.seal(m)).collect();
        if wires.len() >= 2 {
            // Skipping the first message must fail.
            let mut dimm2_pair = handshake(DeviceId([3; 16]), [1; 16], [2; 16]);
            prop_assert!(dimm2_pair.1.open(&wires[1]).is_err());
        }
        for (m, w) in msgs.iter().zip(&wires) {
            prop_assert_eq!(&dimm.open(w).unwrap(), m);
        }
    }

    /// Sealing is deterministic per position but never equal across
    /// positions (counter in the pad).
    #[test]
    fn seal_output_varies_by_position(msg in proptest::collection::vec(any::<u8>(), 16..64)) {
        let (mut cpu, _) = handshake(DeviceId([4; 16]), [9; 16], [8; 16]);
        let w1 = cpu.seal(&msg);
        let w2 = cpu.seal(&msg);
        prop_assert_ne!(w1.ciphertext, w2.ciphertext);
    }

    /// PMMAC: open(seal(x)) == x for arbitrary ids/counters/payloads and
    /// ciphertext differs from plaintext.
    #[test]
    fn pmmac_is_an_inverse_pair(id in any::<u64>(), ctr in any::<u64>(),
                                data in proptest::collection::vec(any::<u8>(), 1..256)) {
        let auth = BucketAuth::new(&[11; 16], &[22; 16]);
        let sealed = auth.seal(id, ctr, &data);
        prop_assert_ne!(&sealed.ciphertext, &data);
        prop_assert_eq!(auth.open(id, &sealed).unwrap(), data);
    }

    /// Flipping any single ciphertext byte breaks verification.
    #[test]
    fn pmmac_rejects_any_byte_flip(pos_seed in any::<usize>(),
                                   data in proptest::collection::vec(any::<u8>(), 1..128)) {
        let auth = BucketAuth::new(&[1; 16], &[2; 16]);
        let mut sealed = auth.seal(5, 9, &data);
        let pos = pos_seed % sealed.ciphertext.len();
        sealed.ciphertext[pos] ^= 0x80;
        prop_assert!(auth.open(5, &sealed).is_err());
    }
}
