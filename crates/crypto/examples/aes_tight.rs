//! Quick timing harness for the AES fast path (not a unit test).
//!
//! Interleaves fast/spec measurement slices so CPU frequency drift hits
//! both sides equally, giving a stable speedup ratio on noisy hosts.

// Wall-clock timing harness: `Instant` is the point of this example.
#![allow(clippy::disallowed_methods)]

use sdimm_crypto::aes::{spec, Aes128};
use std::hint::black_box;
use std::time::Instant;

fn slice_fast(c: &Aes128, iters: u64) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        black_box(c.encrypt_block(black_box([7u8; 16])));
    }
    t.elapsed().as_secs_f64()
}

fn slice_spec(c: &spec::Aes128, iters: u64) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        black_box(c.encrypt_block(black_box([7u8; 16])));
    }
    t.elapsed().as_secs_f64()
}

fn slice_batch(c: &Aes128, iters: u64) -> f64 {
    let mut batch = [[9u8; 16]; 64];
    let t = Instant::now();
    for _ in 0..iters / 64 {
        c.encrypt_blocks(black_box(&mut batch));
    }
    t.elapsed().as_secs_f64()
}

fn main() {
    let key = [0x42u8; 16];
    let fast = Aes128::new(&key);
    let slow = spec::Aes128::new(&key);
    let per_slice = 200_000u64;
    let (mut tf, mut ts, mut tb) = (0.0, 0.0, 0.0);
    let mut n = 0u64;
    for _ in 0..12 {
        tf += slice_fast(&fast, per_slice);
        ts += slice_spec(&slow, per_slice);
        tb += slice_batch(&fast, per_slice);
        n += per_slice;
    }
    let (f_ns, s_ns, b_ns) = (tf * 1e9 / n as f64, ts * 1e9 / n as f64, tb * 1e9 / n as f64);
    println!(
        "fast single: {f_ns:.1} ns/block   spec: {s_ns:.1} ns/block   batched: {b_ns:.1} ns/block"
    );
    println!("single ratio: {:.2}x   batched ratio: {:.2}x", s_ns / f_ns, s_ns / b_ns);
}
