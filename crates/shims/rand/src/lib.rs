//! Minimal offline shim for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no registry access, so instead of the real
//! crate this path dependency provides a compatible [`Rng`] /
//! [`SeedableRng`] / [`rngs::StdRng`] surface backed by xoshiro256++
//! (seeded via splitmix64). It is a high-quality, fast, *non-cryptographic*
//! generator — exactly the role `StdRng` plays in the simulators here:
//! deterministic, seedable workload and leaf randomness. Security-relevant
//! randomness in the repo never comes from this crate.
//!
//! Determinism note: streams differ from the real `rand::StdRng` (which is
//! ChaCha12), so seed-pinned expectations reproduce within this shim only.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can be sampled uniformly from an `Rng` via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        fill_bytes(rng, &mut out);
        out
    }
}

fn fill_bytes<R: RngCore + ?Sized>(rng: &mut R, dest: &mut [u8]) {
    for chunk in dest.chunks_mut(8) {
        let w = rng.next_u64().to_le_bytes();
        chunk.copy_from_slice(&w[..chunk.len()]);
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Widening-multiply range reduction (unbiased to ~2^-64).
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128) - (start as u128) + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                start + hi
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let hi = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Buffers [`Rng::fill`] can populate with random bytes.
pub trait Fill {
    /// Overwrites `self` with uniform random bytes.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        fill_bytes(rng, self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        fill_bytes(rng, self);
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        f64::sample(self) < p
    }

    /// Fills `dest` with uniform random bytes.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministically seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator by expanding a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++ seeded by
    /// splitmix64. (The real `rand::rngs::StdRng` is ChaCha12; streams
    /// differ but the contract — seedable, deterministic, uniform — holds.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                *w = u64::from_le_bytes(seed[8 * i..8 * i + 8].try_into().expect("8 bytes"));
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = r.gen_range(0.0..3.5f64);
            assert!((0.0..3.5).contains(&f));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4 values should appear");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.02, "gen_bool(0.3) measured {frac}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn fill_randomizes_arrays_and_slices() {
        let mut r = StdRng::seed_from_u64(9);
        let mut a = [0u8; 64];
        r.fill(&mut a);
        assert!(a.iter().any(|&b| b != 0));
        let mut v = vec![0u8; 33];
        r.fill(&mut v[..]);
        assert!(v.iter().any(|&b| b != 0));
    }

    #[test]
    fn from_seed_accepts_all_zero() {
        let mut r = StdRng::from_seed([0u8; 32]);
        assert_ne!(r.gen::<u64>() | r.gen::<u64>(), 0, "must not be stuck at zero");
    }
}
