//! Minimal offline shim for the subset of the `bytes` 1.x API used by
//! this workspace: `Bytes`/`BytesMut` with little-endian integer codecs.
//!
//! Both types are plain `Vec<u8>` wrappers — no reference-counted slab
//! sharing. `Bytes::advance` is O(n) (it drains the front), which is
//! irrelevant at the wire-message sizes used here (< 100 bytes).

use std::ops::Deref;

/// Read-side cursor operations (subset of `bytes::Buf`).
pub trait Buf {
    /// Discards the first `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// Pops one byte off the front.
    fn get_u8(&mut self) -> u8;
    /// Pops a little-endian `u64` off the front.
    fn get_u64_le(&mut self) -> u64;
}

/// Write-side append operations (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// An owned, immutable-by-convention byte buffer with cursor reads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Number of unread bytes remaining.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the remaining bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes { data: data.to_vec(), pos: 0 }
    }
}

impl Buf for Bytes {
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.pos += 1;
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self[..8]);
        self.pos += 8;
        u64::from_le_bytes(raw)
    }
}

/// A growable byte buffer for building wire messages.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with at least `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_wire_message() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(0xAB);
        b.put_u64_le(0x1122_3344_5566_7788);
        b.put_slice(&[1, 2, 3]);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 12);
        assert_eq!(frozen[0], 0xAB);
        frozen.advance(1);
        assert_eq!(frozen.get_u64_le(), 0x1122_3344_5566_7788);
        assert_eq!(&frozen[..], &[1, 2, 3]);
        assert_eq!(frozen.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn from_vec_and_indexing() {
        let b = Bytes::from(vec![9, 8, 7]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[1..], &[8, 7]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        b.advance(2);
    }
}
