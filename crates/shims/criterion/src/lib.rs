//! Minimal offline shim for the subset of the `criterion` 0.5 API used
//! by this workspace's `benches/` targets.
//!
//! Benchmarks run a short calibrated measurement (warm-up, then batches
//! until a time budget is spent) and print mean time per iteration plus
//! derived throughput. There is no statistical analysis, HTML report, or
//! saved baseline — the workspace's `bench_compare` binary provides the
//! regression gate instead.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How measured iteration counts translate into work units for the
/// throughput line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Each iteration processes this many bytes.
    Bytes(u64),
    /// Each iteration processes this many logical elements.
    Elements(u64),
}

/// Hint for how much setup output `iter_batched` keeps in flight.
/// The shim runs setup once per iteration regardless.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`, as rendered by real criterion.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { full: format!("{name}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Passed to benchmark closures; drives the measurement loop.
#[derive(Debug)]
pub struct Bencher {
    /// Total measured time, accumulated across calls.
    elapsed: Duration,
    /// Total measured iterations, accumulated across calls.
    iters: u64,
    /// Measurement budget.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher { elapsed: Duration::ZERO, iters: 0, budget }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: grow until one batch takes
        // at least ~1ms, so timer overhead stays negligible.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.elapsed += start.elapsed();
            self.iters += batch;
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            // Amortize the Instant calls over a small fixed batch.
            for _ in 0..64 {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                self.elapsed += start.elapsed();
                self.iters += 1;
            }
        }
    }

    /// Mean nanoseconds per iteration over everything measured so far.
    fn ns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            return f64::NAN;
        }
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let ns = bencher.ns_per_iter();
    let mut line = format!("{name:<40} {ns:>12.1} ns/iter");
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let mbps = n as f64 / ns * 1e9 / (1024.0 * 1024.0);
            line.push_str(&format!("  {mbps:>10.1} MiB/s"));
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / ns * 1e9;
            line.push_str(&format!("  {eps:>10.0} elem/s"));
        }
        None => {}
    }
    println!("{line}");
}

/// A named group of benchmarks sharing a throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work used for the throughput line.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.criterion.budget);
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher, self.throughput);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.criterion.budget);
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher, self.throughput);
        self
    }

    /// No-op in the shim (reports print eagerly).
    pub fn finish(self) {}
}

/// Benchmark driver (shim: holds only the per-benchmark time budget).
#[derive(Debug)]
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep whole-suite runs quick; SDIMM_BENCH_BUDGET_MS overrides.
        let ms =
            std::env::var("SDIMM_BENCH_BUDGET_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(300);
        Criterion { budget: Duration::from_millis(ms) }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, criterion: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.budget);
        f(&mut bencher);
        report(&id.to_string(), &bencher, None);
        self
    }
}

/// Prevents the optimizer from deleting a value or the work behind it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(5));
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(b.iters > 0);
        assert!(b.ns_per_iter().is_finite());
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter_batched(|| vec![0u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters > 0);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("walk", 7).to_string(), "walk/7");
    }
}
