//! Test-execution support used by the [`crate::proptest!`] macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration (only `cases` is honored by the shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` did not hold: regenerate, do not count.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// Derives the deterministic RNG for one property-test function from its
/// fully qualified name (FNV-1a over the path).
pub fn rng_for(test_path: &str) -> StdRng {
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_for_is_deterministic_and_name_sensitive() {
        let a: u64 = rng_for("mod::test_a").gen();
        let a2: u64 = rng_for("mod::test_a").gen();
        let b: u64 = rng_for("mod::test_b").gen();
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn default_config_runs_256_cases() {
        assert_eq!(ProptestConfig::default().cases, 256);
    }
}
