//! Value-generation strategies (no shrinking).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree: `generate` draws a
/// concrete value directly and failures are not shrunk.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }

    /// Type-erases this strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

/// Strategy returned by [`crate::any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
#[derive(Debug, Clone, Copy)]
pub struct Filter<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
    pub(crate) whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 candidates: {}", self.whence)
    }
}

/// Uniform choice between strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union").field("options", &self.options.len()).finish()
    }
}

impl<T: std::fmt::Debug> Union<T> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

/// Size specification accepted by [`crate::collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub(crate) min: usize,
    /// Exclusive upper bound.
    pub(crate) max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { min: r.start, max: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() + 1 }
    }
}

/// Strategy for `Vec<S::Value>` (see [`crate::collection::vec`]).
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3), (A.0, B.1, C.2, D.3, E.4));
