//! Minimal offline shim for the subset of the `proptest` 1.x API used by
//! this workspace.
//!
//! The build environment has no registry access, so this path dependency
//! reimplements the pieces the test suites rely on: the [`proptest!`]
//! macro (with `proptest_config`), `any::<T>()`, range strategies,
//! `collection::vec`, tuple strategies, `prop_map`, [`prop_oneof!`],
//! `prop_assume!`, and the `prop_assert*` family.
//!
//! Differences from real proptest, deliberately accepted:
//! * **No shrinking.** A failing case reports its inputs via `Debug`
//!   but is not minimized.
//! * **Deterministic generation.** Each test function derives its RNG
//!   seed from the test name, so failures reproduce exactly.

pub mod strategy;

pub mod test_runner;

/// Strategies for generating collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy generating `Vec`s of `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Generates an arbitrary value of type `T` (uniformly over its domain).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// The subset of names the real proptest prelude exports that this
/// workspace uses.
pub mod prelude {
    pub use crate::strategy::{Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Marks the current case as failed unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Marks the current case as failed unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Marks the current case as failed if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Rejects the current case (it is regenerated, not counted) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Chooses uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Seed from the test path so each test gets a distinct,
            // stable stream.
            let mut rng =
                $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut case: u32 = 0;
            let mut rejects: u32 = 0;
            while case < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                // Render inputs before the body can move them, so a
                // failure can still report them (no shrinking here).
                let mut inputs_desc = String::new();
                $(inputs_desc.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));)*
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => case += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejects += 1;
                        assert!(
                            rejects < 65_536,
                            "proptest shim: too many prop_assume rejections in {}",
                            stringify!($name)
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {case} failed: {msg}\ninputs:\n{inputs_desc}");
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 5u64..10, y in 0u8..3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn fixed_size_vec(v in crate::collection::vec(any::<bool>(), 7)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn tuples_and_map(pair in (0u64..4, 0u64..4).prop_map(|(a, b)| a * 10 + b)) {
            prop_assert!(pair <= 33);
        }

        #[test]
        fn assume_filters(a in 0u32..8, b in 0u32..8) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn oneof_covers_both(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0u8..4) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        inner();
    }
}
