//! ORAM / protocol oracle: lockstep shadow-memory checking.
//!
//! The oracle drives an ORAM protocol with a deterministic request
//! stream while maintaining the simplest possible model of the same
//! memory — a plain `HashMap` from block id to bytes. After every
//! `accessORAM` the protocol's answer is compared byte-for-byte against
//! the map, and structural invariants are re-checked from outside:
//!
//! * **read-your-writes**: a read returns exactly the last written
//!   bytes (zero-filled for never-written blocks);
//! * **PosMap coherence**: the access fetched the path of the leaf the
//!   position map claimed for the block *before* the access, and every
//!   fetched line lies on that path;
//! * **stash bound**: occupancy returns under the configured limit once
//!   background eviction has run (and never explodes);
//! * **PMMAC counter monotonicity**: in sealed mode, no bucket's write
//!   counter ever decreases (a decrease is a replay);
//! * the ORAM's own `check_invariant` (no duplicates, every block on
//!   its path) is exercised periodically.
//!
//! Every supported protocol uses the same [`ShadowMem`]; mismatch
//! reports carry the protocol, step, block, and both byte strings.

use std::collections::HashMap;
use std::fmt;

use oram::geometry::BucketIdx;
use oram::plb::Plb;
use oram::types::{BlockId, Op, OramConfig};
use oram::{FreecursiveOram, PathOram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdimm::{
    IndepSplitConfig, IndepSplitOram, IndependentConfig, IndependentOram, SplitConfig, SplitOram,
};

/// The trivially-correct reference memory.
#[derive(Debug, Default)]
pub struct ShadowMem {
    map: HashMap<u64, Vec<u8>>,
    block_bytes: usize,
}

impl ShadowMem {
    /// A shadow for blocks of `block_bytes` bytes.
    pub fn new(block_bytes: usize) -> Self {
        ShadowMem { map: HashMap::new(), block_bytes }
    }

    /// Applies one `accessORAM` to the shadow and returns the bytes the
    /// real protocol must return: the stored (or zero) contents for a
    /// read, the new contents for a write. Mirrors `PathOram::serve`.
    pub fn apply(&mut self, id: u64, op: Op, new_data: Option<&[u8]>) -> Vec<u8> {
        match op {
            Op::Read => self.map.get(&id).cloned().unwrap_or_else(|| vec![0; self.block_bytes]),
            Op::Write => {
                let data = new_data.unwrap_or_default().to_vec();
                self.map.insert(id, data.clone());
                data
            }
        }
    }

    /// Blocks written so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Which protocol configuration to drive (the five `accessORAM`
/// implementations of the reproduction).
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolKind {
    /// The plain Path ORAM backend. `sealed` additionally enables the
    /// PMMAC sealed store and the counter-monotonicity check.
    PathOram {
        /// Run with encryption/MAC sealing enabled.
        sealed: bool,
    },
    /// Freecursive frontend (recursive posmaps + PLB) over Path ORAM.
    /// `tiny_plb` shrinks the PLB to force eviction write-back traffic.
    Freecursive {
        /// Use a 16-entry PLB instead of the Table II PLB.
        tiny_plb: bool,
    },
    /// The Independent SDIMM protocol.
    Independent {
        /// SDIMM count (power of two).
        sdimms: usize,
    },
    /// The Split SDIMM protocol.
    Split {
        /// Byte-striping ways.
        ways: usize,
    },
    /// The combined Independent + Split protocol.
    IndepSplit {
        /// Independent groups.
        groups: usize,
        /// Split ways per group.
        ways: usize,
    },
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolKind::PathOram { sealed: false } => write!(f, "path-oram"),
            ProtocolKind::PathOram { sealed: true } => write!(f, "path-oram-sealed"),
            ProtocolKind::Freecursive { tiny_plb: false } => write!(f, "freecursive"),
            ProtocolKind::Freecursive { tiny_plb: true } => write!(f, "freecursive-tiny-plb"),
            ProtocolKind::Independent { sdimms } => write!(f, "independent-{sdimms}"),
            ProtocolKind::Split { ways } => write!(f, "split-{ways}"),
            ProtocolKind::IndepSplit { groups, ways } => write!(f, "indep-split-{groups}x{ways}"),
        }
    }
}

/// A divergence between a protocol and the shadow memory (or a violated
/// structural invariant observed from outside).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleMismatch {
    /// Protocol under test.
    pub protocol: String,
    /// Request index in the deterministic stream.
    pub step: usize,
    /// Block the request targeted.
    pub block: u64,
    /// What diverged.
    pub detail: String,
}

impl fmt::Display for OracleMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} step {} block {}: {}", self.protocol, self.step, self.block, self.detail)
    }
}

impl std::error::Error for OracleMismatch {}

/// Successful lockstep run statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OracleReport {
    /// Protocol under test.
    pub protocol: String,
    /// Requests driven.
    pub steps: usize,
    /// How many were writes.
    pub writes: usize,
    /// Peak stash occupancy observed.
    pub stash_peak: usize,
}

/// How often the O(tree)-cost `check_invariant` hook runs.
const INVARIANT_PERIOD: usize = 64;

/// Explosion guard for protocols that relieve stash pressure
/// probabilistically (forced drains): the stash may exceed its nominal
/// limit transiently but must stay within a small multiple of it.
const STASH_BLOWUP: usize = 8;

fn pattern(id: u64, step: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (id.wrapping_mul(31) ^ (step as u64).wrapping_mul(7) ^ i as u64) as u8)
        .collect()
}

/// Drives `steps` deterministic requests through the protocol while
/// checking every result against a [`ShadowMem`]. Returns the first
/// divergence, or a report on success.
///
/// # Panics
///
/// Panics if the ORAM's *internal* `check_invariant` hook fires (those
/// panics carry their own description), or if the configuration cannot
/// be constructed.
pub fn check_protocol(
    kind: &ProtocolKind,
    cfg: &OramConfig,
    blocks: u64,
    steps: usize,
    seed: u64,
) -> Result<OracleReport, OracleMismatch> {
    match kind {
        ProtocolKind::PathOram { sealed } => {
            check_path_oram(kind, cfg, blocks, steps, seed, *sealed)
        }
        ProtocolKind::Freecursive { tiny_plb } => {
            check_freecursive(kind, cfg, blocks, steps, seed, *tiny_plb)
        }
        ProtocolKind::Independent { sdimms } => {
            let icfg = IndependentConfig::new(*sdimms, cfg);
            let oram = IndependentOram::new(icfg, blocks, seed);
            check_request_trace_protocol(kind, cfg, blocks, steps, seed, oram)
        }
        ProtocolKind::Split { ways } => {
            let scfg = SplitConfig::new(*ways, cfg);
            let oram = SplitOram::new(scfg, blocks, seed);
            check_request_trace_protocol(kind, cfg, blocks, steps, seed, oram)
        }
        ProtocolKind::IndepSplit { groups, ways } => {
            let iscfg = IndepSplitConfig::new(*groups, *ways, cfg);
            let oram = IndepSplitOram::new(iscfg, blocks, seed);
            check_request_trace_protocol(kind, cfg, blocks, steps, seed, oram)
        }
    }
}

/// Runs the oracle over every protocol configuration with a shared tree
/// shape, returning the reports (or the first divergence).
pub fn check_all_protocols(
    cfg: &OramConfig,
    blocks: u64,
    steps: usize,
    seed: u64,
) -> Result<Vec<OracleReport>, OracleMismatch> {
    let kinds = [
        ProtocolKind::PathOram { sealed: false },
        ProtocolKind::Freecursive { tiny_plb: false },
        ProtocolKind::Independent { sdimms: 4 },
        ProtocolKind::Split { ways: 4 },
        ProtocolKind::IndepSplit { groups: 2, ways: 2 },
    ];
    kinds.iter().map(|k| check_protocol(k, cfg, blocks, steps, seed)).collect()
}

/// Deterministic (id, op) stream shared by all drivers.
fn next_request(rng: &mut StdRng, blocks: u64, step: usize) -> (u64, Op, Vec<u8>, usize) {
    let id = rng.gen_range(0..blocks);
    let write = rng.gen_bool(0.5);
    let op = if write { Op::Write } else { Op::Read };
    (id, op, Vec::new(), step)
}

fn mismatch(kind: &ProtocolKind, step: usize, block: u64, detail: String) -> OracleMismatch {
    OracleMismatch { protocol: kind.to_string(), step, block, detail }
}

fn bytes_differ(
    kind: &ProtocolKind,
    step: usize,
    id: u64,
    got: &[u8],
    want: &[u8],
) -> OracleMismatch {
    mismatch(
        kind,
        step,
        id,
        format!(
            "returned {} bytes {:02x?}…, shadow expects {} bytes {:02x?}…",
            got.len(),
            &got[..got.len().min(8)],
            want.len(),
            &want[..want.len().min(8)],
        ),
    )
}

fn check_path_oram(
    kind: &ProtocolKind,
    cfg: &OramConfig,
    blocks: u64,
    steps: usize,
    seed: u64,
    sealed: bool,
) -> Result<OracleReport, OracleMismatch> {
    let mut oram = PathOram::new(cfg.clone(), blocks, seed);
    if sealed {
        oram.enable_sealing([0x5D; 16]);
    }
    let mut shadow = ShadowMem::new(cfg.block_bytes);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0DDC0FFE);
    let mut counters: HashMap<BucketIdx, u64> = HashMap::new();
    let mut writes = 0;

    for step in 0..steps {
        let (id, op, _, _) = next_request(&mut rng, blocks, step);
        let data = pattern(id, step, cfg.block_bytes);
        let new_data = if op == Op::Write {
            writes += 1;
            Some(data.as_slice())
        } else {
            None
        };

        // PosMap coherence: capture the claimed leaf before the access.
        let claimed = oram.leaf_of(BlockId(id));
        let (got, plan) = oram.access(BlockId(id), op, new_data);
        let want = shadow.apply(id, op, new_data);
        if got != want {
            return Err(bytes_differ(kind, step, id, &got, &want));
        }
        if plan.leaf != claimed {
            return Err(mismatch(
                kind,
                step,
                id,
                format!("fetched path of {} but the posmap claimed {claimed}", plan.leaf),
            ));
        }
        let path = oram.layout().path_lines(plan.leaf);
        if plan.read_lines != path {
            return Err(mismatch(
                kind,
                step,
                id,
                format!(
                    "fetched {} lines but the claimed path {} has {}",
                    plan.read_lines.len(),
                    plan.leaf,
                    path.len()
                ),
            ));
        }

        // Stash bound: after relief the occupancy is under the limit.
        while oram.needs_background_evict() {
            oram.background_evict();
        }
        if oram.stash_len() > cfg.stash_limit {
            return Err(mismatch(
                kind,
                step,
                id,
                format!(
                    "stash at {} after background eviction (limit {})",
                    oram.stash_len(),
                    cfg.stash_limit
                ),
            ));
        }

        // PMMAC counter monotonicity: a decreasing counter is a replay.
        if let Some(tree) = oram.sealed() {
            for idx in tree.indices().collect::<Vec<_>>() {
                // lint: panic-ok(invariant: listed index)
                let counter = tree.raw(idx).expect("listed index").counter;
                let prev = counters.insert(idx, counter).unwrap_or(0);
                if counter < prev {
                    return Err(mismatch(
                        kind,
                        step,
                        id,
                        format!("bucket {idx:?} counter went backwards: {prev} → {counter}"),
                    ));
                }
            }
        }

        if step % INVARIANT_PERIOD == 0 {
            oram.check_invariant();
        }
    }
    oram.check_invariant();
    Ok(OracleReport { protocol: kind.to_string(), steps, writes, stash_peak: oram.stash_peak() })
}

fn check_freecursive(
    kind: &ProtocolKind,
    cfg: &OramConfig,
    blocks: u64,
    steps: usize,
    seed: u64,
    tiny_plb: bool,
) -> Result<OracleReport, OracleMismatch> {
    let mut f = FreecursiveOram::new(cfg.clone(), blocks, seed);
    if tiny_plb {
        // Small and low-associativity: every few requests evict a dirty
        // posmap block, exercising the write-back path.
        f.set_plb(Plb::new(16, 4));
    }
    let mut shadow = ShadowMem::new(cfg.block_bytes);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0DDC0FFE);
    let mut writes = 0;

    for step in 0..steps {
        let (id, op, _, _) = next_request(&mut rng, blocks, step);
        let data = pattern(id, step, cfg.block_bytes);
        let new_data = if op == Op::Write {
            writes += 1;
            Some(data.as_slice())
        } else {
            None
        };
        let (got, plans) = f.request(id, op, new_data);
        let want = shadow.apply(id, op, new_data);
        if got != want {
            return Err(bytes_differ(kind, step, id, &got, &want));
        }
        for plan in &plans {
            let path = f.backend().layout().path_lines(plan.leaf);
            if plan.read_lines != path {
                return Err(mismatch(
                    kind,
                    step,
                    id,
                    format!("plan fetched lines off the path of {}", plan.leaf),
                ));
            }
        }
        // `request` relieves stash pressure before returning.
        if f.backend().stash_len() > cfg.stash_limit {
            return Err(mismatch(
                kind,
                step,
                id,
                format!(
                    "stash at {} after a fully-relieved request (limit {})",
                    f.backend().stash_len(),
                    cfg.stash_limit
                ),
            ));
        }
        if step % INVARIANT_PERIOD == 0 {
            f.backend().check_invariant();
        }
    }
    f.backend().check_invariant();
    Ok(OracleReport {
        protocol: kind.to_string(),
        steps,
        writes,
        stash_peak: f.backend().stash_peak(),
    })
}

/// Shared driver for the three SDIMM protocols, which expose the same
/// `access(id, op, data) -> (bytes, RequestTrace)` shape.
trait AccessOram {
    fn do_access(&mut self, id: BlockId, op: Op, new_data: Option<&[u8]>) -> Vec<u8>;
    fn invariants(&self);
    fn peak(&self) -> usize;
}

impl AccessOram for IndependentOram {
    fn do_access(&mut self, id: BlockId, op: Op, new_data: Option<&[u8]>) -> Vec<u8> {
        self.access(id, op, new_data).0
    }
    fn invariants(&self) {
        self.check_invariants();
    }
    fn peak(&self) -> usize {
        self.stash_peak()
    }
}

impl AccessOram for SplitOram {
    fn do_access(&mut self, id: BlockId, op: Op, new_data: Option<&[u8]>) -> Vec<u8> {
        self.access(id, op, new_data).0
    }
    fn invariants(&self) {
        self.check_invariant();
    }
    fn peak(&self) -> usize {
        self.stash_peak()
    }
}

impl AccessOram for IndepSplitOram {
    fn do_access(&mut self, id: BlockId, op: Op, new_data: Option<&[u8]>) -> Vec<u8> {
        self.access(id, op, new_data).0
    }
    fn invariants(&self) {
        self.check_invariants();
    }
    fn peak(&self) -> usize {
        self.stash_peak()
    }
}

fn check_request_trace_protocol<O: AccessOram>(
    kind: &ProtocolKind,
    cfg: &OramConfig,
    blocks: u64,
    steps: usize,
    seed: u64,
    mut oram: O,
) -> Result<OracleReport, OracleMismatch> {
    let mut shadow = ShadowMem::new(cfg.block_bytes);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0DDC0FFE);
    let mut writes = 0;

    for step in 0..steps {
        let (id, op, _, _) = next_request(&mut rng, blocks, step);
        let data = pattern(id, step, cfg.block_bytes);
        let new_data = if op == Op::Write {
            writes += 1;
            Some(data.as_slice())
        } else {
            None
        };
        let got = oram.do_access(BlockId(id), op, new_data);
        let want = shadow.apply(id, op, new_data);
        if got != want {
            return Err(bytes_differ(kind, step, id, &got, &want));
        }
        // These protocols relieve stash pressure with probabilistic
        // forced drains, so the bound here is an explosion guard rather
        // than the hard limit.
        if oram.peak() > cfg.stash_limit * STASH_BLOWUP {
            return Err(mismatch(
                kind,
                step,
                id,
                format!(
                    "stash peak {} exceeded the {}× explosion guard (limit {})",
                    oram.peak(),
                    STASH_BLOWUP,
                    cfg.stash_limit
                ),
            ));
        }
        if step % INVARIANT_PERIOD == 0 {
            oram.invariants();
        }
    }
    oram.invariants();
    Ok(OracleReport { protocol: kind.to_string(), steps, writes, stash_peak: oram.peak() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> OramConfig {
        OramConfig { levels: 8, stash_limit: 64, ..OramConfig::default() }
    }

    #[test]
    fn shadow_mem_mirrors_serve_semantics() {
        let mut s = ShadowMem::new(64);
        assert_eq!(s.apply(3, Op::Read, None), vec![0u8; 64]);
        assert_eq!(s.apply(3, Op::Write, Some(&[7; 64])), vec![7u8; 64]);
        assert_eq!(s.apply(3, Op::Read, None), vec![7u8; 64]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn path_oram_lockstep_holds() {
        let rep =
            check_protocol(&ProtocolKind::PathOram { sealed: false }, &small_cfg(), 256, 300, 1)
                .expect("lockstep");
        assert_eq!(rep.steps, 300);
        assert!(rep.writes > 0);
    }

    #[test]
    fn sealed_path_oram_lockstep_holds_with_counter_check() {
        let cfg = small_cfg();
        let rep = check_protocol(&ProtocolKind::PathOram { sealed: true }, &cfg, 128, 150, 2)
            .expect("lockstep");
        assert_eq!(rep.protocol, "path-oram-sealed");
    }

    #[test]
    fn freecursive_lockstep_holds_including_tiny_plb() {
        let cfg = OramConfig { levels: 10, stash_limit: 100, ..OramConfig::default() };
        check_protocol(&ProtocolKind::Freecursive { tiny_plb: false }, &cfg, 1024, 200, 3)
            .expect("lockstep");
        check_protocol(&ProtocolKind::Freecursive { tiny_plb: true }, &cfg, 1024, 200, 4)
            .expect("lockstep with PLB pressure");
    }

    #[test]
    fn sdimm_protocols_lockstep_holds() {
        let cfg = small_cfg();
        check_protocol(&ProtocolKind::Independent { sdimms: 4 }, &cfg, 256, 200, 5)
            .expect("independent");
        check_protocol(&ProtocolKind::Split { ways: 4 }, &cfg, 256, 200, 6).expect("split");
        check_protocol(&ProtocolKind::IndepSplit { groups: 2, ways: 2 }, &cfg, 256, 200, 7)
            .expect("indep-split");
    }

    #[test]
    fn oracle_catches_a_lying_memory() {
        // Sanity-check the checker itself: a shadow fed different bytes
        // must diverge.
        let mut shadow = ShadowMem::new(8);
        shadow.apply(1, Op::Write, Some(&[1; 8]));
        let got = vec![2u8; 8];
        assert_ne!(got, shadow.apply(1, Op::Read, None));
    }
}
