//! Independent activation recount for the reliability observatory.
//!
//! The wear tracker inside `dram_sim` counts ACT and write-CAS commands
//! as the scheduler issues them. This module re-derives the same
//! numbers from the *recorded command stream alone* — no shared code,
//! no shared state — so a disagreement means one side miscounts: either
//! the engine's wear hooks miss a command path, or the command log
//! drops records. The observatory's RowHammer report refuses to ship
//! numbers the recount does not reproduce.

use std::collections::BTreeMap;

use dram_sim::cmdlog::{CmdRecord, DdrCmd};
use dram_sim::wear::WearSnapshot;

/// Per-row command totals re-derived from one channel's command stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActRecount {
    /// ACT count per (rank, bank, row), every touched row present.
    pub acts: BTreeMap<(usize, usize, usize), u64>,
    /// Write-CAS count per (rank, bank, row).
    pub writes: BTreeMap<(usize, usize, usize), u64>,
    /// Total ACT commands in the stream.
    pub total_acts: u64,
    /// Total write-CAS commands in the stream.
    pub total_writes: u64,
}

/// Recounts one channel's stream. Only `Act` and `Wr` carry row
/// pressure; reads, precharges, refreshes, and power transitions are
/// ignored (refresh *closes* disturbance windows but never adds wear).
pub fn recount_channel(stream: &[CmdRecord]) -> ActRecount {
    let mut rc = ActRecount::default();
    for rec in stream {
        match rec.cmd {
            DdrCmd::Act { bank, row } => {
                *rc.acts.entry((rec.rank, bank, row)).or_insert(0) += 1;
                rc.total_acts += 1;
            }
            DdrCmd::Wr { bank, row } => {
                *rc.writes.entry((rec.rank, bank, row)).or_insert(0) += 1;
                rc.total_writes += 1;
            }
            _ => {}
        }
    }
    rc
}

/// Checks the engine's wear snapshot against this recount, row by row.
/// Exact equality is the contract: the tracker attaches before traffic
/// and warm-up never touches DRAM, so both sides see the same commands.
/// Returns the first discrepancy as a human-readable message.
///
/// Only exact-row snapshots (`row_granularity == 1`, the default) can
/// be compared per row; the caller guarantees that by construction.
pub fn check_against_snapshot(rc: &ActRecount, snap: &WearSnapshot) -> Result<(), String> {
    if rc.total_acts != snap.total_acts {
        return Err(format!(
            "total ACT mismatch: recount {} vs engine {}",
            rc.total_acts, snap.total_acts
        ));
    }
    if rc.total_writes != snap.total_writes {
        return Err(format!(
            "total write mismatch: recount {} vs engine {}",
            rc.total_writes, snap.total_writes
        ));
    }
    // The snapshot lists every touched row sorted by (rank, bank, row);
    // the recount's BTreeMap iterates in the same order. A row with
    // writes but no ACTs still appears in both (open-row write bursts).
    let mut engine = BTreeMap::new();
    for rw in &snap.rows {
        engine.insert((rw.id.rank, rw.id.bank, rw.id.row), (rw.acts, rw.writes));
    }
    let mut touched: std::collections::BTreeSet<(usize, usize, usize)> =
        rc.acts.keys().copied().collect();
    touched.extend(rc.writes.keys().copied());
    for (rank, bank, row) in touched {
        let acts = rc.acts.get(&(rank, bank, row)).copied().unwrap_or(0);
        let w = rc.writes.get(&(rank, bank, row)).copied().unwrap_or(0);
        match engine.remove(&(rank, bank, row)) {
            Some((ea, ew)) if ea == acts && ew == w => {}
            Some((ea, ew)) => {
                return Err(format!(
                    "rank {rank} bank {bank} row {row}: recount {acts} acts / {w} writes \
                     vs engine {ea} acts / {ew} writes"
                ));
            }
            None => {
                return Err(format!(
                    "rank {rank} bank {bank} row {row}: {acts} acts / {w} writes in the \
                     stream but absent from the engine snapshot"
                ));
            }
        }
    }
    if let Some((&(rank, bank, row), &(ea, ew))) = engine.iter().next() {
        return Err(format!(
            "rank {rank} bank {bank} row {row}: engine counted {ea} acts / {ew} writes \
             but the stream has neither"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::wear::{RowPressure, WearConfig};

    fn rec(cycle: u64, rank: usize, cmd: DdrCmd) -> CmdRecord {
        CmdRecord { cycle, rank, cmd }
    }

    #[test]
    fn recount_counts_only_acts_and_writes() {
        let stream = vec![
            rec(0, 0, DdrCmd::Act { bank: 1, row: 7 }),
            rec(4, 0, DdrCmd::Rd { bank: 1, row: 7 }),
            rec(8, 0, DdrCmd::Wr { bank: 1, row: 7 }),
            rec(12, 0, DdrCmd::Pre { bank: 1 }),
            rec(16, 0, DdrCmd::Act { bank: 1, row: 7 }),
            rec(20, 1, DdrCmd::Refresh),
        ];
        let rc = recount_channel(&stream);
        assert_eq!(rc.total_acts, 2);
        assert_eq!(rc.total_writes, 1);
        assert_eq!(rc.acts[&(0, 1, 7)], 2);
        assert_eq!(rc.writes[&(0, 1, 7)], 1);
    }

    fn tiny_cfg() -> WearConfig {
        WearConfig {
            ranks: 2,
            banks: 4,
            rows: 64,
            row_granularity: 1,
            rows_per_refresh: 8,
            hammer_threshold: 1000,
        }
    }

    #[test]
    fn recount_agrees_with_a_tracker_fed_the_same_commands() {
        let mut w = RowPressure::new(tiny_cfg());
        let mut stream = Vec::new();
        for i in 0..30u64 {
            let (rank, bank, row) = ((i % 2) as usize, (i % 4) as usize, (i % 9) as usize);
            w.on_act(rank, bank, row);
            stream.push(rec(i * 10, rank, DdrCmd::Act { bank, row }));
            if i % 3 == 0 {
                w.on_write(rank, bank, row);
                stream.push(rec(i * 10 + 4, rank, DdrCmd::Wr { bank, row }));
            }
        }
        let rc = recount_channel(&stream);
        check_against_snapshot(&rc, &w.snapshot()).expect("independent recount must agree");
    }

    #[test]
    fn a_dropped_act_is_caught() {
        let mut w = RowPressure::new(tiny_cfg());
        w.on_act(0, 0, 5);
        w.on_act(0, 0, 5);
        let stream = vec![rec(0, 0, DdrCmd::Act { bank: 0, row: 5 })];
        let rc = recount_channel(&stream);
        let err = check_against_snapshot(&rc, &w.snapshot()).unwrap_err();
        assert!(err.contains("total ACT mismatch"), "{err}");
    }

    #[test]
    fn a_misattributed_row_is_caught() {
        let mut w = RowPressure::new(tiny_cfg());
        w.on_act(0, 0, 5);
        w.on_act(0, 0, 6);
        let stream = vec![
            rec(0, 0, DdrCmd::Act { bank: 0, row: 5 }),
            rec(10, 0, DdrCmd::Act { bank: 0, row: 5 }),
        ];
        let rc = recount_channel(&stream);
        let err = check_against_snapshot(&rc, &w.snapshot()).unwrap_err();
        assert!(err.contains("row 5"), "{err}");
    }
}
