//! Differential correctness harness for the Secure DIMM reproduction.
//!
//! The simulator's answers are only as trustworthy as its two hardest
//! layers: the cycle-level DDR3 channel (a dense web of inter-command
//! timing constraints) and the ORAM protocol stack (where a silent
//! data-corruption bug changes nothing about performance curves). This
//! crate checks both *differentially* — with independent
//! implementations that share no code with the models they audit:
//!
//! * [`ddr`] replays the per-channel command stream recorded by
//!   `dram_sim::cmdlog` through a from-scratch constraint table and
//!   reports the first DDR3 protocol violation with full context.
//! * [`oracle`] drives every `accessORAM` protocol in lockstep with a
//!   plain shadow map and re-checks structural invariants (stash bound,
//!   path membership, PosMap coherence, PMMAC counter monotonicity)
//!   from outside.
//! * [`strict`] (feature `audit-strict`) turns any violation into an
//!   immediate abort after dumping the telemetry trace for Perfetto
//!   triage.
//!
//! Both auditors are cheap enough to leave on for quick-scale figure
//! runs (`--audit` on the figure binaries) and run in CI.

#![deny(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod ddr;
pub mod oracle;
pub mod recount;
#[cfg(feature = "audit-strict")]
pub mod strict;

pub use ddr::{violation_recorder, AuditSummary, Constraints, DdrAuditor, Violation};
pub use oracle::{
    check_all_protocols, check_protocol, OracleMismatch, OracleReport, ProtocolKind, ShadowMem,
};
pub use recount::{check_against_snapshot, recount_channel, ActRecount};
