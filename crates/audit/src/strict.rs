//! Strict mode: abort on the first confirmed violation.
//!
//! Compiled only under the `audit-strict` feature. A violation in a
//! long figure run is normally reported and the process exits with a
//! failure code at the end; under strict mode the run stops *at the
//! violation*, after dumping the telemetry trace so the offending
//! cycles can be inspected in Perfetto (`chrome://tracing` works too).

use std::io::Write as _;
use std::process;

use sdimm_telemetry::{FlightRecorder, TraceSink};

/// File the Chrome-format trace is dumped to before aborting.
pub const TRACE_DUMP_PATH: &str = "audit-violation-trace.json";

/// File prefix of the flight-recorder black box written by
/// [`abort_with_blackbox`] (`<prefix>.blackbox.txt` and
/// `<prefix>.trace.json`).
pub const BLACKBOX_DUMP_PREFIX: &str = "audit-violation";

/// Dumps the flight-recorder black box (the violating command plus the
/// history leading up to it — see `ddr::violation_recorder`), then the
/// Chrome trace, then aborts like [`abort_with_trace`].
pub fn abort_with_blackbox(sink: &TraceSink, recorder: &FlightRecorder, violation: &str) -> ! {
    if recorder.is_enabled() && recorder.arm_dump() {
        match recorder.dump_to_files(BLACKBOX_DUMP_PREFIX, violation, 0) {
            Some(Ok((txt, json))) => eprintln!(
                "audit-strict: black box dumped to {txt} (and {json}) — the last lines show the violating command and the state it was issued into"
            ),
            Some(Err(e)) => eprintln!("audit-strict: black-box dump failed: {e}"),
            None => {}
        }
    }
    abort_with_trace(sink, violation)
}

/// Dumps the trace (when the sink is enabled) and aborts the process
/// with the conventional SIGABRT-style exit code.
pub fn abort_with_trace(sink: &TraceSink, violation: &str) -> ! {
    eprintln!("audit-strict: {violation}");
    match sink.export_chrome_json() {
        Some(json) => match std::fs::File::create(TRACE_DUMP_PATH)
            .and_then(|mut f| f.write_all(json.as_bytes()))
        {
            Ok(()) => eprintln!(
                "audit-strict: trace dumped to {TRACE_DUMP_PATH} — open in Perfetto to inspect the cycles around the violation"
            ),
            Err(e) => eprintln!("audit-strict: failed to write {TRACE_DUMP_PATH}: {e}"),
        },
        None => eprintln!(
            "audit-strict: tracing disabled; re-run with --trace-json to capture the cycles around the violation"
        ),
    }
    // Sanctioned exit: strict mode exists to abort at the violation.
    #[allow(clippy::disallowed_methods)]
    process::exit(134);
}
