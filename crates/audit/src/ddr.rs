//! DDR protocol compliance auditor, parameterized by memory standard.
//!
//! An independent replay checker for the per-channel command stream
//! captured by `dram_sim::cmdlog::CmdLog`. The auditor rebuilds bank,
//! rank, and data-bus state from nothing but the command records and its
//! own [`Constraints`] table, and re-validates every inter-command
//! constraint the scheduler is supposed to respect: tRCD, tRP, tRAS,
//! tRC, tRRD (short and, on bank-grouped standards, tRRD_L), the tFAW
//! sliding window, tCCD / tCCD_L, tWTR, tRTP, tRFC and the tREFI
//! budget, data-bus burst occupancy, rank-to-rank switch time, and
//! read/write bus turnaround.
//!
//! The constraint table is always derived from the **run's own**
//! [`ChannelConfig`] (standard, bank-group geometry, timing), never from
//! a hardcoded DDR3 table, so every memory standard the engine gains is
//! independently re-validated by the same replay logic.
//!
//! It deliberately shares **no** timing bookkeeping with the channel
//! model: where `DramChannel` derives "earliest legal cycle" values
//! forward as it schedules, the auditor derives the same constraints
//! backward from the emitted commands. A bookkeeping bug on either side
//! shows up as a disagreement — that is the differential in
//! "differential correctness harness".

use std::collections::VecDeque;
use std::fmt;

use dram_sim::cmdlog::{CmdRecord, DdrCmd};
use dram_sim::config::{ChannelConfig, Cycle, Timing};
use sdimm_telemetry::FlightRecorder;

/// The auditor's own copy of the inter-command constraint table.
///
/// Values are copied field-by-field from the channel's [`Timing`] at
/// construction so the two sides agree on the *parameters* while
/// disagreeing on the *derivation*. The bus direction-turnaround penalty
/// is hardcoded here because the channel keeps it as a private constant;
/// if the channel's value drifts from this one, clean streams will fail
/// the bus checks — which is the point.
#[derive(Debug, Clone)]
pub struct Constraints {
    /// CAS (read) latency: RD command to first data beat.
    pub cl: Cycle,
    /// CAS write latency: WR command to first data beat.
    pub cwl: Cycle,
    /// ACT to RD/WR, same bank.
    pub t_rcd: Cycle,
    /// PRE to ACT, same bank.
    pub t_rp: Cycle,
    /// ACT to PRE, same bank.
    pub t_ras: Cycle,
    /// ACT to ACT, same bank.
    pub t_rc: Cycle,
    /// ACT to ACT, same rank (short / cross-bank-group spacing).
    pub t_rrd: Cycle,
    /// ACT to ACT, same bank group (long spacing; equals
    /// [`t_rrd`](Self::t_rrd) on standards without bank groups).
    pub t_rrd_l: Cycle,
    /// Four-activate window, same rank.
    pub t_faw: Cycle,
    /// End of write burst to PRE, same bank (write recovery).
    pub t_wr: Cycle,
    /// End of write burst to RD, same rank.
    pub t_wtr: Cycle,
    /// RD to PRE, same bank.
    pub t_rtp: Cycle,
    /// CAS to CAS, same rank (short / cross-bank-group spacing).
    pub t_ccd: Cycle,
    /// CAS to CAS, same bank group (long spacing; equals
    /// [`t_ccd`](Self::t_ccd) on standards without bank groups).
    pub t_ccd_l: Cycle,
    /// Data burst duration.
    pub t_burst: Cycle,
    /// Dead time between bursts of different ranks.
    pub t_rtrs: Cycle,
    /// Average refresh interval per rank.
    pub t_refi: Cycle,
    /// Refresh cycle time.
    pub t_rfc: Cycle,
    /// Power-down exit latency.
    pub t_xp: Cycle,
    /// Bank groups per rank (1 for group-less standards). Banks are
    /// assigned to groups by contiguous index blocks, mirroring
    /// `dram_sim::config::Topology::banks_per_group`.
    pub bank_groups: usize,
    /// Dead time between bursts of opposite directions (read↔write).
    /// Independent copy of the channel's private `BUS_TURNAROUND`.
    pub bus_turnaround: Cycle,
    /// Whether periodic refresh is expected (enables the tREFI budget
    /// check in [`DdrAuditor::finish`]).
    pub refresh_expected: bool,
}

impl Constraints {
    /// Builds the constraint table for a channel configuration: the
    /// run's own standard, timing, and bank-group geometry. This is the
    /// only construction path audit captures use, so a run on DDR4 is
    /// checked against DDR4's table — never a stale DDR3 default.
    pub fn from_config(cfg: &ChannelConfig) -> Self {
        let mut cons = Constraints::from_timing(&cfg.timing, cfg.refresh_enabled);
        cons.bank_groups = cfg.topology.bank_groups.max(1);
        cons
    }

    /// Builds the constraint table from raw timing parameters, with a
    /// single (group-less) bank group. Prefer
    /// [`from_config`](Self::from_config), which also carries the
    /// topology's bank-group geometry.
    pub fn from_timing(t: &Timing, refresh_expected: bool) -> Self {
        Constraints {
            cl: t.cl,
            cwl: t.cwl,
            t_rcd: t.t_rcd,
            t_rp: t.t_rp,
            t_ras: t.t_ras,
            t_rc: t.t_rc,
            t_rrd: t.t_rrd,
            t_rrd_l: t.t_rrd_l,
            t_faw: t.t_faw,
            t_wr: t.t_wr,
            t_wtr: t.t_wtr,
            t_rtp: t.t_rtp,
            t_ccd: t.t_ccd,
            t_ccd_l: t.t_ccd_l,
            t_burst: t.t_burst,
            t_rtrs: t.t_rtrs,
            t_refi: t.t_refi,
            t_rfc: t.t_rfc,
            t_xp: t.t_xp,
            bank_groups: 1,
            bus_turnaround: 2,
            refresh_expected,
        }
    }
}

/// A constraint violation, reported with enough context to reproduce:
/// which rule, at which cycle, on which rank, and the actual-vs-required
/// arithmetic in `detail`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// JEDEC parameter or structural rule that was broken (e.g. `"tFAW"`,
    /// `"bus-overlap"`, `"cmd-bus"`).
    pub rule: &'static str,
    /// Cycle of the offending command.
    pub cycle: Cycle,
    /// Rank the offending command targeted.
    pub rank: usize,
    /// Human-readable actual-vs-required context.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] cycle {} rank {}: {}", self.rule, self.cycle, self.rank, self.detail)
    }
}

impl std::error::Error for Violation {}

/// Aggregate counts over an audited stream (returned on success so
/// callers can assert the audit actually saw traffic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditSummary {
    /// Total records fed.
    pub commands: u64,
    /// Row activations.
    pub acts: u64,
    /// Precharges.
    pub pres: u64,
    /// Column reads.
    pub reads: u64,
    /// Column writes.
    pub writes: u64,
    /// Rank refreshes.
    pub refreshes: u64,
    /// Power-down entries and exits.
    pub power_transitions: u64,
    /// Cycle of the last record.
    pub last_cycle: Cycle,
}

/// Per-bank replay state.
#[derive(Debug, Clone, Default)]
struct BankState {
    open_row: Option<usize>,
    last_act: Option<Cycle>,
    last_pre: Option<Cycle>,
    last_rd: Option<Cycle>,
    /// Cycle of the last WR command (the write-recovery bound is derived
    /// from it as `wr + cwl + t_burst + t_wr`).
    last_wr: Option<Cycle>,
}

/// Per-rank replay state.
#[derive(Debug, Clone)]
struct RankState {
    banks: Vec<BankState>,
    /// Issue cycles of up to the last four ACTs (tFAW window).
    acts: VecDeque<Cycle>,
    last_act: Option<Cycle>,
    last_cas: Option<Cycle>,
    /// Last ACT per bank group (tRRD_L reference points).
    group_last_act: Vec<Option<Cycle>>,
    /// Last CAS per bank group (tCCD_L reference points).
    group_last_cas: Vec<Option<Cycle>>,
    /// End of the last write data burst (tWTR reference point).
    wr_data_end: Option<Cycle>,
    /// Earliest cycle any command is legal (tRFC after refresh, tXP after
    /// power-up) — the auditor's reconstruction of the rank `ready_at`.
    ready: Cycle,
    powered_down: bool,
    refreshes: u64,
}

impl RankState {
    fn new(banks: usize, groups: usize) -> Self {
        RankState {
            banks: vec![BankState::default(); banks],
            acts: VecDeque::with_capacity(4),
            last_act: None,
            last_cas: None,
            group_last_act: vec![None; groups],
            group_last_cas: vec![None; groups],
            wr_data_end: None,
            ready: 0,
            powered_down: false,
            refreshes: 0,
        }
    }
}

/// The last data-bus burst: when it ends, who owned it, its direction.
#[derive(Debug, Clone, Copy)]
struct Burst {
    end: Cycle,
    rank: usize,
    write: bool,
}

/// Streaming DDR compliance checker. Feed records in issue order; the
/// first violation is returned as an `Err` and the auditor refuses
/// further input (its state is no longer meaningful past a violation).
#[derive(Debug)]
pub struct DdrAuditor {
    cons: Constraints,
    /// Banks per bank group (contiguous index blocks, mirroring the
    /// engine's `Topology::banks_per_group`).
    banks_per_group: usize,
    ranks: Vec<RankState>,
    last_burst: Option<Burst>,
    /// Cycle of the last command-bus command (1 command/cycle check; CKE
    /// transitions are not command-bus traffic and are exempt).
    last_cmd_cycle: Option<Cycle>,
    last_seen: Cycle,
    summary: AuditSummary,
    poisoned: bool,
}

impl DdrAuditor {
    /// A fresh auditor for one channel of `cfg`'s geometry and timing.
    pub fn new(cfg: &ChannelConfig) -> Self {
        DdrAuditor::with_constraints(
            Constraints::from_config(cfg),
            cfg.topology.ranks,
            cfg.topology.banks,
        )
    }

    /// A fresh auditor with an explicit constraint table (tests use this
    /// to sharpen individual constraints).
    ///
    /// # Panics
    ///
    /// Panics if `banks` does not divide evenly into the table's
    /// `bank_groups`.
    pub fn with_constraints(cons: Constraints, ranks: usize, banks: usize) -> Self {
        let groups = cons.bank_groups.max(1);
        assert!(
            banks.is_multiple_of(groups) && banks >= groups,
            "{banks} banks do not split into {groups} bank groups"
        );
        DdrAuditor {
            banks_per_group: banks / groups,
            cons,
            ranks: (0..ranks).map(|_| RankState::new(banks, groups)).collect(),
            last_burst: None,
            last_cmd_cycle: None,
            last_seen: 0,
            summary: AuditSummary::default(),
            poisoned: false,
        }
    }

    /// Validates an entire captured stream and runs the end-of-stream
    /// budget checks.
    pub fn check_stream(
        cfg: &ChannelConfig,
        stream: &[CmdRecord],
    ) -> Result<AuditSummary, Violation> {
        DdrAuditor::check_stream_indexed(cfg, stream).map_err(|(_, v)| v)
    }

    /// [`DdrAuditor::check_stream`], but a violation also carries the
    /// index of the offending record in `stream` — the anchor a
    /// black-box dump ([`violation_recorder`]) needs to slice out the
    /// commands leading up to it. End-of-stream budget violations
    /// (tREFI) anchor to the last record.
    pub fn check_stream_indexed(
        cfg: &ChannelConfig,
        stream: &[CmdRecord],
    ) -> Result<AuditSummary, (usize, Violation)> {
        let mut a = DdrAuditor::new(cfg);
        for (i, rec) in stream.iter().enumerate() {
            if let Err(v) = a.feed(rec) {
                return Err((i, v));
            }
        }
        a.finish().map_err(|v| (stream.len().saturating_sub(1), v))
    }

    fn viol(&self, rule: &'static str, rec: &CmdRecord, detail: String) -> Violation {
        Violation { rule, cycle: rec.cycle, rank: rec.rank, detail }
    }

    /// Checks one command against the replayed state, then applies it.
    ///
    /// # Panics
    ///
    /// Panics if called again after a violation was returned, or if the
    /// record's rank/bank indices exceed the configured geometry.
    pub fn feed(&mut self, rec: &CmdRecord) -> Result<(), Violation> {
        assert!(!self.poisoned, "auditor state is meaningless past the first violation");
        match self.feed_inner(rec) {
            Ok(()) => Ok(()),
            Err(v) => {
                self.poisoned = true;
                Err(v)
            }
        }
    }

    fn feed_inner(&mut self, rec: &CmdRecord) -> Result<(), Violation> {
        if rec.cycle < self.last_seen {
            return Err(self.viol(
                "stream-order",
                rec,
                format!("record at cycle {} after cycle {}", rec.cycle, self.last_seen),
            ));
        }
        self.last_seen = rec.cycle;
        assert!(rec.rank < self.ranks.len(), "rank {} outside geometry", rec.rank);

        // CKE transitions are sideband, not command-bus traffic; every
        // other command occupies the (single) command bus for one cycle.
        let is_cke = matches!(rec.cmd, DdrCmd::PowerDown | DdrCmd::PowerUp);
        if !is_cke {
            if self.last_cmd_cycle == Some(rec.cycle) {
                return Err(self.viol(
                    "cmd-bus",
                    rec,
                    format!("two commands on the command bus in cycle {}", rec.cycle),
                ));
            }
            self.last_cmd_cycle = Some(rec.cycle);
        }

        match rec.cmd {
            DdrCmd::Act { bank, row } => self.check_act(rec, bank, row)?,
            DdrCmd::Pre { bank } => self.check_pre(rec, bank)?,
            DdrCmd::Rd { bank, row } => self.check_cas(rec, bank, row, false)?,
            DdrCmd::Wr { bank, row } => self.check_cas(rec, bank, row, true)?,
            DdrCmd::Refresh => self.check_refresh(rec)?,
            DdrCmd::PowerDown => self.check_power_down(rec)?,
            DdrCmd::PowerUp => self.check_power_up(rec)?,
        }

        self.summary.commands += 1;
        self.summary.last_cycle = rec.cycle;
        Ok(())
    }

    /// Gates shared by every command type: the rank must be awake and
    /// past its refresh/wakeup busy window.
    fn check_rank_gates(&self, rec: &CmdRecord) -> Result<(), Violation> {
        let r = &self.ranks[rec.rank];
        if r.powered_down {
            return Err(self.viol(
                "powered-down",
                rec,
                format!("{:?} issued to a rank in precharge power-down", rec.cmd),
            ));
        }
        if rec.cycle < r.ready {
            // `ready` is only ever advanced by refresh (tRFC) and
            // power-up (tXP); name the rule by the nearer cause.
            let rule = if r.refreshes > 0 { "tRFC/tXP" } else { "tXP" };
            return Err(self.viol(
                rule,
                rec,
                format!("{:?} at {} but rank busy until {}", rec.cmd, rec.cycle, r.ready),
            ));
        }
        Ok(())
    }

    /// Bank-group index of `bank` (banks are grouped in contiguous
    /// blocks, matching the engine's address mapping).
    fn group_of(&self, bank: usize) -> usize {
        bank / self.banks_per_group
    }

    fn check_act(&mut self, rec: &CmdRecord, bank: usize, row: usize) -> Result<(), Violation> {
        self.check_rank_gates(rec)?;
        let c = rec.cycle;
        let cons = self.cons.clone();
        let group = self.group_of(bank);
        {
            let r = &self.ranks[rec.rank];
            let b = &r.banks[bank];
            if let Some(open) = b.open_row {
                return Err(self.viol(
                    "act-open-bank",
                    rec,
                    format!("ACT bank {bank} row {row} while row {open} is open"),
                ));
            }
            if let Some(pre) = b.last_pre {
                if c < pre.saturating_add(cons.t_rp) {
                    return Err(self.viol(
                        "tRP",
                        rec,
                        format!(
                            "ACT bank {bank} at {c}, PRE at {pre}, need ≥ {}",
                            pre.saturating_add(cons.t_rp)
                        ),
                    ));
                }
            }
            if let Some(act) = b.last_act {
                if c < act.saturating_add(cons.t_rc) {
                    return Err(self.viol(
                        "tRC",
                        rec,
                        format!(
                            "ACT bank {bank} at {c}, prior ACT at {act}, need ≥ {}",
                            act.saturating_add(cons.t_rc)
                        ),
                    ));
                }
            }
            if let Some(last) = r.last_act {
                if c < last.saturating_add(cons.t_rrd) {
                    return Err(self.viol(
                        "tRRD",
                        rec,
                        format!(
                            "ACT at {c}, rank's prior ACT at {last}, need ≥ {}",
                            last.saturating_add(cons.t_rrd)
                        ),
                    ));
                }
            }
            if let Some(last) = r.group_last_act[group] {
                if c < last.saturating_add(cons.t_rrd_l) {
                    return Err(self.viol(
                        "tRRD_L",
                        rec,
                        format!(
                            "ACT at {c}, bank group {group}'s prior ACT at {last}, need ≥ {}",
                            last.saturating_add(cons.t_rrd_l)
                        ),
                    ));
                }
            }
            if r.acts.len() == 4 {
                // lint: panic-ok(invariant: len checked)
                let oldest = *r.acts.front().expect("len checked");
                if c < oldest.saturating_add(cons.t_faw) {
                    return Err(self.viol(
                        "tFAW",
                        rec,
                        format!(
                            "5th ACT at {c} inside the four-activate window [{oldest}, {})",
                            oldest.saturating_add(cons.t_faw)
                        ),
                    ));
                }
            }
        }
        let r = &mut self.ranks[rec.rank];
        let b = &mut r.banks[bank];
        b.open_row = Some(row);
        b.last_act = Some(c);
        b.last_rd = None;
        b.last_wr = None;
        r.last_act = Some(c);
        r.group_last_act[group] = Some(c);
        if r.acts.len() == 4 {
            r.acts.pop_front();
        }
        r.acts.push_back(c);
        self.summary.acts += 1;
        Ok(())
    }

    fn check_pre(&mut self, rec: &CmdRecord, bank: usize) -> Result<(), Violation> {
        self.check_rank_gates(rec)?;
        let c = rec.cycle;
        let cons = self.cons.clone();
        {
            let b = &self.ranks[rec.rank].banks[bank];
            if b.open_row.is_none() {
                return Err(self.viol(
                    "pre-idle-bank",
                    rec,
                    format!("PRE to bank {bank} with no open row"),
                ));
            }
            // lint: panic-ok(invariant: open bank has an ACT)
            let act = b.last_act.expect("open bank has an ACT");
            if c < act.saturating_add(cons.t_ras) {
                return Err(self.viol(
                    "tRAS",
                    rec,
                    format!(
                        "PRE bank {bank} at {c}, ACT at {act}, need ≥ {}",
                        act.saturating_add(cons.t_ras)
                    ),
                ));
            }
            if let Some(rd) = b.last_rd {
                if c < rd.saturating_add(cons.t_rtp) {
                    return Err(self.viol(
                        "tRTP",
                        rec,
                        format!(
                            "PRE bank {bank} at {c}, RD at {rd}, need ≥ {}",
                            rd.saturating_add(cons.t_rtp)
                        ),
                    ));
                }
            }
            if let Some(wr) = b.last_wr {
                let bound = wr
                    .saturating_add(cons.cwl)
                    .saturating_add(cons.t_burst)
                    .saturating_add(cons.t_wr);
                if c < bound {
                    return Err(self.viol(
                        "tWR",
                        rec,
                        format!(
                            "PRE bank {bank} at {c}, WR at {wr}, write recovery needs ≥ {bound}"
                        ),
                    ));
                }
            }
        }
        let b = &mut self.ranks[rec.rank].banks[bank];
        b.open_row = None;
        b.last_pre = Some(c);
        self.summary.pres += 1;
        Ok(())
    }

    fn check_cas(
        &mut self,
        rec: &CmdRecord,
        bank: usize,
        row: usize,
        write: bool,
    ) -> Result<(), Violation> {
        self.check_rank_gates(rec)?;
        let c = rec.cycle;
        let cons = self.cons.clone();
        let group = self.group_of(bank);
        let name = if write { "WR" } else { "RD" };
        {
            let r = &self.ranks[rec.rank];
            let b = &r.banks[bank];
            match b.open_row {
                None => {
                    return Err(self.viol(
                        "cas-idle-bank",
                        rec,
                        format!("{name} to bank {bank} with no open row"),
                    ));
                }
                Some(open) if open != row => {
                    return Err(self.viol(
                        "cas-row-mismatch",
                        rec,
                        format!("{name} claims row {row} but row {open} is open in bank {bank}"),
                    ));
                }
                Some(_) => {}
            }
            // lint: panic-ok(invariant: open bank has an ACT)
            let act = b.last_act.expect("open bank has an ACT");
            if c < act.saturating_add(cons.t_rcd) {
                return Err(self.viol(
                    "tRCD",
                    rec,
                    format!(
                        "{name} bank {bank} at {c}, ACT at {act}, need ≥ {}",
                        act.saturating_add(cons.t_rcd)
                    ),
                ));
            }
            if let Some(cas) = r.last_cas {
                if c < cas.saturating_add(cons.t_ccd) {
                    return Err(self.viol(
                        "tCCD",
                        rec,
                        format!(
                            "{name} at {c}, rank's prior CAS at {cas}, need ≥ {}",
                            cas.saturating_add(cons.t_ccd)
                        ),
                    ));
                }
            }
            if let Some(cas) = r.group_last_cas[group] {
                if c < cas.saturating_add(cons.t_ccd_l) {
                    return Err(self.viol(
                        "tCCD_L",
                        rec,
                        format!(
                            "{name} at {c}, bank group {group}'s prior CAS at {cas}, need ≥ {}",
                            cas.saturating_add(cons.t_ccd_l)
                        ),
                    ));
                }
            }
            if !write {
                if let Some(end) = r.wr_data_end {
                    if c < end.saturating_add(cons.t_wtr) {
                        return Err(self.viol(
                            "tWTR",
                            rec,
                            format!(
                                "RD at {c}, write burst ended at {end}, need ≥ {}",
                                end.saturating_add(cons.t_wtr)
                            ),
                        ));
                    }
                }
            }
        }

        // Data-bus occupancy: the burst `[start, end)` must clear the
        // previous burst plus any rank-switch / direction-turnaround
        // dead time.
        let data_latency = if write { cons.cwl } else { cons.cl };
        let start = c.saturating_add(data_latency);
        let end = start.saturating_add(cons.t_burst);
        if let Some(prev) = self.last_burst {
            let mut required = prev.end;
            if prev.rank != rec.rank {
                required = required.saturating_add(cons.t_rtrs);
            }
            if prev.write != write {
                required = required.saturating_add(cons.bus_turnaround);
            }
            if start < required {
                let rule = if start < prev.end {
                    "bus-overlap"
                } else if prev.rank != rec.rank && start < prev.end.saturating_add(cons.t_rtrs) {
                    "tRTRS"
                } else {
                    "bus-turnaround"
                };
                return Err(self.viol(
                    rule,
                    rec,
                    format!(
                        "{name} burst [{start}, {end}) vs previous burst ending {} \
                         (rank {} {}): bus free from {required}",
                        prev.end,
                        prev.rank,
                        if prev.write { "write" } else { "read" },
                    ),
                ));
            }
        }

        self.last_burst = Some(Burst { end, rank: rec.rank, write });
        let r = &mut self.ranks[rec.rank];
        r.last_cas = Some(c);
        r.group_last_cas[group] = Some(c);
        let b = &mut r.banks[bank];
        if write {
            b.last_wr = Some(c);
            r.wr_data_end = Some(end);
            self.summary.writes += 1;
        } else {
            b.last_rd = Some(c);
            self.summary.reads += 1;
        }
        Ok(())
    }

    fn check_refresh(&mut self, rec: &CmdRecord) -> Result<(), Violation> {
        self.check_rank_gates(rec)?;
        {
            let r = &self.ranks[rec.rank];
            if let Some(open) = r.banks.iter().position(|b| b.open_row.is_some()) {
                return Err(self.viol(
                    "refresh-banks-open",
                    rec,
                    format!("REF with bank {open} still open"),
                ));
            }
        }
        let t_rfc = self.cons.t_rfc;
        let r = &mut self.ranks[rec.rank];
        r.ready = r.ready.max(rec.cycle.saturating_add(t_rfc));
        r.refreshes += 1;
        // An auto-refresh precharges internally: ACT timing afterwards is
        // bounded by the rank busy window, not by a PRE record.
        for b in &mut r.banks {
            b.open_row = None;
        }
        self.summary.refreshes += 1;
        Ok(())
    }

    fn check_power_down(&mut self, rec: &CmdRecord) -> Result<(), Violation> {
        {
            let r = &self.ranks[rec.rank];
            if r.powered_down {
                return Err(self.viol("cke", rec, "power-down of a rank already down".into()));
            }
            if let Some(open) = r.banks.iter().position(|b| b.open_row.is_some()) {
                return Err(self.viol(
                    "cke",
                    rec,
                    format!("precharge power-down with bank {open} open"),
                ));
            }
            if rec.cycle < r.ready {
                return Err(self.viol(
                    "cke",
                    rec,
                    format!(
                        "power-down at {} inside rank busy window (until {})",
                        rec.cycle, r.ready
                    ),
                ));
            }
        }
        self.ranks[rec.rank].powered_down = true;
        self.summary.power_transitions += 1;
        Ok(())
    }

    fn check_power_up(&mut self, rec: &CmdRecord) -> Result<(), Violation> {
        {
            let r = &self.ranks[rec.rank];
            if !r.powered_down {
                return Err(self.viol("cke", rec, "power-up of a rank that is not down".into()));
            }
        }
        let t_xp = self.cons.t_xp;
        let r = &mut self.ranks[rec.rank];
        r.powered_down = false;
        r.ready = r.ready.max(rec.cycle.saturating_add(t_xp));
        self.summary.power_transitions += 1;
        Ok(())
    }

    /// End-of-stream checks: the per-rank refresh budget. Over an
    /// observed window of `E` cycles each rank owes roughly `E / tREFI`
    /// refreshes; a small slack absorbs boundary effects (the first
    /// refresh is due a full tREFI in, and the last may still be pending
    /// when capture stops).
    pub fn finish(self) -> Result<AuditSummary, Violation> {
        assert!(!self.poisoned, "auditor state is meaningless past the first violation");
        // lint: literal-ok(the 2 is a window multiplier of tREFI, not a raw timing value)
        if self.cons.refresh_expected && self.summary.last_cycle >= 2 * self.cons.t_refi {
            let owed = self.summary.last_cycle / self.cons.t_refi;
            for (i, r) in self.ranks.iter().enumerate() {
                if r.refreshes + 2 < owed {
                    return Err(Violation {
                        rule: "tREFI",
                        cycle: self.summary.last_cycle,
                        rank: i,
                        detail: format!(
                            "rank refreshed {} times over {} cycles; budget requires ≥ {}",
                            r.refreshes,
                            self.summary.last_cycle,
                            owed - 2
                        ),
                    });
                }
            }
        }
        Ok(self.summary)
    }
}

/// How many commands preceding a violation the black-box keeps by
/// default: enough scheduler history to see the state the offending
/// command was issued into (several full path accesses at quick scale).
pub const BLACKBOX_CONTEXT: usize = 128;

/// Builds a [`FlightRecorder`] holding the violating command (at
/// `index` in `stream`) plus up to `context` preceding commands, in
/// issue order, ready for a black-box dump: pair with
/// [`FlightRecorder::blackbox_report`] or
/// [`FlightRecorder::dump_to_files`], passing the [`Violation`]'s
/// `Display` form as the reason so the report shows the
/// actual-vs-required arithmetic next to the command history.
///
/// Works from the captured stream rather than the live per-cell ring
/// so the context window is guaranteed present even when the cell's
/// own recorder was disabled or had wrapped past the offending window.
pub fn violation_recorder(
    stream: &[CmdRecord],
    channel: u8,
    index: usize,
    context: usize,
) -> FlightRecorder {
    if stream.is_empty() {
        return FlightRecorder::with_capacity(1);
    }
    let end = index.min(stream.len() - 1);
    let start = end.saturating_sub(context);
    let recorder = FlightRecorder::with_capacity(end - start + 1);
    for rec in &stream[start..=end] {
        let rank = rec.rank.min(u8::MAX as usize) as u8;
        recorder.record_at(rec.cycle, rec.cmd.flight_kind(channel, rank));
    }
    recorder.set_clock(stream[end].cycle);
    recorder
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::channel::DramChannel;
    use dram_sim::cmdlog::CmdLog;
    use dram_sim::config::PowerPolicy;
    use dram_sim::spec::DramStandard;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The main-channel config for `standard` with refresh quiesced, so
    /// injected-violation streams never owe the tREFI budget.
    fn quiet_cfg(standard: DramStandard) -> ChannelConfig {
        let mut cfg = ChannelConfig::table2_for(standard);
        cfg.refresh_enabled = false;
        cfg
    }

    /// Constraints always come from a run's `ChannelConfig` — the same
    /// path production audit captures use — never from a bare hardcoded
    /// timing table (regression: the auditor used to pin DDR3-1600
    /// here, so spec drift was invisible to these tests).
    fn cons() -> Constraints {
        Constraints::from_config(&quiet_cfg(DramStandard::Ddr3_1600))
    }

    fn auditor() -> DdrAuditor {
        DdrAuditor::new(&quiet_cfg(DramStandard::Ddr3_1600))
    }

    fn rec(cycle: Cycle, rank: usize, cmd: DdrCmd) -> CmdRecord {
        CmdRecord { cycle, rank, cmd }
    }

    fn feed_all(a: &mut DdrAuditor, recs: &[CmdRecord]) -> Result<(), Violation> {
        for r in recs {
            a.feed(r)?;
        }
        Ok(())
    }

    #[test]
    fn detects_trcd_violation() {
        let mut a = auditor();
        let err = feed_all(
            &mut a,
            &[
                rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                rec(5, 0, DdrCmd::Rd { bank: 0, row: 0 }),
            ],
        )
        .unwrap_err();
        assert_eq!(err.rule, "tRCD", "{err}");
    }

    #[test]
    fn detects_tfaw_violation_but_accepts_legal_fifth_act() {
        // Four ACTs at tRRD spacing, then a 5th inside the tFAW window.
        let bad = [
            rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
            rec(6, 0, DdrCmd::Act { bank: 1, row: 0 }),
            rec(12, 0, DdrCmd::Act { bank: 2, row: 0 }),
            rec(18, 0, DdrCmd::Act { bank: 3, row: 0 }),
            rec(24, 0, DdrCmd::Act { bank: 4, row: 0 }),
        ];
        let err = feed_all(&mut auditor(), &bad).unwrap_err();
        assert_eq!(err.rule, "tFAW", "{err}");

        let mut good = bad;
        good[4].cycle = 32; // exactly tFAW after the oldest
        feed_all(&mut auditor(), &good).expect("5th ACT at tFAW boundary is legal");
    }

    #[test]
    fn detects_bus_overlap_violation() {
        // Two reads in different ranks whose bursts collide.
        let err = feed_all(
            &mut auditor(),
            &[
                rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                rec(1, 1, DdrCmd::Act { bank: 0, row: 0 }),
                rec(11, 0, DdrCmd::Rd { bank: 0, row: 0 }), // burst [22, 26)
                rec(12, 1, DdrCmd::Rd { bank: 0, row: 0 }), // burst [23, 27)
            ],
        )
        .unwrap_err();
        assert_eq!(err.rule, "bus-overlap", "{err}");
    }

    #[test]
    fn detects_rank_switch_and_turnaround_penalties() {
        // Gap clears the burst but not the tRTRS rank-switch dead time.
        let err = feed_all(
            &mut auditor(),
            &[
                rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                rec(1, 1, DdrCmd::Act { bank: 0, row: 0 }),
                rec(11, 0, DdrCmd::Rd { bank: 0, row: 0 }), // burst [22, 26)
                rec(16, 1, DdrCmd::Rd { bank: 0, row: 0 }), // burst [27, 31): ≥26 but <28
            ],
        )
        .unwrap_err();
        assert_eq!(err.rule, "tRTRS", "{err}");

        // Same rank, write after read: the write burst clears the read
        // burst (26 ≥ 26) and tCCD (18 − 11 ≥ 4), but not the 2-cycle
        // direction turnaround. (Read-after-write cannot isolate this
        // rule: tWTR already holds the RD command past the write data.)
        let err = feed_all(
            &mut auditor(),
            &[
                rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                rec(11, 0, DdrCmd::Rd { bank: 0, row: 0 }), // burst [22, 26)
                rec(18, 0, DdrCmd::Wr { bank: 0, row: 0 }), // burst [26, 30) < 26+2
            ],
        )
        .unwrap_err();
        assert_eq!(err.rule, "bus-turnaround", "{err}");
    }

    #[test]
    fn detects_trrd_violation() {
        let err = feed_all(
            &mut auditor(),
            &[
                rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                rec(3, 0, DdrCmd::Act { bank: 1, row: 0 }),
            ],
        )
        .unwrap_err();
        assert_eq!(err.rule, "tRRD", "{err}");
    }

    #[test]
    fn detects_trp_and_tras_violations() {
        let err = feed_all(
            &mut auditor(),
            &[
                rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                rec(28, 0, DdrCmd::Pre { bank: 0 }),
                rec(35, 0, DdrCmd::Act { bank: 0, row: 1 }), // tRP: need ≥ 39
            ],
        )
        .unwrap_err();
        assert_eq!(err.rule, "tRP", "{err}");

        let err = feed_all(
            &mut auditor(),
            &[
                rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                rec(20, 0, DdrCmd::Pre { bank: 0 }), // tRAS: need ≥ 28
            ],
        )
        .unwrap_err();
        assert_eq!(err.rule, "tRAS", "{err}");
    }

    #[test]
    fn detects_trc_violation() {
        // DDR3-1600 has tRC == tRAS + tRP, so tRC never binds alone;
        // stretch it to expose the separate check.
        let mut c = cons();
        c.t_rc = 50;
        let mut a = DdrAuditor::with_constraints(c, 8, 8);
        let err = feed_all(
            &mut a,
            &[
                rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                rec(28, 0, DdrCmd::Pre { bank: 0 }),
                rec(39, 0, DdrCmd::Act { bank: 0, row: 1 }), // tRP fine, tRC needs ≥ 50
            ],
        )
        .unwrap_err();
        assert_eq!(err.rule, "tRC", "{err}");
    }

    #[test]
    fn detects_tccd_and_twtr_violations() {
        let err = feed_all(
            &mut auditor(),
            &[
                rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                rec(6, 0, DdrCmd::Act { bank: 1, row: 0 }),
                rec(17, 0, DdrCmd::Rd { bank: 0, row: 0 }),
                rec(19, 0, DdrCmd::Rd { bank: 1, row: 0 }), // tCCD: need ≥ 21
            ],
        )
        .unwrap_err();
        assert_eq!(err.rule, "tCCD", "{err}");

        let err = feed_all(
            &mut auditor(),
            &[
                rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                rec(11, 0, DdrCmd::Wr { bank: 0, row: 0 }), // burst ends 23
                rec(25, 0, DdrCmd::Rd { bank: 0, row: 0 }), // tWTR: need ≥ 29
            ],
        )
        .unwrap_err();
        assert_eq!(err.rule, "tWTR", "{err}");
    }

    #[test]
    fn detects_trtp_and_twr_violations() {
        let err = feed_all(
            &mut auditor(),
            &[
                rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                rec(25, 0, DdrCmd::Rd { bank: 0, row: 0 }),
                rec(29, 0, DdrCmd::Pre { bank: 0 }), // tRAS ok; tRTP needs ≥ 31
            ],
        )
        .unwrap_err();
        assert_eq!(err.rule, "tRTP", "{err}");

        let err = feed_all(
            &mut auditor(),
            &[
                rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                rec(11, 0, DdrCmd::Wr { bank: 0, row: 0 }),
                rec(30, 0, DdrCmd::Pre { bank: 0 }), // write recovery needs ≥ 35
            ],
        )
        .unwrap_err();
        assert_eq!(err.rule, "tWR", "{err}");
    }

    #[test]
    fn detects_structural_violations() {
        // Two commands on the command bus in one cycle.
        let err = feed_all(
            &mut auditor(),
            &[
                rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                rec(0, 1, DdrCmd::Act { bank: 0, row: 0 }),
            ],
        )
        .unwrap_err();
        assert_eq!(err.rule, "cmd-bus", "{err}");

        // ACT to an already-open bank.
        let err = feed_all(
            &mut auditor(),
            &[
                rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                rec(50, 0, DdrCmd::Act { bank: 0, row: 5 }),
            ],
        )
        .unwrap_err();
        assert_eq!(err.rule, "act-open-bank", "{err}");

        // CAS claiming the wrong row.
        let err = feed_all(
            &mut auditor(),
            &[
                rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                rec(11, 0, DdrCmd::Rd { bank: 0, row: 9 }),
            ],
        )
        .unwrap_err();
        assert_eq!(err.rule, "cas-row-mismatch", "{err}");

        // Refresh with an open bank.
        let err = feed_all(
            &mut auditor(),
            &[rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }), rec(50, 0, DdrCmd::Refresh)],
        )
        .unwrap_err();
        assert_eq!(err.rule, "refresh-banks-open", "{err}");
    }

    #[test]
    fn detects_refresh_and_power_gates() {
        // ACT during tRFC.
        let err = feed_all(
            &mut auditor(),
            &[rec(100, 0, DdrCmd::Refresh), rec(150, 0, DdrCmd::Act { bank: 0, row: 0 })],
        )
        .unwrap_err();
        assert_eq!(err.rule, "tRFC/tXP", "{err}");

        // Command to a powered-down rank, then an ACT inside tXP.
        let err = feed_all(
            &mut auditor(),
            &[rec(10, 0, DdrCmd::PowerDown), rec(15, 0, DdrCmd::Act { bank: 0, row: 0 })],
        )
        .unwrap_err();
        assert_eq!(err.rule, "powered-down", "{err}");

        let err = feed_all(
            &mut auditor(),
            &[
                rec(10, 0, DdrCmd::PowerDown),
                rec(20, 0, DdrCmd::PowerUp),
                rec(25, 0, DdrCmd::Act { bank: 0, row: 0 }), // tXP: need ≥ 40
            ],
        )
        .unwrap_err();
        assert_eq!(err.rule, "tXP", "{err}");
    }

    #[test]
    fn refresh_budget_enforced_at_finish() {
        let mut c = cons();
        c.refresh_expected = true;
        let mut a = DdrAuditor::with_constraints(c.clone(), 8, 8);
        let horizon = 3 * c.t_refi;
        feed_all(
            &mut a,
            &[
                rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                rec(11, 0, DdrCmd::Rd { bank: 0, row: 0 }),
                rec(horizon, 0, DdrCmd::Pre { bank: 0 }),
            ],
        )
        .unwrap();
        let err = a.finish().unwrap_err();
        assert_eq!(err.rule, "tREFI", "{err}");
    }

    #[test]
    fn indexed_check_anchors_the_offending_record() {
        // A long legal prelude (paired ACT/RD/PRE per bank at generous
        // spacing), then one tRCD violation at the end.
        let mut stream = Vec::new();
        let mut c: Cycle = 0;
        for i in 0..40u64 {
            let bank = (i % 8) as usize;
            stream.push(rec(c, 0, DdrCmd::Act { bank, row: 1 }));
            stream.push(rec(c + 12, 0, DdrCmd::Rd { bank, row: 1 }));
            stream.push(rec(c + 40, 0, DdrCmd::Pre { bank }));
            c += 60;
        }
        stream.push(rec(c, 0, DdrCmd::Act { bank: 0, row: 2 }));
        stream.push(rec(c + 3, 0, DdrCmd::Rd { bank: 0, row: 2 })); // tRCD
        let cfg = ChannelConfig::table2();
        let (idx, v) = DdrAuditor::check_stream_indexed(&cfg, &stream).unwrap_err();
        assert_eq!(v.rule, "tRCD", "{v}");
        assert_eq!(idx, stream.len() - 1, "violation anchors the offending record");
        assert_eq!(stream[idx].cycle, v.cycle);

        // The black box holds the violating command plus at least 64
        // predecessors, oldest first with monotonic timestamps.
        let recorder = violation_recorder(&stream, 3, idx, BLACKBOX_CONTEXT);
        let events = recorder.events();
        assert!(events.len() >= 65, "expected ≥64 predecessors, got {}", events.len() - 1);
        assert!(events.windows(2).all(|w| w[0].ts <= w[1].ts), "dump must be oldest-first");
        // lint: panic-ok(invariant: non-empty stream yields events)
        assert_eq!(events.last().expect("non-empty").ts, v.cycle);
        let report = recorder.blackbox_report(&v.to_string()).unwrap();
        assert!(report.contains("tRCD"), "reason line carries the rule:\n{report}");
        assert!(report.contains(&format!("cycle {:>12}", v.cycle)), "violating cmd present");
    }

    #[test]
    fn clean_mixed_traffic_stream_passes() {
        // A real channel under random mixed traffic, refresh enabled:
        // the captured stream must replay with zero violations.
        let cfg = ChannelConfig::table2();
        let mut ch = DramChannel::new(cfg.clone());
        let log = CmdLog::enabled();
        ch.set_cmd_log(log.clone());
        let mut rng = StdRng::seed_from_u64(42);
        let lines = cfg.topology.capacity_lines() as u64;
        for _ in 0..40 {
            for _ in 0..24 {
                let addr = rng.gen_range(0..lines / 64) * 64 * 64;
                if rng.gen_bool(0.4) {
                    let _ = ch.enqueue_write(addr);
                } else {
                    let _ = ch.enqueue_read(addr);
                }
            }
            ch.tick(2_000);
            let _ = ch.drain_completions();
        }
        let _ = ch.run_until_idle(100_000);
        let stream = log.take();
        assert!(stream.len() > 500, "expected real traffic, got {} records", stream.len());
        let summary = DdrAuditor::check_stream(&cfg, &stream)
            .unwrap_or_else(|v| panic!("clean stream flagged: {v}"));
        assert!(summary.refreshes > 0, "refresh-enabled run should refresh");
        assert!(summary.reads > 0 && summary.writes > 0);
    }

    #[test]
    fn clean_power_down_stream_passes() {
        // Rank power-down entries/exits interleaved with bursts of work.
        let mut cfg = ChannelConfig::table2();
        cfg.power_policy = PowerPolicy::PowerDown { idle_cycles: 300 };
        let mut ch = DramChannel::new(cfg.clone());
        let log = CmdLog::enabled();
        ch.set_cmd_log(log.clone());
        ch.force_rank_down(3);
        let mut rng = StdRng::seed_from_u64(7);
        let rank_stride = (cfg.topology.row_bytes * cfg.topology.banks) as u64;
        for burst in 0..12 {
            for _ in 0..8 {
                let rank = rng.gen_range(0..cfg.topology.ranks) as u64;
                let addr = rank * rank_stride + rng.gen_range(0..128u64) * 64;
                let _ = ch.enqueue_read(addr);
            }
            if burst == 5 {
                ch.wake_rank(3);
            }
            ch.tick(3_000);
            let _ = ch.drain_completions();
        }
        let _ = ch.run_until_idle(200_000);
        let stream = log.take();
        let summary = DdrAuditor::check_stream(&cfg, &stream)
            .unwrap_or_else(|v| panic!("clean power-down stream flagged: {v}"));
        assert!(summary.power_transitions > 0, "expected power-down activity");
    }

    #[test]
    fn clean_early_cycle_stream_passes() {
        // Traffic from cycle 0 exercises the bus-constraint boundary where
        // `bus_free` is below the data latency.
        let mut cfg = ChannelConfig::table2();
        cfg.refresh_enabled = false;
        let mut ch = DramChannel::new(cfg.clone());
        let log = CmdLog::enabled();
        ch.set_cmd_log(log.clone());
        for i in 0..6u64 {
            let addr = i * cfg.topology.row_bytes as u64;
            if i % 2 == 0 {
                ch.enqueue_write(addr).unwrap();
            } else {
                ch.enqueue_read(addr).unwrap();
            }
        }
        let done = ch.run_until_idle(20_000);
        assert_eq!(done.len(), 6);
        DdrAuditor::check_stream(&cfg, &log.take())
            .unwrap_or_else(|v| panic!("early-cycle stream flagged: {v}"));
    }

    #[test]
    fn auditor_follows_the_runs_channel_config() {
        // One stream, two configs: legal under DDR3-1600 (no bank
        // groups), illegal under DDR4-2400 where banks 0 and 1 share a
        // group and the reads sit closer than tCCD_L. A hardcoded DDR3
        // constraint table would wave both through — this pins the
        // auditor to the run's own `ChannelConfig`.
        let stream = [
            rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
            rec(6, 0, DdrCmd::Act { bank: 1, row: 0 }),
            rec(23, 0, DdrCmd::Rd { bank: 0, row: 0 }),
            rec(27, 0, DdrCmd::Rd { bank: 1, row: 0 }),
        ];
        DdrAuditor::check_stream(&quiet_cfg(DramStandard::Ddr3_1600), &stream)
            .expect("stream is legal under DDR3-1600");
        let err =
            DdrAuditor::check_stream(&quiet_cfg(DramStandard::Ddr4_2400), &stream).unwrap_err();
        assert_eq!(err.rule, "tCCD_L", "{err}");
    }

    #[test]
    fn injected_violations_caught_on_every_spec() {
        // The classic one-cycle-early probes, re-derived from each
        // spec's own timing table instead of hardcoded DDR3 cycles.
        for standard in [
            DramStandard::Ddr3_1600,
            DramStandard::Ddr4_2400,
            DramStandard::Lpddr4_3200,
            DramStandard::Hbm2,
        ] {
            let cfg = quiet_cfg(standard);
            let t = cfg.timing.clone();
            let groups = cfg.topology.bank_groups;
            let bpg = cfg.topology.banks_per_group();
            // A bank outside bank 0's group where groups exist, so the
            // short (cross-group) spacing is what binds.
            let other = if groups > 1 { bpg } else { 1 };
            let expect = |recs: &[CmdRecord], rule: &str| {
                let err = feed_all(&mut DdrAuditor::new(&cfg), recs).unwrap_err();
                assert_eq!(err.rule, rule, "{}: {err}", standard.name());
            };

            // tRCD: CAS one cycle before the activate-to-CAS latency.
            expect(
                &[
                    rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                    rec(t.t_rcd - 1, 0, DdrCmd::Rd { bank: 0, row: 0 }),
                ],
                "tRCD",
            );

            // tRRD: same-rank ACT pair one cycle inside the short spacing.
            expect(
                &[
                    rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                    rec(t.t_rrd - 1, 0, DdrCmd::Act { bank: other, row: 0 }),
                ],
                "tRRD",
            );

            // tRRD_L: same-group pair past tRRD but short of tRRD_L.
            // Only separable where the long spacing exceeds the short.
            if groups > 1 && t.t_rrd_l > t.t_rrd {
                expect(
                    &[
                        rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                        rec(t.t_rrd_l - 1, 0, DdrCmd::Act { bank: 1, row: 0 }),
                    ],
                    "tRRD_L",
                );
            }

            // tFAW: four tRRD-spaced ACTs (rotating bank groups so only
            // the short spacing binds), then a 5th one cycle inside the
            // window. Only separable from tRRD when tFAW exceeds four
            // short spacings — LPDDR4's tFAW = 4·tRRD binds exactly, so
            // no 5th ACT can be tRRD-legal yet tFAW-illegal there.
            if t.t_faw > 4 * t.t_rrd {
                let banks: [usize; 5] =
                    if groups > 1 { [0, bpg, 2 * bpg, 3 * bpg, 1] } else { [0, 1, 2, 3, 4] };
                let mut recs: Vec<CmdRecord> = banks[..4]
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| rec(i as Cycle * t.t_rrd, 0, DdrCmd::Act { bank: b, row: 0 }))
                    .collect();
                recs.push(rec(t.t_faw - 1, 0, DdrCmd::Act { bank: banks[4], row: 0 }));
                expect(&recs, "tFAW");
            }

            // tCCD: reads in different groups one cycle inside the short
            // CAS-to-CAS spacing (tCCD is checked before the bus rules,
            // so this isolates even where the bursts also collide).
            let act2 = t.t_rrd_l;
            let rd1 = act2 + t.t_rcd;
            expect(
                &[
                    rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                    rec(act2, 0, DdrCmd::Act { bank: other, row: 0 }),
                    rec(rd1, 0, DdrCmd::Rd { bank: 0, row: 0 }),
                    rec(rd1 + t.t_ccd - 1, 0, DdrCmd::Rd { bank: other, row: 0 }),
                ],
                "tCCD",
            );

            // tCCD_L: same-group reads past tCCD but short of tCCD_L.
            if groups > 1 && t.t_ccd_l > t.t_ccd {
                expect(
                    &[
                        rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                        rec(act2, 0, DdrCmd::Act { bank: 1, row: 0 }),
                        rec(rd1, 0, DdrCmd::Rd { bank: 0, row: 0 }),
                        rec(rd1 + t.t_ccd_l - 1, 0, DdrCmd::Rd { bank: 1, row: 0 }),
                    ],
                    "tCCD_L",
                );
            }

            // tWTR: read one cycle before the write-to-read gap closes.
            expect(
                &[
                    rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                    rec(t.t_rcd, 0, DdrCmd::Wr { bank: 0, row: 0 }),
                    rec(
                        t.t_rcd + t.cwl + t.t_burst + t.t_wtr - 1,
                        0,
                        DdrCmd::Rd { bank: 0, row: 0 },
                    ),
                ],
                "tWTR",
            );

            // tRAS: precharge one cycle early.
            expect(
                &[
                    rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                    rec(t.t_ras - 1, 0, DdrCmd::Pre { bank: 0 }),
                ],
                "tRAS",
            );

            // tRP: re-activate one cycle before the precharge completes.
            expect(
                &[
                    rec(0, 0, DdrCmd::Act { bank: 0, row: 0 }),
                    rec(t.t_ras, 0, DdrCmd::Pre { bank: 0 }),
                    rec(t.t_ras + t.t_rp - 1, 0, DdrCmd::Act { bank: 0, row: 1 }),
                ],
                "tRP",
            );
        }
    }

    #[test]
    fn clean_streams_replay_on_every_spec() {
        // Engine-vs-auditor differential for every shipped standard: a
        // real channel under random mixed traffic must capture a stream
        // that the independently derived constraint table replays with
        // zero violations.
        for standard in DramStandard::ALL {
            let cfg = ChannelConfig::table2_for(standard);
            let mut ch = DramChannel::new(cfg.clone());
            let log = CmdLog::enabled();
            ch.set_cmd_log(log.clone());
            let mut rng = StdRng::seed_from_u64(0xD1A3 ^ standard as u64);
            let lines = cfg.topology.capacity_lines() as u64;
            let line = cfg.topology.line_bytes as u64;
            for _ in 0..30 {
                for _ in 0..16 {
                    let addr = rng.gen_range(0..lines / 64) * 64 * line;
                    if rng.gen_bool(0.4) {
                        let _ = ch.enqueue_write(addr);
                    } else {
                        let _ = ch.enqueue_read(addr);
                    }
                }
                ch.tick(2_000);
                let _ = ch.drain_completions();
            }
            let _ = ch.run_until_idle(200_000);
            let stream = log.take();
            assert!(stream.len() > 300, "{}: thin stream ({})", standard.name(), stream.len());
            let summary = DdrAuditor::check_stream(&cfg, &stream)
                .unwrap_or_else(|v| panic!("{}: clean stream flagged: {v}", standard.name()));
            assert!(summary.reads > 0 && summary.writes > 0, "{}", standard.name());
        }
    }
}
