//! Fixture: raw timing literal in a comparison. Scanned as if it lived
//! in `crates/dram`, where L2/timing-literal applies.

/// The `11` here is DDR3-1600 tRCD leaked as a magic number; the
/// simulator and the replay auditor can silently diverge if one of them
/// is edited. L2 requires the named constant from `config.rs`.
pub fn row_ready(elapsed_cycles: u64) -> bool {
    elapsed_cycles >= 11
}
