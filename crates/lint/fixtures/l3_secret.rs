//! Fixture: secret-hygiene violations. Scanned as if it lived in
//! `crates/crypto`, where all three L3 rules apply.

/// Leaks key material through a format site (L3/secret-format), uses
/// `println!` from a library crate (L3/lib-println), and compares MAC
/// tags with `==` (L3/secret-eq — a byte-at-a-time timing oracle).
pub fn verify_and_log(session_key: [u8; 16], tag: &[u8], expected_mac: &[u8]) -> bool {
    println!("derived key = {session_key:?}");
    tag == expected_mac
}
