//! L6 seed: every direct sink kind fed by a built-in secret-name source.
//! Each numbered site below must produce exactly one finding.

pub fn lookup(leaf: u64, table: &[u64]) -> u64 {
    // 1. secret slice index.
    table[leaf as usize]
}

pub fn compare(subkey: u8) -> bool {
    // 2. secret branch condition.
    if subkey == 0x2a {
        return true;
    }
    false
}

pub fn walk(leaf: u64) -> u64 {
    let mut acc = 0;
    // 3. secret range bound: iteration count observable.
    for i in 0..leaf {
        acc += i;
    }
    acc
}

pub fn shard(leaf: u64, ways: u64) -> u64 {
    // 4. secret `%` operand: variable-time on real dividers.
    leaf % ways
}

pub fn trace(leaf_ctr: u64) -> String {
    // 5. secret flows into a format macro through an innocuous rebind
    // (a name-matched ident in the format would be L3's report, not L6's).
    let snapshot = leaf_ctr;
    format!("counter now {snapshot}")
}
