//! L6 fixed/waived copy of `l6_flow.rs`: every site either goes through
//! a constant-time primitive or carries a written invariant. Must be clean.

pub fn lookup(leaf: u64, table: &[u64]) -> u64 {
    // Oblivious scan: every slot is touched, selection is branch-free.
    let mut out = 0;
    for (i, v) in table.iter().enumerate() {
        out = ct_select(ct_eq_u64(i as u64, leaf), *v, out);
    }
    out
}

pub fn compare(subkey: u8) -> bool {
    // Constant-time equality instead of an early-exit branch.
    ct_eq(&[subkey], &[0x2a])
}

pub fn walk(leaf: u64, leaf_count: u64) -> u64 {
    let mut acc = 0;
    // Padded to the public worst case; the secret picks via masking.
    for i in 0..leaf_count {
        acc += ct_select(ct_lt_u64(i, leaf), i, 0);
    }
    acc
}

pub fn shard(leaf: u64, ways: u64) -> u64 {
    // lint: declassify(this shard index is the revealed post-remap path the protocol discloses to memory anyway)
    leaf % ways
}

pub fn trace(leaf_ctr: u64) -> String {
    let snapshot = leaf_ctr;
    // lint: secret-ok(counter value is MACed public metadata in the PMMAC header, not key material)
    format!("counter now {snapshot}")
}

fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    a.iter().zip(b).fold(0u8, |d, (x, y)| d | (x ^ y)) == 0
}

fn ct_eq_u64(a: u64, b: u64) -> u64 {
    let d = a ^ b;
    1 ^ ((d | d.wrapping_neg()) >> 63)
}

fn ct_lt_u64(a: u64, b: u64) -> u64 {
    ((a ^ ((a ^ b) | ((a.wrapping_sub(b)) ^ b))) >> 63) & 1
}

fn ct_select(flag: u64, yes: u64, no: u64) -> u64 {
    let mask = flag.wrapping_neg();
    (yes & mask) | (no & !mask)
}
