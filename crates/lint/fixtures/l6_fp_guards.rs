//! L6 false-positive guards: every function here looks superficially
//! leaf-flavoured but is public by convention or by the length policy.
//! The whole file must scan clean.

pub fn dummy_path(dummy_leaf: u64, table: &[u64]) -> u64 {
    // `dummy_` prefix: freshly drawn decoy traffic, public by construction.
    table[dummy_leaf as usize]
}

pub fn revealed_path(revealed_leaf: u64) -> u64 {
    // `revealed_` prefix: the once-per-access protocol disclosure.
    let mut acc = 0;
    for i in 0..revealed_leaf {
        acc += i;
    }
    acc
}

pub fn fan_out(num_leaves: u64, local_leaves: u64) -> u64 {
    // `*_leaves` counts are geometry, not positions.
    num_leaves / local_leaves
}

pub fn occupancy(stash: &[u64]) -> usize {
    // Length policy: sizes are public (occupancy leakage is the dynamic
    // observatory's job, not the static pass's).
    if stash.len() > 32 {
        return 32;
    }
    stash.len()
}

pub fn scan_all(leaves: &[u64]) -> u64 {
    // Iterating a secret collection runs `len()` times — a public count;
    // `enumerate`'s position counter is public too.
    let mut acc = 0;
    for (i, _l) in leaves.iter().enumerate() {
        acc += i as u64;
    }
    acc
}
