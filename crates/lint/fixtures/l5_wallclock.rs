//! Fixture: wall-clock types in code scanned as if it lived in
//! `crates/leakage`, where L5/wall-clock applies. Both the `use`
//! statement and the call-site path must fire.

use std::time::Instant;

/// A "feature" timed with the host clock: the verdict built on this
/// number differs between hosts and runs, exactly what L5 forbids.
pub fn wallclock_window_seconds() -> f64 {
    let start = std::time::SystemTime::now();
    let _ = start;
    Instant::now().elapsed().as_secs_f64()
}
