//! Fixture: the `l5_wallclock.rs` sites either rewritten onto simulated
//! cycles or explicitly waived. Must scan clean under a `crates/leakage`
//! context.

/// Fixed: the window is measured in simulated cycles carried by the
/// event stream, a pure function of the capture.
pub fn cycle_window(first_cycle: u64, last_cycle: u64) -> u64 {
    last_cycle.saturating_sub(first_cycle)
}

/// Waived: names the type in a diagnostic string builder, never reads a
/// clock. The waiver records why the mention is inert.
pub fn forbidden_type_name() -> &'static str {
    // lint: wallclock-ok(diagnostic constant naming the banned type, no clock is read)
    let name: &str = stringify!(Instant);
    name
}
