//! L6 interprocedural seeds.
//!
//! `one_hop` leaks through a single call: `branch_on` branches on its
//! parameter and the caller feeds it a secret — its intraprocedural
//! summary (computed in round 1) is enough. `two_hop` goes through
//! `relay`, whose signature only absorbs `branch_on`'s param sink in
//! fixpoint round 2; a scan capped at one summary round must miss it.

fn branch_on(x: u64) -> u64 {
    if x > 7 {
        1
    } else {
        0
    }
}

fn relay(v: u64) -> u64 {
    branch_on(v)
}

pub fn one_hop(leaf: u64) -> u64 {
    branch_on(leaf)
}

pub fn two_hop(leaf: u64) -> u64 {
    relay(leaf)
}
