//! Fixture: stderr writes in the telemetry crate (the stderr
//! choke-point crate) must each carry a `print-ok` waiver — both the
//! `eprintln!` macro form and a raw `std::io::stderr()` handle.

pub fn leak_via_macro(done: usize, total: usize) {
    eprintln!("progress {done}/{total}");
}

pub fn leak_via_handle(line: &str) {
    use std::io::Write;
    let mut err = std::io::stderr().lock();
    let _ = write!(err, "{line}");
}
