//! Fixture: the `l3_secret.rs` sites brought into compliance. Must scan
//! clean under a `crates/crypto` context.

/// A stand-in for the workspace's constant-time compare.
fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && a.iter().zip(b).fold(0u8, |d, (x, y)| d | (x ^ y)) == 0
}

/// Fixed: nothing secret reaches the format site (and the print itself
/// carries a waiver for this diagnostic binary-style message), and the
/// tag comparison goes through the constant-time compare.
pub fn verify_and_log(session_key: [u8; 16], tag: &[u8], expected_mac: &[u8]) -> bool {
    let _ = session_key;
    // lint: print-ok(operator-facing status line; no secret is interpolated)
    println!("session established");
    ct_eq(tag, expected_mac)
}
