//! The L3 escape hatch L6 closes: rebind a secret to an innocuous name
//! and the token-level pass loses it, but dataflow follows the value.

pub fn exfil(subkey: &[u8]) -> String {
    let innocuous = subkey;
    format!("{innocuous:?}")
}
