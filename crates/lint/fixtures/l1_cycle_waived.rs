//! Fixture: the `l1_cycle.rs` sites, each resolved the sanctioned way —
//! saturating arithmetic or an explicit `wrap-ok` waiver. Must scan clean.

/// Fixed with saturating arithmetic: overflow clamps to `u64::MAX`
/// ("never ready"), the safe direction for a readiness time.
pub fn next_ready(now: u64, t_rcd: u64) -> u64 {
    now.saturating_add(t_rcd)
}

/// Waived: the caller establishes `deadline >= now` before calling, so
/// the subtraction cannot underflow.
pub fn cycles_left(deadline: u64, now: u64) -> u64 {
    // lint: wrap-ok(caller checks deadline >= now before calling)
    deadline - now
}

/// Fixed accumulator: saturates instead of wrapping the counter.
pub fn accumulate(stalled_cycles: u64, wait: u64) -> u64 {
    stalled_cycles.saturating_add(wait)
}
