//! L0 unused-waiver seeds: a waiver that suppresses nothing and a
//! `// lint: secret` annotation bound to no declaration are both dead
//! security documentation and must be flagged.

pub fn add(a: u64, b: u64) -> u64 {
    // lint: wrap-ok(nothing on this line wraps)
    a + b
}

// lint: secret
pub const WAYS: u64 = 4;
