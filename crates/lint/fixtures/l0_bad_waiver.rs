//! Fixture: malformed waivers (L0/bad-waiver). A waiver that does not
//! parse must be a finding itself, never a silent no-op.

/// Missing the `(reason)` — rejected.
// lint: wrap-ok
pub fn no_reason(now: u64, t_rp: u64) -> u64 {
    now.saturating_add(t_rp)
}

/// Unknown waiver name — rejected.
// lint: trust-me(this is fine)
pub fn unknown_name() {}
