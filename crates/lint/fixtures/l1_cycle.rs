//! Fixture: bare cycle arithmetic that L1/cycle-arith must flag.
//!
//! Scanned by `tests/fixtures.rs` with a synthetic `FileCtx`; never
//! compiled into the workspace.

/// Bare `+` on a JEDEC-family identifier: wraps to "ready immediately"
/// on overflow.
pub fn next_ready(now: u64, t_rcd: u64) -> u64 {
    now + t_rcd
}

/// Bare `-` on cycle identifiers: wraps to "ready in 580M years" when
/// `now` has passed the deadline.
pub fn cycles_left(deadline: u64, now: u64) -> u64 {
    deadline - now
}

/// Bare `+=` accumulator on a cycle-suffixed stat.
pub fn accumulate(mut stalled_cycles: u64, wait: u64) -> u64 {
    stalled_cycles += wait;
    stalled_cycles
}
