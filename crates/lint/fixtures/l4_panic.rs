//! Fixture: crate root missing the deny-unsafe gate (L4/unsafe-attr)
//! plus an unwaivered `unwrap()` in library code (L4/panic-budget).
//! Scanned with `is_crate_root = true` and `FileKind::Lib`.

/// Panics on an empty slice with no stated invariant.
pub fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}
