//! Waived copy of `l3_stderr_chokepoint.rs`: the sanctioned
//! status-line choke point carries an explicit `print-ok` waiver.

pub fn sanctioned_status_line(line: &str) {
    use std::io::Write;
    // lint: print-ok(single sanctioned dashboard status-line writer)
    let mut err = std::io::stderr().lock();
    let _ = write!(err, "\r{line}");
    let _ = err.flush();
}
