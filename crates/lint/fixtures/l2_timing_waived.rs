//! Fixture: the `l2_timing.rs` comparison with the literal either named
//! or waived. Must scan clean under a `crates/dram` context.

/// The named-constant form L2 wants: the number lives in one place.
pub const T_RCD: u64 = 11;

/// Fixed: compares against the named constant, not a magic number.
pub fn row_ready(elapsed_cycles: u64) -> bool {
    elapsed_cycles >= T_RCD
}

/// Waived: a structural bound (queue depth), not a JEDEC timing value.
pub fn queue_pressure(inflight_cycles: u64) -> bool {
    // lint: literal-ok(structural backpressure bound, not a DDR3 timing parameter)
    inflight_cycles > 4096
}
