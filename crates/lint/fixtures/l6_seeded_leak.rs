//! L6 acceptance seed: a `PathOram::access` clone with a deliberately
//! re-introduced secret-dependent shortcut. The branch on the pre-remap
//! leaf is exactly the bug class L6 exists to catch: skipping the path
//! read for "hot" positions correlates bus traffic with the access
//! pattern.

pub struct PosMap {
    leaves: Vec<u64>,
}

impl PosMap {
    fn get_and_remap(&mut self, id: usize, fresh: u64) -> (u64, u64) {
        let old = self.leaves[id];
        self.leaves[id] = fresh;
        (old, fresh)
    }
}

pub struct PathOram {
    posmap: PosMap,
    hot_path: u64,
}

impl PathOram {
    pub fn access(&mut self, id: usize, fresh: u64) -> u64 {
        let (old_leaf, _new_leaf) = self.posmap.get_and_remap(id, fresh);
        // Seeded leak: serving "hot" paths from a cache without touching
        // memory makes the demand pattern visible on the bus.
        if old_leaf == self.hot_path {
            return self.hot_path;
        }
        old_leaf
    }
}
