//! Fixture: the `l4_panic.rs` sites in compliance — the unsafe gate is
//! asserted and the panic site carries its invariant. Must scan clean.

#![deny(unsafe_code)]

/// The waiver states why the panic cannot fire.
pub fn first(v: &[u64]) -> u64 {
    // lint: panic-ok(callers pass the fixed-size ACT window, never empty)
    *v.first().unwrap()
}
