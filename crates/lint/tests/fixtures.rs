//! Fixture-under-test: every lint must fire on its seeded fixture and
//! stay silent on the waivered/fixed copy — plus the self-scan gate:
//! the workspace at HEAD must be clean.

use std::collections::BTreeSet;
use std::path::Path;

use sdimm_lint::scan::{
    find_workspace_root, scan_source, scan_sources, scan_workspace, SourceUnit,
};
use sdimm_lint::{FileCtx, FileKind, Finding};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn ctx(crate_name: &str, kind: FileKind, is_crate_root: bool) -> FileCtx {
    FileCtx { crate_name: crate_name.to_string(), kind, is_crate_root }
}

fn scan(name: &str, ctx: &FileCtx) -> Vec<Finding> {
    scan_source(ctx, &format!("fixtures/{name}"), &fixture(name))
}

fn ids(findings: &[Finding]) -> BTreeSet<&'static str> {
    findings.iter().map(|f| f.lint.id()).collect()
}

#[test]
fn l1_fixture_flags_all_three_sites() {
    let c = ctx("dram", FileKind::Lib, false);
    let found = scan("l1_cycle.rs", &c);
    assert_eq!(ids(&found), BTreeSet::from(["L1/cycle-arith"]), "{found:#?}");
    assert_eq!(found.len(), 3, "`+`, `-`, and `+=` must each fire: {found:#?}");
}

#[test]
fn l1_waived_copy_is_clean() {
    let c = ctx("dram", FileKind::Lib, false);
    let found = scan("l1_cycle_waived.rs", &c);
    assert!(found.is_empty(), "{found:#?}");
}

#[test]
fn l2_fixture_flags_raw_timing_literal() {
    let c = ctx("dram", FileKind::Lib, false);
    let found = scan("l2_timing.rs", &c);
    assert_eq!(ids(&found), BTreeSet::from(["L2/timing-literal"]), "{found:#?}");
}

#[test]
fn l2_is_scoped_to_timing_crates() {
    // The same source in a non-timing crate is not L2's business.
    let c = ctx("telemetry", FileKind::Lib, false);
    let found = scan("l2_timing.rs", &c);
    assert!(found.is_empty(), "{found:#?}");
}

#[test]
fn l2_waived_copy_is_clean() {
    let c = ctx("dram", FileKind::Lib, false);
    let found = scan("l2_timing_waived.rs", &c);
    assert!(found.is_empty(), "{found:#?}");
}

#[test]
fn l3_fixture_flags_format_println_and_eq() {
    let c = ctx("crypto", FileKind::Lib, false);
    let found = scan("l3_secret.rs", &c);
    assert_eq!(
        ids(&found),
        BTreeSet::from(["L3/lib-println", "L3/secret-eq", "L3/secret-format"]),
        "{found:#?}"
    );
}

#[test]
fn l3_waived_copy_is_clean() {
    let c = ctx("crypto", FileKind::Lib, false);
    let found = scan("l3_secret_waived.rs", &c);
    assert!(found.is_empty(), "{found:#?}");
}

#[test]
fn l3_stderr_chokepoint_fires_only_in_telemetry() {
    // In the telemetry crate, both the `eprintln!` macro and a raw
    // `stderr()` handle are lib-println findings…
    let c = ctx("telemetry", FileKind::Lib, false);
    let found = scan("l3_stderr_chokepoint.rs", &c);
    assert_eq!(ids(&found), BTreeSet::from(["L3/lib-println"]), "{found:#?}");
    assert_eq!(found.len(), 2, "macro and handle must each fire: {found:#?}");

    // …while any other library crate keeps `eprintln!` for fatal
    // diagnostics, exactly as before.
    let c = ctx("dram", FileKind::Lib, false);
    let found = scan("l3_stderr_chokepoint.rs", &c);
    assert!(found.is_empty(), "stderr stays legal outside the choke-point crates: {found:#?}");
}

#[test]
fn l3_stderr_chokepoint_waived_copy_is_clean() {
    let c = ctx("telemetry", FileKind::Lib, false);
    let found = scan("l3_stderr_chokepoint_waived.rs", &c);
    assert!(found.is_empty(), "{found:#?}");
}

#[test]
fn l4_fixture_flags_missing_gate_and_unwrap() {
    let c = ctx("fixture", FileKind::Lib, true);
    let found = scan("l4_panic.rs", &c);
    assert_eq!(ids(&found), BTreeSet::from(["L4/panic-budget", "L4/unsafe-attr"]), "{found:#?}");
}

#[test]
fn l4_waived_copy_is_clean() {
    let c = ctx("fixture", FileKind::Lib, true);
    let found = scan("l4_panic_waived.rs", &c);
    assert!(found.is_empty(), "{found:#?}");
}

#[test]
fn l4_panic_budget_exempts_binaries() {
    let c = ctx("fixture", FileKind::Bin, false);
    let found = scan("l4_panic.rs", &c);
    assert!(found.is_empty(), "binaries may unwrap: {found:#?}");
}

#[test]
fn l5_fixture_flags_wallclock_types() {
    let c = ctx("leakage", FileKind::Lib, false);
    let found = scan("l5_wallclock.rs", &c);
    assert_eq!(ids(&found), BTreeSet::from(["L5/wall-clock"]), "{found:#?}");
    assert_eq!(
        found.len(),
        3,
        "`use`, `SystemTime::now`, and `Instant::now` must fire: {found:#?}"
    );
}

#[test]
fn l5_is_scoped_to_wallclock_crates() {
    // The bench crate reads wall clocks for a living; L5 stays silent there.
    let c = ctx("bench", FileKind::Lib, false);
    let found = scan("l5_wallclock.rs", &c);
    assert!(found.is_empty(), "{found:#?}");
}

#[test]
fn l5_waived_copy_is_clean() {
    let c = ctx("leakage", FileKind::Lib, false);
    let found = scan("l5_wallclock_waived.rs", &c);
    assert!(found.is_empty(), "{found:#?}");
}

#[test]
fn bad_waivers_are_findings() {
    let c = ctx("dram", FileKind::Lib, false);
    let found = scan("l0_bad_waiver.rs", &c);
    assert_eq!(ids(&found), BTreeSet::from(["L0/bad-waiver"]), "{found:#?}");
    assert_eq!(found.len(), 2, "missing reason AND unknown name: {found:#?}");
}

#[test]
fn fixtures_seed_at_least_eight_distinct_violations() {
    // Acceptance floor from the issue: >= 8 distinct seeded violations
    // across L1–L4 (plus L0) must be detected.
    let mut all = BTreeSet::new();
    all.extend(ids(&scan("l1_cycle.rs", &ctx("dram", FileKind::Lib, false))));
    all.extend(ids(&scan("l2_timing.rs", &ctx("dram", FileKind::Lib, false))));
    all.extend(ids(&scan("l3_secret.rs", &ctx("crypto", FileKind::Lib, false))));
    all.extend(ids(&scan("l4_panic.rs", &ctx("fixture", FileKind::Lib, true))));
    all.extend(ids(&scan("l5_wallclock.rs", &ctx("leakage", FileKind::Lib, false))));
    all.extend(ids(&scan("l0_bad_waiver.rs", &ctx("dram", FileKind::Lib, false))));
    assert!(all.len() >= 8, "only {} distinct lints seeded: {all:?}", all.len());
}

#[test]
fn l6_fixture_flags_every_sink_kind() {
    let c = ctx("oram", FileKind::Lib, false);
    let found = scan("l6_flow.rs", &c);
    assert_eq!(
        ids(&found),
        BTreeSet::from([
            "L6/secret-branch",
            "L6/secret-index",
            "L6/secret-loop-bound",
            "L6/secret-vartime",
            "L6/secret-format-flow",
        ]),
        "{found:#?}"
    );
    assert_eq!(found.len(), 5, "each seeded sink must fire exactly once: {found:#?}");
}

#[test]
fn l6_is_scoped_to_secret_flow_crates() {
    // The DRAM timing model has no secrets of its own; L6 stays out.
    let c = ctx("dram", FileKind::Lib, false);
    let found = scan("l6_flow.rs", &c);
    assert!(found.is_empty(), "{found:#?}");
}

#[test]
fn l6_waived_copy_is_clean() {
    let c = ctx("oram", FileKind::Lib, false);
    let found = scan("l6_flow_waived.rs", &c);
    assert!(found.is_empty(), "{found:#?}");
}

#[test]
fn l6_one_hop_crosses_the_call_boundary() {
    let c = ctx("oram", FileKind::Lib, false);
    let found = scan("l6_interproc.rs", &c);
    let one_hop: Vec<_> = found
        .iter()
        .filter(|f| f.lint.id() == "L6/secret-arg-sink" && f.excerpt.contains("branch_on(leaf)"))
        .collect();
    assert_eq!(one_hop.len(), 1, "one-hop call-arg sink must fire: {found:#?}");
}

#[test]
fn l6_two_hop_needs_the_summary_fixpoint() {
    // Acceptance criterion: a leak routed through a forwarding function is
    // invisible to a single summary round and caught at the default depth.
    let c = ctx("oram", FileKind::Lib, false);
    let unit = || SourceUnit {
        ctx: c.clone(),
        display: "fixtures/l6_interproc.rs".to_string(),
        src: fixture("l6_interproc.rs"),
    };
    let two_hop = |findings: &[Finding]| {
        findings.iter().filter(|f| f.excerpt.contains("relay(leaf)")).count()
    };

    let shallow = scan_sources(&[unit()], 1);
    assert_eq!(two_hop(&shallow), 0, "one round must miss the two-hop leak: {shallow:#?}");

    let deep = scan_sources(&[unit()], 10);
    assert_eq!(two_hop(&deep), 1, "the fixpoint must catch the two-hop leak: {deep:#?}");
}

#[test]
fn l6_false_positive_guards_stay_silent() {
    let c = ctx("oram", FileKind::Lib, false);
    let found = scan("l6_fp_guards.rs", &c);
    assert!(found.is_empty(), "public-by-convention names must not fire: {found:#?}");
}

#[test]
fn l6_flags_the_seeded_path_oram_leak() {
    // Acceptance criterion: a PathOram::access clone with a reintroduced
    // secret-dependent shortcut must be flagged.
    let c = ctx("oram", FileKind::Lib, false);
    let found = scan("l6_seeded_leak.rs", &c);
    assert!(
        found.iter().any(|f| f.lint.id() == "L6/secret-branch" && f.excerpt.contains("old_leaf")),
        "the hot-path shortcut branch must fire: {found:#?}"
    );
}

#[test]
fn l6_subsumes_the_l3_rebinding_escape() {
    // Rebinding a secret to an innocuous name blinds the token-level L3
    // pass; the flow pass must still follow the value into the format.
    let c = ctx("crypto", FileKind::Lib, false);
    let found = scan("l6_rebinding.rs", &c);
    assert_eq!(ids(&found), BTreeSet::from(["L6/secret-format-flow"]), "{found:#?}");
}

#[test]
fn unused_waivers_and_unbound_annotations_are_findings() {
    let c = ctx("oram", FileKind::Lib, false);
    let found = scan("l0_unused_waiver.rs", &c);
    assert_eq!(ids(&found), BTreeSet::from(["L0/unused-waiver"]), "{found:#?}");
    assert_eq!(found.len(), 2, "stale waiver AND unbound annotation: {found:#?}");
}

#[test]
fn workspace_self_scan_is_clean_at_head() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let report = scan_workspace(&root).expect("workspace scan");
    assert!(report.files_scanned > 80, "suspiciously few files: {}", report.files_scanned);
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.findings.is_empty(),
        "workspace must be lint-clean at HEAD:\n{}",
        rendered.join("\n")
    );
}
