//! `sdimm-lint` — workspace static analysis for the SDIMM reproduction.
//!
//! The differential audit harness (`crates/audit`) catches timing-model and
//! integrity bugs by replaying millions of DDR commands; this crate catches
//! the same bug *classes* at build time, straight from source:
//!
//! * **L1 `cycle-arith`** — bare `-`/`+` (and `-=`/`+=`) on identifiers
//!   with cycle/time naming (`*_cycle`, `*_time`, `*_ready_time`, `now`,
//!   the `t_rcd` timing family) must use `saturating_*`/`checked_*` or
//!   carry a `// lint: wrap-ok(reason)` waiver. The PR-3 `cas_ready_time`
//!   underflow was exactly this pattern.
//! * **L2 `timing-literal`** — inside `crates/dram` and `crates/audit`,
//!   comparisons of cycle-named values against raw integer literals are
//!   forbidden: both the simulator and the replay auditor must read DDR3
//!   timing numbers from `config.rs` constants so they cannot silently
//!   diverge. Waiver: `// lint: literal-ok(reason)`.
//! * **L3 `secret-*`** — key/pad material must not reach `format!`-family
//!   macros, and MAC-tag comparisons in `crates/crypto`/`crates/oram` must
//!   go through the constant-time compare rather than `==`. Library crates
//!   must not use `println!` at all (telemetry is the sanctioned channel).
//!   Waivers: `secret-ok`, `print-ok`.
//! * **L4 `panic-budget`** — every crate root asserts
//!   `#![deny(unsafe_code)]`, and `unwrap()`/`expect()` outside tests and
//!   binaries needs a `// lint: panic-ok(reason)` waiver.
//! * **L5 `wall-clock`** — inside `crates/leakage` (the timing-leakage
//!   observatory), wall-clock types (`Instant`, `SystemTime`) are
//!   forbidden: distinguishability verdicts must be a pure function of
//!   simulated cycles so the gate is bit-reproducible across hosts.
//!   Waiver: `// lint: wallclock-ok(reason)`.
//!
//! * **L6 `secret-*` dataflow** — an interprocedural taint analysis over
//!   the protocol crates (`crypto`, `oram`, `core`, `system`): secret
//!   values (key material, leaf labels, PosMap contents, PMMAC counters,
//!   `// lint: secret`-annotated fields/params) must not reach a branch
//!   condition, slice index, loop bound, `%`/`/` operand, or format macro
//!   without passing through a sanctioned constant-time primitive
//!   (`ct_eq`, `ct_select`, …) or an explicit
//!   `// lint: declassify(reason)` waiver. Unlike L1–L5 this pass parses
//!   function bodies ([`parse`]), propagates taint through let-bindings
//!   and calls ([`flow`]), and computes per-function taint signatures to a
//!   fixpoint over the call graph ([`summary`]) so taint follows helper
//!   functions without per-call-site annotations.
//!
//! The L1–L5 passes run on a flat token stream from the dependency-free
//! [`lexer`]; there is no type information, so the secret/cycle rules are
//! *name-pattern* rules. That is deliberate: the workspace naming
//! conventions are part of the contract these lints enforce. L6 builds a
//! real (if pragmatic) syntax tree on top of the same lexer — still no
//! rustc dependency — and keeps the same convention-driven source naming.

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod flow;
pub mod lexer;
pub mod lints;
pub mod parse;
pub mod scan;
pub mod summary;
pub mod walker;

use std::fmt;

/// Which lint produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// L1: bare arithmetic on cycle-named identifiers.
    CycleArith,
    /// L2: raw integer literal in a DDR3 timing comparison.
    TimingLiteral,
    /// L3: secret-named identifier reaching a format-family macro.
    SecretFormat,
    /// L3: MAC-tag comparison via `==`/`!=` instead of constant-time.
    SecretEq,
    /// L3: `println!`/`print!` in a library crate.
    LibPrintln,
    /// L4: crate root missing `#![deny(unsafe_code)]`.
    UnsafeAttr,
    /// L4: `unwrap()`/`expect()` outside tests without a waiver.
    PanicBudget,
    /// L5: wall-clock type in a cycle-pure crate.
    WallClock,
    /// L6: secret value reaching an `if`/`while`/`match` condition or
    /// scrutinee (control flow observable through timing / command traffic).
    SecretBranch,
    /// L6: secret value used as a slice/array index.
    SecretIndex,
    /// L6: secret value bounding a `for`/`while` loop.
    SecretLoopBound,
    /// L6: secret operand of `%` or `/` (variable-time on real dividers).
    SecretVarTime,
    /// L6: secret value reaching a format-family macro through a rebinding
    /// the token-level L3 pass cannot see.
    SecretFormatFlow,
    /// L6: call argument flowing to a secret sink inside the callee
    /// (reported at the call site via the interprocedural summary).
    SecretArgSink,
    /// Malformed waiver comment (unknown name or empty reason).
    BadWaiver,
    /// Waiver or `// lint: secret` annotation that matches no finding or
    /// declaration — stale suppressions are errors, not lint debt.
    UnusedWaiver,
}

impl Lint {
    /// Short rule id used in diagnostics, e.g. `L1/cycle-arith`.
    pub fn id(self) -> &'static str {
        match self {
            Lint::CycleArith => "L1/cycle-arith",
            Lint::TimingLiteral => "L2/timing-literal",
            Lint::SecretFormat => "L3/secret-format",
            Lint::SecretEq => "L3/secret-eq",
            Lint::LibPrintln => "L3/lib-println",
            Lint::UnsafeAttr => "L4/unsafe-attr",
            Lint::PanicBudget => "L4/panic-budget",
            Lint::WallClock => "L5/wall-clock",
            Lint::SecretBranch => "L6/secret-branch",
            Lint::SecretIndex => "L6/secret-index",
            Lint::SecretLoopBound => "L6/secret-loop-bound",
            Lint::SecretVarTime => "L6/secret-vartime",
            Lint::SecretFormatFlow => "L6/secret-format-flow",
            Lint::SecretArgSink => "L6/secret-arg-sink",
            Lint::BadWaiver => "L0/bad-waiver",
            Lint::UnusedWaiver => "L0/unused-waiver",
        }
    }

    /// The waiver name that suppresses this lint, when one exists.
    pub fn waiver(self) -> Option<&'static str> {
        match self {
            Lint::CycleArith => Some("wrap-ok"),
            Lint::TimingLiteral => Some("literal-ok"),
            Lint::SecretFormat | Lint::SecretEq => Some("secret-ok"),
            Lint::LibPrintln => Some("print-ok"),
            Lint::PanicBudget => Some("panic-ok"),
            Lint::WallClock => Some("wallclock-ok"),
            Lint::SecretBranch
            | Lint::SecretIndex
            | Lint::SecretLoopBound
            | Lint::SecretVarTime
            | Lint::SecretArgSink => Some("declassify"),
            // The format-flow sink subsumes L3 secret-format, so it shares
            // L3's waiver name for call-site ergonomics.
            Lint::SecretFormatFlow => Some("secret-ok"),
            Lint::UnsafeAttr | Lint::BadWaiver | Lint::UnusedWaiver => None,
        }
    }
}

/// One diagnostic, reported in the audit crate's actual-vs-expected style.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub lint: Lint,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// What the lint observed (the "actual").
    pub actual: String,
    /// What the rule requires instead (the "expected").
    pub expected: String,
    /// The offending source line, trimmed, for context.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:{} [{}]", self.file, self.line, self.lint.id())?;
        if !self.excerpt.is_empty() {
            writeln!(f, "    source:   {}", self.excerpt)?;
        }
        writeln!(f, "    actual:   {}", self.actual)?;
        write!(f, "    expected: {}", self.expected)
    }
}

/// How a scanned file participates in the lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`src/**`, not `src/bin`).
    Lib,
    /// Binary target source (`src/bin/**`, `src/main.rs`, examples).
    Bin,
}

/// Per-file lint context.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Crate directory name (`dram`, `crypto`, …), `tests`, or `examples`.
    pub crate_name: String,
    /// Library or binary source.
    pub kind: FileKind,
    /// Whether this file is a crate root (`src/lib.rs` / `src/main.rs`)
    /// where `#![deny(unsafe_code)]` is asserted.
    pub is_crate_root: bool,
}

/// Crates whose `src` is pure library code: `println!` is forbidden there
/// (L3) and `unwrap()`/`expect()` needs a waiver (L4). `bench` is the
/// reporting/CLI crate and `tests`/`examples` are test scaffolding, so
/// they are deliberately absent.
pub const LIBRARY_CRATES: &[&str] = &[
    "analytic",
    "audit",
    "core",
    "crypto",
    "dram",
    "leakage",
    "lint",
    "oram",
    "system",
    "telemetry",
    "workloads",
];

/// Crates bound by L2 (timing comparisons must reference config
/// constants): the DDR3 simulator and its independent replay auditor.
pub const TIMING_CRATES: &[&str] = &["dram", "audit"];

/// Crates bound by the L3 constant-time tag-comparison rule.
pub const SECRET_EQ_CRATES: &[&str] = &["crypto", "oram"];

/// Crates bound by L5 (no wall-clock types): the timing-leakage
/// observatory, whose verdicts must depend only on simulated cycles.
pub const WALLCLOCK_CRATES: &[&str] = &["leakage"];

/// Crates bound by L6 (interprocedural secret-taint analysis): everything
/// on the request path whose control flow shapes the attacker-visible
/// command stream. `library` crates like `telemetry`/`bench` never hold
/// secrets, and `dram`/`audit`/`leakage` see only ciphertext addresses.
pub const SECRET_FLOW_CRATES: &[&str] = &["crypto", "oram", "core", "system"];

/// L6 sanitizers: calling one of these (as a free function or method)
/// yields a *public* value no matter how secret the inputs were. They are
/// the constant-time primitives whose output is safe to branch on
/// (`ct_eq` compares without early exit; `ct_select`/oblivious helpers
/// touch both sides).
pub const CT_SANITIZERS: &[&str] =
    &["ct_eq", "ct_select", "ct_lookup", "oblivious_select", "oblivious_swap"];

/// L6 length policy: these accessors return *sizes*, and sizes of secret
/// buffers are public in this model (message and path lengths are fixed by
/// the protocol; occupancy-driven scheduling is the dynamic observatory's
/// beat, DESIGN.md §11). Their results are therefore never tainted.
pub const LEN_CLEAN_METHODS: &[&str] = &["len", "is_empty", "capacity", "count"];

/// True for identifiers that name a point or span in simulated time.
///
/// The pattern family, kept deliberately small and documented in
/// `README.md`: exact `now`/`cycle`/`cycles`/`deadline`, the suffixes
/// `_cycle(s)`, `_time`, `_at`, `_until`, `_wake`, `_deadline`, and the
/// JEDEC `t_*` timing-field family (`t_rcd`, `t_faw`, `t_refi`, …).
pub fn is_cycle_ident(name: &str) -> bool {
    if matches!(name, "now" | "cycle" | "cycles" | "deadline") {
        return true;
    }
    const SUFFIXES: &[&str] =
        &["_cycle", "_cycles", "_time", "_at", "_until", "_wake", "_deadline"];
    if SUFFIXES.iter().any(|s| name.ends_with(s)) {
        return true;
    }
    // t_rcd family: `t_` plus a short lowercase JEDEC mnemonic.
    name.len() <= 8
        && name
            .strip_prefix("t_")
            .is_some_and(|rest| !rest.is_empty() && rest.chars().all(|c| c.is_ascii_lowercase()))
}

/// True for identifiers that, by workspace convention, carry key material
/// or keystream pads. Deliberately specific (`_key`, not bare `key`) so
/// map-key loops in telemetry never false-positive.
pub fn is_secret_ident(name: &str) -> bool {
    const SUFFIXES: &[&str] = &["_key", "_keys", "_pad", "_pads", "_secret", "_keystream"];
    matches!(
        name,
        "master" | "subkey" | "subkeys" | "keystream" | "round_keys" | "rk" | "k1" | "k2"
    ) || SUFFIXES.iter().any(|s| name.ends_with(s))
}

/// True for identifiers that, by workspace convention, carry a Path ORAM
/// leaf/position label — the per-block secret the PosMap protects. Matches
/// exact `leaf`/`leaves` and the `_leaf` suffix, **except** under the
/// `dummy_`/`revealed_`/`public_` prefixes: a dummy-block leaf is drawn
/// fresh per access and a revealed leaf has already been remapped, so both
/// are public by construction (paper §III-B: the old leaf is disclosed
/// once per access *after* the remap). A `_leaves` suffix is NOT matched:
/// `local_leaves`/`global_leaves`/`num_leaves` are leaf *counts* — public
/// geometry parameters, not leaf values (only the bare posmap collection
/// name `leaves` is a source).
pub fn is_leaf_ident(name: &str) -> bool {
    if ["dummy_", "revealed_", "public_"].iter().any(|p| name.starts_with(p)) {
        return false;
    }
    matches!(name, "leaf" | "leaves")
        || name.ends_with("_leaf")
        // Freecursive compressed-PosMap counters reconstruct leaves from
        // (group seed, per-block counter): those counters are leaf-grade
        // secrets. NB: bare `counter` is NOT matched — PMMAC bucket write
        // counters are stored in plaintext by design (pmmac.rs) and public.
        || matches!(name, "leaf_ctr" | "group_ctr" | "posmap_ctr")
}

/// True for identifiers naming MAC tags/digests whose comparison must be
/// constant-time.
pub fn is_tag_ident(name: &str) -> bool {
    matches!(name, "tag" | "tags" | "mac" | "digest")
        || name.ends_with("_tag")
        || name.ends_with("_mac")
        || name.ends_with("_digest")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_pattern_family() {
        for yes in [
            "now",
            "cas_ready_time",
            "busy_until",
            "next_wake",
            "retry_at",
            "idle_cycles",
            "t_rcd",
            "t_faw",
            "t_refi",
            "t_burst",
        ] {
            assert!(is_cycle_ident(yes), "{yes} should be cycle-like");
        }
        for no in ["len", "t_", "t_VeryLongName", "temperature", "activate_nj", "counter", "gap"] {
            assert!(!is_cycle_ident(no), "{no} should not be cycle-like");
        }
    }

    #[test]
    fn secret_pattern_family() {
        for yes in ["enc_key", "mac_key", "round_keys", "k1", "device_secret", "master"] {
            assert!(is_secret_ident(yes), "{yes} should be secret-like");
        }
        // Bare `key`/`pad` are NOT matched: telemetry iterates map keys.
        for no in ["key", "pad", "keypad_row", "monkey", "padding"] {
            assert!(!is_secret_ident(no), "{no} should not be secret-like");
        }
    }

    #[test]
    fn tag_pattern_family() {
        assert!(is_tag_ident("tag"));
        assert!(is_tag_ident("short_tag"));
        assert!(is_tag_ident("link_mac"));
        assert!(!is_tag_ident("tagline"));
        assert!(!is_tag_ident("stage"));
    }

    #[test]
    fn leaf_pattern_family() {
        for yes in ["leaf", "leaves", "old_leaf", "new_leaf", "target_leaf", "leaf_ctr"] {
            assert!(is_leaf_ident(yes), "{yes} should be leaf-like");
        }
        // Dummy/revealed leaves are public by construction; PMMAC bucket
        // write counters are plaintext by design; `*_leaves` names are
        // leaf COUNTS (public geometry parameters).
        for no in [
            "dummy_leaf",
            "revealed_leaf",
            "public_leaf",
            "counter",
            "leafless",
            "level",
            "local_leaves",
            "global_leaves",
            "num_leaves",
        ] {
            assert!(!is_leaf_ident(no), "{no} should not be leaf-like");
        }
    }

    #[test]
    fn every_waivable_lint_has_distinct_docs_name() {
        let names: Vec<&str> = [
            Lint::CycleArith,
            Lint::TimingLiteral,
            Lint::SecretFormat,
            Lint::LibPrintln,
            Lint::PanicBudget,
            Lint::WallClock,
            Lint::SecretBranch,
        ]
        .iter()
        .filter_map(|l| l.waiver())
        .collect();
        assert_eq!(
            names,
            vec![
                "wrap-ok",
                "literal-ok",
                "secret-ok",
                "print-ok",
                "panic-ok",
                "wallclock-ok",
                "declassify"
            ]
        );
        // All L6 dataflow sinks share the declassify waiver except the
        // format-flow sink, which subsumes L3 and shares its waiver.
        for l in
            [Lint::SecretIndex, Lint::SecretLoopBound, Lint::SecretVarTime, Lint::SecretArgSink]
        {
            assert_eq!(l.waiver(), Some("declassify"));
        }
        assert_eq!(Lint::SecretFormatFlow.waiver(), Some("secret-ok"));
        assert_eq!(Lint::UnusedWaiver.waiver(), None);
    }
}
