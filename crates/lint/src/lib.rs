//! `sdimm-lint` — workspace static analysis for the SDIMM reproduction.
//!
//! The differential audit harness (`crates/audit`) catches timing-model and
//! integrity bugs by replaying millions of DDR commands; this crate catches
//! the same bug *classes* at build time, straight from source:
//!
//! * **L1 `cycle-arith`** — bare `-`/`+` (and `-=`/`+=`) on identifiers
//!   with cycle/time naming (`*_cycle`, `*_time`, `*_ready_time`, `now`,
//!   the `t_rcd` timing family) must use `saturating_*`/`checked_*` or
//!   carry a `// lint: wrap-ok(reason)` waiver. The PR-3 `cas_ready_time`
//!   underflow was exactly this pattern.
//! * **L2 `timing-literal`** — inside `crates/dram` and `crates/audit`,
//!   comparisons of cycle-named values against raw integer literals are
//!   forbidden: both the simulator and the replay auditor must read DDR3
//!   timing numbers from `config.rs` constants so they cannot silently
//!   diverge. Waiver: `// lint: literal-ok(reason)`.
//! * **L3 `secret-*`** — key/pad material must not reach `format!`-family
//!   macros, and MAC-tag comparisons in `crates/crypto`/`crates/oram` must
//!   go through the constant-time compare rather than `==`. Library crates
//!   must not use `println!` at all (telemetry is the sanctioned channel).
//!   Waivers: `secret-ok`, `print-ok`.
//! * **L4 `panic-budget`** — every crate root asserts
//!   `#![deny(unsafe_code)]`, and `unwrap()`/`expect()` outside tests and
//!   binaries needs a `// lint: panic-ok(reason)` waiver.
//! * **L5 `wall-clock`** — inside `crates/leakage` (the timing-leakage
//!   observatory), wall-clock types (`Instant`, `SystemTime`) are
//!   forbidden: distinguishability verdicts must be a pure function of
//!   simulated cycles so the gate is bit-reproducible across hosts.
//!   Waiver: `// lint: wallclock-ok(reason)`.
//!
//! The passes run on a flat token stream from the dependency-free
//! [`lexer`]; there is no type information, so the secret/cycle rules are
//! *name-pattern* rules. That is deliberate: the workspace naming
//! conventions are part of the contract these lints enforce.

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod lints;
pub mod scan;
pub mod walker;

use std::fmt;

/// Which lint produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// L1: bare arithmetic on cycle-named identifiers.
    CycleArith,
    /// L2: raw integer literal in a DDR3 timing comparison.
    TimingLiteral,
    /// L3: secret-named identifier reaching a format-family macro.
    SecretFormat,
    /// L3: MAC-tag comparison via `==`/`!=` instead of constant-time.
    SecretEq,
    /// L3: `println!`/`print!` in a library crate.
    LibPrintln,
    /// L4: crate root missing `#![deny(unsafe_code)]`.
    UnsafeAttr,
    /// L4: `unwrap()`/`expect()` outside tests without a waiver.
    PanicBudget,
    /// L5: wall-clock type in a cycle-pure crate.
    WallClock,
    /// Malformed waiver comment (unknown name or empty reason).
    BadWaiver,
}

impl Lint {
    /// Short rule id used in diagnostics, e.g. `L1/cycle-arith`.
    pub fn id(self) -> &'static str {
        match self {
            Lint::CycleArith => "L1/cycle-arith",
            Lint::TimingLiteral => "L2/timing-literal",
            Lint::SecretFormat => "L3/secret-format",
            Lint::SecretEq => "L3/secret-eq",
            Lint::LibPrintln => "L3/lib-println",
            Lint::UnsafeAttr => "L4/unsafe-attr",
            Lint::PanicBudget => "L4/panic-budget",
            Lint::WallClock => "L5/wall-clock",
            Lint::BadWaiver => "L0/bad-waiver",
        }
    }

    /// The waiver name that suppresses this lint, when one exists.
    pub fn waiver(self) -> Option<&'static str> {
        match self {
            Lint::CycleArith => Some("wrap-ok"),
            Lint::TimingLiteral => Some("literal-ok"),
            Lint::SecretFormat | Lint::SecretEq => Some("secret-ok"),
            Lint::LibPrintln => Some("print-ok"),
            Lint::PanicBudget => Some("panic-ok"),
            Lint::WallClock => Some("wallclock-ok"),
            Lint::UnsafeAttr | Lint::BadWaiver => None,
        }
    }
}

/// One diagnostic, reported in the audit crate's actual-vs-expected style.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub lint: Lint,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// What the lint observed (the "actual").
    pub actual: String,
    /// What the rule requires instead (the "expected").
    pub expected: String,
    /// The offending source line, trimmed, for context.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:{} [{}]", self.file, self.line, self.lint.id())?;
        if !self.excerpt.is_empty() {
            writeln!(f, "    source:   {}", self.excerpt)?;
        }
        writeln!(f, "    actual:   {}", self.actual)?;
        write!(f, "    expected: {}", self.expected)
    }
}

/// How a scanned file participates in the lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`src/**`, not `src/bin`).
    Lib,
    /// Binary target source (`src/bin/**`, `src/main.rs`, examples).
    Bin,
}

/// Per-file lint context.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Crate directory name (`dram`, `crypto`, …), `tests`, or `examples`.
    pub crate_name: String,
    /// Library or binary source.
    pub kind: FileKind,
    /// Whether this file is a crate root (`src/lib.rs` / `src/main.rs`)
    /// where `#![deny(unsafe_code)]` is asserted.
    pub is_crate_root: bool,
}

/// Crates whose `src` is pure library code: `println!` is forbidden there
/// (L3) and `unwrap()`/`expect()` needs a waiver (L4). `bench` is the
/// reporting/CLI crate and `tests`/`examples` are test scaffolding, so
/// they are deliberately absent.
pub const LIBRARY_CRATES: &[&str] = &[
    "analytic",
    "audit",
    "core",
    "crypto",
    "dram",
    "leakage",
    "lint",
    "oram",
    "system",
    "telemetry",
    "workloads",
];

/// Crates bound by L2 (timing comparisons must reference config
/// constants): the DDR3 simulator and its independent replay auditor.
pub const TIMING_CRATES: &[&str] = &["dram", "audit"];

/// Crates bound by the L3 constant-time tag-comparison rule.
pub const SECRET_EQ_CRATES: &[&str] = &["crypto", "oram"];

/// Crates bound by L5 (no wall-clock types): the timing-leakage
/// observatory, whose verdicts must depend only on simulated cycles.
pub const WALLCLOCK_CRATES: &[&str] = &["leakage"];

/// True for identifiers that name a point or span in simulated time.
///
/// The pattern family, kept deliberately small and documented in
/// `README.md`: exact `now`/`cycle`/`cycles`/`deadline`, the suffixes
/// `_cycle(s)`, `_time`, `_at`, `_until`, `_wake`, `_deadline`, and the
/// JEDEC `t_*` timing-field family (`t_rcd`, `t_faw`, `t_refi`, …).
pub fn is_cycle_ident(name: &str) -> bool {
    if matches!(name, "now" | "cycle" | "cycles" | "deadline") {
        return true;
    }
    const SUFFIXES: &[&str] =
        &["_cycle", "_cycles", "_time", "_at", "_until", "_wake", "_deadline"];
    if SUFFIXES.iter().any(|s| name.ends_with(s)) {
        return true;
    }
    // t_rcd family: `t_` plus a short lowercase JEDEC mnemonic.
    name.len() <= 8
        && name
            .strip_prefix("t_")
            .is_some_and(|rest| !rest.is_empty() && rest.chars().all(|c| c.is_ascii_lowercase()))
}

/// True for identifiers that, by workspace convention, carry key material
/// or keystream pads. Deliberately specific (`_key`, not bare `key`) so
/// map-key loops in telemetry never false-positive.
pub fn is_secret_ident(name: &str) -> bool {
    const SUFFIXES: &[&str] = &["_key", "_keys", "_pad", "_pads", "_secret", "_keystream"];
    matches!(
        name,
        "master" | "subkey" | "subkeys" | "keystream" | "round_keys" | "rk" | "k1" | "k2"
    ) || SUFFIXES.iter().any(|s| name.ends_with(s))
}

/// True for identifiers naming MAC tags/digests whose comparison must be
/// constant-time.
pub fn is_tag_ident(name: &str) -> bool {
    matches!(name, "tag" | "tags" | "mac" | "digest")
        || name.ends_with("_tag")
        || name.ends_with("_mac")
        || name.ends_with("_digest")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_pattern_family() {
        for yes in [
            "now",
            "cas_ready_time",
            "busy_until",
            "next_wake",
            "retry_at",
            "idle_cycles",
            "t_rcd",
            "t_faw",
            "t_refi",
            "t_burst",
        ] {
            assert!(is_cycle_ident(yes), "{yes} should be cycle-like");
        }
        for no in ["len", "t_", "t_VeryLongName", "temperature", "activate_nj", "counter", "gap"] {
            assert!(!is_cycle_ident(no), "{no} should not be cycle-like");
        }
    }

    #[test]
    fn secret_pattern_family() {
        for yes in ["enc_key", "mac_key", "round_keys", "k1", "device_secret", "master"] {
            assert!(is_secret_ident(yes), "{yes} should be secret-like");
        }
        // Bare `key`/`pad` are NOT matched: telemetry iterates map keys.
        for no in ["key", "pad", "keypad_row", "monkey", "padding"] {
            assert!(!is_secret_ident(no), "{no} should not be secret-like");
        }
    }

    #[test]
    fn tag_pattern_family() {
        assert!(is_tag_ident("tag"));
        assert!(is_tag_ident("short_tag"));
        assert!(is_tag_ident("link_mac"));
        assert!(!is_tag_ident("tagline"));
        assert!(!is_tag_ident("stage"));
    }

    #[test]
    fn every_waivable_lint_has_distinct_docs_name() {
        let names: Vec<&str> = [
            Lint::CycleArith,
            Lint::TimingLiteral,
            Lint::SecretFormat,
            Lint::LibPrintln,
            Lint::PanicBudget,
            Lint::WallClock,
        ]
        .iter()
        .filter_map(|l| l.waiver())
        .collect();
        assert_eq!(
            names,
            vec!["wrap-ok", "literal-ok", "secret-ok", "print-ok", "panic-ok", "wallclock-ok"]
        );
    }
}
