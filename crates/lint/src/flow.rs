//! Forward taint propagation over parsed function bodies (the L6 engine).
//!
//! **Lattice.** A value's taint is `(params, secret)`: a bitset of the
//! enclosing function's parameters that flow into it, plus an optional
//! *intrinsic* secret provenance (the first source description wins).
//! Struct literals additionally carry a depth-1 field map so constructing
//! a plan with one secret field does not taint its public fields. Join is
//! bitwise/option union; `⊥` is the clean value.
//!
//! **Sources.** `// lint: secret` annotations on fields/params/lets, plus
//! the built-in name families: [`crate::is_secret_ident`] (key material)
//! and [`crate::is_leaf_ident`] (leaf/position labels and the
//! Freecursive compressed-PosMap counters). Stash contents are covered by
//! the annotation on `Stash.entries` plus the leaf family on entry fields.
//!
//! **Sinks.** `if`/`while`/`match` conditions and scrutinees (this also
//! covers early `return`/`break` under a tainted guard — the guard itself
//! is flagged), slice indexes, `for`/`while` loop bounds, `%`//`/`
//! operands, format-family macro arguments reached through rebindings,
//! and call arguments that a callee summary says reach a sink.
//!
//! **Sanitizers.** [`crate::CT_SANITIZERS`] calls return clean values, as
//! do [`crate::LEN_CLEAN_METHODS`] (sizes of secret collections are
//! public in this model). `// lint: declassify(reason)` waives a sink
//! line; on a `fn` signature it declassifies the whole function.
//!
//! The analysis is deliberately **flow-insensitive inside branches**
//! (one environment, weak updates, loop bodies evaluated twice) and
//! conservative at unresolved calls (taint propagates receiver+args →
//! result, no sinks assumed). That trades precision for predictability:
//! no false negatives from missed joins, and false positives only where
//! secrets genuinely reach the expression.

use crate::parse::{Arm, Block, Expr, ExprKind, FnDef, Stmt};
use crate::summary::Symbols;
use crate::walker::{waiver_line, Waiver};
use crate::{is_leaf_ident, is_secret_ident, Lint, CT_SANITIZERS, LEN_CLEAN_METHODS};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;

/// Taint of one value. See the module docs for the lattice.
#[derive(Debug, Clone, Default)]
pub struct Taint {
    /// Bitset of enclosing-function parameters flowing into this value.
    pub params: u64,
    /// Intrinsic secret provenance, when any.
    pub secret: Option<Rc<str>>,
    /// Depth-1 per-field taint for struct literals.
    pub fields: Option<Rc<BTreeMap<String, Taint>>>,
}

impl Taint {
    fn clean() -> Taint {
        Taint::default()
    }

    fn is_clean(&self) -> bool {
        self.params == 0 && self.secret.is_none()
    }

    fn join(&self, other: &Taint) -> Taint {
        Taint {
            params: self.params | other.params,
            secret: self.secret.clone().or_else(|| other.secret.clone()),
            // Joins collapse field precision (different shapes).
            fields: None,
        }
    }

    /// The taint without field precision (for coarse reads).
    fn coarse(&self) -> Taint {
        Taint { params: self.params, secret: self.secret.clone(), fields: None }
    }
}

/// What kind of sink a secret reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SinkKind {
    /// `if`/`while`/`match` condition or scrutinee.
    Branch,
    /// Slice/array index.
    Index,
    /// `for`/`while` loop bound.
    LoopBound,
    /// `%` or `/` operand.
    VarTime,
    /// Format-family macro argument.
    FormatFlow,
}

impl SinkKind {
    fn lint(self) -> Lint {
        match self {
            SinkKind::Branch => Lint::SecretBranch,
            SinkKind::Index => Lint::SecretIndex,
            SinkKind::LoopBound => Lint::SecretLoopBound,
            SinkKind::VarTime => Lint::SecretVarTime,
            SinkKind::FormatFlow => Lint::SecretFormatFlow,
        }
    }

    fn noun(self) -> &'static str {
        match self {
            SinkKind::Branch => "branch condition",
            SinkKind::Index => "slice index",
            SinkKind::LoopBound => "loop bound",
            SinkKind::VarTime => "`%`/`/` operand",
            SinkKind::FormatFlow => "format-macro argument",
        }
    }
}

/// A function's interprocedural taint signature.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FnSummary {
    /// Provenance when the return value is secret regardless of arguments.
    pub returns_secret: Option<String>,
    /// Bitset: parameter `i` flows into the return value.
    pub param_returns: u64,
    /// `(param, sink kind)` → `(line in callee, description)`: parameter
    /// reaches a sink inside the body or transitively through calls.
    pub param_sinks: BTreeMap<(u8, SinkKind), (u32, String)>,
}

/// A raw L6 finding before waiver/test filtering.
#[derive(Debug)]
pub struct RawFinding {
    /// Which L6 lint fired.
    pub lint: Lint,
    /// Source line of the sink.
    pub line: u32,
    /// What the engine observed.
    pub actual: String,
    /// What the rule requires.
    pub expected: String,
}

/// Analysis mode: derive a summary, or emit findings.
pub enum Mode<'m> {
    /// Record which params reach sinks/returns into the summary.
    Summary(&'m mut FnSummary),
    /// Emit a [`RawFinding`] for every intrinsic secret reaching a sink.
    Findings(&'m mut Vec<RawFinding>),
}

/// Runs the engine over one function body.
///
/// `used_waivers` collects comment lines of `declassify`/`secret-ok`
/// waivers that suppressed a summary-level sink record (findings-mode
/// suppression is handled by the caller via `PassInput::finding`).
pub fn analyze_fn(
    f: &FnDef,
    crate_name: &str,
    symbols: &Symbols,
    summaries: &[FnSummary],
    waivers: &[Waiver],
    used_waivers: &mut BTreeSet<u32>,
    mode: &mut Mode<'_>,
) {
    let summary_mode = matches!(mode, Mode::Summary(_));
    let mut eng = Engine {
        symbols,
        summaries,
        crate_name,
        owner: f.owner.as_deref(),
        waivers,
        used_waivers,
        mode,
        env: HashMap::new(),
        types: HashMap::new(),
        param_names: f.params.iter().map(|p| p.name.clone()).collect(),
        ret: Taint::clean(),
        depth: 0,
    };
    for (i, p) in f.params.iter().enumerate() {
        let mut t = Taint::clean();
        if summary_mode && i < 64 {
            t.params = 1 << i;
        }
        if p.secret {
            t.secret = Some(format!("param `{}` (annotated `// lint: secret`)", p.name).into());
        }
        if let Some(ty) = &p.ty {
            eng.types.insert(p.name.clone(), ty.clone());
        }
        if p.name == "self" {
            if let Some(o) = &f.owner {
                eng.types.insert("self".into(), o.clone());
            }
        }
        eng.env.insert(p.name.clone(), t);
    }
    eng.block(&f.body, true);
    let ret = eng.ret.clone();
    if let Mode::Summary(out) = eng.mode {
        out.param_returns = ret.params;
        if let Some(s) = &ret.secret {
            out.returns_secret = Some(s.to_string());
        }
    }
}

struct Engine<'a, 'm> {
    symbols: &'a Symbols,
    summaries: &'a [FnSummary],
    crate_name: &'a str,
    owner: Option<&'a str>,
    waivers: &'a [Waiver],
    used_waivers: &'a mut BTreeSet<u32>,
    mode: &'a mut Mode<'m>,
    env: HashMap<String, Taint>,
    types: HashMap<String, String>,
    param_names: BTreeSet<String>,
    ret: Taint,
    depth: u32,
}

/// Recursion guard for pathological nesting.
const MAX_DEPTH: u32 = 200;

impl Engine<'_, '_> {
    // --------------------------------------------------------------
    // Sinks.
    // --------------------------------------------------------------

    /// Reports taint reaching a sink: params → summary record (unless a
    /// declassify waiver covers the line), intrinsic secret → finding.
    fn sink(&mut self, kind: SinkKind, line: u32, t: &Taint, detail: &str) {
        if t.is_clean() {
            return;
        }
        let waiver_name = kind.lint().waiver().unwrap_or("declassify");
        match &mut self.mode {
            Mode::Summary(out) => {
                if t.params != 0 {
                    if let Some(wline) = waiver_line(self.waivers, waiver_name, line) {
                        self.used_waivers.insert(wline);
                        return;
                    }
                    for i in 0..64u8 {
                        if t.params & (1 << i) != 0 {
                            out.param_sinks
                                .entry((i, kind))
                                .or_insert_with(|| (line, detail.to_string()));
                        }
                    }
                }
            }
            Mode::Findings(out) => {
                if let Some(src) = &t.secret {
                    out.push(RawFinding {
                        lint: kind.lint(),
                        line,
                        actual: format!("secret-dependent {}: {} — {src}", kind.noun(), detail),
                        expected: expected_for(kind),
                    });
                }
            }
        }
    }

    /// Call-site sink: an argument reaches a sink inside the callee.
    fn arg_sink(
        &mut self,
        line: u32,
        t: &Taint,
        callee: &str,
        kind: SinkKind,
        cline: u32,
        desc: &str,
    ) {
        if t.is_clean() {
            return;
        }
        match &mut self.mode {
            Mode::Summary(out) => {
                if t.params != 0 {
                    if let Some(wline) = waiver_line(self.waivers, "declassify", line) {
                        self.used_waivers.insert(wline);
                        return;
                    }
                    for i in 0..64u8 {
                        if t.params & (1 << i) != 0 {
                            out.param_sinks
                                .entry((i, kind))
                                .or_insert_with(|| (line, format!("via `{callee}`: {desc}")));
                        }
                    }
                }
            }
            Mode::Findings(out) => {
                if let Some(src) = &t.secret {
                    out.push(RawFinding {
                        lint: Lint::SecretArgSink,
                        line,
                        actual: format!(
                            "{src} flows into a secret-dependent {} inside `{callee}` (line {cline}: {desc})",
                            kind.noun()
                        ),
                        expected: "sanitize before the call (ct_eq/ct_select) or waive here: \
                                   // lint: declassify(reason)"
                            .to_string(),
                    });
                }
            }
        }
    }

    // --------------------------------------------------------------
    // Environment helpers.
    // --------------------------------------------------------------

    fn read_ident(&self, name: &str) -> Taint {
        let mut t = self.env.get(name).cloned().unwrap_or_default();
        // Name-family sources never apply to PARAM reads in summary mode:
        // params are tracked positionally there, and the caller's argument
        // taint decides. (A fn whose param happens to be named `leaf` must
        // not report a secret return for public arguments.)
        let skip = matches!(self.mode, Mode::Summary(_)) && self.param_names.contains(name);
        if !skip && t.secret.is_none() && (is_secret_ident(name) || is_leaf_ident(name)) {
            t.secret = Some(format!("`{name}` (built-in secret-name family)").into());
        }
        t
    }

    fn bind(&mut self, name: &str, t: Taint) {
        self.env.insert(name.to_string(), t);
    }

    /// First-segment type of an expression, for method resolution and
    /// field-annotation lookup. `None` when unknown.
    fn infer_type(&self, e: &Expr) -> Option<String> {
        match &e.kind {
            ExprKind::Path(segs) => match segs.as_slice() {
                [one] if one == "self" => self.owner.map(str::to_string),
                [one] => self.types.get(one).cloned(),
                _ => None,
            },
            ExprKind::Field(base, fname) => {
                let bt = self.infer_type(base)?;
                Some(self.symbols.structs.get(&bt)?.get(fname)?.ty.clone())
            }
            ExprKind::Call(callee, _) => match &callee.kind {
                ExprKind::Path(segs) if segs.len() >= 2 => {
                    let ty = &segs[segs.len() - 2];
                    let ty = if ty == "Self" { self.owner.unwrap_or(ty) } else { ty };
                    ty.chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_uppercase())
                        .then(|| ty.to_string())
                }
                _ => None,
            },
            ExprKind::StructLit(ty, _, _) => Some(ty.clone()),
            ExprKind::Unary(_, inner) | ExprKind::Cast(inner) => self.infer_type(inner),
            _ => None,
        }
    }

    // --------------------------------------------------------------
    // Evaluation.
    // --------------------------------------------------------------

    fn block(&mut self, b: &Block, is_fn_body: bool) -> Taint {
        let mut tail = Taint::clean();
        for (i, s) in b.stmts.iter().enumerate() {
            let last = i + 1 == b.stmts.len();
            match s {
                Stmt::Let { binds, ty, init, secret, line } => {
                    let mut t = match init {
                        Some(e) => self.eval(e),
                        None => Taint::clean(),
                    };
                    // A declassify waiver ON the binding clears its taint:
                    // the written invariant says this value is public from
                    // here on (e.g. the post-remap leaf a Path ORAM access
                    // reveals to memory by construction).
                    if !t.is_clean() {
                        if let Some(wline) = waiver_line(self.waivers, "declassify", *line) {
                            self.used_waivers.insert(wline);
                            t = Taint::clean();
                        }
                    }
                    if *secret {
                        t.secret.get_or_insert_with(|| {
                            format!("let on line {line} (annotated `// lint: secret`)").into()
                        });
                    }
                    // Type for method resolution: explicit annotation wins,
                    // else inferred from the initializer.
                    let inferred = match ty {
                        Some(t) => Some(t.clone()),
                        None => init.as_ref().and_then(|e| self.infer_type(e)),
                    };
                    for bname in binds {
                        if let Some(ty) = &inferred {
                            self.types.insert(bname.clone(), ty.clone());
                        }
                        self.bind(bname, t.clone());
                    }
                }
                Stmt::Semi(e) => {
                    let _ = self.eval(e);
                }
                Stmt::Expr(e) => {
                    let t = self.eval(e);
                    if last {
                        tail = t;
                    }
                }
            }
        }
        if is_fn_body {
            let tail = tail.coarse();
            self.ret = self.ret.join(&tail);
        }
        tail
    }

    fn eval_all(&mut self, es: &[Expr]) -> Vec<Taint> {
        es.iter().map(|e| self.eval(e)).collect()
    }

    fn eval(&mut self, e: &Expr) -> Taint {
        if self.depth >= MAX_DEPTH {
            return Taint::clean();
        }
        self.depth += 1;
        let t = self.eval_inner(e);
        self.depth -= 1;
        t
    }

    fn eval_inner(&mut self, e: &Expr) -> Taint {
        match &e.kind {
            ExprKind::Lit | ExprKind::LitStr(_) | ExprKind::Continue | ExprKind::Opaque => {
                Taint::clean()
            }
            ExprKind::Path(segs) => match segs.as_slice() {
                [one] => self.read_ident(one),
                // Multi-segment paths are constants/variants: clean.
                _ => Taint::clean(),
            },
            ExprKind::Field(base, fname) => {
                let bt = self.eval(base);
                if let Some(fields) = &bt.fields {
                    if let Some(ft) = fields.get(fname) {
                        return ft.clone();
                    }
                }
                let mut t = bt.coarse();
                if t.secret.is_none() {
                    if let Some(ty) = self.infer_type(base) {
                        if let Some(fi) = self.symbols.structs.get(&ty).and_then(|fs| fs.get(fname))
                        {
                            if fi.secret {
                                t.secret = Some(
                                    format!("field `{ty}.{fname}` (annotated `// lint: secret`)")
                                        .into(),
                                );
                            }
                        }
                    }
                }
                if t.secret.is_none() && (is_secret_ident(fname) || is_leaf_ident(fname)) {
                    t.secret =
                        Some(format!("field `.{fname}` (built-in secret-name family)").into());
                }
                t
            }
            ExprKind::Unary(_, inner) | ExprKind::Cast(inner) | ExprKind::Try(inner) => {
                self.eval(inner).coarse()
            }
            ExprKind::Range(lo, hi) => {
                let tl = lo.as_ref().map(|e| self.eval(e)).unwrap_or_default();
                let th = hi.as_ref().map(|e| self.eval(e)).unwrap_or_default();
                tl.join(&th)
            }
            ExprKind::Tuple(es) => {
                let ts = self.eval_all(es);
                ts.iter().fold(Taint::clean(), |a, b| a.join(b))
            }
            ExprKind::StructLit(_, fields, rest) => {
                let mut map = BTreeMap::new();
                let mut agg = Taint::clean();
                for (name, val) in fields {
                    let t = self.eval(val);
                    agg = agg.join(&t);
                    map.insert(name.clone(), t);
                }
                if let Some(r) = rest {
                    let t = self.eval(r);
                    agg = agg.join(&t);
                }
                // The container is not the secret: constructing a struct
                // around a secret field keeps secrecy IN the field (the
                // map here; name-family/annotation lookup at every later
                // field read). Param bits stay coarse so interprocedural
                // param→return flow is not lost.
                Taint { params: agg.params, secret: None, fields: Some(Rc::new(map)) }
            }
            ExprKind::Binary(op, a, b) => {
                let ta = self.eval(a);
                let tb = self.eval(b);
                if matches!(op.as_str(), "%" | "/") {
                    let joined = ta.join(&tb);
                    self.sink(SinkKind::VarTime, e.line, &joined, &format!("operand of `{op}`"));
                }
                ta.join(&tb)
            }
            ExprKind::Assign(target, _, value) => {
                let tv = self.eval(value);
                self.assign(target, tv);
                Taint::clean()
            }
            ExprKind::Index(base, idx) => {
                let tb = self.eval(base);
                let ti = self.eval(idx);
                self.sink(SinkKind::Index, idx.line, &ti, "index expression");
                tb.coarse().join(&ti)
            }
            ExprKind::If { cond, cond_binds, then_b, else_b } => {
                let tc = self.eval(cond);
                let what = if cond_binds.is_empty() { "condition" } else { "`if let` scrutinee" };
                self.sink(SinkKind::Branch, cond.line, &tc, what);
                for b in cond_binds {
                    self.bind(b, tc.coarse());
                }
                let tt = self.block(then_b, false);
                let te = match else_b {
                    Some(e) => self.eval(e),
                    None => Taint::clean(),
                };
                tt.join(&te)
            }
            ExprKind::While { cond, cond_binds, body } => {
                let tc = self.eval(cond);
                let what = if cond_binds.is_empty() {
                    "`while` condition (iteration count observable)"
                } else {
                    "`while let` scrutinee"
                };
                self.sink(SinkKind::LoopBound, cond.line, &tc, what);
                for b in cond_binds {
                    self.bind(b, tc.coarse());
                }
                // Twice: loop-carried taint needs one extra pass.
                let _ = self.block(body, false);
                let _ = self.eval(cond);
                let _ = self.block(body, false);
                Taint::clean()
            }
            ExprKind::Loop(body) => {
                let _ = self.block(body, false);
                let _ = self.block(body, false);
                Taint::clean()
            }
            ExprKind::For { binds, iter, body } => {
                let ti = self.eval(iter);
                // Only a RANGE bound leaks the iteration count (`for i in
                // 0..leaf`). Iterating a secret collection runs `len()`
                // times — public under the length policy — though its
                // *elements* (the binds) stay tainted.
                if range_like(iter) {
                    self.sink(SinkKind::LoopBound, iter.line, &ti, "range bound");
                }
                // `.enumerate()` prepends a public position counter.
                let mut bind_taints: Vec<Taint> = binds.iter().map(|_| ti.coarse()).collect();
                if enumerated(iter) && !bind_taints.is_empty() {
                    bind_taints[0] = Taint::clean();
                }
                for (b, t) in binds.iter().zip(bind_taints.iter()) {
                    self.bind(b, t.clone());
                }
                let _ = self.block(body, false);
                // The loop variable is rebound fresh from the iterator on
                // every real iteration, so mutations to it inside the body
                // must not survive into the loop-carried fixpoint pass.
                for (b, t) in binds.iter().zip(bind_taints.iter()) {
                    self.bind(b, t.clone());
                }
                let _ = self.block(body, false);
                Taint::clean()
            }
            ExprKind::Match(scrutinee, arms) => {
                let ts = self.eval(scrutinee);
                self.sink(SinkKind::Branch, scrutinee.line, &ts, "`match` scrutinee");
                let mut out = Taint::clean();
                for Arm { binds, guard, body } in arms {
                    for b in binds {
                        self.bind(b, ts.coarse());
                    }
                    if let Some(g) = guard {
                        let tg = self.eval(g);
                        self.sink(SinkKind::Branch, g.line, &tg, "`match` arm guard");
                    }
                    out = out.join(&self.eval(body));
                }
                out
            }
            ExprKind::Closure(binds, body) => {
                for b in binds {
                    self.bind(b, Taint::clean());
                }
                self.eval(body).coarse()
            }
            ExprKind::Block(b) => self.block(b, false),
            ExprKind::Return(v) => {
                if let Some(v) = v {
                    let t = self.eval(v).coarse();
                    self.ret = self.ret.join(&t);
                }
                Taint::clean()
            }
            ExprKind::Break(v) => {
                if let Some(v) = v {
                    let _ = self.eval(v);
                }
                Taint::clean()
            }
            ExprKind::Macro(name, args) => self.eval_macro(name, args),
            ExprKind::Method(recv, name, args) => self.eval_method(recv, name, args, e.line),
            ExprKind::Call(callee, args) => self.eval_call(callee, args, e.line),
        }
    }

    fn assign(&mut self, target: &Expr, value: Taint) {
        match &target.kind {
            ExprKind::Path(segs) if segs.len() == 1 => {
                let name = &segs[0];
                let old = self.env.get(name).cloned().unwrap_or_default();
                // Weak update: joins keep branch-assigned taint visible.
                self.bind(name, old.join(&value));
            }
            ExprKind::Field(base, fname) => {
                if let ExprKind::Path(segs) = &base.kind {
                    if segs.len() == 1 {
                        let vname = segs[0].clone();
                        let old = self.env.get(&vname).cloned().unwrap_or_default();
                        let mut map =
                            old.fields.as_ref().map(|m| (**m).clone()).unwrap_or_default();
                        let prior = map.get(fname).cloned().unwrap_or_default();
                        map.insert(fname.clone(), prior.join(&value));
                        self.bind(
                            &vname,
                            Taint {
                                params: old.params | value.params,
                                secret: old.secret.clone().or(value.secret),
                                fields: Some(Rc::new(map)),
                            },
                        );
                        return;
                    }
                }
                // Deeper targets: evaluate for sink side effects only.
                let _ = self.eval(base);
            }
            ExprKind::Index(base, idx) => {
                let ti = self.eval(idx);
                self.sink(SinkKind::Index, idx.line, &ti, "index of assignment target");
                if let ExprKind::Path(segs) = &base.kind {
                    if segs.len() == 1 {
                        let name = segs[0].clone();
                        let old = self.env.get(&name).cloned().unwrap_or_default();
                        self.bind(&name, old.join(&value));
                    }
                }
            }
            ExprKind::Unary(_, inner) => self.assign(inner, value),
            _ => {
                let _ = self.eval(target);
            }
        }
    }

    fn eval_macro(&mut self, name: &str, args: &[Expr]) -> Taint {
        let is_format = FLOW_FORMAT_MACROS.contains(&name);
        let mut agg = Taint::clean();
        for a in args {
            let t = self.eval(a);
            if is_format {
                // The rebinding case L3 cannot see: an env-tainted ident
                // whose *name* is innocuous. Name-matched idents are L3's
                // beat; skipping them here avoids double reports.
                if let ExprKind::Path(segs) = &a.kind {
                    if let [one] = segs.as_slice() {
                        if !is_secret_ident(one) && !is_leaf_ident(one) && !t.is_clean() {
                            self.sink(
                                SinkKind::FormatFlow,
                                a.line,
                                &t,
                                &format!("`{one}` reaches `{name}!`"),
                            );
                        }
                    }
                }
                // Inline captures in the format string: `"{x:?}"`.
                if let ExprKind::LitStr(body) = &a.kind {
                    for cap in inline_captures(body) {
                        if is_secret_ident(&cap) || is_leaf_ident(&cap) {
                            continue; // L3's beat
                        }
                        let tc = self.read_ident(&cap);
                        self.sink(
                            SinkKind::FormatFlow,
                            a.line,
                            &tc,
                            &format!("`{{{cap}}}` captured by `{name}!`"),
                        );
                    }
                }
            }
            agg = agg.join(&t);
        }
        agg
    }

    fn eval_method(&mut self, recv: &Expr, name: &str, args: &[Expr], line: u32) -> Taint {
        let tr = self.eval(recv);
        let targs = self.eval_all(args);
        if LEN_CLEAN_METHODS.contains(&name) {
            return Taint::clean();
        }
        if CT_SANITIZERS.contains(&name) {
            return Taint::clean();
        }
        let recv_ty = self.infer_type(recv);
        match self.symbols.resolve_method(recv_ty.as_deref(), name, self.crate_name) {
            Some(id) => self.apply_summary(id, Some(&tr), &targs, line),
            None => targs.iter().fold(tr.coarse(), |a, b| a.join(b)),
        }
    }

    fn eval_call(&mut self, callee: &Expr, args: &[Expr], line: u32) -> Taint {
        let targs = self.eval_all(args);
        let resolved = match &callee.kind {
            ExprKind::Path(segs) => match segs.as_slice() {
                [one] if CT_SANITIZERS.contains(&one.as_str()) => {
                    return Taint::clean();
                }
                [one] => self.symbols.resolve_free(one, self.crate_name),
                longer => {
                    let name = &longer[longer.len() - 1];
                    if CT_SANITIZERS.contains(&name.as_str()) {
                        return Taint::clean();
                    }
                    let ty = &longer[longer.len() - 2];
                    let ty = if ty == "Self" {
                        self.owner.map(str::to_string).unwrap_or_else(|| ty.clone())
                    } else {
                        ty.clone()
                    };
                    self.symbols.resolve_assoc(&ty, name, self.crate_name)
                }
            },
            _ => {
                let _ = self.eval(callee);
                None
            }
        };
        match resolved {
            Some(id) => self.apply_summary(id, None, &targs, line),
            None => targs.iter().fold(Taint::clean(), |a, b| a.join(b)),
        }
    }

    /// Applies a callee summary at a call site: propagates param→return
    /// flows, reports call-site sinks, and taints the result if the
    /// callee's return is intrinsically secret.
    fn apply_summary(
        &mut self,
        id: usize,
        recv: Option<&Taint>,
        targs: &[Taint],
        line: u32,
    ) -> Taint {
        let entry = &self.symbols.entries[id];
        if entry.declassified {
            return Taint::clean();
        }
        let s = &self.summaries[id];
        let key = entry.key();
        // Positional taints: params[0] is self for methods.
        let mut pos: Vec<&Taint> = Vec::with_capacity(targs.len() + 1);
        if let Some(r) = recv {
            pos.push(r);
        }
        pos.extend(targs.iter());
        let mut out = Taint::clean();
        if let Some(srcdesc) = &s.returns_secret {
            out.secret = Some(format!("return of `{key}` ({srcdesc})").into());
        }
        for (i, t) in pos.iter().enumerate() {
            if i < 64 && s.param_returns & (1 << i) != 0 {
                out = out.join(&t.coarse());
            }
        }
        // Clone the sink table up front: arg_sink needs &mut self.
        let sinks: Vec<((u8, SinkKind), (u32, String))> =
            s.param_sinks.iter().map(|(k, v)| (*k, v.clone())).collect();
        for ((pi, kind), (cline, desc)) in sinks {
            if let Some(t) = pos.get(pi as usize) {
                let t = (*t).clone();
                self.arg_sink(line, &t, &key, kind, cline, &desc);
            }
        }
        out
    }
}

/// Format-family macros that are L6 flow sinks. Narrower than L3's token
/// list: the `panic!`/`assert!` family is excluded — their messages only
/// render on the abort path, which is outside the L6 leakage model (and
/// including them floods every geometry bounds-check with findings). L3
/// still flags secret-NAMED identifiers in assert messages at the token
/// level.
const FLOW_FORMAT_MACROS: &[&str] =
    &["format", "format_args", "print", "println", "eprint", "eprintln", "write", "writeln"];

/// Whether a `for` iterated expression is a range (possibly behind
/// `.rev()`/`.step_by(..)`-style adapters over a range).
fn range_like(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Range(..) => true,
        ExprKind::Method(recv, _, _) => range_like(recv),
        ExprKind::Unary(_, inner) | ExprKind::Cast(inner) => range_like(inner),
        _ => false,
    }
}

/// Whether the iterated expression ends in `.enumerate()`.
fn enumerated(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Method(_, name, _) => name == "enumerate",
        _ => false,
    }
}

fn expected_for(kind: SinkKind) -> String {
    match kind {
        SinkKind::Branch => {
            "execute both sides uniformly (ct_select/oblivious access) or waive with an \
             invariant: // lint: declassify(reason)"
        }
        SinkKind::Index => {
            "use an oblivious scan (touch every slot, select with ct_eq masks) or waive: \
             // lint: declassify(reason)"
        }
        SinkKind::LoopBound => {
            "iterate a fixed/public bound (pad to the worst case) or waive: \
             // lint: declassify(reason)"
        }
        SinkKind::VarTime => {
            "replace with masking/shifts (division is variable-time on real dividers) or \
             waive: // lint: declassify(reason)"
        }
        SinkKind::FormatFlow => {
            "never format secret material; redact it, or waive: // lint: secret-ok(reason)"
        }
    }
    .to_string()
}

/// Identifiers captured inline in a format string: `{x}`, `{x:?}`, `{x:08x}`.
fn inline_captures(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes: Vec<char> = body.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == '{' {
            if bytes.get(i + 1) == Some(&'{') {
                i += 2;
                continue;
            }
            let mut j = i + 1;
            let mut name = String::new();
            while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                name.push(bytes[j]);
                j += 1;
            }
            let terminated = matches!(bytes.get(j), Some('}') | Some(':'));
            if terminated
                && !name.is_empty()
                && !name.chars().next().unwrap_or('0').is_ascii_digit()
            {
                out.push(name);
            }
            i = j;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;
    use crate::summary::{build_symbols, compute_summaries, FileUnit};
    use crate::walker::parse_markers;

    /// Runs the full pipeline over one synthetic "crypto" file and
    /// returns findings from every function.
    fn run(src: &str) -> Vec<RawFinding> {
        let lexed = lex(src);
        let (waivers, ann, _) = parse_markers(&lexed.comments);
        let parsed = parse_file(&lexed, &ann);
        let unit = FileUnit {
            crate_name: "crypto",
            parsed: &parsed,
            waivers: &waivers,
            test_regions: &[],
            contributes: true,
        };
        let files = vec![unit];
        let mut used = vec![BTreeSet::new()];
        let symbols = build_symbols(&files, &mut used);
        let summaries = compute_summaries(&files, &symbols, 10, &mut used);
        let mut findings = Vec::new();
        for f in &parsed.fns {
            // Fn-level declassify exempts the whole body (mirrors l6_taint).
            if crate::walker::waiver_line(&waivers, "declassify", f.sig_line).is_some() {
                continue;
            }
            analyze_fn(
                f,
                "crypto",
                &symbols,
                &summaries,
                &waivers,
                &mut used[0],
                &mut Mode::Findings(&mut findings),
            );
        }
        findings
    }

    #[test]
    fn direct_branch_on_secret() {
        let f =
            run("fn f(x: u64) { let session_key = x; if session_key > 0 { () } else { () } }\n");
        assert!(f.iter().any(|r| r.lint == Lint::SecretBranch), "{f:?}");
    }

    #[test]
    fn taint_through_rebinding_reaches_branch() {
        let f = run("fn f() { let kk = load_key(); if kk == 3 { () } }\nfn load_key() -> u64 { let enc_key = 5; enc_key }\n");
        assert!(f.iter().any(|r| r.lint == Lint::SecretBranch), "{f:?}");
    }

    #[test]
    fn sanitizer_clears_taint() {
        let f = run("fn f(a: &[u8], b: &[u8]) { let mac_key = a; if ct_eq(mac_key, b) { () } }\n");
        assert!(f.is_empty(), "ct_eq output is public: {f:?}");
    }

    #[test]
    fn len_is_public() {
        let f = run("fn f(round_keys: Vec<u64>) { for _i in 0..round_keys.len() { () } }\n");
        assert!(f.is_empty(), "lengths are public: {f:?}");
    }

    #[test]
    fn one_hop_param_sink() {
        let src = "fn helper(v: u64) -> u64 { if v > 2 { 1 } else { 0 } }\n\
                   fn caller() { let leaf = 7u64; let _ = helper(leaf); }\n";
        let f = run(src);
        assert!(f.iter().any(|r| r.lint == Lint::SecretArgSink), "{f:?}");
    }

    #[test]
    fn two_hop_needs_summaries() {
        let src = "fn inner(v: u64) -> u64 { if v > 2 { 1 } else { 0 } }\n\
                   fn mid(w: u64) -> u64 { inner(w) }\n\
                   fn caller() { let leaf = 7u64; let _ = mid(leaf); }\n";
        let f = run(src);
        assert!(
            f.iter().any(|r| r.lint == Lint::SecretArgSink && r.actual.contains("mid")),
            "two-hop flow must be caught: {f:?}"
        );
    }

    #[test]
    fn declassified_fn_is_exempt_and_cuts_flow() {
        let src = "// lint: declassify(path addresses are revealed by design post-remap)\n\
                   fn path_lines(leaf: u64) -> u64 { if leaf > 2 { 1 } else { 0 } }\n\
                   fn caller() { let old_leaf = 7u64; let lines = path_lines(old_leaf); \
                   if lines > 0 { () } }\n";
        let f = run(src);
        assert!(f.is_empty(), "declassified fn exempts body and cuts flow: {f:?}");
    }

    #[test]
    fn secret_index_and_vartime() {
        let f = run("fn f(t: &[u8]) { let leaf = 3usize; let _ = t[leaf]; let _ = leaf % 3; }\n");
        assert!(f.iter().any(|r| r.lint == Lint::SecretIndex), "{f:?}");
        assert!(f.iter().any(|r| r.lint == Lint::SecretVarTime), "{f:?}");
    }

    #[test]
    fn format_flow_through_rebinding() {
        let f = run("fn f() { let kk = make_key(); let _s = format!(\"{kk:?}\"); }\n\
                     fn make_key() -> u64 { let enc_key = 1; enc_key }\n");
        assert!(f.iter().any(|r| r.lint == Lint::SecretFormatFlow), "{f:?}");
    }

    #[test]
    fn dummy_leaf_is_public_by_construction() {
        let f = run("fn f(t: &[u8]) { let dummy_leaf = 3usize; let _ = t[dummy_leaf]; \
                     if dummy_leaf > 1 { () } }\n");
        assert!(f.is_empty(), "dummy leaves are public: {f:?}");
    }

    #[test]
    fn annotated_field_taints_reads() {
        let src = "struct PosMap {\n  // lint: secret\n  slots: Vec<u64>,\n}\n\
                   impl PosMap { fn get(&self, i: usize) -> u64 { self.slots[i] } }\n\
                   fn caller(pm: &PosMap) { let v = pm.get(0); if v > 2 { () } }\n";
        let f = run(src);
        assert!(
            f.iter().any(|r| r.lint == Lint::SecretBranch && r.actual.contains("PosMap::get")),
            "annotated field must taint through the getter: {f:?}"
        );
    }

    #[test]
    fn inline_capture_extraction() {
        assert_eq!(inline_captures("{a} {b:?} {{not}} {0} {c:08x}"), vec!["a", "b", "c"]);
    }
}
