//! L2 — timing-constant discipline.
//!
//! Inside `crates/dram` (the simulator) and `crates/audit` (the
//! independent replay checker), a comparison like `gap < 28` hard-codes a
//! DDR3 constraint that `config.rs` already names (`t_ras`). The moment
//! one side edits the named constant and the other keeps its literal, the
//! simulator and its auditor silently diverge — the auditor would bless
//! schedules the configuration forbids. So: cycle-named values may only be
//! compared against named constants. Literals `0` and `1` stay legal
//! (emptiness/monotonicity checks), as does arithmetic that *derives* from
//! named constants (`4 * t.t_rrd`), because the literal there is not a
//! direct comparison operand.

use super::PassInput;
use crate::lexer::TokKind;
use crate::walker::{lhs_ident, rhs_ident, rhs_token};
use crate::{Finding, Lint, TIMING_CRATES};

/// Smallest literal worth flagging: 0/1 are structural, not timing.
const MIN_SUSPECT: u128 = 2;

/// Runs the pass (no-op outside the timing crates).
pub fn check(input: &PassInput<'_>) -> Vec<Finding> {
    if !TIMING_CRATES.contains(&input.ctx.crate_name.as_str()) {
        return Vec::new();
    }
    let toks = input.toks;
    let mut findings = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Punct
            || !matches!(tok.text.as_str(), "<" | "<=" | ">" | ">=" | "==" | "!=")
        {
            continue;
        }
        // Direct operands only: an identifier (path tail) on one side and
        // an integer literal on the other.
        let lhs_id = lhs_ident(toks, i);
        let lhs_lit = (i > 0).then(|| &toks[i - 1]).and_then(int_value);
        let rhs_id = rhs_ident(toks, i);
        let rhs_lit = rhs_token(toks, i).and_then(int_value);

        let hit = match (lhs_id, lhs_lit, rhs_id, rhs_lit) {
            (Some(id), _, _, Some(v)) if crate::is_cycle_ident(id) && v >= MIN_SUSPECT => {
                Some((id, v))
            }
            (_, Some(v), Some(id), _) if crate::is_cycle_ident(id) && v >= MIN_SUSPECT => {
                Some((id, v))
            }
            _ => None,
        };
        let Some((id, v)) = hit else { continue };
        if let Some(f) = input.finding(
            Lint::TimingLiteral,
            tok.line,
            format!("cycle-typed `{id}` compared against raw literal `{v}`"),
            "reference the named constant from `crates/dram/src/config.rs` \
             (Timing/WriteDrain/…) so simulator and auditor share one source, \
             or waive with `// lint: literal-ok(reason)`"
                .to_string(),
        ) {
            findings.push(f);
        }
    }
    findings
}

/// Integer value of a token, when it is an integer literal.
fn int_value(tok: &crate::lexer::Tok) -> Option<u128> {
    match tok.kind {
        TokKind::Int(v) => v,
        _ => None,
    }
}
