//! L5 — wall-clock discipline in cycle-pure crates.
//!
//! The leakage observatory's whole value is reproducibility: the same
//! attacker-visible streams must yield byte-identical distinguishability
//! verdicts on every host, every run. Any `Instant`/`SystemTime` read
//! injects host-dependent state, so inside `crates/leakage` those types
//! are banned outright — windowing and inter-arrival features come from
//! the executor's simulated cycle stamps, never from the OS. A genuinely
//! benign mention (say, a doc example) can carry a
//! `// lint: wallclock-ok(reason)` waiver.

use super::PassInput;
use crate::lexer::TokKind;
use crate::{Finding, Lint, WALLCLOCK_CRATES};

/// Type names whose mere appearance means host time is in play. Matching
/// bare identifiers catches both `std::time::Instant` paths and `use`
/// statements that would smuggle the type in under its own name.
const WALLCLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];

/// Runs the pass (no-op outside the wall-clock-banned crates).
pub fn check(input: &PassInput<'_>) -> Vec<Finding> {
    if !WALLCLOCK_CRATES.contains(&input.ctx.crate_name.as_str()) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for tok in input.toks {
        if tok.kind != TokKind::Ident || !WALLCLOCK_TYPES.contains(&tok.text.as_str()) {
            continue;
        }
        if let Some(f) = input.finding(
            Lint::WallClock,
            tok.line,
            format!("wall-clock type `{}` in a cycle-pure crate", tok.text),
            "derive timing features from simulated `Cycle` stamps so the \
             distinguishability verdict is bit-reproducible, or waive with \
             `// lint: wallclock-ok(reason)`"
                .to_string(),
        ) {
            findings.push(f);
        }
    }
    findings
}
