//! L4 — unsafe/panic budget.
//!
//! Two rules:
//!
//! 1. **unsafe-attr** — every crate root carries `#![deny(unsafe_code)]`
//!    (or `forbid`). The workspace is pure safe Rust by construction; the
//!    attribute makes that a compile-time guarantee instead of a habit.
//! 2. **panic-budget** — `unwrap()`/`expect()` in library code (outside
//!    tests and binaries) needs a `// lint: panic-ok(reason)` waiver. A
//!    panic in the middle of a multi-million-command figure run throws
//!    away the whole run; fallible paths should return errors the runner
//!    can report, and genuinely infallible uses must say *why* they are
//!    infallible.

use super::PassInput;
use crate::lexer::TokKind;
use crate::walker::is_punct;
use crate::{FileKind, Finding, Lint};

/// Runs the pass. `src` is the raw file text, used for the attribute
/// check (attribute order/formatting is not token-shape sensitive).
pub fn check(input: &PassInput<'_>, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    if input.ctx.is_crate_root
        && !src.contains("#![deny(unsafe_code)]")
        && !src.contains("#![forbid(unsafe_code)]")
    {
        findings.push(Finding {
            lint: Lint::UnsafeAttr,
            file: input.file.to_string(),
            line: 1,
            actual: "crate root does not assert an unsafe-code policy".to_string(),
            expected: "add `#![deny(unsafe_code)]` (workspace is pure safe Rust)".to_string(),
            excerpt: String::new(),
        });
    }
    if input.ctx.kind != FileKind::Lib {
        return findings; // binaries may panic: that *is* their error path
    }
    let toks = input.toks;
    for (i, tok) in toks.iter().enumerate() {
        let is_call = tok.kind == TokKind::Ident
            && matches!(tok.text.as_str(), "unwrap" | "expect")
            && i > 0
            && is_punct(toks, i - 1, ".")
            && is_punct(toks, i + 1, "(");
        if !is_call {
            continue;
        }
        if let Some(f) = input.finding(
            Lint::PanicBudget,
            tok.line,
            format!("`.{}()` in library code", tok.text),
            "return a Result/Option the caller can handle, or state the \
             infallibility invariant with `// lint: panic-ok(reason)`"
                .to_string(),
        ) {
            findings.push(f);
        }
    }
    findings
}
