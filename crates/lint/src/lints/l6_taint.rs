//! L6 `secret-*` dataflow: runs the [`crate::flow`] engine in findings
//! mode over every non-test function of a library file in
//! [`crate::SECRET_FLOW_CRATES`], filtering through the shared
//! [`PassInput::finding`] machinery (test regions, waivers, usage marks).

use super::PassInput;
use crate::flow::{analyze_fn, FnSummary, Mode, RawFinding};
use crate::parse::Parsed;
use crate::summary::Symbols;
use crate::walker::in_test;
use crate::{FileKind, Finding, SECRET_FLOW_CRATES};
use std::collections::BTreeSet;

/// Runs the L6 pass for one file against the workspace symbol table.
///
/// `used_waivers` accumulates waiver comment lines consumed by
/// summary-phase declassifications inside this file's functions.
pub fn check(
    input: &PassInput<'_>,
    parsed: &Parsed,
    symbols: &Symbols,
    summaries: &[FnSummary],
    used_waivers: &mut BTreeSet<u32>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    if input.ctx.kind != FileKind::Lib
        || !SECRET_FLOW_CRATES.contains(&input.ctx.crate_name.as_str())
    {
        return findings;
    }
    for f in &parsed.fns {
        if in_test(input.test_regions, f.sig_line) {
            continue;
        }
        // Fn-level declassify: the whole body is exempt (the waiver was
        // marked used at symbol registration).
        if crate::walker::waiver_line(input.waivers, "declassify", f.sig_line).is_some() {
            continue;
        }
        let mut raw: Vec<RawFinding> = Vec::new();
        analyze_fn(
            f,
            &input.ctx.crate_name,
            symbols,
            summaries,
            input.waivers,
            used_waivers,
            &mut Mode::Findings(&mut raw),
        );
        // One finding per (lint, line): loop bodies are evaluated twice
        // and a callee may record several sinks for one parameter.
        let mut seen: BTreeSet<(u32, &'static str)> = BTreeSet::new();
        for r in raw {
            if !seen.insert((r.line, r.lint.id())) {
                continue;
            }
            if let Some(found) = input.finding(r.lint, r.line, r.actual, r.expected) {
                findings.push(found);
            }
        }
    }
    findings
}
