//! L3 — secret hygiene.
//!
//! The paper's security argument (§III-B) assumes key material and PMMAC
//! state never leave the secure boundary. In this codebase that boundary
//! is enforced by convention, so the lint enforces the convention:
//!
//! 1. **secret-format** — identifiers that carry key material (`*_key`,
//!    `*_pad`, `round_keys`, `k1`, …) must not appear inside
//!    `format!`-family macro invocations, either as arguments or as
//!    `{inline}` captures in the format string. A key that reaches a log
//!    line is a key an operator can read back out of a trace file.
//! 2. **secret-eq** — in `crates/crypto` and `crates/oram`, MAC tags must
//!    not be compared with `==`/`!=`: short-circuiting comparison leaks
//!    the first differing byte's position through timing, which is the
//!    classic MAC-forgery oracle. Use `sdimm_crypto::ct::ct_eq`.
//! 3. **lib-println** — library crates never `println!`/`print!`:
//!    stdout belongs to the figure binaries' tables, and ad-hoc printing
//!    is how secret-adjacent state historically escapes. Telemetry
//!    (`TraceSink`/metrics) is the sanctioned channel; `eprintln!` stays
//!    legal for fatal diagnostics.

use super::PassInput;
use crate::lexer::TokKind;
use crate::walker::{is_punct, lhs_ident, rhs_ident};
use crate::{
    is_secret_ident, is_tag_ident, FileKind, Finding, Lint, LIBRARY_CRATES, SECRET_EQ_CRATES,
};

/// Macros whose arguments are formatted into human-readable text (or a
/// panic payload) and therefore count as potential leak sites. Shared
/// with the L6 format-flow sink, which catches secrets that reach these
/// macros through rebindings the token-level scan cannot see.
pub const FORMAT_MACROS: &[&str] = &[
    "format",
    "format_args",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "todo",
    "unimplemented",
];

/// Runs all three sub-rules.
pub fn check(input: &PassInput<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_format_sites(input, &mut findings);
    check_tag_eq(input, &mut findings);
    check_lib_println(input, &mut findings);
    findings
}

/// Sub-rule 1: secret-named identifiers inside format-family macros.
fn check_format_sites(input: &PassInput<'_>, findings: &mut Vec<Finding>) {
    let toks = input.toks;
    let mut i = 0usize;
    while i < toks.len() {
        let is_macro = toks[i].kind == TokKind::Ident
            && FORMAT_MACROS.contains(&toks[i].text.as_str())
            && is_punct(toks, i + 1, "!");
        if !is_macro {
            i += 1;
            continue;
        }
        let macro_name = toks[i].text.clone();
        // Find the delimited argument group and walk it.
        let open = i + 2;
        let (open_txt, close_txt) = match toks.get(open).map(|t| t.text.as_str()) {
            Some("(") => ("(", ")"),
            Some("[") => ("[", "]"),
            Some("{") => ("{", "}"),
            _ => {
                i += 1;
                continue;
            }
        };
        let mut depth = 0usize;
        let mut j = open;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                if t.text == open_txt {
                    depth += 1;
                } else if t.text == close_txt {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            match &t.kind {
                TokKind::Ident if is_secret_ident(&t.text) => {
                    if let Some(f) = input.finding(
                        Lint::SecretFormat,
                        t.line,
                        format!("secret-carrying `{}` flows into `{macro_name}!`", t.text),
                        "never format key/pad material; log lengths or redacted \
                         placeholders, or waive with `// lint: secret-ok(reason)`"
                            .to_string(),
                    ) {
                        findings.push(f);
                    }
                }
                TokKind::Str => {
                    // Inline captures: `{enc_key:?}` inside the format string.
                    for cap in inline_captures(&t.text) {
                        if is_secret_ident(&cap) {
                            if let Some(f) = input.finding(
                                Lint::SecretFormat,
                                t.line,
                                format!(
                                    "secret-carrying `{{{cap}}}` captured in `{macro_name}!` format string"
                                ),
                                "never format key/pad material; log lengths or redacted \
                                 placeholders, or waive with `// lint: secret-ok(reason)`"
                                    .to_string(),
                            ) {
                                findings.push(f);
                            }
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = j + 1;
    }
}

/// Identifier names captured inline in a format string (`{name}`,
/// `{name:?}`, `{name:>8}`), skipping `{{` escapes and positional `{}`.
fn inline_captures(fmt: &str) -> Vec<String> {
    let chars: Vec<char> = fmt.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] != '{' {
            i += 1;
            continue;
        }
        if chars.get(i + 1) == Some(&'{') {
            i += 2; // escaped brace
            continue;
        }
        let mut j = i + 1;
        let mut name = String::new();
        while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
            name.push(chars[j]);
            j += 1;
        }
        if !name.is_empty() && !name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            out.push(name);
        }
        i = j + 1;
    }
    out
}

/// Sub-rule 2: `==`/`!=` on MAC tags in the secret-eq crates.
fn check_tag_eq(input: &PassInput<'_>, findings: &mut Vec<Finding>) {
    if !SECRET_EQ_CRATES.contains(&input.ctx.crate_name.as_str()) {
        return;
    }
    let toks = input.toks;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Punct || !matches!(tok.text.as_str(), "==" | "!=") {
            continue;
        }
        let culprit = [lhs_ident(toks, i), rhs_ident(toks, i)]
            .into_iter()
            .flatten()
            .find(|id| is_tag_ident(id));
        let Some(id) = culprit else { continue };
        if let Some(f) = input.finding(
            Lint::SecretEq,
            tok.line,
            format!("MAC tag `{id}` compared with `{}` (short-circuits on first diff)", tok.text),
            "use the constant-time compare `sdimm_crypto::ct::ct_eq`, \
             or waive with `// lint: secret-ok(reason)`"
                .to_string(),
        ) {
            findings.push(f);
        }
    }
}

/// Crates where even stderr is locked down: every `eprint!`/
/// `eprintln!`/`std::io::stderr()` needs a `print-ok` waiver. The
/// telemetry crate earns the stricter rule because it owns the *one*
/// sanctioned status-line choke point (`LiveProgress::write_status`);
/// anything else writing to stderr there would bypass it silently.
const STDERR_CHOKEPOINT_CRATES: &[&str] = &["telemetry"];

/// Sub-rule 3: `println!`/`print!` in library crates; in the stderr
/// choke-point crates additionally `eprint!`/`eprintln!`/`stderr()`.
fn check_lib_println(input: &PassInput<'_>, findings: &mut Vec<Finding>) {
    if input.ctx.kind != FileKind::Lib || !LIBRARY_CRATES.contains(&input.ctx.crate_name.as_str()) {
        return;
    }
    let chokepoint = STDERR_CHOKEPOINT_CRATES.contains(&input.ctx.crate_name.as_str());
    let toks = input.toks;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let stdout_macro =
            matches!(tok.text.as_str(), "println" | "print") && is_punct(toks, i + 1, "!");
        let stderr_macro = chokepoint
            && matches!(tok.text.as_str(), "eprintln" | "eprint")
            && is_punct(toks, i + 1, "!");
        let stderr_handle = chokepoint && tok.text == "stderr" && is_punct(toks, i + 1, "(");
        if stdout_macro || stderr_macro {
            if let Some(f) = input.finding(
                Lint::LibPrintln,
                tok.line,
                format!("`{}!` in library crate `{}`", tok.text, input.ctx.crate_name),
                "route data through telemetry (TraceSink/metrics) or return it; \
                 `eprintln!` is allowed for fatal diagnostics outside the stderr \
                 choke-point crates; waive with `// lint: print-ok(reason)`"
                    .to_string(),
            ) {
                findings.push(f);
            }
        } else if stderr_handle {
            if let Some(f) = input.finding(
                Lint::LibPrintln,
                tok.line,
                format!("raw `stderr()` handle in library crate `{}`", input.ctx.crate_name),
                "stderr in this crate belongs to the sanctioned dashboard \
                 status-line writer; go through LiveProgress::write_status, \
                 or waive with `// lint: print-ok(reason)`"
                    .to_string(),
            ) {
                findings.push(f);
            }
        }
    }
}
