//! The lint passes. Each pass is a pure function over one file's token
//! stream (L1–L5) or parsed body (L6) plus context; orchestration lives
//! in [`crate::scan`].

pub mod l1_cycle;
pub mod l2_timing;
pub mod l3_secret;
pub mod l4_panic;
pub mod l5_wallclock;
pub mod l6_taint;

use crate::lexer::Tok;
use crate::walker::{in_test, waiver_line, Waiver};
use crate::{FileCtx, Finding, Lint};
use std::cell::RefCell;
use std::collections::BTreeSet;

/// Everything a pass needs to examine one file.
#[derive(Debug)]
pub struct PassInput<'a> {
    /// File classification.
    pub ctx: &'a FileCtx,
    /// Workspace-relative display path.
    pub file: &'a str,
    /// Raw source lines for excerpts.
    pub lines: &'a [&'a str],
    /// Lexed non-comment tokens.
    pub toks: &'a [Tok],
    /// `#[cfg(test)]` line ranges.
    pub test_regions: &'a [(u32, u32)],
    /// Parsed waivers.
    pub waivers: &'a [Waiver],
    /// Comment lines of waivers that suppressed at least one finding —
    /// fed by [`PassInput::finding`], consumed by the unused-waiver check.
    pub used_waiver_lines: RefCell<BTreeSet<u32>>,
}

impl PassInput<'_> {
    /// The trimmed source line at 1-based `line`, for diagnostics.
    pub fn excerpt(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// Builds a finding unless `line` is inside a test region or covered
    /// by the lint's waiver.
    pub fn finding(
        &self,
        lint: Lint,
        line: u32,
        actual: String,
        expected: String,
    ) -> Option<Finding> {
        if in_test(self.test_regions, line) {
            return None;
        }
        if let Some(name) = lint.waiver() {
            if let Some(wline) = waiver_line(self.waivers, name, line) {
                self.used_waiver_lines.borrow_mut().insert(wline);
                return None;
            }
        }
        Some(Finding {
            lint,
            file: self.file.to_string(),
            line,
            actual,
            expected,
            excerpt: self.excerpt(line),
        })
    }
}
