//! L1 — cycle-arithmetic safety.
//!
//! Bare `-`, `+`, `-=`, `+=` on identifiers that name points or spans in
//! simulated time is the bug class behind the PR-3 `cas_ready_time`
//! underflow: a `Cycle` is a `u64`, so `ready - now` on an early cycle
//! wraps to "ready in 580 million years", and `now + x` that overflows
//! wraps to "ready immediately". Production code must spell out the
//! overflow policy (`saturating_*`, `checked_*`, `wrapping_*` — all method
//! calls, hence invisible to this token rule) or carry a
//! `// lint: wrap-ok(reason)` waiver stating the invariant that makes the
//! bare operator safe.

use super::PassInput;
use crate::walker::{is_binary_op, lhs_ident, rhs_ident};
use crate::{is_cycle_ident, Finding, Lint};

/// Runs the pass.
pub fn check(input: &PassInput<'_>) -> Vec<Finding> {
    let toks = input.toks;
    let mut findings = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        let op = tok.text.as_str();
        let is_compound = matches!(op, "-=" | "+=");
        let is_plain = matches!(op, "-" | "+");
        if !(is_plain || is_compound) || crate::lexer::TokKind::Punct != tok.kind {
            continue;
        }
        if is_plain && !is_binary_op(toks, i) {
            continue; // unary minus / leading sign
        }
        let lhs = lhs_ident(toks, i);
        let rhs = rhs_ident(toks, i);
        let culprit = match (lhs, rhs) {
            (Some(l), _) if is_cycle_ident(l) => l,
            (_, Some(r)) if is_cycle_ident(r) => r,
            _ => continue,
        };
        let (safe, checked) = match op {
            "-" | "-=" => ("saturating_sub", "checked_sub"),
            _ => ("saturating_add", "checked_add"),
        };
        if let Some(f) = input.finding(
            Lint::CycleArith,
            tok.line,
            format!("bare `{op}` on cycle-typed identifier `{culprit}`"),
            format!(
                "use `{safe}`/`{checked}` so the overflow policy is explicit, \
                 or waive with `// lint: wrap-ok(invariant)`"
            ),
        ) {
            findings.push(f);
        }
    }
    findings
}
