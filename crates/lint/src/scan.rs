//! Scan orchestration: file discovery across the workspace, symbol/summary
//! construction for L6, per-file pass execution, unused-waiver emission,
//! and report formatting.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::lex;
use crate::lints::{l1_cycle, l2_timing, l3_secret, l4_panic, l5_wallclock, l6_taint, PassInput};
use crate::parse::parse_file;
use crate::summary::{build_symbols, compute_summaries, FileUnit, MAX_ROUNDS};
use crate::walker::{in_test, parse_markers, test_regions};
use crate::{FileCtx, FileKind, Finding, Lint};

/// Workspace members the scanner skips entirely: the vendored shims are
/// third-party API mimics excluded from the cargo workspace too.
const SKIPPED_MEMBERS: &[&str] = &["shims"];

/// One in-memory source unit handed to [`scan_sources`].
#[derive(Debug)]
pub struct SourceUnit {
    /// Lint context.
    pub ctx: FileCtx,
    /// Workspace-relative display path.
    pub display: String,
    /// File contents.
    pub src: String,
}

/// Runs every pass over one source string. Exposed so fixture tests can
/// scan seeded-violation files under an arbitrary crate context. L6 runs
/// with a symbol table built from this file alone.
pub fn scan_source(ctx: &FileCtx, display_path: &str, src: &str) -> Vec<Finding> {
    let unit =
        SourceUnit { ctx: ctx.clone(), display: display_path.to_string(), src: src.to_string() };
    scan_sources(&[unit], MAX_ROUNDS)
}

/// Scans a set of source units as one workspace: L1–L5 per file, L6 with
/// cross-file symbols/summaries (`rounds` fixpoint rounds — pass `1` to
/// observe what the analysis misses without the interprocedural summary
/// pass), then unused-waiver findings per file.
pub fn scan_sources(units: &[SourceUnit], rounds: usize) -> Vec<Finding> {
    // Phase 1: lex/parse everything.
    struct Prepped {
        lexed: crate::lexer::Lexed,
        waivers: Vec<crate::walker::Waiver>,
        bad: Vec<crate::walker::BadWaiver>,
        annotations: Vec<crate::walker::SecretAnnotation>,
        regions: Vec<(u32, u32)>,
        parsed: crate::parse::Parsed,
    }
    let prepped: Vec<Prepped> = units
        .iter()
        .map(|u| {
            let lexed = lex(&u.src);
            let (waivers, annotations, bad) = parse_markers(&lexed.comments);
            let regions = test_regions(&lexed);
            let parsed = parse_file(&lexed, &annotations);
            Prepped { lexed, waivers, bad, annotations, regions, parsed }
        })
        .collect();

    // Phase 2: workspace symbols and fixpoint summaries for L6. Library
    // files contribute symbols; binaries and scaffolding only consume.
    let file_units: Vec<FileUnit<'_>> = units
        .iter()
        .zip(&prepped)
        .map(|(u, p)| FileUnit {
            crate_name: &u.ctx.crate_name,
            parsed: &p.parsed,
            waivers: &p.waivers,
            test_regions: &p.regions,
            contributes: u.ctx.kind == FileKind::Lib,
        })
        .collect();
    let mut engine_used: Vec<BTreeSet<u32>> = units.iter().map(|_| BTreeSet::new()).collect();
    let symbols = build_symbols(&file_units, &mut engine_used);
    let summaries = compute_summaries(&file_units, &symbols, rounds, &mut engine_used);

    // Phase 3: per-file passes.
    let mut findings = Vec::new();
    for (i, (u, p)) in units.iter().zip(&prepped).enumerate() {
        let lines: Vec<&str> = u.src.lines().collect();
        let input = PassInput {
            ctx: &u.ctx,
            file: &u.display,
            lines: &lines,
            toks: &p.lexed.tokens,
            test_regions: &p.regions,
            waivers: &p.waivers,
            used_waiver_lines: RefCell::new(BTreeSet::new()),
        };
        for bw in &p.bad {
            findings.push(Finding {
                lint: Lint::BadWaiver,
                file: u.display.clone(),
                line: bw.line,
                actual: format!("malformed waiver `//{}`: {}", bw.text, bw.problem),
                expected:
                    "write `// lint: <name>(reason)` with a known name and a non-empty reason"
                        .to_string(),
                excerpt: input.excerpt(bw.line),
            });
        }
        findings.extend(l1_cycle::check(&input));
        findings.extend(l2_timing::check(&input));
        findings.extend(l3_secret::check(&input));
        findings.extend(l4_panic::check(&input, &u.src));
        findings.extend(l5_wallclock::check(&input));
        findings.extend(l6_taint::check(
            &input,
            &p.parsed,
            &symbols,
            &summaries,
            &mut engine_used[i],
        ));

        // Phase 4: stale suppressions. A waiver that fired nothing and an
        // annotation that bound nothing are errors — suppression debt
        // rots fast when refactors move the code out from under it.
        let pass_used = input.used_waiver_lines.borrow();
        for w in &p.waivers {
            if in_test(&p.regions, w.line)
                || pass_used.contains(&w.line)
                || engine_used[i].contains(&w.line)
            {
                continue;
            }
            findings.push(Finding {
                lint: Lint::UnusedWaiver,
                file: u.display.clone(),
                line: w.line,
                actual: format!("waiver `// lint: {}({})` suppresses no finding", w.name, w.reason),
                expected: "remove the stale waiver (or move it onto the line it justifies)"
                    .to_string(),
                excerpt: input.excerpt(w.line),
            });
        }
        for a in &p.annotations {
            if in_test(&p.regions, a.line) || p.parsed.used_annotation_lines.contains(&a.line) {
                continue;
            }
            findings.push(Finding {
                lint: Lint::UnusedWaiver,
                file: u.display.clone(),
                line: a.line,
                actual: "`// lint: secret` annotation matches no field/param/let declaration"
                    .to_string(),
                expected: "place the annotation on (or directly above) the declaration it marks"
                    .to_string(),
                excerpt: input.excerpt(a.line),
            });
        }
    }
    findings
}

/// One file queued for scanning.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative display path.
    pub display: String,
    /// Lint context.
    pub ctx: FileCtx,
}

/// Discovers all lintable sources under a workspace root.
///
/// Per member: everything in `src/**` (with `src/bin/**` and `src/main.rs`
/// classified as binaries). Integration tests, benches, and examples are
/// not scanned — their hygiene rules differ (tests compare tags, benches
/// read wall clocks) and the valuable invariants live in library code.
/// The top-level `examples/` member's demo programs are scanned as
/// binaries so cycle-arithmetic and secret-format rules still apply.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut members: Vec<(String, PathBuf)> = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if !path.is_dir() || SKIPPED_MEMBERS.contains(&name.as_str()) {
            continue;
        }
        if path.join("Cargo.toml").exists() {
            members.push((name, path));
        }
    }
    members.push(("tests".to_string(), root.join("tests")));
    members.sort();
    for (name, dir) in &members {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, root, name, &mut files)?;
        }
    }
    // Top-level examples: standalone demo binaries at the member root.
    let examples = root.join("examples");
    if examples.is_dir() {
        let mut paths: Vec<PathBuf> = fs::read_dir(&examples)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        paths.sort();
        for path in paths {
            files.push(SourceFile {
                display: display_of(&path, root),
                ctx: FileCtx {
                    crate_name: "examples".to_string(),
                    kind: FileKind::Bin,
                    is_crate_root: false,
                },
                path,
            });
        }
    }
    Ok(files)
}

fn display_of(path: &Path, root: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

/// Recursively gathers `.rs` files under one crate's `src`.
fn collect_rs(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, crate_name, out)?;
            continue;
        }
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let display = display_of(&path, root);
        let in_bin = display.contains("/src/bin/") || display.ends_with("/src/main.rs");
        let is_crate_root = display.ends_with("/src/lib.rs") || display.ends_with("/src/main.rs");
        out.push(SourceFile {
            path,
            display,
            ctx: FileCtx {
                crate_name: crate_name.to_string(),
                kind: if in_bin { FileKind::Bin } else { FileKind::Lib },
                is_crate_root,
            },
        });
    }
    Ok(())
}

/// Result of a whole-workspace scan.
#[derive(Debug)]
pub struct ScanReport {
    /// Files examined.
    pub files_scanned: usize,
    /// All findings across all files, in path order.
    pub findings: Vec<Finding>,
}

/// Scans every lintable file under `root` with the default fixpoint depth.
pub fn scan_workspace(root: &Path) -> std::io::Result<ScanReport> {
    scan_workspace_with_rounds(root, MAX_ROUNDS)
}

/// Scans every lintable file under `root` as ONE unit, so L6 sees a
/// workspace-wide symbol table and call graph. `rounds` bounds the
/// interprocedural fixpoint (`1` disables transitive summaries — used by
/// tests to demonstrate what the summary pass buys).
pub fn scan_workspace_with_rounds(root: &Path, rounds: usize) -> std::io::Result<ScanReport> {
    let files = collect_files(root)?;
    let mut units = Vec::with_capacity(files.len());
    for f in &files {
        units.push(SourceUnit {
            ctx: f.ctx.clone(),
            display: f.display.clone(),
            src: fs::read_to_string(&f.path)?,
        });
    }
    let mut findings = scan_sources(&units, rounds);
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(ScanReport { files_scanned: files.len(), findings })
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx(krate: &str) -> FileCtx {
        FileCtx { crate_name: krate.to_string(), kind: FileKind::Lib, is_crate_root: false }
    }

    #[test]
    fn scan_source_reports_bad_waiver() {
        let ctx = lib_ctx("dram");
        let f = scan_source(&ctx, "x.rs", "// lint: nope-ok(reason)\nfn a() {}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, Lint::BadWaiver);
    }

    #[test]
    fn finds_workspace_root_from_crate_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates").is_dir());
        assert!(root.join("Cargo.toml").is_file());
    }

    #[test]
    fn collect_files_classifies_bins_and_roots() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let files = collect_files(&root).expect("collect");
        let lint_root = files
            .iter()
            .find(|f| f.display == "crates/lint/src/lib.rs")
            .expect("own lib.rs scanned");
        assert!(lint_root.ctx.is_crate_root);
        assert_eq!(lint_root.ctx.kind, FileKind::Lib);
        let bench_bin = files
            .iter()
            .find(|f| f.display.starts_with("crates/bench/src/bin/"))
            .expect("bench bins scanned");
        assert_eq!(bench_bin.ctx.kind, FileKind::Bin);
        assert!(!files.iter().any(|f| f.display.contains("shims")), "shims excluded");
        assert!(!files.iter().any(|f| f.display.contains("fixtures")), "fixtures excluded");
    }
}
