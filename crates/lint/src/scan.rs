//! Scan orchestration: file discovery across the workspace, per-file pass
//! execution, and report formatting.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::lex;
use crate::lints::{l1_cycle, l2_timing, l3_secret, l4_panic, l5_wallclock, PassInput};
use crate::walker::{parse_waivers, test_regions};
use crate::{FileCtx, FileKind, Finding, Lint};

/// Workspace members the scanner skips entirely: the vendored shims are
/// third-party API mimics excluded from the cargo workspace too.
const SKIPPED_MEMBERS: &[&str] = &["shims"];

/// Runs every pass over one source string. Exposed so fixture tests can
/// scan seeded-violation files under an arbitrary crate context.
pub fn scan_source(ctx: &FileCtx, display_path: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let (waivers, bad_waivers) = parse_waivers(&lexed.comments);
    let regions = test_regions(&lexed);
    let lines: Vec<&str> = src.lines().collect();
    let input = PassInput {
        ctx,
        file: display_path,
        lines: &lines,
        toks: &lexed.tokens,
        test_regions: &regions,
        waivers: &waivers,
    };
    let mut findings = Vec::new();
    for bw in &bad_waivers {
        findings.push(Finding {
            lint: Lint::BadWaiver,
            file: display_path.to_string(),
            line: bw.line,
            actual: format!("malformed waiver `//{}`: {}", bw.text, bw.problem),
            expected: "write `// lint: <name>(reason)` with a known name and a non-empty reason"
                .to_string(),
            excerpt: input.excerpt(bw.line),
        });
    }
    findings.extend(l1_cycle::check(&input));
    findings.extend(l2_timing::check(&input));
    findings.extend(l3_secret::check(&input));
    findings.extend(l4_panic::check(&input, src));
    findings.extend(l5_wallclock::check(&input));
    findings
}

/// One file queued for scanning.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative display path.
    pub display: String,
    /// Lint context.
    pub ctx: FileCtx,
}

/// Discovers all lintable sources under a workspace root.
///
/// Per member: everything in `src/**` (with `src/bin/**` and `src/main.rs`
/// classified as binaries). Integration tests, benches, and examples are
/// not scanned — their hygiene rules differ (tests compare tags, benches
/// read wall clocks) and the valuable invariants live in library code.
/// The top-level `examples/` member's demo programs are scanned as
/// binaries so cycle-arithmetic and secret-format rules still apply.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut members: Vec<(String, PathBuf)> = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if !path.is_dir() || SKIPPED_MEMBERS.contains(&name.as_str()) {
            continue;
        }
        if path.join("Cargo.toml").exists() {
            members.push((name, path));
        }
    }
    members.push(("tests".to_string(), root.join("tests")));
    members.sort();
    for (name, dir) in &members {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, root, name, &mut files)?;
        }
    }
    // Top-level examples: standalone demo binaries at the member root.
    let examples = root.join("examples");
    if examples.is_dir() {
        let mut paths: Vec<PathBuf> = fs::read_dir(&examples)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        paths.sort();
        for path in paths {
            files.push(SourceFile {
                display: display_of(&path, root),
                ctx: FileCtx {
                    crate_name: "examples".to_string(),
                    kind: FileKind::Bin,
                    is_crate_root: false,
                },
                path,
            });
        }
    }
    Ok(files)
}

fn display_of(path: &Path, root: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

/// Recursively gathers `.rs` files under one crate's `src`.
fn collect_rs(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, crate_name, out)?;
            continue;
        }
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let display = display_of(&path, root);
        let in_bin = display.contains("/src/bin/") || display.ends_with("/src/main.rs");
        let is_crate_root = display.ends_with("/src/lib.rs") || display.ends_with("/src/main.rs");
        out.push(SourceFile {
            path,
            display,
            ctx: FileCtx {
                crate_name: crate_name.to_string(),
                kind: if in_bin { FileKind::Bin } else { FileKind::Lib },
                is_crate_root,
            },
        });
    }
    Ok(())
}

/// Result of a whole-workspace scan.
#[derive(Debug)]
pub struct ScanReport {
    /// Files examined.
    pub files_scanned: usize,
    /// All findings across all files, in path order.
    pub findings: Vec<Finding>,
}

/// Scans every lintable file under `root`.
pub fn scan_workspace(root: &Path) -> std::io::Result<ScanReport> {
    let files = collect_files(root)?;
    let mut findings = Vec::new();
    for f in &files {
        let src = fs::read_to_string(&f.path)?;
        findings.extend(scan_source(&f.ctx, &f.display, &src));
    }
    Ok(ScanReport { files_scanned: files.len(), findings })
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx(krate: &str) -> FileCtx {
        FileCtx { crate_name: krate.to_string(), kind: FileKind::Lib, is_crate_root: false }
    }

    #[test]
    fn scan_source_reports_bad_waiver() {
        let ctx = lib_ctx("dram");
        let f = scan_source(&ctx, "x.rs", "// lint: nope-ok(reason)\nfn a() {}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, Lint::BadWaiver);
    }

    #[test]
    fn finds_workspace_root_from_crate_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates").is_dir());
        assert!(root.join("Cargo.toml").is_file());
    }

    #[test]
    fn collect_files_classifies_bins_and_roots() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let files = collect_files(&root).expect("collect");
        let lint_root = files
            .iter()
            .find(|f| f.display == "crates/lint/src/lib.rs")
            .expect("own lib.rs scanned");
        assert!(lint_root.ctx.is_crate_root);
        assert_eq!(lint_root.ctx.kind, FileKind::Lib);
        let bench_bin = files
            .iter()
            .find(|f| f.display.starts_with("crates/bench/src/bin/"))
            .expect("bench bins scanned");
        assert_eq!(bench_bin.ctx.kind, FileKind::Bin);
        assert!(!files.iter().any(|f| f.display.contains("shims")), "shims excluded");
        assert!(!files.iter().any(|f| f.display.contains("fixtures")), "fixtures excluded");
    }
}
