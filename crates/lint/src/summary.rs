//! Workspace symbol table and interprocedural taint summaries for L6.
//!
//! Every function in the scanned library files gets a **taint signature**:
//! which parameters flow to its return value, whether the return is secret
//! regardless of arguments, and which parameters reach a sink inside the
//! body (directly or through further calls). Signatures are computed to a
//! fixpoint over the call graph: each round re-derives every summary from
//! the previous round's summaries, and the process stops when nothing
//! changes.
//!
//! **Why this terminates:** a summary only ever *grows* — `param_returns`
//! gains bits, `returns_secret` flips from `None` to `Some` once, and
//! `param_sinks` gains entries (first description wins, so entries never
//! mutate). The analysis is union-based with no negation, so a larger
//! input summary can only produce a larger output summary (monotone), and
//! the lattice is finite (≤ 64 params, 5 sink kinds, finitely many call
//! sites). In practice the workspace stabilizes in 2–3 rounds; the driver
//! caps at [`MAX_ROUNDS`] and accepts the partial (still sound-per-mode,
//! merely less complete) result if a pathological chain exceeds it.

use crate::flow::{analyze_fn, FnSummary};
use crate::parse::{FnDef, Parsed};
use crate::walker::{in_test, waiver_line, Waiver};
use std::collections::{BTreeMap, BTreeSet};

/// Fixpoint round cap; see the module docs for the termination argument.
pub const MAX_ROUNDS: usize = 10;

/// One struct field as the flow engine sees it.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// First path segment of the declared type.
    pub ty: String,
    /// Whether the field carries a `// lint: secret` annotation.
    pub secret: bool,
}

/// A registered function: where it lives and how to address it.
#[derive(Debug)]
pub struct FnEntry {
    /// Function name.
    pub name: String,
    /// `impl`/`trait` owner type, when any.
    pub owner: Option<String>,
    /// Crate the definition lives in.
    pub crate_name: String,
    /// Index of the source file in the scan unit list.
    pub file: usize,
    /// Index into that file's `Parsed::fns`.
    pub fn_idx: usize,
    /// Whether a fn-level `// lint: declassify(reason)` covers the
    /// signature: the whole body is exempt and the return is public.
    pub declassified: bool,
}

impl FnEntry {
    /// Display key, e.g. `Cmac::dbl` or `split_counter`.
    pub fn key(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Workspace-wide symbol information shared by every L6 run.
#[derive(Debug, Default)]
pub struct Symbols {
    /// Struct name → field name → type/secret info.
    pub structs: BTreeMap<String, BTreeMap<String, FieldInfo>>,
    /// Flat function registry.
    pub entries: Vec<FnEntry>,
    /// `(owner, name)` → entry ids, for typed method/assoc-fn resolution.
    pub by_owner_name: BTreeMap<(String, String), Vec<usize>>,
    /// Method name → entry ids (methods only), for unique-name fallback.
    pub by_method_name: BTreeMap<String, Vec<usize>>,
    /// Free-function name → entry ids.
    pub free_by_name: BTreeMap<String, Vec<usize>>,
}

/// Method names shared with std types (iterators, collections, Option/
/// Result): the untyped unique-name fallback must never claim these, or a
/// `.map(..)` iterator chain would "resolve" to some project method that
/// happens to be the only registered `map`.
const STD_METHOD_NAMES: &[&str] = &[
    "map", "get", "set", "push", "pop", "insert", "remove", "take", "replace", "clear", "next",
    "iter", "contains", "fold", "filter", "find", "clone", "write", "read", "flush", "drain",
    "extend", "swap", "split", "join", "cmp", "eq", "ne", "hash", "fmt", "from", "into", "default",
    "get_mut", "iter_mut", "as_ref", "as_mut", "to_vec", "collect", "sum", "min", "max", "rev",
    "zip", "step", "reset", "tick", "update", "advance", "load", "store",
];

impl Symbols {
    /// Resolves a method call `recv.name(..)` given the receiver's
    /// inferred type (when known). Unknown receivers resolve only if the
    /// method name is unique across every registered type AND is not a
    /// std-collection/iterator name — those stay unresolved and merely
    /// propagate taint conservatively.
    pub fn resolve_method(
        &self,
        recv_ty: Option<&str>,
        name: &str,
        crate_name: &str,
    ) -> Option<usize> {
        if let Some(ty) = recv_ty {
            let ids = self.by_owner_name.get(&(ty.to_string(), name.to_string()))?;
            return pick(ids, &self.entries, crate_name);
        }
        if STD_METHOD_NAMES.contains(&name) {
            return None;
        }
        let ids = self.by_method_name.get(name)?;
        if ids.len() == 1 {
            return Some(ids[0]);
        }
        None
    }

    /// Resolves an associated-function call `Ty::name(..)`.
    pub fn resolve_assoc(&self, ty: &str, name: &str, crate_name: &str) -> Option<usize> {
        let ids = self.by_owner_name.get(&(ty.to_string(), name.to_string()))?;
        pick(ids, &self.entries, crate_name)
    }

    /// Resolves a free-function call `name(..)`, preferring the caller's
    /// crate, then a globally unique definition.
    pub fn resolve_free(&self, name: &str, crate_name: &str) -> Option<usize> {
        let ids = self.free_by_name.get(name)?;
        pick(ids, &self.entries, crate_name)
    }
}

fn pick(ids: &[usize], entries: &[FnEntry], crate_name: &str) -> Option<usize> {
    let same: Vec<usize> =
        ids.iter().copied().filter(|&i| entries[i].crate_name == crate_name).collect();
    match same.as_slice() {
        [one] => Some(*one),
        [] if ids.len() == 1 => Some(ids[0]),
        _ => None,
    }
}

/// One file's worth of inputs to symbol construction.
pub struct FileUnit<'a> {
    /// Crate the file belongs to.
    pub crate_name: &'a str,
    /// Parsed items.
    pub parsed: &'a Parsed,
    /// The file's waivers (fn-level declassify detection).
    pub waivers: &'a [Waiver],
    /// `#[cfg(test)]` regions (test fns are not registered).
    pub test_regions: &'a [(u32, u32)],
    /// Whether the file contributes symbols (library files do; binaries
    /// and test scaffolding do not).
    pub contributes: bool,
}

/// Builds the symbol table from parsed files. Fn-level declassify waivers
/// are marked used here (per file, into `used_waivers[file]`).
pub fn build_symbols(files: &[FileUnit<'_>], used_waivers: &mut [BTreeSet<u32>]) -> Symbols {
    let mut sym = Symbols::default();
    for (fi, unit) in files.iter().enumerate() {
        if !unit.contributes {
            continue;
        }
        for s in &unit.parsed.structs {
            let fields = sym.structs.entry(s.name.clone()).or_default();
            for f in &s.fields {
                fields.insert(f.name.clone(), FieldInfo { ty: f.ty.clone(), secret: f.secret });
            }
        }
        for (idx, f) in unit.parsed.fns.iter().enumerate() {
            if in_test(unit.test_regions, f.sig_line) {
                continue;
            }
            let declassified = match waiver_line(unit.waivers, "declassify", f.sig_line) {
                Some(wline) => {
                    used_waivers[fi].insert(wline);
                    true
                }
                None => false,
            };
            let id = sym.entries.len();
            sym.entries.push(FnEntry {
                name: f.name.clone(),
                owner: f.owner.clone(),
                crate_name: unit.crate_name.to_string(),
                file: fi,
                fn_idx: idx,
                declassified,
            });
            if let Some(o) = &f.owner {
                sym.by_owner_name.entry((o.clone(), f.name.clone())).or_default().push(id);
                if f.has_self {
                    sym.by_method_name.entry(f.name.clone()).or_default().push(id);
                }
            } else {
                sym.free_by_name.entry(f.name.clone()).or_default().push(id);
            }
        }
    }
    sym
}

/// Computes every function's [`FnSummary`] to a fixpoint (≤ `rounds`
/// rounds, batch-updated per round so results are order-independent).
/// Declassify waivers that suppress a summary-level sink are marked used.
pub fn compute_summaries(
    files: &[FileUnit<'_>],
    symbols: &Symbols,
    rounds: usize,
    used_waivers: &mut [BTreeSet<u32>],
) -> Vec<FnSummary> {
    let mut summaries: Vec<FnSummary> =
        symbols.entries.iter().map(|_| FnSummary::default()).collect();
    for _ in 0..rounds {
        let mut next: Vec<FnSummary> = Vec::with_capacity(summaries.len());
        for entry in symbols.entries.iter() {
            if entry.declassified {
                next.push(FnSummary::default());
                continue;
            }
            let unit = &files[entry.file];
            let f: &FnDef = &unit.parsed.fns[entry.fn_idx];
            let mut out = FnSummary::default();
            analyze_fn(
                f,
                &entry.crate_name,
                symbols,
                &summaries,
                unit.waivers,
                &mut used_waivers[entry.file],
                &mut crate::flow::Mode::Summary(&mut out),
            );
            next.push(out);
        }
        let stable = next == summaries;
        summaries = next;
        if stable {
            break;
        }
    }
    summaries
}
