//! Token-stream walking utilities shared by the lint passes: waiver
//! parsing, `#[cfg(test)]` region tracking, and operand adjacency helpers.

use crate::lexer::{Comment, Lexed, Tok, TokKind};

/// Waiver names the passes understand, one per waivable lint.
/// `declassify` is the L6 escape hatch: it asserts a secret-dependent
/// operation is safe (controller-internal, or public by a protocol
/// argument) and must state that argument as its reason. Placed on a `fn`
/// signature line it declassifies the whole function (return value public,
/// body exempt).
pub const KNOWN_WAIVERS: &[&str] =
    &["wrap-ok", "literal-ok", "secret-ok", "print-ok", "panic-ok", "wallclock-ok", "declassify"];

/// A `// lint: secret` annotation: marks the field, parameter, or
/// let-binding declared on the same or next line as an L6 taint source.
#[derive(Debug, Clone)]
pub struct SecretAnnotation {
    /// Line the comment sits on; it covers this line and the next.
    pub line: u32,
}

/// True when a `// lint: secret` annotation covers `line`.
pub fn secret_annotated(annotations: &[SecretAnnotation], line: u32) -> bool {
    annotations.iter().any(|a| a.line == line || a.line + 1 == line)
}

/// A parsed `// lint: <name>(<reason>)` waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Waiver name (`wrap-ok`, `panic-ok`, …).
    pub name: String,
    /// Justification between the parentheses; must be non-empty.
    pub reason: String,
    /// Line the comment sits on. The waiver covers this line and the next,
    /// so it works both trailing (`code // lint: …`) and on its own line
    /// above the code.
    pub line: u32,
}

/// A malformed waiver: the marker `lint:` was present, but the name is
/// unknown or the reason is missing.
#[derive(Debug, Clone)]
pub struct BadWaiver {
    /// Offending comment text, trimmed.
    pub text: String,
    /// Line of the comment.
    pub line: u32,
    /// Why it was rejected.
    pub problem: String,
}

/// Extracts waivers (and malformed ones) from the comment list.
pub fn parse_waivers(comments: &[Comment]) -> (Vec<Waiver>, Vec<BadWaiver>) {
    let (good, _, bad) = parse_markers(comments);
    (good, bad)
}

/// Extracts waivers, `// lint: secret` annotations, and malformed markers
/// from the comment list.
pub fn parse_markers(comments: &[Comment]) -> (Vec<Waiver>, Vec<SecretAnnotation>, Vec<BadWaiver>) {
    let mut good = Vec::new();
    let mut annotations = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("lint:") else { continue };
        let rest = rest.trim();
        // `// lint: secret` is an L6 source annotation, not a waiver: it
        // takes no reason (the declaration it marks is the reason).
        if rest == "secret" {
            annotations.push(SecretAnnotation { line: c.line });
            continue;
        }
        let (name, tail) = match rest.find('(') {
            Some(p) => (rest[..p].trim(), &rest[p + 1..]),
            None => {
                bad.push(BadWaiver {
                    text: text.to_string(),
                    line: c.line,
                    problem: "missing `(reason)` — every waiver must be justified".to_string(),
                });
                continue;
            }
        };
        if !KNOWN_WAIVERS.contains(&name) {
            bad.push(BadWaiver {
                text: text.to_string(),
                line: c.line,
                problem: format!("unknown waiver `{name}` (known: {})", KNOWN_WAIVERS.join(", ")),
            });
            continue;
        }
        let reason = tail.trim_end_matches(')').trim();
        if reason.is_empty() {
            bad.push(BadWaiver {
                text: text.to_string(),
                line: c.line,
                problem: format!("waiver `{name}` has an empty reason"),
            });
            continue;
        }
        good.push(Waiver { name: name.to_string(), reason: reason.to_string(), line: c.line });
    }
    (good, annotations, bad)
}

/// True when a waiver named `name` covers `line` (same line or the line
/// directly below the comment).
pub fn waived(waivers: &[Waiver], name: &str, line: u32) -> bool {
    waiver_line(waivers, name, line).is_some()
}

/// The comment line of the waiver named `name` covering `line`, if any —
/// used by the unused-waiver tracker to mark exactly which comment fired.
pub fn waiver_line(waivers: &[Waiver], name: &str, line: u32) -> Option<u32> {
    waivers
        .iter()
        .find(|w| w.name == name && (w.line == line || w.line + 1 == line))
        .map(|w| w.line)
}

/// Inclusive line ranges of `#[cfg(test)]` items (modules or functions).
///
/// Lint rules about production hygiene do not apply to test code: tests
/// legitimately compare tags for equality, pin timing constants as
/// literals, and `unwrap()` freely.
pub fn test_regions(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(is_punct(toks, i, "#") && is_punct(toks, i + 1, "[")) {
            i += 1;
            continue;
        }
        // Collect the attribute tokens up to the matching `]`.
        let attr_start = i;
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut saw_cfg = false;
        let mut saw_test = false;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "[" | "(" => depth += 1,
                "]" | ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "cfg" if toks[j].kind == TokKind::Ident => saw_cfg = true,
                "test" if toks[j].kind == TokKind::Ident => saw_test = true,
                _ => {}
            }
            j += 1;
        }
        if !(saw_cfg && saw_test) {
            i = j + 1;
            continue;
        }
        // The item this attribute decorates: scan forward to its body and
        // match braces. Items without a brace body (e.g. `use`) end at `;`.
        let mut k = j + 1;
        // Skip any further attributes.
        while is_punct(toks, k, "#") && is_punct(toks, k + 1, "[") {
            let mut d = 0usize;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "[" | "(" => d += 1,
                    "]" | ")" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let start_line = toks[attr_start].line;
        let mut end_line = start_line;
        let mut brace_depth = 0usize;
        let mut entered = false;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "{" => {
                    brace_depth += 1;
                    entered = true;
                }
                "}" => {
                    brace_depth = brace_depth.saturating_sub(1);
                    if entered && brace_depth == 0 {
                        end_line = toks[k].line;
                        break;
                    }
                }
                ";" if !entered => {
                    end_line = toks[k].line;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        if k >= toks.len() {
            end_line = toks.last().map(|t| t.line).unwrap_or(start_line);
        }
        regions.push((start_line, end_line));
        i = k + 1;
    }
    regions
}

/// True when `line` falls inside any test region.
pub fn in_test(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Is token `i` a punct with exactly this text?
pub fn is_punct(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

/// The identifier effectively ending the operand *before* token `i`.
///
/// Handles three shapes: a plain identifier (`now`), the final segment of
/// a path/field chain (`self.bank.next_act` → `next_act`), and a call
/// result (`r.last_activity()` → `last_activity`, by matching back over
/// the argument parens).
pub fn lhs_ident(toks: &[Tok], i: usize) -> Option<&str> {
    if i == 0 {
        return None;
    }
    let mut p = i - 1;
    // Skip back over one balanced `(...)` / `[...]` group.
    if toks[p].text == ")" || toks[p].text == "]" {
        let close = toks[p].text.clone();
        let open = if close == ")" { "(" } else { "[" };
        let mut depth = 1usize;
        while p > 0 && depth > 0 {
            p -= 1;
            if toks[p].kind == TokKind::Punct {
                if toks[p].text == close {
                    depth += 1;
                } else if toks[p].text == open {
                    depth -= 1;
                }
            }
        }
        if p == 0 {
            return None;
        }
        p -= 1;
    }
    (toks[p].kind == TokKind::Ident).then(|| toks[p].text.as_str())
}

/// The identifier effectively starting the operand *after* token `i`:
/// the final segment of any `a.b.c` / `a::b` path, or `None` when the
/// operand opens with something else (a paren group, a literal, …).
pub fn rhs_ident(toks: &[Tok], i: usize) -> Option<&str> {
    let mut p = i + 1;
    if toks.get(p)?.kind != TokKind::Ident {
        return None;
    }
    let mut last = p;
    loop {
        let sep = p + 1;
        if toks
            .get(sep)
            .is_some_and(|t| t.kind == TokKind::Punct && (t.text == "." || t.text == "::"))
            && toks.get(sep + 1).is_some_and(|t| t.kind == TokKind::Ident)
        {
            p = sep + 1;
            last = p;
        } else {
            break;
        }
    }
    Some(toks[last].text.as_str())
}

/// The token starting the operand after `i`, for literal checks.
pub fn rhs_token(toks: &[Tok], i: usize) -> Option<&Tok> {
    toks.get(i + 1)
}

/// True when the `-`/`+` at token `i` is a *binary* operator: the previous
/// token must be able to end an expression.
pub fn is_binary_op(toks: &[Tok], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let prev = &toks[i - 1];
    match prev.kind {
        TokKind::Ident | TokKind::Int(_) | TokKind::Float | TokKind::Str | TokKind::Char => true,
        TokKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "}"),
        TokKind::Lifetime => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn waiver_roundtrip() {
        let l = lex("x // lint: wrap-ok(deadline is monotone by construction)\n");
        let (good, bad) = parse_waivers(&l.comments);
        assert!(bad.is_empty());
        assert_eq!(good.len(), 1);
        assert_eq!(good[0].name, "wrap-ok");
        assert_eq!(good[0].reason, "deadline is monotone by construction");
        assert!(waived(&good, "wrap-ok", 1));
        assert!(waived(&good, "wrap-ok", 2));
        assert!(!waived(&good, "wrap-ok", 3));
        assert!(!waived(&good, "panic-ok", 1));
    }

    #[test]
    fn secret_annotation_is_not_a_waiver() {
        let l = lex("pub leaves: Vec<Leaf>, // lint: secret\n");
        let (good, ann, bad) = parse_markers(&l.comments);
        assert!(good.is_empty());
        assert!(bad.is_empty());
        assert_eq!(ann.len(), 1);
        assert!(secret_annotated(&ann, 1));
        assert!(secret_annotated(&ann, 2));
        assert!(!secret_annotated(&ann, 3));
    }

    #[test]
    fn secret_annotation_with_parens_is_malformed() {
        // `secret` takes no reason; `secret(...)` is an unknown waiver.
        let l = lex("// lint: secret(because)\n");
        let (good, ann, bad) = parse_markers(&l.comments);
        assert!(good.is_empty() && ann.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn declassify_requires_reason() {
        let l = lex("// lint: declassify(leaf is re-drawn before disclosure)\n");
        let (good, bad) = parse_waivers(&l.comments);
        assert!(bad.is_empty());
        assert_eq!(good[0].name, "declassify");
        let l = lex("// lint: declassify()\n");
        let (_, bad) = parse_waivers(&l.comments);
        assert_eq!(bad.len(), 1, "declassify without a reason must be rejected");
    }

    #[test]
    fn unknown_waiver_is_rejected() {
        let l = lex("// lint: yolo-ok(because)\n");
        let (good, bad) = parse_waivers(&l.comments);
        assert!(good.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].problem.contains("unknown waiver"));
    }

    #[test]
    fn empty_reason_is_rejected() {
        let l = lex("// lint: panic-ok()\n// lint: wrap-ok\n");
        let (good, bad) = parse_waivers(&l.comments);
        assert!(good.is_empty());
        assert_eq!(bad.len(), 2);
    }

    #[test]
    fn cfg_test_module_region() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let l = lex(src);
        let regions = test_regions(&l);
        assert_eq!(regions, vec![(2, 5)]);
        assert!(!in_test(&regions, 1));
        assert!(in_test(&regions, 4));
        assert!(!in_test(&regions, 6));
    }

    #[test]
    fn cfg_feature_is_not_a_test_region() {
        let l = lex("#[cfg(feature = \"audit-strict\")]\nmod strict { fn a() {} }\n");
        assert!(test_regions(&l).is_empty());
    }

    #[test]
    fn cfg_test_with_extra_attr_and_nested_braces() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t {\n mod inner { fn f() { if x { } } }\n}\nfn after() {}\n";
        let l = lex(src);
        assert_eq!(test_regions(&l), vec![(1, 5)]);
    }

    #[test]
    fn operand_helpers() {
        let l = lex("self.bank.next_act - r.last_activity() + (a + b)");
        let toks = &l.tokens;
        let minus = toks.iter().position(|t| t.text == "-" && t.kind == TokKind::Punct).unwrap();
        assert_eq!(lhs_ident(toks, minus), Some("next_act"));
        assert_eq!(rhs_ident(toks, minus), Some("last_activity"));
        let plus = toks.iter().position(|t| t.text == "+").unwrap();
        assert_eq!(lhs_ident(toks, plus), Some("last_activity"));
        assert_eq!(rhs_ident(toks, plus), None); // paren group
    }

    #[test]
    fn unary_minus_is_not_binary() {
        let l = lex("let x = -1; let y = a - 1;");
        let toks = &l.tokens;
        let positions: Vec<usize> =
            toks.iter().enumerate().filter(|(_, t)| t.text == "-").map(|(i, _)| i).collect();
        assert!(!is_binary_op(toks, positions[0]));
        assert!(is_binary_op(toks, positions[1]));
    }
}
