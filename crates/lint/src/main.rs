//! `sdimm-lint` — the workspace static-analysis gate.
//!
//! Scans every workspace crate's sources and enforces the four lint
//! families (cycle arithmetic, timing-constant discipline, secret hygiene,
//! unsafe/panic budget). Exits nonzero when any finding survives, with
//! `file:line` diagnostics in the audit crate's actual-vs-expected style.
//!
//! Usage: `cargo run -p sdimm-lint` from anywhere inside the workspace.

#![deny(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

use sdimm_lint::scan::{find_workspace_root, scan_workspace};

fn main() -> ExitCode {
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("sdimm-lint: cannot read current directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match find_workspace_root(&cwd)
        .or_else(|| find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))))
    {
        Some(r) => r,
        None => {
            eprintln!("sdimm-lint: no workspace root (Cargo.toml with [workspace]) found");
            return ExitCode::from(2);
        }
    };
    let report = match scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sdimm-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if report.findings.is_empty() {
        println!(
            "sdimm-lint: {} files scanned, 0 findings (L1 cycle-arith, L2 timing-literal, \
             L3 secret hygiene, L4 unsafe/panic budget)",
            report.files_scanned
        );
        return ExitCode::SUCCESS;
    }
    for f in &report.findings {
        println!("{f}\n");
    }
    println!(
        "sdimm-lint: {} files scanned, {} finding(s) — see diagnostics above; \
         each names its waiver syntax if suppression is justified",
        report.files_scanned,
        report.findings.len()
    );
    ExitCode::FAILURE
}
