//! `sdimm-lint` — the workspace static-analysis gate.
//!
//! Scans every workspace crate's sources and enforces the six lint
//! families (cycle arithmetic, timing-constant discipline, secret hygiene,
//! unsafe/panic budget, wall-clock discipline, secret dataflow). Exits
//! nonzero when any finding survives, with `file:line` diagnostics in the
//! audit crate's actual-vs-expected style.
//!
//! Usage: `cargo run -p sdimm-lint [-- --pass l6] [--json PATH]`
//!
//! - `--pass <l1..l6|l0>`: keep only findings whose id starts with that
//!   family (exit code reflects the filtered set).
//! - `--json <path>`: additionally write the (filtered) findings as a
//!   JSON report for CI artifacts.

#![deny(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

use sdimm_lint::scan::{find_workspace_root, scan_workspace, ScanReport};
use sdimm_lint::Finding;

fn usage() -> ExitCode {
    eprintln!("usage: sdimm-lint [--pass l1|l2|l3|l4|l5|l6|l0] [--json PATH]");
    ExitCode::from(2)
}

/// Minimal JSON string escaping (control chars, quote, backslash) — the
/// lint crate is dependency-free by design, so no serde.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as a stable, line-oriented JSON document.
fn json_report(report: &ScanReport, findings: &[&Finding], pass: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!(
        "  \"pass_filter\": {},\n",
        match pass {
            Some(p) => format!("\"{}\"", json_escape(p)),
            None => "null".to_string(),
        }
    ));
    out.push_str(&format!("  \"finding_count\": {},\n", findings.len()));
    out.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"file\": \"{}\", \"line\": {}, \"actual\": \"{}\", \
             \"expected\": \"{}\", \"excerpt\": \"{}\"}}{}\n",
            json_escape(f.lint.id()),
            json_escape(&f.file),
            f.line,
            json_escape(&f.actual),
            json_escape(&f.expected),
            json_escape(&f.excerpt),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let mut pass_filter: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--pass" => match argv.next() {
                Some(p) if matches!(p.as_str(), "l0" | "l1" | "l2" | "l3" | "l4" | "l5" | "l6") => {
                    pass_filter = Some(p.to_ascii_uppercase());
                }
                _ => return usage(),
            },
            "--json" => match argv.next() {
                Some(p) => json_path = Some(p),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("sdimm-lint: cannot read current directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match find_workspace_root(&cwd)
        .or_else(|| find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))))
    {
        Some(r) => r,
        None => {
            eprintln!("sdimm-lint: no workspace root (Cargo.toml with [workspace]) found");
            return ExitCode::from(2);
        }
    };
    let report = match scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sdimm-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let shown: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| match &pass_filter {
            Some(p) => f.lint.id().starts_with(p.as_str()),
            None => true,
        })
        .collect();
    if let Some(path) = &json_path {
        let doc = json_report(&report, &shown, pass_filter.as_deref());
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("sdimm-lint: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    let scope = match &pass_filter {
        Some(p) => format!("{p} findings"),
        None => "findings".to_string(),
    };
    if shown.is_empty() {
        println!(
            "sdimm-lint: {} files scanned, 0 {scope} (L1 cycle-arith, L2 timing-literal, \
             L3 secret hygiene, L4 unsafe/panic budget, L5 wall-clock, L6 secret-flow)",
            report.files_scanned
        );
        return ExitCode::SUCCESS;
    }
    for f in &shown {
        println!("{f}\n");
    }
    println!(
        "sdimm-lint: {} files scanned, {} {scope} — see diagnostics above; \
         each names its waiver syntax if suppression is justified",
        report.files_scanned,
        shown.len()
    );
    ExitCode::FAILURE
}
