//! A dependency-free Rust lexer producing a flat token stream.
//!
//! This is not a full Rust parser: the lint passes only need identifiers,
//! literals, and punctuation with accurate line numbers, plus the comment
//! text (for waivers). Everything the passes do not care about — lifetimes,
//! attributes, doc comments — is still tokenized so that delimiter matching
//! and adjacency checks stay sound, but no syntax tree is ever built.
//!
//! The tricky corners handled here, because getting them wrong silently
//! drops or invents findings:
//!
//! * nested block comments (`/* /* */ */`),
//! * raw strings with arbitrary hash counts (`r##"…"##`, `br#"…"#`),
//! * char literals vs. lifetimes (`'a'` vs. `'a`),
//! * numeric literals with `_` separators, radix prefixes, and type
//!   suffixes (`0x1_F00u64`), whose integer value the L2 pass inspects,
//! * multi-character operators, longest-match first, so `->` is never
//!   seen as a bare `-`.

/// Classification of one token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (keywords are not distinguished).
    Ident,
    /// Integer literal; the decoded value when it fits in `u128`.
    Int(Option<u128>),
    /// Float literal.
    Float,
    /// String, byte-string, or raw-string literal (text is the raw body).
    Str,
    /// Char or byte literal.
    Char,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
    /// Punctuation; multi-character operators are one token.
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token classification.
    pub kind: TokKind,
    /// Source text. For [`TokKind::Str`] this is the literal's *body*
    /// (without quotes/prefix), so format-capture scanning is direct.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// A comment with its position, kept out of the main token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens, in source order.
    pub tokens: Vec<Tok>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so maximal munch is trivial.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "::", "..",
];

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// constructs are closed at end-of-file, which is good enough for lint
/// passes that only ever run on code `rustc` already accepted.
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    // Advances over `len` chars, counting newlines.
    macro_rules! bump {
        ($len:expr) => {{
            for k in 0..$len {
                if bytes[i + k] == '\n' {
                    line += 1;
                }
            }
            i += $len;
        }};
    }

    while i < n {
        let c = bytes[i];
        // Whitespace.
        if c.is_whitespace() {
            bump!(1);
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            let start_line = line;
            let mut j = i;
            while j < n && bytes[j] != '\n' {
                j += 1;
            }
            let text: String = bytes[i + 2..j].iter().collect();
            out.comments.push(Comment { text, line: start_line });
            bump!(j - i);
            continue;
        }
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let start_line = line;
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if bytes[j] == '/' && j + 1 < n && bytes[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == '*' && j + 1 < n && bytes[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let text: String = bytes[i + 2..j.saturating_sub(2).max(i + 2)].iter().collect();
            out.comments.push(Comment { text, line: start_line });
            bump!(j - i);
            continue;
        }
        // Raw strings / byte strings / raw identifiers: r"", r#""#, br"",
        // b"", b'', r#ident.
        if c == 'r' || c == 'b' {
            if let Some((tok, len)) = lex_prefixed_literal(&bytes[i..], line) {
                out.tokens.push(tok);
                bump!(len);
                continue;
            }
        }
        // Identifiers and keywords.
        if c.is_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                j += 1;
            }
            let text: String = bytes[i..j].iter().collect();
            out.tokens.push(Tok { kind: TokKind::Ident, text, line });
            bump!(j - i);
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let (tok, len) = lex_number(&bytes[i..], line);
            out.tokens.push(tok);
            bump!(len);
            continue;
        }
        // Strings.
        if c == '"' {
            let (body, len) = lex_quoted(&bytes[i..], '"');
            out.tokens.push(Tok { kind: TokKind::Str, text: body, line });
            bump!(len);
            continue;
        }
        // Char literal vs. lifetime.
        if c == '\'' {
            let (tok, len) = lex_char_or_lifetime(&bytes[i..], line);
            out.tokens.push(tok);
            bump!(len);
            continue;
        }
        // Multi-char punctuation, longest match first.
        let mut matched = false;
        for op in MULTI_PUNCT {
            let oplen = op.len();
            if i + oplen <= n && bytes[i..i + oplen].iter().collect::<String>() == **op {
                out.tokens.push(Tok { kind: TokKind::Punct, text: (*op).to_string(), line });
                bump!(oplen);
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        out.tokens.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
        bump!(1);
    }
    out
}

/// Lexes literals starting with `r` or `b`: raw strings, byte strings,
/// byte chars, and raw identifiers. Returns `None` when the `r`/`b` is
/// just the start of an ordinary identifier.
fn lex_prefixed_literal(s: &[char], line: u32) -> Option<(Tok, usize)> {
    let mut p = 1usize; // past the leading r/b
    let mut is_raw = s[0] == 'r';
    if s[0] == 'b' && p < s.len() && s[p] == 'r' {
        is_raw = true;
        p += 1;
    }
    if s[0] == 'b' && p < s.len() && s[p] == '\'' {
        // Byte char b'x'.
        let (tok, len) = lex_char_or_lifetime(&s[p..], line);
        return Some((tok, p + len));
    }
    if is_raw {
        let mut hashes = 0usize;
        while p < s.len() && s[p] == '#' {
            hashes += 1;
            p += 1;
        }
        if p < s.len() && s[p] == '"' {
            // Raw string: scan for `"` followed by `hashes` hashes.
            let body_start = p + 1;
            let mut j = body_start;
            'scan: while j < s.len() {
                if s[j] == '"' {
                    let mut k = 0;
                    while k < hashes && j + 1 + k < s.len() && s[j + 1 + k] == '#' {
                        k += 1;
                    }
                    if k == hashes {
                        break 'scan;
                    }
                }
                j += 1;
            }
            let body: String = s[body_start..j.min(s.len())].iter().collect();
            let end = (j + 1 + hashes).min(s.len());
            return Some((Tok { kind: TokKind::Str, text: body, line }, end));
        }
        if hashes == 1 && p < s.len() && (s[p].is_alphabetic() || s[p] == '_') {
            // Raw identifier r#ident.
            let mut j = p;
            while j < s.len() && (s[j].is_alphanumeric() || s[j] == '_') {
                j += 1;
            }
            let text: String = s[p..j].iter().collect();
            return Some((Tok { kind: TokKind::Ident, text, line }, j));
        }
        return None;
    }
    if s[0] == 'b' && p < s.len() && s[p] == '"' {
        let (body, len) = lex_quoted(&s[p..], '"');
        return Some((Tok { kind: TokKind::Str, text: body, line }, p + len));
    }
    None
}

/// Lexes a `delim`-quoted literal with backslash escapes, returning the
/// body text and total length including both delimiters.
fn lex_quoted(s: &[char], delim: char) -> (String, usize) {
    let mut j = 1usize;
    let mut body = String::new();
    while j < s.len() {
        if s[j] == '\\' && j + 1 < s.len() {
            body.push(s[j]);
            body.push(s[j + 1]);
            j += 2;
            continue;
        }
        if s[j] == delim {
            return (body, j + 1);
        }
        body.push(s[j]);
        j += 1;
    }
    (body, j)
}

/// Disambiguates `'a'` (char) from `'a` (lifetime/label) and lexes either.
fn lex_char_or_lifetime(s: &[char], line: u32) -> (Tok, usize) {
    // s[0] == '\''. A lifetime is `'` + ident-start + ident-chars with no
    // closing quote immediately after one char.
    if s.len() >= 2 && (s[1].is_alphabetic() || s[1] == '_') && (s.len() < 3 || s[2] != '\'') {
        let mut j = 2usize;
        while j < s.len() && (s[j].is_alphanumeric() || s[j] == '_') {
            j += 1;
        }
        let text: String = s[1..j].iter().collect();
        return (Tok { kind: TokKind::Lifetime, text, line }, j);
    }
    // Char literal, possibly escaped ('\n', '\'', '\u{1F600}').
    let mut j = 1usize;
    let mut body = String::new();
    while j < s.len() {
        if s[j] == '\\' && j + 1 < s.len() {
            body.push(s[j]);
            body.push(s[j + 1]);
            j += 2;
            continue;
        }
        if s[j] == '\'' {
            j += 1;
            break;
        }
        body.push(s[j]);
        j += 1;
    }
    (Tok { kind: TokKind::Char, text: body, line }, j)
}

/// Lexes a numeric literal, decoding integer values for the L2 pass.
fn lex_number(s: &[char], line: u32) -> (Tok, usize) {
    let mut j = 0usize;
    let mut radix = 10u32;
    if s[0] == '0' && s.len() > 1 {
        match s[1] {
            'x' | 'X' => {
                radix = 16;
                j = 2;
            }
            'o' | 'O' => {
                radix = 8;
                j = 2;
            }
            'b' | 'B' => {
                radix = 2;
                j = 2;
            }
            _ => {}
        }
    }
    let digit_start = j;
    let mut is_float = false;
    while j < s.len() {
        let c = s[j];
        if c == '_' || c.is_digit(radix) {
            j += 1;
        } else if radix == 10 && c == '.' && j + 1 < s.len() && s[j + 1].is_ascii_digit() {
            is_float = true;
            j += 1;
        } else if radix == 10
            && (c == 'e' || c == 'E')
            && j + 1 < s.len()
            && (s[j + 1].is_ascii_digit() || s[j + 1] == '+' || s[j + 1] == '-')
        {
            is_float = true;
            j += 2; // exponent marker plus sign/first digit
        } else {
            break;
        }
    }
    let digits: String = s[digit_start..j].iter().filter(|c| **c != '_' && **c != '+').collect();
    // Type suffix (u64, usize, f32, …).
    let suffix_start = j;
    while j < s.len() && (s[j].is_alphanumeric() || s[j] == '_') {
        j += 1;
    }
    let suffix: String = s[suffix_start..j].iter().collect();
    if suffix.starts_with('f') {
        is_float = true;
    }
    let text: String = s[..j].iter().collect();
    let kind = if is_float {
        TokKind::Float
    } else {
        TokKind::Int(u128::from_str_radix(&digits, radix).ok())
    };
    (Tok { kind, text, line }, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        let t = kinds("let x = a.saturating_sub(b);");
        assert_eq!(t[0], (TokKind::Ident, "let".into()));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "saturating_sub"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Punct && s == ";"));
    }

    #[test]
    fn multi_char_ops_are_single_tokens() {
        let t = kinds("a -> b => c == d != e <= f >= g .. h ..= i");
        let puncts: Vec<&str> =
            t.iter().filter(|(k, _)| *k == TokKind::Punct).map(|(_, s)| s.as_str()).collect();
        assert_eq!(puncts, vec!["->", "=>", "==", "!=", "<=", ">=", "..", "..="]);
    }

    #[test]
    fn arrow_is_not_a_bare_minus() {
        let t = kinds("fn f() -> u64 { 0 }");
        assert!(!t.iter().any(|(k, s)| *k == TokKind::Punct && s == "-"));
    }

    #[test]
    fn int_literal_values_decode() {
        let t = kinds("0x1_F00u64 17 0b101 0o17 1_000_000");
        let ints: Vec<Option<u128>> = t
            .iter()
            .filter_map(|(k, _)| match k {
                TokKind::Int(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(ints, vec![Some(0x1F00), Some(17), Some(5), Some(15), Some(1_000_000)]);
    }

    #[test]
    fn floats_are_not_ints() {
        let t = kinds("1.5 2e3 3.0f64 4f32");
        assert!(t.iter().all(|(k, _)| *k == TokKind::Float));
    }

    #[test]
    fn range_is_not_a_float() {
        let t = kinds("0..now");
        assert_eq!(t[0].0, TokKind::Int(Some(0)));
        assert_eq!(t[1], (TokKind::Punct, "..".into()));
        assert_eq!(t[2], (TokKind::Ident, "now".into()));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let l = lex("a\n// lint: wrap-ok(reason)\nb /* block */ c");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text, " lint: wrap-ok(reason)");
        assert_eq!(l.comments[0].line, 2);
        assert_eq!(l.comments[1].text, " block ");
        assert_eq!(l.comments[1].line, 3);
    }

    #[test]
    fn nested_block_comment_terminates() {
        let l = lex("/* outer /* inner */ still */ x");
        assert_eq!(l.tokens.len(), 1);
        assert_eq!(l.tokens[0].text, "x");
    }

    #[test]
    fn strings_hide_their_contents_from_token_stream() {
        let t = kinds(r#"println!("now - then {x}")"#);
        assert!(!t.iter().any(|(k, s)| *k == TokKind::Punct && s == "-"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Str && s.contains("now - then")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r###"let s = r#"quote " inside"#;"###);
        let body = l.tokens.iter().find(|t| t.kind == TokKind::Str).map(|t| t.text.clone());
        assert_eq!(body.as_deref(), Some(r#"quote " inside"#));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<&str> =
            t.iter().filter(|(k, _)| *k == TokKind::Lifetime).map(|(_, s)| s.as_str()).collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars: Vec<&str> =
            t.iter().filter(|(k, _)| *k == TokKind::Char).map(|(_, s)| s.as_str()).collect();
        assert_eq!(chars, vec!["x", "\\n"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let t = kinds(r##"let b = b"bytes"; let k = r#type;"##);
        assert!(t.iter().any(|(k, s)| *k == TokKind::Str && s == "bytes"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "type"));
    }
}
