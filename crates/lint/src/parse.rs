//! A pragmatic recursive-descent parser over the [`crate::lexer`] token
//! stream, producing per-function statement/expression trees for the L6
//! taint pass.
//!
//! This is **not** a full Rust parser and never will be: it keeps the
//! workspace's dependency-free discipline (no `syn`, no rustc), so it
//! covers the Rust subset this repository actually writes and degrades
//! gracefully everywhere else. Two properties matter:
//!
//! 1. **It never panics.** Unrecognized constructs produce
//!    [`ExprKind::Opaque`] nodes or trigger sync-token recovery; every
//!    recovery is counted in [`Parsed::recoveries`] and surfaced in the
//!    JSON report so silent coverage loss is visible.
//! 2. **Taint-relevant structure is exact.** Let-bindings, assignments,
//!    field/method projections, calls, indexes, `if`/`while`/`match`/`for`
//!    shapes, closures and format-macro capture strings — the shapes the
//!    flow engine consumes — are parsed faithfully; the rest (types,
//!    generics, attributes, patterns beyond their bindings) is skipped.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::walker::SecretAnnotation;
use std::collections::BTreeSet;

/// One parsed source file: function bodies, struct field tables, and the
/// annotation lines the parser actually bound to a declaration.
#[derive(Debug, Default)]
pub struct Parsed {
    /// Every function with a body, including methods and nested fns.
    pub fns: Vec<FnDef>,
    /// Struct definitions with named fields (for receiver-type inference
    /// and `// lint: secret` field annotations).
    pub structs: Vec<StructDef>,
    /// Lines of `// lint: secret` annotations that matched a field, param,
    /// or let-binding; unmatched ones become `unused-waiver` findings.
    pub used_annotation_lines: BTreeSet<u32>,
    /// Number of recovery events (token runs the parser skipped).
    pub recoveries: u32,
}

/// A struct with named fields.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// Declared fields in order.
    pub fields: Vec<FieldDef>,
}

/// One named struct field.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// First path segment of the declared type (`Vec`, `Stash`, `u64`, …).
    pub ty: String,
    /// Whether a `// lint: secret` annotation covers the declaration.
    pub secret: bool,
}

/// A function (free, method, or nested) with its body.
#[derive(Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// `impl`/`trait` type the function is defined on, when any.
    pub owner: Option<String>,
    /// Line of the `fn` keyword.
    pub sig_line: u32,
    /// Parameters in order; a `self` receiver is index 0 with name `self`.
    pub params: Vec<ParamDef>,
    /// Whether params[0] is a `self` receiver.
    pub has_self: bool,
    /// The body block.
    pub body: Block,
}

/// One function parameter.
#[derive(Debug, Clone)]
pub struct ParamDef {
    /// Binding name (first identifier of the pattern).
    pub name: String,
    /// First path segment of the declared type, when present.
    pub ty: Option<String>,
    /// Whether a `// lint: secret` annotation covers the declaration.
    pub secret: bool,
}

/// A `{ ... }` block.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in order; a trailing [`Stmt::Expr`] is the block value.
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let PAT(: TY)? (= EXPR)? (else BLOCK)?;`
    Let {
        /// Identifiers bound by the pattern.
        binds: Vec<String>,
        /// First path segment of the type annotation, when present.
        ty: Option<String>,
        /// Initializer expression.
        init: Option<Expr>,
        /// Whether a `// lint: secret` annotation covers the binding.
        secret: bool,
        /// Line of the `let`.
        line: u32,
    },
    /// An expression statement (`EXPR;`).
    Semi(Expr),
    /// A trailing expression without `;` (the block's value).
    Expr(Expr),
}

/// One expression node with its source line.
#[derive(Debug)]
pub struct Expr {
    /// Shape of the expression.
    pub kind: ExprKind,
    /// 1-based line of the expression's first token.
    pub line: u32,
}

/// A `match` arm.
#[derive(Debug)]
pub struct Arm {
    /// Identifiers bound by the arm pattern.
    pub binds: Vec<String>,
    /// `if` guard expression, when present.
    pub guard: Option<Expr>,
    /// Arm body.
    pub body: Expr,
}

/// Expression shapes the flow engine distinguishes.
#[derive(Debug)]
pub enum ExprKind {
    /// Numeric/char/bool literal (taint-free).
    Lit,
    /// String literal with its body text (format-capture scanning).
    LitStr(String),
    /// Path: `x`, `a::b::c`, `Self::helper`. One segment = variable read.
    Path(Vec<String>),
    /// Field projection `base.field` (tuple indices become `"0"`, `"1"`).
    Field(Box<Expr>, String),
    /// Call with an arbitrary callee expression.
    Call(Box<Expr>, Vec<Expr>),
    /// Method call `recv.name(args)`.
    Method(Box<Expr>, String, Vec<Expr>),
    /// Macro invocation `name!(args)`; args parsed best-effort.
    Macro(String, Vec<Expr>),
    /// Index `base[idx]`.
    Index(Box<Expr>, Box<Expr>),
    /// Unary `!`/`-`/`*`/`&` (operator text kept for diagnostics).
    Unary(&'static str, Box<Expr>),
    /// Binary operator.
    Binary(String, Box<Expr>, Box<Expr>),
    /// Assignment or compound assignment (`=`, `+=`, `^=`, …).
    Assign(Box<Expr>, String, Box<Expr>),
    /// `expr as TY` (type skipped; taint flows through).
    Cast(Box<Expr>),
    /// `expr?`.
    Try(Box<Expr>),
    /// Range `a..b` / `a..=b` with optional endpoints.
    Range(Option<Box<Expr>>, Option<Box<Expr>>),
    /// Tuple or array literal.
    Tuple(Vec<Expr>),
    /// Struct literal `Ty { field: expr, ..rest }`.
    StructLit(String, Vec<(String, Expr)>, Option<Box<Expr>>),
    /// `if`/`if let`; `cond_binds` are `if let` pattern bindings.
    If {
        /// Condition (the `if let` scrutinee when `cond_binds` is
        /// non-empty).
        cond: Box<Expr>,
        /// Bindings introduced by an `if let` pattern.
        cond_binds: Vec<String>,
        /// Then-block.
        then_b: Block,
        /// `else` expression (block or chained `if`).
        else_b: Option<Box<Expr>>,
    },
    /// `while`/`while let`.
    While {
        /// Condition (the `while let` scrutinee when `cond_binds` is
        /// non-empty).
        cond: Box<Expr>,
        /// Bindings introduced by a `while let` pattern.
        cond_binds: Vec<String>,
        /// Loop body.
        body: Block,
    },
    /// `loop { ... }`.
    Loop(Block),
    /// `for PAT in ITER { ... }`.
    For {
        /// Identifiers bound by the loop pattern.
        binds: Vec<String>,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `match scrutinee { arms }`.
    Match(Box<Expr>, Vec<Arm>),
    /// Closure `|params| body` (params recorded, body parsed).
    Closure(Vec<String>, Box<Expr>),
    /// Block expression.
    Block(Block),
    /// `return expr?`.
    Return(Option<Box<Expr>>),
    /// `break expr?`.
    Break(Option<Box<Expr>>),
    /// `continue`.
    Continue,
    /// Anything the parser does not model.
    Opaque,
}

/// Keywords that can never be expression-leading identifiers for us.
fn is_reserved(s: &str) -> bool {
    matches!(
        s,
        "let"
            | "fn"
            | "struct"
            | "enum"
            | "impl"
            | "trait"
            | "mod"
            | "use"
            | "pub"
            | "const"
            | "static"
            | "type"
            | "where"
            | "unsafe"
            | "extern"
            | "crate"
            | "mut"
            | "ref"
            | "in"
            | "else"
            | "as"
            | "dyn"
            | "macro_rules"
    )
}

/// Parses one lexed file. `annotations` are its `// lint: secret` markers.
pub fn parse_file(lexed: &Lexed, annotations: &[SecretAnnotation]) -> Parsed {
    // Lines holding at least one code token: a trailing annotation (code on
    // its own line) binds only that line; an own-line annotation binds only
    // the next line. Without this, `k: &[u8], // lint: secret` would bleed
    // onto the parameter declared on the following line.
    let code_lines: std::collections::BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let mut p = Parser {
        toks: &lexed.tokens,
        pos: 0,
        ann: annotations,
        code_lines,
        out: Parsed::default(),
    };
    p.items(None);
    p.out
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
    ann: &'a [SecretAnnotation],
    code_lines: std::collections::BTreeSet<u32>,
    out: Parsed,
}

impl<'a> Parser<'a> {
    // ------------------------------------------------------------------
    // Token-stream primitives.
    // ------------------------------------------------------------------

    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + off)
    }

    fn line(&self) -> u32 {
        self.peek().map(|t| t.line).unwrap_or(0)
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, text: &str) -> bool {
        self.peek().is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
    }

    fn at_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.kind == TokKind::Ident && t.text == kw)
    }

    fn eat_punct(&mut self, text: &str) -> bool {
        if self.at_punct(text) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident_text(&self) -> Option<&'a str> {
        self.peek().and_then(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str()))
    }

    /// Whether annotation `a` covers a declaration at `line` (trailing
    /// annotations cover their own line; own-line annotations cover the
    /// next line — see [`parse_file`]).
    fn ann_covers(&self, a: &SecretAnnotation, line: u32) -> bool {
        if self.code_lines.contains(&a.line) {
            a.line == line
        } else {
            a.line + 1 == line
        }
    }

    fn secret_here(&self, line: u32) -> bool {
        self.ann.iter().any(|a| self.ann_covers(a, line))
    }

    fn mark_annotation(&mut self, line: u32) {
        let used: Vec<u32> =
            self.ann.iter().filter(|a| self.ann_covers(a, line)).map(|a| a.line).collect();
        self.out.used_annotation_lines.extend(used);
    }

    /// Skips a balanced group starting at the current open delimiter.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        if !self.eat_punct(open) {
            return;
        }
        let mut depth = 1usize;
        while let Some(t) = self.bump() {
            if t.kind == TokKind::Punct {
                if t.text == open {
                    depth += 1;
                } else if t.text == close {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
            }
        }
    }

    /// Skips a generics group `<...>`, tolerating `>>` closing two levels.
    fn skip_angles(&mut self) {
        if !self.at_punct("<") {
            return;
        }
        self.pos += 1;
        let mut depth = 1i32;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" | "<<" => depth += if t.text == "<<" { 2 } else { 1 },
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    "(" => {
                        self.skip_balanced("(", ")");
                        continue;
                    }
                    "[" => {
                        self.skip_balanced("[", "]");
                        continue;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
            if depth <= 0 {
                return;
            }
        }
    }

    /// Skips tokens until `;`/`{`-body end at depth 0 (item recovery).
    fn skip_to_item_end(&mut self) {
        while let Some(t) = self.peek() {
            match (t.kind == TokKind::Punct, t.text.as_str()) {
                (true, ";") => {
                    self.pos += 1;
                    return;
                }
                (true, "{") => {
                    self.skip_balanced("{", "}");
                    return;
                }
                (true, "(") => self.skip_balanced("(", ")"),
                (true, "[") => self.skip_balanced("[", "]"),
                (true, "}") => return,
                _ => self.pos += 1,
            }
        }
    }

    /// Skips a type position: path segments, `&`/lifetimes, generics,
    /// tuples, slices, `dyn`/`impl` bounds. Stops at `,` `;` `=` `{` `)`
    /// `>` `where` at depth 0.
    fn skip_type(&mut self) {
        loop {
            let Some(t) = self.peek() else { return };
            match t.kind {
                TokKind::Lifetime => {
                    self.pos += 1;
                }
                TokKind::Ident => {
                    if matches!(t.text.as_str(), "where") {
                        return;
                    }
                    self.pos += 1;
                    self.skip_angles();
                }
                TokKind::Punct => match t.text.as_str() {
                    "&" | "&&" | "*" | "::" | "!" => self.pos += 1,
                    "<" => self.skip_angles(),
                    "(" => self.skip_balanced("(", ")"),
                    "[" => self.skip_balanced("[", "]"),
                    "->" => self.pos += 1,
                    _ => return,
                },
                _ => return,
            }
        }
    }

    /// First meaningful path segment of a type position, without consuming.
    fn type_head(&self) -> Option<String> {
        let mut i = self.pos;
        while let Some(t) = self.toks.get(i) {
            match t.kind {
                TokKind::Ident if !matches!(t.text.as_str(), "dyn" | "impl" | "mut") => {
                    return Some(t.text.clone());
                }
                TokKind::Ident | TokKind::Lifetime => i += 1,
                TokKind::Punct if matches!(t.text.as_str(), "&" | "&&" | "*" | "(" | "[") => i += 1,
                _ => return None,
            }
        }
        None
    }

    /// Skips attributes `#[...]` / `#![...]`.
    fn skip_attrs(&mut self) {
        while self.at_punct("#") {
            self.pos += 1;
            self.eat_punct("!");
            self.skip_balanced("[", "]");
        }
    }

    // ------------------------------------------------------------------
    // Items.
    // ------------------------------------------------------------------

    /// Parses items until end of stream or a closing `}` at this level.
    fn items(&mut self, owner: Option<&str>) {
        loop {
            self.skip_attrs();
            let Some(t) = self.peek() else { return };
            if t.kind == TokKind::Punct && t.text == "}" {
                return;
            }
            if self.eat_kw("pub") {
                if self.at_punct("(") {
                    self.skip_balanced("(", ")");
                }
                continue;
            }
            if self.eat_kw("unsafe") {
                continue;
            }
            match self.ident_text() {
                Some("fn") => {
                    self.pos += 1;
                    self.parse_fn(owner);
                }
                Some("mod") => {
                    self.pos += 1;
                    self.bump(); // name
                    if self.at_punct("{") {
                        self.pos += 1;
                        self.items(None);
                        self.eat_punct("}");
                    } else {
                        self.eat_punct(";");
                    }
                }
                Some("impl") => {
                    self.pos += 1;
                    self.parse_impl();
                }
                Some("trait") => {
                    self.pos += 1;
                    let name = self.ident_text().map(str::to_string);
                    self.bump();
                    // Skip generics / supertraits / where up to the body.
                    while let Some(t) = self.peek() {
                        if t.kind == TokKind::Punct && t.text == "{" {
                            break;
                        }
                        if t.kind == TokKind::Punct && t.text == "<" {
                            self.skip_angles();
                        } else {
                            self.pos += 1;
                        }
                    }
                    if self.at_punct("{") {
                        self.pos += 1;
                        self.items(name.as_deref());
                        self.eat_punct("}");
                    }
                }
                Some("struct") => {
                    self.pos += 1;
                    self.parse_struct();
                }
                Some("enum") | Some("union") => {
                    self.pos += 1;
                    self.bump(); // name
                    self.skip_angles();
                    self.skip_to_item_end();
                }
                Some("use") | Some("type") | Some("const") | Some("static") | Some("extern") => {
                    self.pos += 1;
                    self.skip_to_item_end();
                }
                Some("macro_rules") => {
                    self.pos += 1;
                    self.eat_punct("!");
                    self.bump(); // name
                    self.skip_balanced("{", "}");
                }
                _ => {
                    self.out.recoveries += 1;
                    self.skip_to_item_end();
                }
            }
        }
    }

    fn parse_impl(&mut self) {
        self.skip_angles();
        // `impl Type {` or `impl Trait for Type {`: the owner is the last
        // path segment before the body, after `for` when present.
        let mut name: Option<String> = None;
        while let Some(t) = self.peek() {
            match t.kind {
                TokKind::Ident if t.text == "for" => {
                    name = None;
                    self.pos += 1;
                }
                TokKind::Ident if t.text == "where" => {
                    while let Some(t) = self.peek() {
                        if t.kind == TokKind::Punct && t.text == "{" {
                            break;
                        }
                        if t.kind == TokKind::Punct && t.text == "<" {
                            self.skip_angles();
                        } else {
                            self.pos += 1;
                        }
                    }
                }
                TokKind::Ident => {
                    name = Some(t.text.clone());
                    self.pos += 1;
                    self.skip_angles();
                }
                TokKind::Punct if t.text == "{" => break,
                TokKind::Punct if t.text == "<" => self.skip_angles(),
                _ => self.pos += 1,
            }
        }
        if self.at_punct("{") {
            self.pos += 1;
            let owner = name;
            self.items(owner.as_deref());
            self.eat_punct("}");
        }
    }

    fn parse_struct(&mut self) {
        let name = self.ident_text().map(str::to_string).unwrap_or_default();
        self.bump();
        self.skip_angles();
        if self.at_punct(";") || self.at_punct("(") {
            // Unit or tuple struct: no named fields to table.
            self.skip_to_item_end();
            return;
        }
        // Possible `where` clause before `{`.
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct && t.text == "{" {
                break;
            }
            if t.kind == TokKind::Punct && t.text == "<" {
                self.skip_angles();
            } else {
                self.pos += 1;
            }
        }
        let mut fields = Vec::new();
        if self.at_punct("{") {
            self.pos += 1;
            loop {
                self.skip_attrs();
                if self.at_punct("}") {
                    self.pos += 1;
                    break;
                }
                if self.eat_kw("pub") {
                    if self.at_punct("(") {
                        self.skip_balanced("(", ")");
                    }
                    continue;
                }
                let Some(fname) = self.ident_text().map(str::to_string) else {
                    self.out.recoveries += 1;
                    self.skip_to_item_end();
                    break;
                };
                let fline = self.line();
                self.pos += 1;
                if !self.eat_punct(":") {
                    self.out.recoveries += 1;
                    self.skip_to_item_end();
                    break;
                }
                let ty = self.type_head().unwrap_or_default();
                self.skip_type();
                let secret = self.secret_here(fline);
                if secret {
                    self.mark_annotation(fline);
                }
                fields.push(FieldDef { name: fname, ty, secret });
                self.eat_punct(",");
            }
        }
        self.out.structs.push(StructDef { name, fields });
    }

    fn parse_fn(&mut self, owner: Option<&str>) {
        let sig_line = self.line();
        let name = self.ident_text().map(str::to_string).unwrap_or_default();
        self.bump();
        self.skip_angles();
        let mut params = Vec::new();
        let mut has_self = false;
        if self.at_punct("(") {
            self.pos += 1;
            loop {
                self.skip_attrs();
                if self.at_punct(")") {
                    self.pos += 1;
                    break;
                }
                let pline = self.line();
                // Strip leading `&`, lifetimes, `mut`, `ref`.
                while self.at_punct("&")
                    || self.at_punct("&&")
                    || self.peek().is_some_and(|t| t.kind == TokKind::Lifetime)
                    || self.at_kw("mut")
                    || self.at_kw("ref")
                {
                    self.pos += 1;
                }
                if self.at_kw("self") {
                    self.pos += 1;
                    has_self = true;
                    let secret = self.secret_here(pline);
                    if secret {
                        self.mark_annotation(pline);
                    }
                    params.push(ParamDef { name: "self".into(), ty: None, secret });
                    // A typed `self: Arc<Self>` — skip the type.
                    if self.eat_punct(":") {
                        self.skip_type();
                    }
                    self.eat_punct(",");
                    continue;
                }
                // Pattern up to `:` — collect binds; `(a, b): T` binds both
                // but positional summaries use the first name.
                let mut pat_toks: Vec<&Tok> = Vec::new();
                let mut depth = 0usize;
                while let Some(t) = self.peek() {
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" => depth += 1,
                            ")" | "]" => {
                                if depth == 0 {
                                    break;
                                }
                                depth -= 1;
                            }
                            ":" if depth == 0 => break,
                            "," if depth == 0 => break,
                            _ => {}
                        }
                    }
                    pat_toks.push(t);
                    self.pos += 1;
                }
                let binds = pattern_binds(&pat_toks);
                let pname = binds.first().cloned().unwrap_or_else(|| "_".into());
                let mut ty = None;
                if self.eat_punct(":") {
                    ty = self.type_head();
                    self.skip_type();
                }
                let secret = self.secret_here(pline);
                if secret {
                    self.mark_annotation(pline);
                }
                params.push(ParamDef { name: pname, ty, secret });
                self.eat_punct(",");
            }
        }
        // Return type / where clause up to the body (or `;` for trait sigs).
        while let Some(t) = self.peek() {
            match (t.kind == TokKind::Punct, t.text.as_str()) {
                (true, "{") => break,
                (true, ";") => {
                    self.pos += 1;
                    return; // no body
                }
                (true, "<") => self.skip_angles(),
                (true, "(") => self.skip_balanced("(", ")"),
                (true, "[") => self.skip_balanced("[", "]"),
                _ => self.pos += 1,
            }
        }
        let body = self.parse_block();
        self.out.fns.push(FnDef {
            name,
            owner: owner.map(str::to_string),
            sig_line,
            params,
            has_self,
            body,
        });
    }

    // ------------------------------------------------------------------
    // Statements and blocks.
    // ------------------------------------------------------------------

    fn parse_block(&mut self) -> Block {
        let mut block = Block::default();
        if !self.eat_punct("{") {
            return block;
        }
        loop {
            self.skip_attrs();
            let Some(t) = self.peek() else { return block };
            if t.kind == TokKind::Punct && t.text == "}" {
                self.pos += 1;
                return block;
            }
            if t.kind == TokKind::Punct && t.text == ";" {
                self.pos += 1;
                continue;
            }
            // Loop labels: `'outer: while ...`.
            if t.kind == TokKind::Lifetime {
                self.pos += 1;
                self.eat_punct(":");
                continue;
            }
            match self.ident_text() {
                Some("let") => {
                    let line = self.line();
                    self.pos += 1;
                    block.stmts.push(self.parse_let(line));
                }
                // Items nested in a body: parse fns (fixtures use them),
                // skip the rest.
                Some("fn") => {
                    self.pos += 1;
                    self.parse_fn(None);
                }
                Some("use") | Some("const") | Some("static") | Some("type") | Some("struct")
                | Some("enum") | Some("impl") | Some("trait") | Some("mod")
                | Some("macro_rules") => {
                    self.skip_to_item_end();
                }
                Some("unsafe") => {
                    self.pos += 1;
                }
                _ => {
                    let e = self.parse_expr(false);
                    if self.eat_punct(";") {
                        block.stmts.push(Stmt::Semi(e));
                    } else {
                        block.stmts.push(Stmt::Expr(e));
                    }
                }
            }
        }
    }

    fn parse_let(&mut self, line: u32) -> Stmt {
        // Pattern up to `:` / `=` / `;` / `else` at depth 0.
        let mut pat_toks: Vec<&Tok> = Vec::new();
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            match t.kind {
                TokKind::Punct => match t.text.as_str() {
                    "(" | "[" | "{" => {
                        depth += 1;
                        pat_toks.push(t);
                    }
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                        pat_toks.push(t);
                    }
                    ":" | "=" | ";" if depth == 0 => break,
                    _ => pat_toks.push(t),
                },
                TokKind::Ident if depth == 0 && t.text == "else" => break,
                _ => pat_toks.push(t),
            }
            self.pos += 1;
        }
        let binds = pattern_binds(&pat_toks);
        let mut ty = None;
        if self.eat_punct(":") {
            ty = self.type_head();
            self.skip_type();
        }
        let mut init = None;
        if self.eat_punct("=") {
            init = Some(self.parse_expr(false));
        }
        if self.eat_kw("else") {
            // let-else diverging block.
            let _ = self.parse_block();
        }
        self.eat_punct(";");
        let secret = self.secret_here(line);
        if secret {
            self.mark_annotation(line);
        }
        Stmt::Let { binds, ty, init, secret, line }
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing).
    // ------------------------------------------------------------------

    /// Full expression, lowest precedence (assignment).
    /// `no_struct` suppresses struct-literal parsing (condition position).
    fn parse_expr(&mut self, no_struct: bool) -> Expr {
        let line = self.line();
        let lhs = self.parse_range(no_struct);
        if let Some(t) = self.peek() {
            if t.kind == TokKind::Punct
                && matches!(
                    t.text.as_str(),
                    "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
                )
            {
                let op = t.text.clone();
                self.pos += 1;
                let rhs = self.parse_expr(no_struct);
                return Expr { kind: ExprKind::Assign(Box::new(lhs), op, Box::new(rhs)), line };
            }
        }
        lhs
    }

    fn parse_range(&mut self, no_struct: bool) -> Expr {
        let line = self.line();
        if self.at_punct("..") || self.at_punct("..=") {
            self.pos += 1;
            if self.range_rhs_follows() {
                let hi = self.parse_binary(0, no_struct);
                return Expr { kind: ExprKind::Range(None, Some(Box::new(hi))), line };
            }
            return Expr { kind: ExprKind::Range(None, None), line };
        }
        let lo = self.parse_binary(0, no_struct);
        if self.at_punct("..") || self.at_punct("..=") {
            self.pos += 1;
            if self.range_rhs_follows() {
                let hi = self.parse_binary(0, no_struct);
                return Expr {
                    kind: ExprKind::Range(Some(Box::new(lo)), Some(Box::new(hi))),
                    line,
                };
            }
            return Expr { kind: ExprKind::Range(Some(Box::new(lo)), None), line };
        }
        lo
    }

    fn range_rhs_follows(&self) -> bool {
        self.peek().is_some_and(|t| match t.kind {
            TokKind::Punct => matches!(t.text.as_str(), "(" | "[" | "-" | "!" | "*" | "&"),
            TokKind::Ident => !is_reserved(&t.text) || t.text == "self",
            TokKind::Int(_) | TokKind::Float => true,
            _ => false,
        })
    }

    /// Binary operators by precedence level (loosest first).
    fn parse_binary(&mut self, level: usize, no_struct: bool) -> Expr {
        const LEVELS: &[&[&str]] = &[
            &["||"],
            &["&&"],
            &["==", "!=", "<", ">", "<=", ">="],
            &["|"],
            &["^"],
            &["&"],
            &["<<", ">>"],
            &["+", "-"],
            &["*", "/", "%"],
        ];
        if level >= LEVELS.len() {
            return self.parse_unary(no_struct);
        }
        let line = self.line();
        let mut lhs = self.parse_binary(level + 1, no_struct);
        while let Some(t) = self.peek() {
            if t.kind != TokKind::Punct || !LEVELS[level].contains(&t.text.as_str()) {
                break;
            }
            let op = t.text.clone();
            self.pos += 1;
            let rhs = self.parse_binary(level + 1, no_struct);
            lhs = Expr { kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), line };
        }
        lhs
    }

    fn parse_unary(&mut self, no_struct: bool) -> Expr {
        let line = self.line();
        for (p, name) in [("!", "!"), ("-", "-"), ("*", "*")] {
            if self.at_punct(p) {
                self.pos += 1;
                let inner = self.parse_unary(no_struct);
                return Expr { kind: ExprKind::Unary(name, Box::new(inner)), line };
            }
        }
        if self.at_punct("&") || self.at_punct("&&") {
            let double = self.at_punct("&&");
            self.pos += 1;
            self.eat_kw("mut");
            let inner = self.parse_unary(no_struct);
            let one = Expr { kind: ExprKind::Unary("&", Box::new(inner)), line };
            if double {
                return Expr { kind: ExprKind::Unary("&", Box::new(one)), line };
            }
            return one;
        }
        self.parse_postfix(no_struct)
    }

    fn parse_postfix(&mut self, no_struct: bool) -> Expr {
        let mut e = self.parse_primary(no_struct);
        loop {
            let line = self.line();
            if self.at_punct(".") {
                self.pos += 1;
                if self.eat_kw("await") {
                    continue;
                }
                match self.peek() {
                    Some(t) if t.kind == TokKind::Ident => {
                        let name = t.text.clone();
                        self.pos += 1;
                        // Turbofish on method calls.
                        if self.at_punct("::") {
                            self.pos += 1;
                            self.skip_angles();
                        }
                        if self.at_punct("(") {
                            let args = self.parse_args();
                            e = Expr { kind: ExprKind::Method(Box::new(e), name, args), line };
                        } else {
                            e = Expr { kind: ExprKind::Field(Box::new(e), name), line };
                        }
                    }
                    Some(t) if matches!(t.kind, TokKind::Int(_)) => {
                        let name = t.text.clone();
                        self.pos += 1;
                        e = Expr { kind: ExprKind::Field(Box::new(e), name), line };
                    }
                    _ => {
                        self.out.recoveries += 1;
                        break;
                    }
                }
            } else if self.at_punct("(") {
                let args = self.parse_args();
                e = Expr { kind: ExprKind::Call(Box::new(e), args), line };
            } else if self.at_punct("[") {
                self.pos += 1;
                let idx = self.parse_expr(false);
                self.eat_punct("]");
                e = Expr { kind: ExprKind::Index(Box::new(e), Box::new(idx)), line };
            } else if self.at_punct("?") {
                self.pos += 1;
                e = Expr { kind: ExprKind::Try(Box::new(e)), line };
            } else if self.at_kw("as") {
                self.pos += 1;
                self.skip_type();
                e = Expr { kind: ExprKind::Cast(Box::new(e)), line };
            } else {
                break;
            }
        }
        e
    }

    /// Parses a parenthesized argument list.
    fn parse_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_punct("(") {
            return args;
        }
        loop {
            if self.at_punct(")") {
                self.pos += 1;
                return args;
            }
            if self.peek().is_none() {
                return args;
            }
            args.push(self.parse_expr(false));
            if !self.eat_punct(",") && !self.at_punct(")") {
                // Unparsable argument tail: skip to `,` or `)`.
                self.out.recoveries += 1;
                let mut depth = 0usize;
                while let Some(t) = self.peek() {
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            // A closer at depth 0 ends the argument list
                            // (or means we escaped it — stop either way).
                            ")" | "]" | "}" if depth == 0 => break,
                            ")" | "]" | "}" => depth -= 1,
                            "," if depth == 0 => {
                                self.pos += 1;
                                break;
                            }
                            _ => {}
                        }
                    }
                    self.pos += 1;
                }
            }
        }
    }

    fn parse_primary(&mut self, no_struct: bool) -> Expr {
        let line = self.line();
        let Some(t) = self.peek() else {
            return Expr { kind: ExprKind::Opaque, line };
        };
        match t.kind {
            TokKind::Int(_) | TokKind::Float | TokKind::Char => {
                self.pos += 1;
                Expr { kind: ExprKind::Lit, line }
            }
            TokKind::Str => {
                let body = t.text.clone();
                self.pos += 1;
                Expr { kind: ExprKind::LitStr(body), line }
            }
            TokKind::Lifetime => {
                // Label on a loop expression: `'a: loop { }`.
                self.pos += 1;
                self.eat_punct(":");
                self.parse_primary(no_struct)
            }
            TokKind::Punct => match t.text.as_str() {
                "(" => {
                    self.pos += 1;
                    let mut elems = Vec::new();
                    let mut tuple = false;
                    while !self.at_punct(")") && self.peek().is_some() {
                        elems.push(self.parse_expr(false));
                        if self.eat_punct(",") {
                            tuple = true;
                        } else {
                            break;
                        }
                    }
                    self.eat_punct(")");
                    if !tuple && elems.len() == 1 {
                        elems.pop().unwrap_or(Expr { kind: ExprKind::Opaque, line })
                    } else {
                        Expr { kind: ExprKind::Tuple(elems), line }
                    }
                }
                "[" => {
                    self.pos += 1;
                    let mut elems = Vec::new();
                    while !self.at_punct("]") && self.peek().is_some() {
                        elems.push(self.parse_expr(false));
                        if !self.eat_punct(",") && !self.eat_punct(";") {
                            break;
                        }
                    }
                    self.eat_punct("]");
                    Expr { kind: ExprKind::Tuple(elems), line }
                }
                "{" => Expr { kind: ExprKind::Block(self.parse_block()), line },
                "|" | "||" => self.parse_closure(line),
                _ => {
                    self.pos += 1;
                    self.out.recoveries += 1;
                    Expr { kind: ExprKind::Opaque, line }
                }
            },
            TokKind::Ident => match t.text.as_str() {
                "if" => {
                    self.pos += 1;
                    self.parse_if(line)
                }
                "while" => {
                    self.pos += 1;
                    let (cond, binds) = self.parse_cond();
                    let body = self.parse_block();
                    Expr {
                        kind: ExprKind::While { cond: Box::new(cond), cond_binds: binds, body },
                        line,
                    }
                }
                "loop" => {
                    self.pos += 1;
                    Expr { kind: ExprKind::Loop(self.parse_block()), line }
                }
                "for" => {
                    self.pos += 1;
                    let mut pat_toks: Vec<&Tok> = Vec::new();
                    let mut depth = 0usize;
                    while let Some(t) = self.peek() {
                        if t.kind == TokKind::Ident && t.text == "in" && depth == 0 {
                            break;
                        }
                        if t.kind == TokKind::Punct {
                            match t.text.as_str() {
                                "(" | "[" => depth += 1,
                                ")" | "]" => depth = depth.saturating_sub(1),
                                _ => {}
                            }
                        }
                        pat_toks.push(t);
                        self.pos += 1;
                    }
                    let binds = pattern_binds(&pat_toks);
                    self.eat_kw("in");
                    let iter = self.parse_expr(true);
                    let body = self.parse_block();
                    Expr { kind: ExprKind::For { binds, iter: Box::new(iter), body }, line }
                }
                "match" => {
                    self.pos += 1;
                    let scrutinee = self.parse_expr(true);
                    let arms = self.parse_match_arms();
                    Expr { kind: ExprKind::Match(Box::new(scrutinee), arms), line }
                }
                "return" => {
                    self.pos += 1;
                    let val = self.expr_follows().then(|| Box::new(self.parse_expr(no_struct)));
                    Expr { kind: ExprKind::Return(val), line }
                }
                "break" => {
                    self.pos += 1;
                    if self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
                        self.pos += 1;
                    }
                    let val = self.expr_follows().then(|| Box::new(self.parse_expr(no_struct)));
                    Expr { kind: ExprKind::Break(val), line }
                }
                "continue" => {
                    self.pos += 1;
                    if self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
                        self.pos += 1;
                    }
                    Expr { kind: ExprKind::Continue, line }
                }
                "move" => {
                    self.pos += 1;
                    let line2 = self.line();
                    self.parse_closure(line2)
                }
                "true" | "false" => {
                    self.pos += 1;
                    Expr { kind: ExprKind::Lit, line }
                }
                "unsafe" => {
                    self.pos += 1;
                    Expr { kind: ExprKind::Block(self.parse_block()), line }
                }
                s if is_reserved(s) => {
                    self.pos += 1;
                    self.out.recoveries += 1;
                    Expr { kind: ExprKind::Opaque, line }
                }
                _ => self.parse_path_expr(no_struct, line),
            },
        }
    }

    fn expr_follows(&self) -> bool {
        self.peek().is_some_and(|t| match t.kind {
            TokKind::Punct => !matches!(t.text.as_str(), ";" | "}" | ")" | "]" | ","),
            _ => true,
        })
    }

    fn parse_closure(&mut self, line: u32) -> Expr {
        let mut binds = Vec::new();
        if self.at_punct("||") {
            self.pos += 1;
        } else if self.eat_punct("|") {
            let mut pat_toks: Vec<&Tok> = Vec::new();
            let mut depth = 0usize;
            while let Some(t) = self.peek() {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth = depth.saturating_sub(1),
                        "|" if depth == 0 => break,
                        _ => {}
                    }
                }
                pat_toks.push(t);
                self.pos += 1;
            }
            binds = pattern_binds(&pat_toks);
            self.eat_punct("|");
        }
        // Optional return type `-> T`.
        if self.at_punct("->") {
            self.pos += 1;
            self.skip_type();
        }
        let body = self.parse_expr(false);
        Expr { kind: ExprKind::Closure(binds, Box::new(body)), line }
    }

    fn parse_if(&mut self, line: u32) -> Expr {
        let (cond, binds) = self.parse_cond();
        let then_b = self.parse_block();
        let mut else_b = None;
        if self.eat_kw("else") {
            let eline = self.line();
            if self.at_kw("if") {
                self.pos += 1;
                else_b = Some(Box::new(self.parse_if(eline)));
            } else {
                else_b =
                    Some(Box::new(Expr { kind: ExprKind::Block(self.parse_block()), line: eline }));
            }
        }
        Expr {
            kind: ExprKind::If { cond: Box::new(cond), cond_binds: binds, then_b, else_b },
            line,
        }
    }

    /// Condition of an `if`/`while`, handling the `let PAT = expr` form.
    fn parse_cond(&mut self) -> (Expr, Vec<String>) {
        if self.eat_kw("let") {
            let mut pat_toks: Vec<&Tok> = Vec::new();
            let mut depth = 0usize;
            while let Some(t) = self.peek() {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth = depth.saturating_sub(1),
                        "=" if depth == 0 => break,
                        _ => {}
                    }
                }
                pat_toks.push(t);
                self.pos += 1;
            }
            let binds = pattern_binds(&pat_toks);
            self.eat_punct("=");
            let scrutinee = self.parse_expr(true);
            return (scrutinee, binds);
        }
        (self.parse_expr(true), Vec::new())
    }

    fn parse_match_arms(&mut self) -> Vec<Arm> {
        let mut arms = Vec::new();
        if !self.eat_punct("{") {
            return arms;
        }
        loop {
            self.skip_attrs();
            if self.at_punct("}") {
                self.pos += 1;
                return arms;
            }
            if self.peek().is_none() {
                return arms;
            }
            // Pattern up to `=>` or an `if` guard at depth 0.
            let mut pat_toks: Vec<&Tok> = Vec::new();
            let mut depth = 0usize;
            let mut guard = None;
            while let Some(t) = self.peek() {
                match t.kind {
                    TokKind::Punct => match t.text.as_str() {
                        "(" | "[" | "{" => {
                            depth += 1;
                            pat_toks.push(t);
                        }
                        ")" | "]" | "}" => {
                            depth = depth.saturating_sub(1);
                            pat_toks.push(t);
                        }
                        "=>" if depth == 0 => break,
                        _ => pat_toks.push(t),
                    },
                    TokKind::Ident if depth == 0 && t.text == "if" => break,
                    _ => pat_toks.push(t),
                }
                self.pos += 1;
            }
            let binds = pattern_binds(&pat_toks);
            if self.eat_kw("if") {
                guard = Some(self.parse_expr(true));
            }
            if !self.eat_punct("=>") {
                self.out.recoveries += 1;
                self.skip_to_item_end();
                return arms;
            }
            let body = self.parse_expr(false);
            self.eat_punct(",");
            arms.push(Arm { binds, guard, body });
        }
    }

    /// Path head in expression position: variable, `Ty::assoc` call,
    /// macro, or struct literal.
    fn parse_path_expr(&mut self, no_struct: bool, line: u32) -> Expr {
        let mut segments = vec![self.bump().map(|t| t.text.clone()).unwrap_or_default()];
        loop {
            if self.at_punct("::") {
                self.pos += 1;
                if self.at_punct("<") {
                    self.skip_angles();
                    continue;
                }
                if let Some(t) = self.peek() {
                    if t.kind == TokKind::Ident {
                        segments.push(t.text.clone());
                        self.pos += 1;
                        continue;
                    }
                }
                break;
            }
            break;
        }
        // Macro invocation.
        if self.at_punct("!")
            && self.peek_at(1).is_some_and(|t| {
                t.kind == TokKind::Punct && matches!(t.text.as_str(), "(" | "[" | "{")
            })
        {
            self.pos += 1;
            let name = segments.last().cloned().unwrap_or_default();
            let open = self.peek().map(|t| t.text.clone()).unwrap_or_default();
            let close = match open.as_str() {
                "(" => ")",
                "[" => "]",
                _ => "}",
            };
            self.pos += 1;
            let mut args = Vec::new();
            while let Some(t) = self.peek() {
                if t.kind == TokKind::Punct && t.text == close {
                    self.pos += 1;
                    break;
                }
                if t.kind == TokKind::Punct && matches!(t.text.as_str(), "," | ";" | "=>" | "|") {
                    self.pos += 1;
                    continue;
                }
                let before = self.pos;
                args.push(self.parse_expr(false));
                if self.pos == before {
                    // No progress: drop the token to guarantee termination.
                    self.pos += 1;
                    self.out.recoveries += 1;
                }
            }
            return Expr { kind: ExprKind::Macro(name, args), line };
        }
        // Struct literal.
        if self.at_punct("{") && !no_struct {
            let ty = segments.last().cloned().unwrap_or_default();
            if ty.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                self.pos += 1;
                let mut fields = Vec::new();
                let mut rest = None;
                loop {
                    if self.at_punct("}") {
                        self.pos += 1;
                        break;
                    }
                    if self.peek().is_none() {
                        break;
                    }
                    if self.at_punct("..") {
                        self.pos += 1;
                        rest = Some(Box::new(self.parse_expr(false)));
                        self.eat_punct(",");
                        continue;
                    }
                    let Some(fname) = self.ident_text().map(str::to_string) else {
                        self.out.recoveries += 1;
                        self.skip_to_item_end();
                        break;
                    };
                    let fline = self.line();
                    self.pos += 1;
                    if self.eat_punct(":") {
                        let val = self.parse_expr(false);
                        fields.push((fname, val));
                    } else {
                        // Shorthand `Ty { field }` reads a same-named var.
                        fields.push((
                            fname.clone(),
                            Expr { kind: ExprKind::Path(vec![fname]), line: fline },
                        ));
                    }
                    self.eat_punct(",");
                }
                return Expr { kind: ExprKind::StructLit(ty, fields, rest), line };
            }
        }
        Expr { kind: ExprKind::Path(segments), line }
    }
}

/// Identifiers bound by a pattern token run: lowercase identifiers that are
/// not path segments, enum variants, or struct-pattern field names.
pub fn pattern_binds(toks: &[&Tok]) -> Vec<String> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let s = t.text.as_str();
        if is_reserved(s) || matches!(s, "_" | "self" | "box" | "Some" | "None" | "Ok" | "Err") {
            continue;
        }
        if s.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            continue; // enum variant or type
        }
        let prev = i.checked_sub(1).and_then(|j| toks.get(j));
        if prev.is_some_and(|p| p.kind == TokKind::Punct && p.text == "::") {
            continue; // path segment
        }
        let next = toks.get(i + 1);
        if next.is_some_and(|n| {
            n.kind == TokKind::Punct && matches!(n.text.as_str(), "::" | "(" | "{" | ":")
        }) {
            continue; // path head, call-like variant, or field name
        }
        if !out.contains(&t.text) {
            out.push(t.text.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::walker::parse_markers;

    fn parse(src: &str) -> Parsed {
        let l = lex(src);
        let (_, ann, _) = parse_markers(&l.comments);
        parse_file(&l, &ann)
    }

    #[test]
    fn fn_and_params() {
        let p = parse("fn f(a: u64, _b: &mut [u8]) -> u64 { a + 1 }\n");
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "a");
        assert_eq!(f.params[0].ty.as_deref(), Some("u64"));
        assert!(!f.has_self);
        assert_eq!(f.body.stmts.len(), 1);
        assert!(matches!(f.body.stmts[0], Stmt::Expr(_)));
    }

    #[test]
    fn impl_method_and_owner() {
        let p = parse("struct S { x: u64 }\nimpl S { pub fn get(&self) -> u64 { self.x } }\n");
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].fields[0].name, "x");
        let f = &p.fns[0];
        assert_eq!(f.owner.as_deref(), Some("S"));
        assert!(f.has_self);
        assert_eq!(f.params[0].name, "self");
    }

    #[test]
    fn trait_impl_owner_is_self_type() {
        let p = parse("impl core::fmt::Display for Leaf { fn fmt(&self) {} }\n");
        assert_eq!(p.fns[0].owner.as_deref(), Some("Leaf"));
    }

    #[test]
    fn secret_annotations_bind() {
        let src = "struct K {\n  // lint: secret\n  material: [u8; 16],\n  public: u64,\n}\n\
                   fn g(\n  k: &[u8], // lint: secret\n  n: u64,\n) {}\n";
        let p = parse(src);
        assert!(p.structs[0].fields[0].secret);
        assert!(!p.structs[0].fields[1].secret);
        assert!(p.fns[0].params[0].secret);
        assert!(!p.fns[0].params[1].secret);
        assert_eq!(p.used_annotation_lines.len(), 2);
    }

    #[test]
    fn if_let_and_match() {
        let src = "fn f(o: Option<u64>) -> u64 {\n  if let Some(v) = o { v } else { 0 };\n  \
                   match o { Some(x) if x > 2 => x, _ => 0 }\n}\n";
        let p = parse(src);
        let f = &p.fns[0];
        assert_eq!(f.body.stmts.len(), 2);
        let Stmt::Semi(ifl) = &f.body.stmts[0] else { panic!("want semi") };
        let ExprKind::If { cond_binds, .. } = &ifl.kind else { panic!("want if") };
        assert_eq!(cond_binds, &["v"]);
        let Stmt::Expr(m) = &f.body.stmts[1] else { panic!("want tail") };
        let ExprKind::Match(_, arms) = &m.kind else { panic!("want match") };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0].binds, vec!["x"]);
        assert!(arms[0].guard.is_some());
    }

    #[test]
    fn closures_loops_ranges() {
        let src = "fn f(v: Vec<u64>) {\n  let s: u64 = v.iter().map(|x| x + 1).sum();\n  \
                   for (i, b) in v.iter().enumerate() { let _ = i + *b; }\n  \
                   let r = &v[1..3];\n  let _ = (s, r.len());\n}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.recoveries, 0, "should parse cleanly");
    }

    #[test]
    fn struct_literal_and_update() {
        let src = "fn f() -> S { let base = S { a: 1, b: 2 }; S { a: 3, ..base } }\n";
        let p = parse(src);
        let Stmt::Expr(e) = &p.fns[0].body.stmts[1] else { panic!("want tail") };
        let ExprKind::StructLit(ty, fields, rest) = &e.kind else { panic!("want lit") };
        assert_eq!(ty, "S");
        assert_eq!(fields.len(), 1);
        assert!(rest.is_some());
    }

    #[test]
    fn macro_args_and_format_string() {
        let src = "fn f(x: u64) { assert_eq!(x, 3); let s = format!(\"{x} and {}\", x + 1); let _ = s; }\n";
        let p = parse(src);
        let Stmt::Semi(m) = &p.fns[0].body.stmts[0] else { panic!("want semi") };
        let ExprKind::Macro(name, args) = &m.kind else { panic!("want macro") };
        assert_eq!(name, "assert_eq");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn never_panics_on_odd_input() {
        // Garbage and exotic constructs must not panic the parser.
        for src in [
            "fn f() { let x = ; } }",
            "impl<T: Ord> Foo<T> where T: Clone { fn g(&self) -> &T { &self.0 } }",
            "fn f() { x.0.1; }",
            "fn f() { break 'label; }",
            "fn { } struct ;",
        ] {
            let _ = parse(src);
        }
    }

    #[test]
    fn real_shapes_from_the_workspace_parse_cleanly() {
        let src = r#"
impl PathOram {
    pub fn access(&mut self, op: Op, id: BlockId, data: Option<&[u8]>) -> Vec<u8> {
        let (old_leaf, new_leaf) = self.posmap.get_and_remap(id, &mut self.rng);
        let path = self.layout.path_lines(old_leaf);
        for b in path.iter().rev() {
            if let Some(bucket) = self.tree.get_mut(b) {
                bucket.drain_into(&mut self.stash);
            }
        }
        let out = match op {
            Op::Read => self.serve(id, None),
            Op::Write => self.serve(id, data),
        };
        self.writeback(old_leaf);
        out
    }
}
"#;
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.recoveries, 0, "workspace idioms must parse without recovery");
        assert_eq!(p.fns[0].params.len(), 4);
    }
}
