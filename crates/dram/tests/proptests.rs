//! Property tests for the DRAM model: address-mapper bijectivity, timing
//! monotonicity, conservation of requests through the channel, and
//! split-invariance of the event-driven tick.

use dram_sim::address::{AddressMapper, Interleave};
use dram_sim::channel::DramChannel;
use dram_sim::cmdlog::CmdLog;
use dram_sim::config::{ChannelConfig, SchedulerPolicy, Topology};
use dram_sim::spec::DramStandard;
use dram_sim::MemorySystem;
use proptest::prelude::*;

fn quiet() -> ChannelConfig {
    let mut cfg = ChannelConfig::table2();
    cfg.refresh_enabled = false;
    cfg
}

/// The spec tables the engine-level properties range over: one
/// group-less DDR3 baseline plus every new standard (bank-grouped DDR4
/// and HBM2, wide-burst LPDDR4).
const STANDARDS: [DramStandard; 4] = [
    DramStandard::Ddr3_1600,
    DramStandard::Ddr4_2400,
    DramStandard::Lpddr4_3200,
    DramStandard::Hbm2,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// decode∘encode is the identity on line addresses for every scheme.
    #[test]
    fn mapper_is_bijective(line in 0u64..1_000_000,
                           scheme_pick in 0usize..3) {
        let scheme = [Interleave::RowRankBankCol, Interleave::BankInterleaved,
                      Interleave::RankContiguous][scheme_pick];
        let m = AddressMapper::new(Topology::table2_channel(), scheme);
        let addr = line * 64;
        prop_assert_eq!(m.encode(m.decode(addr)), addr);
    }

    /// Distinct line addresses decode to distinct coordinates.
    #[test]
    fn mapper_is_injective(a in 0u64..500_000, b in 0u64..500_000,
                           scheme_pick in 0usize..3) {
        prop_assume!(a != b);
        let scheme = [Interleave::RowRankBankCol, Interleave::BankInterleaved,
                      Interleave::RankContiguous][scheme_pick];
        let m = AddressMapper::new(Topology::table2_channel(), scheme);
        prop_assert_ne!(m.decode(a * 64), m.decode(b * 64));
    }

    /// Every enqueued request completes exactly once, under both
    /// scheduling policies, for arbitrary address mixes.
    #[test]
    fn requests_are_conserved(lines in proptest::collection::vec(0u64..1_000_000, 1..48),
                              writes in proptest::collection::vec(any::<bool>(), 48),
                              fcfs in any::<bool>()) {
        let mut cfg = quiet();
        cfg.scheduler = if fcfs { SchedulerPolicy::Fcfs } else { SchedulerPolicy::FrFcfs };
        let mut ch = DramChannel::new(cfg);
        let mut issued = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            let addr = line * 64;
            let id = if writes[i % writes.len()] {
                ch.enqueue_write(addr)
            } else {
                ch.enqueue_read(addr)
            };
            match id {
                Some(id) => issued.push(id),
                None => {
                    ch.tick(1000);
                    ch.drain_completions();
                }
            }
        }
        let done = ch.run_until_idle(10_000_000);
        // Completions drained during back-pressure are not in `done`;
        // total conservation = issued count ≥ done count and channel idle.
        prop_assert!(ch.is_idle());
        prop_assert!(done.len() <= issued.len());
    }

    /// Latency is bounded below by the cold-access minimum and completions
    /// are time-ordered.
    #[test]
    fn latencies_are_sane(lines in proptest::collection::vec(0u64..100_000, 1..24)) {
        let mut ch = DramChannel::new(quiet());
        for line in &lines {
            while ch.enqueue_read(line * 64).is_none() {
                ch.tick(100);
                ch.drain_completions();
            }
        }
        let done = ch.run_until_idle(10_000_000);
        for w in done.windows(2) {
            prop_assert!(w[0].finish <= w[1].finish);
        }
        let t = dram_sim::config::Timing::ddr3_1600();
        let min = t.cl + t.t_burst; // row-hit floor
        for c in &done {
            prop_assert!(c.latency >= min, "latency {} under floor {min}", c.latency);
        }
    }
}

/// Enqueues the same read/write mix into `ch` (helper for the
/// split-invariance and deadline properties, which need two identically
/// loaded channels).
fn load(ch: &mut DramChannel, lines: &[u64], writes: &[bool]) {
    for (i, line) in lines.iter().enumerate() {
        let addr = line * 64;
        let id =
            if writes[i % writes.len()] { ch.enqueue_write(addr) } else { ch.enqueue_read(addr) };
        assert!(id.is_some(), "queues sized to hold the whole proptest batch");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The event-driven core's defining property: `tick(a); tick(b)` is
    /// byte-identical to `tick(a+b)` — same DDR command stream, same
    /// stats (including lazily-accrued stalled cycles), same
    /// completions — for arbitrary slicings, with refresh on or off,
    /// on every supported memory standard.
    #[test]
    fn channel_tick_is_split_invariant(
        lines in proptest::collection::vec(0u64..200_000, 1..32),
        writes in proptest::collection::vec(any::<bool>(), 32),
        splits in proptest::collection::vec(1u64..7_000, 2..10),
        refresh in any::<bool>(),
        spec_pick in 0usize..4,
    ) {
        let mut cfg = ChannelConfig::table2_for(STANDARDS[spec_pick]);
        cfg.refresh_enabled = refresh;
        let (log_a, log_b) = (CmdLog::enabled(), CmdLog::enabled());
        let mut a = DramChannel::new(cfg.clone());
        let mut b = DramChannel::new(cfg);
        a.set_cmd_log(log_a.clone());
        b.set_cmd_log(log_b.clone());
        load(&mut a, &lines, &writes);
        load(&mut b, &lines, &writes);

        a.tick(splits.iter().sum());
        let done_a = a.drain_completions();

        let mut done_b = Vec::new();
        for s in &splits {
            b.tick(*s);
            done_b.extend(b.drain_completions());
        }

        prop_assert_eq!(a.now(), b.now());
        prop_assert_eq!(done_a, done_b);
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(log_a.take(), log_b.take());
    }

    /// A deadline-limited drain is the unlimited drain truncated at the
    /// deadline: `run_until_idle(d)` yields exactly the completions and
    /// commands an unbounded run produces up to where the limited run
    /// stopped — the deadline can cut the schedule short but never
    /// reorder or alter it.
    #[test]
    fn deadline_drain_is_a_truncation(
        lines in proptest::collection::vec(0u64..200_000, 1..32),
        writes in proptest::collection::vec(any::<bool>(), 32),
        deadline in 1u64..40_000,
        refresh in any::<bool>(),
        spec_pick in 0usize..4,
    ) {
        let mut cfg = ChannelConfig::table2_for(STANDARDS[spec_pick]);
        cfg.refresh_enabled = refresh;
        let (log_a, log_c) = (CmdLog::enabled(), CmdLog::enabled());
        let mut a = DramChannel::new(cfg.clone());
        let mut c = DramChannel::new(cfg);
        a.set_cmd_log(log_a.clone());
        c.set_cmd_log(log_c.clone());
        load(&mut a, &lines, &writes);
        load(&mut c, &lines, &writes);

        let done_a = a.run_until_idle(deadline);
        let done_c = c.run_until_idle(10_000_000);
        prop_assert!(c.is_idle(), "unlimited run must drain fully");

        let cut = a.now();
        let done_c_cut: Vec<_> =
            done_c.into_iter().filter(|comp| comp.finish <= cut).collect();
        prop_assert_eq!(done_a, done_c_cut);
        // Commands issue at scheduler invocations, which a tick spanning
        // [t, cut) runs strictly below `cut`: the command truncation is
        // exclusive (completions above are inclusive — a request whose
        // data lands exactly at `cut` is drained by the final tick).
        let log_c_cut: Vec<_> =
            log_c.take().into_iter().filter(|r| r.cycle < cut).collect();
        prop_assert_eq!(log_a.take(), log_c_cut);
    }

    /// [`MemorySystem::run_until_idle`] jumps channel-to-channel on
    /// event horizons; the observable result must match plain lockstep
    /// ticking over the same span on every channel.
    #[test]
    fn memory_system_event_drain_matches_lockstep(
        lines in proptest::collection::vec(0u64..400_000, 1..40),
        writes in proptest::collection::vec(any::<bool>(), 40),
        deadline in 1u64..40_000,
        channels in 1usize..3,
    ) {
        let cfg = ChannelConfig::table2();
        let mut a = MemorySystem::new(channels, cfg.clone());
        let mut b = MemorySystem::new(channels, cfg);
        let (mut logs_a, mut logs_b) = (Vec::new(), Vec::new());
        for i in 0..channels {
            let (la, lb) = (CmdLog::enabled(), CmdLog::enabled());
            a.channel_mut(i).set_cmd_log(la.clone());
            b.channel_mut(i).set_cmd_log(lb.clone());
            logs_a.push(la);
            logs_b.push(lb);
        }
        for (i, line) in lines.iter().enumerate() {
            let addr = line * 64;
            if writes[i % writes.len()] {
                a.enqueue_write(addr);
                b.enqueue_write(addr);
            } else {
                a.enqueue_read(addr);
                b.enqueue_read(addr);
            }
        }

        // A drains on event horizons; B ticks the same total directly.
        // A's list interleaves channels round-by-round while B's is one
        // final sweep, so compare as sets keyed by (channel, finish, id)
        // — per-channel streams, not global drain order, are the model.
        let mut done_a = a.run_until_idle(deadline);
        done_a.extend(a.drain_completions());
        let span_a = a.now();
        b.tick(span_a);
        let mut done_b = b.drain_completions();
        let key = |(ch, c): &(usize, dram_sim::request::Completion)| (*ch, c.finish, c.id);
        done_a.sort_by_key(key);
        done_b.sort_by_key(key);

        prop_assert_eq!(done_a, done_b);
        prop_assert_eq!(a.stats(), b.stats());
        for (la, lb) in logs_a.iter().zip(&logs_b) {
            prop_assert_eq!(la.take(), lb.take());
        }
    }
}
