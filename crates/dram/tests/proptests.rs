//! Property tests for the DRAM model: address-mapper bijectivity, timing
//! monotonicity, and conservation of requests through the channel.

use dram_sim::address::{AddressMapper, Interleave};
use dram_sim::channel::DramChannel;
use dram_sim::config::{ChannelConfig, SchedulerPolicy, Topology};
use proptest::prelude::*;

fn quiet() -> ChannelConfig {
    let mut cfg = ChannelConfig::table2();
    cfg.refresh_enabled = false;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// decode∘encode is the identity on line addresses for every scheme.
    #[test]
    fn mapper_is_bijective(line in 0u64..1_000_000,
                           scheme_pick in 0usize..3) {
        let scheme = [Interleave::RowRankBankCol, Interleave::BankInterleaved,
                      Interleave::RankContiguous][scheme_pick];
        let m = AddressMapper::new(Topology::table2_channel(), scheme);
        let addr = line * 64;
        prop_assert_eq!(m.encode(m.decode(addr)), addr);
    }

    /// Distinct line addresses decode to distinct coordinates.
    #[test]
    fn mapper_is_injective(a in 0u64..500_000, b in 0u64..500_000,
                           scheme_pick in 0usize..3) {
        prop_assume!(a != b);
        let scheme = [Interleave::RowRankBankCol, Interleave::BankInterleaved,
                      Interleave::RankContiguous][scheme_pick];
        let m = AddressMapper::new(Topology::table2_channel(), scheme);
        prop_assert_ne!(m.decode(a * 64), m.decode(b * 64));
    }

    /// Every enqueued request completes exactly once, under both
    /// scheduling policies, for arbitrary address mixes.
    #[test]
    fn requests_are_conserved(lines in proptest::collection::vec(0u64..1_000_000, 1..48),
                              writes in proptest::collection::vec(any::<bool>(), 48),
                              fcfs in any::<bool>()) {
        let mut cfg = quiet();
        cfg.scheduler = if fcfs { SchedulerPolicy::Fcfs } else { SchedulerPolicy::FrFcfs };
        let mut ch = DramChannel::new(cfg);
        let mut issued = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            let addr = line * 64;
            let id = if writes[i % writes.len()] {
                ch.enqueue_write(addr)
            } else {
                ch.enqueue_read(addr)
            };
            match id {
                Some(id) => issued.push(id),
                None => {
                    ch.tick(1000);
                    ch.drain_completions();
                }
            }
        }
        let done = ch.run_until_idle(10_000_000);
        // Completions drained during back-pressure are not in `done`;
        // total conservation = issued count ≥ done count and channel idle.
        prop_assert!(ch.is_idle());
        prop_assert!(done.len() <= issued.len());
    }

    /// Latency is bounded below by the cold-access minimum and completions
    /// are time-ordered.
    #[test]
    fn latencies_are_sane(lines in proptest::collection::vec(0u64..100_000, 1..24)) {
        let mut ch = DramChannel::new(quiet());
        for line in &lines {
            while ch.enqueue_read(line * 64).is_none() {
                ch.tick(100);
                ch.drain_completions();
            }
        }
        let done = ch.run_until_idle(10_000_000);
        for w in done.windows(2) {
            prop_assert!(w[0].finish <= w[1].finish);
        }
        let t = dram_sim::config::Timing::ddr3_1600();
        let min = t.cl + t.t_burst; // row-hit floor
        for c in &done {
            prop_assert!(c.latency >= min, "latency {} under floor {min}", c.latency);
        }
    }
}
