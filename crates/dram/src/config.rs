//! Configuration for the DRAM memory-system model.
//!
//! The defaults reproduce Table II of the paper: a Micron MT41J256M8-class
//! x8 part, 8 banks/chip, 32768 rows/bank, an 8 KB row buffer per rank,
//! 9 devices per 72-bit rank, up to 8 ranks per channel, and a 1600 MT/s
//! (800 MHz clock) bus. All timing values are expressed in memory-clock
//! cycles (tCK = 1.25 ns at DDR3-1600).
//!
//! Standards other than DDR3 are described by [`crate::spec::DramSpec`]
//! tables; [`ChannelConfig::table2_for`] / [`ChannelConfig::sdimm_internal_for`]
//! build the equivalent channel configurations for any supported
//! [`crate::spec::DramStandard`].

use crate::spec::DramStandard;

/// A point in simulated time, in memory-clock cycles (800 MHz ⇒ 1.25 ns).
pub type Cycle = u64;

/// DRAM timing constraints, in memory-clock cycles.
///
/// Field names follow the JEDEC parameter names. Only the constraints that
/// affect scheduling decisions at cache-line granularity are modeled.
///
/// For standards with bank groups (DDR4, HBM2) the JEDEC short/long pairs
/// are split: `t_rrd`/`t_ccd` hold the *short* (different-bank-group)
/// values and `t_rrd_l`/`t_ccd_l` the *long* (same-bank-group) values.
/// Standards without bank groups (DDR3, LPDDR4) set long equal to short,
/// which makes the bank-group constraint classes degenerate exactly to
/// the classic rank-wide rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timing {
    /// CAS (read) latency: RD command to first data beat.
    pub cl: Cycle,
    /// CAS write latency: WR command to first data beat.
    pub cwl: Cycle,
    /// ACT to internal RD/WR delay.
    pub t_rcd: Cycle,
    /// PRE to ACT delay (row precharge time).
    pub t_rp: Cycle,
    /// ACT to PRE minimum (row active time).
    pub t_ras: Cycle,
    /// ACT to ACT same bank (row cycle time).
    pub t_rc: Cycle,
    /// ACT to ACT different bank, same rank (tRRD_S where bank groups
    /// exist: the constraint between *different* bank groups).
    pub t_rrd: Cycle,
    /// ACT to ACT within the *same* bank group (tRRD_L). Equal to
    /// [`Timing::t_rrd`] for standards without bank groups.
    pub t_rrd_l: Cycle,
    /// Four-activate window per rank.
    pub t_faw: Cycle,
    /// Write recovery: end of write burst to PRE.
    pub t_wr: Cycle,
    /// Write-to-read turnaround, same rank: end of write burst to RD.
    pub t_wtr: Cycle,
    /// Read-to-precharge delay.
    pub t_rtp: Cycle,
    /// CAS-to-CAS delay (tCCD_S where bank groups exist: the burst gap
    /// between *different* bank groups).
    pub t_ccd: Cycle,
    /// CAS-to-CAS delay within the *same* bank group (tCCD_L). Equal to
    /// [`Timing::t_ccd`] for standards without bank groups.
    pub t_ccd_l: Cycle,
    /// Data burst duration in clocks. Derived from the burst length on a
    /// double-data-rate bus (`burst_length / 2`, e.g. BL8 ⇒ 4 clocks);
    /// [`crate::spec::DramSpec::validate`] rejects tables where this
    /// field drifts from the geometry it is derived from.
    pub t_burst: Cycle,
    /// Rank-to-rank switching penalty on the shared data bus.
    pub t_rtrs: Cycle,
    /// Average refresh interval per rank.
    pub t_refi: Cycle,
    /// Refresh cycle time (rank is unavailable).
    pub t_rfc: Cycle,
    /// Minimum CKE low time (power-down residency).
    pub t_cke: Cycle,
    /// Power-down exit latency ("wakeup latency", ~24 ns in the paper).
    pub t_xp: Cycle,
}

impl Timing {
    /// DDR3-1600 (11-11-11) timing, the Table II configuration.
    pub fn ddr3_1600() -> Self {
        Timing {
            cl: 11,
            cwl: 8,
            t_rcd: 11,
            t_rp: 11,
            t_ras: 28,
            t_rc: 39,
            t_rrd: 6,
            t_rrd_l: 6,
            t_faw: 32,
            t_wr: 12,
            t_wtr: 6,
            t_rtp: 6,
            t_ccd: 4,
            t_ccd_l: 4,
            t_burst: 4,
            t_rtrs: 2,
            t_refi: 6240,
            t_rfc: 208,
            t_cke: 4,
            t_xp: 20, // ≈24 ns slow power-down exit at 1.25 ns/cycle
        }
    }

    /// DDR3-800 (6-6-6) timing, for the slower-device sensitivity runs.
    pub fn ddr3_800() -> Self {
        Timing {
            cl: 6,
            cwl: 5,
            t_rcd: 6,
            t_rp: 6,
            t_ras: 15,
            t_rc: 21,
            t_rrd: 4,
            t_rrd_l: 4,
            t_faw: 20,
            t_wr: 6,
            t_wtr: 4,
            t_rtp: 4,
            t_ccd: 4,
            t_ccd_l: 4,
            t_burst: 4,
            t_rtrs: 2,
            t_refi: 3120,
            t_rfc: 104,
            t_cke: 3,
            t_xp: 10,
        }
    }

    /// Read command to start of data on the bus.
    pub fn read_data_start(&self) -> Cycle {
        self.cl
    }

    /// Write command to start of data on the bus.
    pub fn write_data_start(&self) -> Cycle {
        self.cwl
    }

    /// Write command to earliest same-bank PRE: CWL + tBURST + tWR (write
    /// recovery is measured from the end of the data burst).
    pub fn write_to_pre(&self) -> Cycle {
        self.cwl.saturating_add(self.t_burst).saturating_add(self.t_wr)
    }
}

/// Geometry of one memory channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Ranks on this channel (Table II: 8 ranks per channel, i.e. 2 DIMMs
    /// of 4 ranks; an SDIMM's internal channel has 4).
    pub ranks: usize,
    /// Banks per rank (8 for DDR3, 16 for DDR4/HBM2).
    pub banks: usize,
    /// Bank groups per rank (1 for DDR3/LPDDR4, 4 for DDR4/HBM2). Banks
    /// are split evenly: bank `b` belongs to group `b / banks_per_group`.
    pub bank_groups: usize,
    /// Rows per bank (32768 in Table II).
    pub rows: usize,
    /// Row-buffer (page) size in bytes per rank (8 KB in Table II).
    pub row_bytes: usize,
    /// Cache-line / transfer size in bytes (64).
    pub line_bytes: usize,
}

impl Topology {
    /// The Table II channel: 8 ranks × 8 banks × 32768 rows × 8 KB rows.
    pub fn table2_channel() -> Self {
        Topology {
            ranks: 8,
            banks: 8,
            bank_groups: 1,
            rows: 32768,
            row_bytes: 8192,
            line_bytes: 64,
        }
    }

    /// One SDIMM's internal channel: a quad-rank DIMM.
    pub fn sdimm_internal() -> Self {
        Topology {
            ranks: 4,
            banks: 8,
            bank_groups: 1,
            rows: 32768,
            row_bytes: 8192,
            line_bytes: 64,
        }
    }

    /// Banks in each bank group (all banks for group-less standards).
    pub fn banks_per_group(&self) -> usize {
        self.banks / self.bank_groups.max(1)
    }

    /// Cache lines per row buffer.
    pub fn lines_per_row(&self) -> usize {
        self.row_bytes / self.line_bytes
    }

    /// Total capacity of the channel in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.ranks * self.banks * self.rows * self.row_bytes
    }

    /// Total addressable cache lines on the channel.
    pub fn capacity_lines(&self) -> usize {
        self.capacity_bytes() / self.line_bytes
    }
}

/// Scheduling policy for the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// First-ready, first-come-first-served: row hits first, then oldest.
    /// The paper's backend scheduler (Rixner et al. \[21\]).
    #[default]
    FrFcfs,
    /// Strict first-come-first-served (ablation baseline).
    Fcfs,
}

/// Write-queue drain policy: reads are prioritized until the write queue
/// exceeds `hi`, then writes drain until it falls to `lo`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteDrain {
    /// Queue depth that triggers drain mode (Table II / §IV-A: 40).
    pub hi: usize,
    /// Queue depth at which drain mode ends.
    pub lo: usize,
    /// Write queue capacity (Table II: 64); enqueues stall beyond this.
    pub capacity: usize,
}

impl Default for WriteDrain {
    fn default() -> Self {
        WriteDrain { hi: 40, lo: 20, capacity: 64 }
    }
}

/// Power-state policy for idle ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PowerPolicy {
    /// Ranks never power down (performance baseline).
    #[default]
    AlwaysOn,
    /// A rank with no queued work enters precharge power-down after
    /// `idle_cycles` of inactivity (the paper's low-power technique keeps
    /// three of four SDIMM ranks in this mode).
    PowerDown {
        /// Idle cycles before CKE is dropped.
        idle_cycles: Cycle,
    },
}

/// DRAM device current/voltage parameters used by the energy model
/// (Micron power-calculator methodology, per-device values).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerParams {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Operating one-bank-active-precharge current (mA).
    pub idd0: f64,
    /// Precharge power-down current (mA).
    pub idd2p: f64,
    /// Precharge standby current (mA).
    pub idd2n: f64,
    /// Active power-down current (mA).
    pub idd3p: f64,
    /// Active standby current (mA).
    pub idd3n: f64,
    /// Burst read current (mA).
    pub idd4r: f64,
    /// Burst write current (mA).
    pub idd4w: f64,
    /// Refresh current (mA).
    pub idd5: f64,
    /// DRAM devices per rank (Table II: 9 × x8 for a 72-bit channel).
    pub devices_per_rank: usize,
    /// I/O + termination energy per bit crossing the off-DIMM channel (pJ).
    pub io_pj_per_bit_offdimm: f64,
    /// I/O energy per bit on the short on-DIMM bus between the buffer chip
    /// and the DRAM devices (pJ). Much lower trace length/termination.
    pub io_pj_per_bit_ondimm: f64,
}

impl PowerParams {
    /// Micron 4 Gb DDR3-1600 x8 datasheet-class values.
    pub fn ddr3_1600_x8() -> Self {
        PowerParams {
            vdd: 1.5,
            idd0: 95.0,
            idd2p: 12.0,
            idd2n: 42.0,
            idd3p: 40.0,
            idd3n: 45.0,
            idd4r: 180.0,
            idd4w: 185.0,
            idd5: 215.0,
            devices_per_rank: 9,
            io_pj_per_bit_offdimm: 4.6,
            io_pj_per_bit_ondimm: 1.4,
        }
    }
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams::ddr3_1600_x8()
    }
}

/// Where a channel physically lives, which selects the I/O energy constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChannelLocation {
    /// A conventional motherboard channel between CPU and DIMMs.
    #[default]
    OffDimm,
    /// The internal bus between an SDIMM's secure buffer and its DRAM
    /// devices (shorter traces, lower I/O energy).
    OnDimm,
}

/// Complete configuration for one simulated channel.
#[derive(Debug, Clone, Default)]
pub struct ChannelConfig {
    /// The memory standard this channel models. Carried alongside the
    /// expanded `timing`/`topology` so replay auditors and report
    /// provenance can name the spec the channel actually ran.
    pub standard: DramStandard,
    /// Timing constraints.
    pub timing: Timing,
    /// Channel geometry.
    pub topology: Topology,
    /// Scheduling policy.
    pub scheduler: SchedulerPolicy,
    /// Write drain thresholds.
    pub write_drain: WriteDrain,
    /// Idle-rank power policy.
    pub power_policy: PowerPolicy,
    /// Energy-model device parameters.
    pub power: PowerParams,
    /// Physical location (selects I/O energy constant).
    pub location: ChannelLocation,
    /// Read queue capacity; enqueues stall beyond this.
    pub read_queue_capacity: usize,
    /// Enable periodic refresh (tREFI/tRFC). Disable for microbenchmarks.
    pub refresh_enabled: bool,
}

impl Default for Timing {
    fn default() -> Self {
        Timing::ddr3_1600()
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::table2_channel()
    }
}

impl ChannelConfig {
    /// The Table II baseline channel configuration.
    pub fn table2() -> Self {
        ChannelConfig {
            standard: DramStandard::Ddr3_1600,
            timing: Timing::ddr3_1600(),
            topology: Topology::table2_channel(),
            scheduler: SchedulerPolicy::FrFcfs,
            write_drain: WriteDrain::default(),
            power_policy: PowerPolicy::AlwaysOn,
            power: PowerParams::ddr3_1600_x8(),
            location: ChannelLocation::OffDimm,
            read_queue_capacity: 64,
            refresh_enabled: true,
        }
    }

    /// An SDIMM internal channel: quad-rank, on-DIMM I/O energy, and the
    /// low-power rank policy available.
    pub fn sdimm_internal() -> Self {
        ChannelConfig {
            topology: Topology::sdimm_internal(),
            location: ChannelLocation::OnDimm,
            ..ChannelConfig::table2()
        }
    }

    /// The Table II-class main channel (8 ranks, off-DIMM) for any
    /// supported memory standard. `table2_for(DramStandard::Ddr3_1600)`
    /// is identical to [`ChannelConfig::table2`].
    pub fn table2_for(standard: DramStandard) -> Self {
        standard.spec().main_channel()
    }

    /// The SDIMM internal channel (4 ranks, on-DIMM) for any supported
    /// memory standard. `sdimm_internal_for(DramStandard::Ddr3_1600)` is
    /// identical to [`ChannelConfig::sdimm_internal`].
    pub fn sdimm_internal_for(standard: DramStandard) -> Self {
        standard.spec().sdimm_internal_channel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_1600_sane_relationships() {
        let t = Timing::ddr3_1600();
        assert!(t.t_rc >= t.t_ras + t.t_rp);
        assert!(t.t_ras >= t.t_rcd);
        // The four-activate window must cover four tRRD-spaced ACTs. An
        // earlier version of this assert wrote `4 * t.t_rrd / 2`, which
        // precedence-reduces to 2×tRRD and let a broken table pass; the
        // full relationship (and more) is also enforced for every spec
        // table by `DramSpec::validate`.
        assert!(t.t_faw >= 4 * t.t_rrd, "FAW must cover four tRRD-spaced ACTs");
        assert!(t.cl >= t.cwl);
    }

    #[test]
    fn faw_assert_uses_the_full_four_activate_window() {
        // Regression for the precedence bug: a table whose tFAW covers
        // only 2×tRRD must fail the JEDEC relationship.
        let mut t = Timing::ddr3_1600();
        t.t_faw = 2 * t.t_rrd + 1;
        assert!(t.t_faw >= 4 * t.t_rrd / 2, "the buggy form accepted this table");
        assert!(t.t_faw < 4 * t.t_rrd, "the fixed form must reject it");
    }

    #[test]
    fn table2_capacity_is_16_gb() {
        // 8 ranks × 8 banks × 32768 rows × 8 KB = 16 GiB per channel; the
        // paper's 32 GB system uses two channels.
        let topo = Topology::table2_channel();
        assert_eq!(topo.capacity_bytes(), 16 * (1usize << 30));
    }

    #[test]
    fn lines_per_row_matches_8kb_rows() {
        assert_eq!(Topology::table2_channel().lines_per_row(), 128);
    }

    #[test]
    fn sdimm_internal_is_quad_rank_on_dimm() {
        let c = ChannelConfig::sdimm_internal();
        assert_eq!(c.topology.ranks, 4);
        assert_eq!(c.location, ChannelLocation::OnDimm);
    }

    #[test]
    fn write_drain_defaults_match_paper() {
        let wd = WriteDrain::default();
        assert_eq!(wd.hi, 40);
        assert_eq!(wd.capacity, 64);
        assert!(wd.lo < wd.hi);
    }

    #[test]
    fn power_down_exit_close_to_24ns() {
        // tXP ≈ 24 ns at 1.25 ns/cycle ⇒ ~19–20 cycles.
        let t = Timing::ddr3_1600();
        let ns = t.t_xp as f64 * 1.25;
        assert!((ns - 24.0).abs() <= 2.0, "tXP models the paper's 24 ns wakeup, got {ns} ns");
    }
}
