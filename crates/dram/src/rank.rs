//! Per-rank state: banks, the four-activate window, refresh, and power
//! modes (including the precharge power-down used by the paper's
//! low-power technique).

use crate::bank::Bank;
use crate::config::{Cycle, Timing};

/// Power state of a rank (CKE-level modeling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerState {
    /// CKE high, ready for commands.
    Active,
    /// Precharge power-down: CKE low, all banks closed. Exiting costs tXP.
    PowerDown {
        /// Cycle at which the rank entered power-down (for residency stats).
        since: Cycle,
    },
}

/// One rank of DRAM devices sharing a chip-select.
#[derive(Debug, Clone)]
pub struct Rank {
    banks: Vec<Bank>,
    /// Issue times of recent ACTs, oldest first (tFAW sliding window).
    /// `None` until four ACTs have been issued.
    act_window: [Option<Cycle>; 4],
    /// tFAW value cached from the timing config for bound computation.
    t_faw: Cycle,
    /// Earliest next ACT due to tRRD (tRRD_S: the any-pair spacing).
    next_act_rrd: Cycle,
    /// Earliest next ACT per bank group due to tRRD_L. One entry for
    /// group-less standards, where it mirrors `next_act_rrd` exactly
    /// (tRRD_L = tRRD_S), adding no constraint.
    group_next_act: Vec<Cycle>,
    /// Earliest next CAS rank-wide due to tCCD (tCCD_S).
    next_cas_ccd: Cycle,
    /// Earliest next CAS per bank group due to tCCD_L.
    group_next_cas: Vec<Cycle>,
    /// Earliest next command of any kind (refresh / power-down exit gate).
    ready_at: Cycle,
    /// Next scheduled refresh.
    next_refresh: Cycle,
    power: PowerState,
    /// Cycle of the most recent command activity (for idle detection).
    last_activity: Cycle,
    /// Accumulated cycles spent in power-down (for the energy model).
    powerdown_cycles: Cycle,
    /// Count of power-down entries (each costs tCKE residency minimum).
    powerdown_entries: u64,
}

impl Rank {
    /// Creates a rank with `banks` idle banks split into `bank_groups`
    /// groups; first refresh due at `t_refi`.
    pub fn new(banks: usize, bank_groups: usize, t: &Timing) -> Self {
        let groups = bank_groups.max(1);
        Rank {
            banks: vec![Bank::new(); banks],
            act_window: [None; 4],
            t_faw: t.t_faw,
            next_act_rrd: 0,
            group_next_act: vec![0; groups],
            next_cas_ccd: 0,
            group_next_cas: vec![0; groups],
            ready_at: 0,
            next_refresh: t.t_refi,
            power: PowerState::Active,
            last_activity: 0,
            powerdown_cycles: 0,
            powerdown_entries: 0,
        }
    }

    /// Immutable access to a bank.
    pub fn bank(&self, i: usize) -> &Bank {
        &self.banks[i]
    }

    /// Mutable access to a bank.
    pub fn bank_mut(&mut self, i: usize) -> &mut Bank {
        &mut self.banks[i]
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Current power state.
    pub fn power_state(&self) -> PowerState {
        self.power
    }

    /// Cycle of the last command directed at this rank.
    pub fn last_activity(&self) -> Cycle {
        self.last_activity
    }

    /// Total cycles this rank has spent in power-down so far.
    ///
    /// If currently powered down, includes residency up to `now`.
    pub fn powerdown_cycles(&self, now: Cycle) -> Cycle {
        match self.power {
            PowerState::PowerDown { since } => {
                self.powerdown_cycles.saturating_add(now.saturating_sub(since))
            }
            PowerState::Active => self.powerdown_cycles,
        }
    }

    /// Number of power-down entries taken.
    pub fn powerdown_entries(&self) -> u64 {
        self.powerdown_entries
    }

    /// Earliest cycle an ACT may issue rank-wide (tRRD + tFAW + readiness).
    pub fn next_act_allowed(&self) -> Cycle {
        // With four ACTs in the window, the next must wait tFAW from the
        // oldest of them.
        let faw_bound = match self.act_window[0] {
            Some(oldest) => oldest.saturating_add(self.t_faw),
            None => 0,
        };
        self.next_act_rrd.max(faw_bound).max(self.ready_at)
    }

    /// Additional ACT bound for a bank in `group` (tRRD_L). Combined
    /// with [`Rank::next_act_allowed`] by the scheduler; degenerate
    /// (equal to the rank-wide tRRD bound) without bank groups.
    pub fn act_group_bound(&self, group: usize) -> Cycle {
        self.group_next_act[group]
    }

    /// Earliest CAS rank-wide (tCCD_S). For every shipped spec this is
    /// implied by data-bus occupancy (tCCD_S = tBURST), but it is
    /// enforced explicitly so a future table with tCCD_S > tBURST stays
    /// correct.
    pub fn cas_allowed_rank(&self) -> Cycle {
        self.next_cas_ccd
    }

    /// Additional CAS bound for a bank in `group` (tCCD_L).
    pub fn cas_group_bound(&self, group: usize) -> Cycle {
        self.group_next_cas[group]
    }

    /// Earliest cycle any command may issue to this rank.
    pub fn ready_at(&self) -> Cycle {
        self.ready_at
    }

    /// True when every bank is precharged.
    pub fn all_banks_idle(&self) -> bool {
        self.banks.iter().all(|b| matches!(b.state(), crate::bank::RowState::Idle))
    }

    /// Records an ACT at `now` in bank group `group` (caller has already
    /// validated bank timing).
    ///
    /// The `debug_assert` below compiles out of release builds, so it is
    /// not the enforcement mechanism for tRRD/tFAW — release-mode
    /// coverage comes from the `sdimm-audit` replay checker, which
    /// re-validates both constraints on the captured command stream.
    pub fn record_activate(&mut self, now: Cycle, group: usize, t: &Timing) {
        debug_assert!(now >= self.next_act_allowed().max(self.act_group_bound(group)));
        self.next_act_rrd = now.saturating_add(t.t_rrd);
        self.group_next_act[group] = now.saturating_add(t.t_rrd_l);
        self.act_window.rotate_left(1);
        self.act_window[3] = Some(now);
        self.last_activity = now;
    }

    /// Records a CAS at `now` in bank group `group`, arming the
    /// tCCD_S/tCCD_L spacing for subsequent CAS commands.
    pub fn record_cas(&mut self, now: Cycle, group: usize, t: &Timing) {
        debug_assert!(now >= self.cas_allowed_rank().max(self.cas_group_bound(group)));
        self.next_cas_ccd = now.saturating_add(t.t_ccd);
        self.group_next_cas[group] = now.saturating_add(t.t_ccd_l);
        self.last_activity = self.last_activity.max(now);
    }

    /// Records any non-ACT command activity at `now` (CAS, PRE).
    pub fn record_activity(&mut self, now: Cycle) {
        self.last_activity = self.last_activity.max(now);
    }

    /// Whether a refresh is due at `now`.
    pub fn refresh_due(&self, now: Cycle) -> bool {
        now >= self.next_refresh
    }

    /// Cycle at which the next refresh becomes due.
    pub fn next_refresh(&self) -> Cycle {
        self.next_refresh
    }

    /// Earliest cycle a due refresh can begin: all banks must be
    /// precharged; the caller closes them first.
    pub fn begin_refresh(&mut self, now: Cycle, t: &Timing) {
        debug_assert!(self.all_banks_idle(), "refresh with open banks");
        let done = now.saturating_add(t.t_rfc);
        for b in &mut self.banks {
            b.force_precharge_for_refresh(done);
        }
        self.ready_at = self.ready_at.max(done);
        self.next_refresh = self.next_refresh.saturating_add(t.t_refi);
        self.last_activity = now;
    }

    /// Drops CKE, entering precharge power-down.
    ///
    /// # Panics
    ///
    /// Panics (debug) if banks are open or the rank is already down.
    pub fn enter_power_down(&mut self, now: Cycle) {
        debug_assert!(self.all_banks_idle(), "power-down with open banks");
        debug_assert!(matches!(self.power, PowerState::Active));
        self.power = PowerState::PowerDown { since: now };
        self.powerdown_entries += 1;
    }

    /// Raises CKE; the rank accepts commands after tXP.
    ///
    /// Returns the cycle at which the rank is usable again. Idempotent for
    /// an active rank (returns `ready_at`).
    pub fn exit_power_down(&mut self, now: Cycle, t: &Timing) -> Cycle {
        if let PowerState::PowerDown { since } = self.power {
            self.powerdown_cycles = self.powerdown_cycles.saturating_add(now.saturating_sub(since));
            self.power = PowerState::Active;
            self.ready_at = self.ready_at.max(now.saturating_add(t.t_xp));
            self.last_activity = now;
        }
        self.ready_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Timing {
        Timing::ddr3_1600()
    }

    #[test]
    fn four_activates_trigger_faw() {
        let tm = t();
        let mut r = Rank::new(8, 1, &tm);
        let mut now = 0;
        for _ in 0..4 {
            now = now.max(r.next_act_allowed());
            r.record_activate(now, 0, &tm);
            now += tm.t_rrd;
        }
        // The 5th ACT must wait until first ACT + tFAW.
        assert!(r.next_act_allowed() >= tm.t_faw, "FAW not enforced: {}", r.next_act_allowed());
    }

    #[test]
    fn rrd_spacing_enforced() {
        let tm = t();
        let mut r = Rank::new(8, 1, &tm);
        r.record_activate(10, 0, &tm);
        assert!(r.next_act_allowed() >= 10 + tm.t_rrd);
    }

    #[test]
    fn same_group_acts_wait_trrd_l_while_cross_group_waits_trrd_s() {
        let mut tm = t();
        tm.t_rrd = 4;
        tm.t_rrd_l = 6;
        let mut r = Rank::new(16, 4, &tm);
        r.record_activate(100, 0, &tm);
        // Cross-group: only the short spacing binds.
        assert_eq!(r.next_act_allowed().max(r.act_group_bound(1)), 104);
        // Same-group: the long spacing binds.
        assert_eq!(r.next_act_allowed().max(r.act_group_bound(0)), 106);
    }

    #[test]
    fn same_group_cas_waits_tccd_l_while_cross_group_waits_tccd_s() {
        let mut tm = t();
        tm.t_ccd = 4;
        tm.t_ccd_l = 6;
        let mut r = Rank::new(16, 4, &tm);
        r.record_cas(50, 2, &tm);
        assert_eq!(r.cas_allowed_rank().max(r.cas_group_bound(0)), 54);
        assert_eq!(r.cas_allowed_rank().max(r.cas_group_bound(2)), 56);
    }

    #[test]
    fn single_group_long_bounds_mirror_the_short_ones() {
        // DDR3-shape invariant: with one bank group and long == short,
        // the group bounds never exceed the rank-wide bounds, so the
        // bank-group constraint classes add nothing to the schedule.
        let tm = t();
        let mut r = Rank::new(8, 1, &tm);
        r.record_activate(10, 0, &tm);
        assert!(r.act_group_bound(0) <= r.next_act_allowed());
        r.record_cas(40, 0, &tm);
        assert_eq!(r.cas_group_bound(0), r.cas_allowed_rank());
    }

    #[test]
    fn refresh_schedule_advances() {
        let tm = t();
        let mut r = Rank::new(8, 1, &tm);
        assert!(!r.refresh_due(0));
        assert!(r.refresh_due(tm.t_refi));
        r.begin_refresh(tm.t_refi, &tm);
        assert!(!r.refresh_due(tm.t_refi + 1));
        assert_eq!(r.ready_at(), tm.t_refi + tm.t_rfc);
    }

    #[test]
    fn power_down_round_trip_accumulates_residency() {
        let tm = t();
        let mut r = Rank::new(8, 1, &tm);
        r.enter_power_down(100);
        assert!(matches!(r.power_state(), PowerState::PowerDown { .. }));
        assert_eq!(r.powerdown_cycles(600), 500);
        let ready = r.exit_power_down(600, &tm);
        assert_eq!(ready, 600 + tm.t_xp);
        assert_eq!(r.powerdown_cycles(9999), 500);
        assert_eq!(r.powerdown_entries(), 1);
    }

    #[test]
    fn exit_power_down_when_active_is_noop() {
        let tm = t();
        let mut r = Rank::new(8, 1, &tm);
        let before = r.ready_at();
        assert_eq!(r.exit_power_down(50, &tm), before);
        assert_eq!(r.powerdown_entries(), 0);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "power-down with open banks"))]
    fn power_down_with_open_bank_panics_in_debug() {
        let tm = t();
        let mut r = Rank::new(8, 1, &tm);
        r.bank_mut(0).activate(0, 1, &tm);
        r.enter_power_down(5);
        // In release builds debug_assert compiles out; force the panic so
        // the should_panic expectation holds either way.
        #[cfg(not(debug_assertions))]
        panic!("power-down with open banks");
    }
}
