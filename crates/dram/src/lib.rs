//! `dram-sim` — a cycle-level DDR3 memory-system simulator.
//!
//! This crate is the USIMM-class substrate the Secure DIMM paper evaluates
//! on: channels of ranks and banks under full DDR3 timing constraints, an
//! FR-FCFS scheduler with read priority and write-queue draining, refresh,
//! precharge power-down, and a Micron-power-calculator-style energy model.
//!
//! It serves three roles in the reproduction:
//!
//! 1. the **main memory channels** of the non-secure and Freecursive
//!    baselines ([`MemorySystem`] over [`channel::DramChannel`]);
//! 2. each SDIMM's **internal channel** between the secure buffer and its
//!    DRAM devices (a quad-rank [`channel::DramChannel`] with on-DIMM I/O
//!    energy);
//! 3. the **shared external bus** carrying SDIMM buffer commands
//!    ([`bus::Bus`]).
//!
//! # Example
//!
//! ```
//! use dram_sim::{MemorySystem, config::ChannelConfig};
//!
//! let mut mem = MemorySystem::new(2, ChannelConfig::table2());
//! let (ch, id) = mem.enqueue_read(0x4_0000).expect("queue space");
//! let done = mem.run_until_idle(100_000);
//! assert!(done.iter().any(|(c, comp)| *c == ch && comp.id == id));
//! ```

#![deny(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod address;
pub mod bank;
pub mod bus;
pub mod channel;
pub mod cmdlog;
pub mod config;
pub mod power;
pub mod rank;
pub mod request;
pub mod spec;
pub mod stats;
pub mod wear;

use channel::DramChannel;
use config::{ChannelConfig, Cycle};
use power::EnergyBreakdown;
use request::{Completion, RequestId};
use stats::ChannelStats;

/// A multi-channel memory system with line-granularity channel
/// interleaving, as used by the baseline configurations.
#[derive(Debug)]
pub struct MemorySystem {
    channels: Vec<DramChannel>,
    line_bytes: u64,
}

impl MemorySystem {
    /// Creates `n` identical channels from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, cfg: ChannelConfig) -> Self {
        assert!(n > 0, "at least one channel required");
        let line_bytes = cfg.topology.line_bytes as u64;
        MemorySystem {
            channels: (0..n).map(|_| DramChannel::new(cfg.clone())).collect(),
            line_bytes,
        }
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Borrow a channel (for stats or direct control).
    pub fn channel(&self, i: usize) -> &DramChannel {
        &self.channels[i]
    }

    /// Mutably borrow a channel.
    pub fn channel_mut(&mut self, i: usize) -> &mut DramChannel {
        &mut self.channels[i]
    }

    /// Maps a global byte address to (channel, channel-local address) by
    /// interleaving consecutive cache lines across channels.
    pub fn map(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_bytes;
        let n = self.channels.len() as u64;
        let ch = (line % n) as usize;
        let local = (line / n) * self.line_bytes + (addr % self.line_bytes);
        (ch, local)
    }

    /// Enqueues a read at a global address. Returns the channel it landed
    /// on and the per-channel request id, or `None` if that channel's
    /// queue is full.
    pub fn enqueue_read(&mut self, addr: u64) -> Option<(usize, RequestId)> {
        let (ch, local) = self.map(addr);
        self.channels[ch].enqueue_read(local).map(|id| (ch, id))
    }

    /// Enqueues a write at a global address (see [`enqueue_read`](Self::enqueue_read)).
    pub fn enqueue_write(&mut self, addr: u64) -> Option<(usize, RequestId)> {
        let (ch, local) = self.map(addr);
        self.channels[ch].enqueue_write(local).map(|id| (ch, id))
    }

    /// Advances every channel by `cycles`.
    pub fn tick(&mut self, cycles: Cycle) {
        for ch in &mut self.channels {
            ch.tick(cycles);
        }
        debug_assert!(
            self.channels.iter().all(|ch| ch.now() == self.channels[0].now()),
            "channels must advance in lockstep"
        );
    }

    /// Current cycle. [`tick`](Self::tick) advances every channel by the
    /// same amount, so the channels stay in lockstep (debug-asserted
    /// there); `now` is defined as the *minimum* across channels so that
    /// it stays meaningful — and conservative — even if a caller skews a
    /// channel through [`channel_mut`](Self::channel_mut).
    pub fn now(&self) -> Cycle {
        // lint: panic-ok(invariant: constructor rejects zero channels)
        self.channels.iter().map(DramChannel::now).min().expect("at least one channel")
    }

    /// Earliest cycle at which any channel could do observable work (the
    /// global minimum of per-channel [`DramChannel::next_event`]
    /// horizons). Callers may advance everything to this point in one
    /// jump without changing any observable behavior.
    pub fn next_event(&self) -> Cycle {
        // lint: panic-ok(invariant: constructor rejects zero channels)
        self.channels.iter().map(DramChannel::next_event).min().expect("at least one channel")
    }

    /// True when every channel is idle.
    pub fn is_idle(&self) -> bool {
        self.channels.iter().all(DramChannel::is_idle)
    }

    /// Drains completions from all channels as `(channel, completion)`.
    pub fn drain_completions(&mut self) -> Vec<(usize, Completion)> {
        let mut out = Vec::new();
        for (i, ch) in self.channels.iter_mut().enumerate() {
            out.extend(ch.drain_completions().into_iter().map(|c| (i, c)));
        }
        out
    }

    /// Runs until idle (or `limit` cycles), returning all completions.
    ///
    /// Advances all channels together to the global next-event horizon
    /// each round, so fully idle stretches cost one jump instead of
    /// fixed-quantum spinning. Completions are identical to any other
    /// tick slicing (channel ticks are split-invariant); a deadline only
    /// truncates the run, it never reorders what drains before it.
    pub fn run_until_idle(&mut self, limit: Cycle) -> Vec<(usize, Completion)> {
        let deadline = self.now().saturating_add(limit);
        let mut out = Vec::new();
        while !self.is_idle() && self.now() < deadline {
            let target = self.next_event().clamp(self.now().saturating_add(1), deadline);
            self.tick(target.saturating_sub(self.now()));
            out.extend(self.drain_completions());
        }
        out.extend(self.drain_completions());
        out
    }

    /// Aggregate statistics across channels.
    pub fn stats(&self) -> ChannelStats {
        let mut s = ChannelStats::default();
        for ch in &self.channels {
            s.merge(ch.stats());
        }
        s
    }

    /// Aggregate energy across channels.
    pub fn energy(&mut self) -> EnergyBreakdown {
        let mut e = EnergyBreakdown::default();
        for ch in &mut self.channels {
            e.merge(&ch.energy());
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> ChannelConfig {
        let mut cfg = ChannelConfig::table2();
        cfg.refresh_enabled = false;
        cfg
    }

    #[test]
    fn lines_interleave_across_channels() {
        let mem = MemorySystem::new(2, quiet());
        assert_eq!(mem.map(0).0, 0);
        assert_eq!(mem.map(64).0, 1);
        assert_eq!(mem.map(128).0, 0);
        assert_eq!(mem.map(128).1, 64);
    }

    #[test]
    fn map_preserves_line_offsets() {
        let mem = MemorySystem::new(2, quiet());
        let (_, local) = mem.map(64 + 17);
        assert_eq!(local % 64, 17);
    }

    #[test]
    fn two_channels_double_streaming_bandwidth() {
        let run = |n: usize| -> Cycle {
            let mut mem = MemorySystem::new(n, quiet());
            let total = 256u64;
            let mut next = 0u64;
            let mut done = 0u64;
            while done < total {
                while next < total {
                    if mem.enqueue_read(next * 64).is_none() {
                        break;
                    }
                    next += 1;
                }
                mem.tick(32);
                done += mem.drain_completions().len() as u64;
            }
            mem.now()
        };
        let one = run(1);
        let two = run(2);
        assert!(
            (two as f64) < one as f64 * 0.65,
            "2 channels should be ≈2× faster: 1ch={one}, 2ch={two}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = MemorySystem::new(0, quiet());
    }

    #[test]
    fn aggregate_stats_cover_all_channels() {
        let mut mem = MemorySystem::new(2, quiet());
        mem.enqueue_read(0).unwrap();
        mem.enqueue_read(64).unwrap();
        mem.run_until_idle(50_000);
        assert_eq!(mem.stats().reads_completed, 2);
    }
}
