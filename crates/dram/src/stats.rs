//! Per-channel performance statistics.

use sdimm_telemetry::{LatencyHistogram, MetricsRegistry};

use crate::config::Cycle;

/// Counters collected by a [`crate::channel::DramChannel`] during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Read requests completed.
    pub reads_completed: u64,
    /// Write requests completed (burst retired).
    pub writes_completed: u64,
    /// Row-buffer hits among column accesses.
    pub row_hits: u64,
    /// Row-buffer misses (bank was idle).
    pub row_misses: u64,
    /// Row-buffer conflicts (wrong row open).
    pub row_conflicts: u64,
    /// Sum of read latencies (arrival → data), for averaging.
    pub read_latency_sum: Cycle,
    /// Maximum single read latency observed.
    pub read_latency_max: Cycle,
    /// Full read-latency distribution (arrival → data). Supersedes the
    /// sum/max pair for percentile reporting; both are kept in sync.
    pub read_latency_hist: LatencyHistogram,
    /// Cycles with at least one data beat on the bus (utilization).
    pub data_bus_busy_cycles: Cycle,
    /// Refreshes performed.
    pub refreshes: u64,
    /// ACT commands issued (row-buffer misses and conflicts both
    /// activate; the split between them is in the row_* counters). The
    /// wear tracker's per-row totals must sum to this when attached.
    pub activations: u64,
    /// Rows whose disturbance window first crossed the standard's
    /// hammer threshold (counted once per victim row per window).
    pub hammer_alarms: u64,
    /// Cycles where the scheduler wanted to issue but timing blocked it.
    pub stalled_cycles: Cycle,
    /// Times the command scheduler actually ran. The tick loop skips
    /// ahead to `next_wake` between decisions, so this stays far below
    /// the elapsed cycle count on idle channels — a regression guard for
    /// the event-driven fast path.
    pub scheduler_invocations: u64,
}

impl ChannelStats {
    /// Mean read latency in cycles, or 0.0 if no reads completed.
    pub fn mean_read_latency(&self) -> f64 {
        if self.reads_completed == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads_completed as f64
        }
    }

    /// Row-buffer hit rate over all classified column accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Data-bus utilization over `elapsed` cycles.
    pub fn bus_utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.data_bus_busy_cycles as f64 / elapsed as f64
        }
    }

    /// Adds another stats block into this one.
    pub fn merge(&mut self, o: &ChannelStats) {
        self.reads_completed += o.reads_completed;
        self.writes_completed += o.writes_completed;
        self.row_hits += o.row_hits;
        self.row_misses += o.row_misses;
        self.row_conflicts += o.row_conflicts;
        self.read_latency_sum += o.read_latency_sum;
        self.read_latency_max = self.read_latency_max.max(o.read_latency_max);
        self.read_latency_hist.merge(&o.read_latency_hist);
        self.data_bus_busy_cycles =
            self.data_bus_busy_cycles.saturating_add(o.data_bus_busy_cycles);
        self.refreshes += o.refreshes;
        self.activations += o.activations;
        self.hammer_alarms += o.hammer_alarms;
        self.stalled_cycles = self.stalled_cycles.saturating_add(o.stalled_cycles);
        self.scheduler_invocations += o.scheduler_invocations;
    }

    /// Clears every counter and the latency histogram — the inverse of
    /// [`merge`](Self::merge). Callers use this between a warm-up window
    /// and the measured window so warm-up traffic cannot leak into
    /// reported statistics.
    pub fn reset(&mut self) {
        *self = ChannelStats::default();
    }

    /// Exports the stats block as a flat metrics registry (keys like
    /// `reads_completed`, `read_latency` for the histogram); callers
    /// absorb it under a per-channel prefix.
    pub fn to_metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.counter_add("reads_completed", self.reads_completed);
        m.counter_add("writes_completed", self.writes_completed);
        m.counter_add("row_hits", self.row_hits);
        m.counter_add("row_misses", self.row_misses);
        m.counter_add("row_conflicts", self.row_conflicts);
        m.counter_add("refreshes", self.refreshes);
        m.counter_add("activations", self.activations);
        m.counter_add("hammer_alarms", self.hammer_alarms);
        m.counter_add("stalled_cycles", self.stalled_cycles);
        m.counter_add("data_bus_busy_cycles", self.data_bus_busy_cycles);
        m.counter_add("scheduler_invocations", self.scheduler_invocations);
        m.gauge_set("row_hit_rate", self.row_hit_rate());
        m.histogram_set("read_latency", self.read_latency_hist.clone());
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_yield_zero_rates() {
        let s = ChannelStats::default();
        assert_eq!(s.mean_read_latency(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.bus_utilization(0), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = ChannelStats {
            reads_completed: 4,
            read_latency_sum: 100,
            row_hits: 3,
            row_misses: 1,
            row_conflicts: 0,
            data_bus_busy_cycles: 50,
            ..Default::default()
        };
        assert_eq!(s.mean_read_latency(), 25.0);
        assert_eq!(s.row_hit_rate(), 0.75);
        assert_eq!(s.bus_utilization(100), 0.5);
    }

    #[test]
    fn merge_keeps_max_latency() {
        let mut a = ChannelStats { read_latency_max: 10, ..Default::default() };
        let b = ChannelStats { read_latency_max: 99, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.read_latency_max, 99);
    }

    #[test]
    fn merge_combines_latency_histograms() {
        let mut a = ChannelStats::default();
        let mut b = ChannelStats::default();
        a.read_latency_hist.record(10);
        b.read_latency_hist.record(1000);
        a.merge(&b);
        assert_eq!(a.read_latency_hist.count(), 2);
        assert_eq!(a.read_latency_hist.max(), 1000);
    }

    #[test]
    fn reset_is_the_inverse_of_merge() {
        let mut a = ChannelStats {
            reads_completed: 5,
            row_hits: 3,
            read_latency_sum: 500,
            read_latency_max: 200,
            activations: 9,
            hammer_alarms: 1,
            ..Default::default()
        };
        a.read_latency_hist.record(200);
        a.reset();
        assert_eq!(a, ChannelStats::default());
        assert!(a.read_latency_hist.is_empty());
    }

    #[test]
    fn wear_counters_survive_merge_and_export() {
        // Warm-up boundary regression (same pattern as PR 2): the wear
        // counters must participate in merge/to_metrics like every other
        // field, so a reset at the measurement boundary actually zeroes
        // them and the per-channel export reports them.
        let mut a = ChannelStats { activations: 2, hammer_alarms: 1, ..Default::default() };
        let b = ChannelStats { activations: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.activations, 5);
        assert_eq!(a.hammer_alarms, 1);
        let m = a.to_metrics().to_json();
        assert!(m.contains("\"activations\": 5"), "{m}");
        assert!(m.contains("\"hammer_alarms\": 1"), "{m}");
    }
}
