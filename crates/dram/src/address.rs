//! Physical-address decomposition for a channel.
//!
//! The mapper slices a line-aligned channel-local address into
//! (rank, bank, row, column) coordinates. The baseline ORAM layout of
//! Ren et al. \[10\] packs each small subtree into adjacent addresses so a
//! path read enjoys row-buffer hits; the interleaving scheme chosen here
//! decides how that contiguity maps onto banks and ranks.

use crate::config::Topology;

/// Decoded DRAM coordinates for one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coords {
    /// Rank index on the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: usize,
    /// Row index within the bank.
    pub row: usize,
    /// Column index (cache-line slot within the row).
    pub col: usize,
}

/// Bit-interleaving scheme for the address mapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Interleave {
    /// `row : rank : bank : column` — consecutive lines fill a row before
    /// switching banks; adjacent rows land on different banks/ranks.
    /// Maximizes row-buffer locality for streaming (the ORAM subtree
    /// layout wants this).
    #[default]
    RowRankBankCol,
    /// `row : column-high : rank : bank : column-low` — fine-grained bank
    /// interleaving for maximum parallelism, lower row locality.
    BankInterleaved,
    /// `rank : row : bank : column` — all of a rank's address space is
    /// contiguous. The paper's low-power layout ("each rank contains one
    /// whole subtree") uses this so one ORAM access touches one rank.
    RankContiguous,
}

/// Maps line-aligned channel-local addresses to DRAM coordinates.
#[derive(Debug, Clone)]
pub struct AddressMapper {
    topo: Topology,
    scheme: Interleave,
}

impl AddressMapper {
    /// Creates a mapper for `topo` using `scheme`.
    pub fn new(topo: Topology, scheme: Interleave) -> Self {
        AddressMapper { topo, scheme }
    }

    /// The interleaving scheme in use.
    pub fn scheme(&self) -> Interleave {
        self.scheme
    }

    /// Decodes a byte address (line-aligned or not) into coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the address exceeds channel capacity.
    pub fn decode(&self, addr: u64) -> Coords {
        let line = (addr as usize) / self.topo.line_bytes;
        assert!(
            line < self.topo.capacity_lines(),
            "address {addr:#x} beyond channel capacity ({} lines)",
            self.topo.capacity_lines()
        );
        let cols = self.topo.lines_per_row();
        let banks = self.topo.banks;
        let ranks = self.topo.ranks;
        let rows = self.topo.rows;
        match self.scheme {
            Interleave::RowRankBankCol => {
                let col = line % cols;
                let rest = line / cols;
                let bank = rest % banks;
                let rest = rest / banks;
                let rank = rest % ranks;
                let row = rest / ranks;
                debug_assert!(row < rows);
                Coords { rank, bank, row, col }
            }
            Interleave::BankInterleaved => {
                // Low 4 columns stay together (a 4-line ORAM bucket), then
                // banks, then ranks, then the remaining columns, then rows.
                let lo_bits = 4usize;
                let col_lo = line % lo_bits.max(1);
                let rest = line / lo_bits;
                let bank = rest % banks;
                let rest = rest / banks;
                let rank = rest % ranks;
                let rest = rest / ranks;
                let col_hi = rest % (cols / lo_bits);
                let row = rest / (cols / lo_bits);
                debug_assert!(row < rows);
                Coords { rank, bank, row, col: col_hi * lo_bits + col_lo }
            }
            Interleave::RankContiguous => {
                let col = line % cols;
                let rest = line / cols;
                let bank = rest % banks;
                let rest = rest / banks;
                let row = rest % rows;
                let rank = rest / rows;
                debug_assert!(rank < ranks);
                Coords { rank, bank, row, col }
            }
        }
    }

    /// Encodes coordinates back into a line-aligned byte address
    /// (inverse of [`decode`](Self::decode)).
    pub fn encode(&self, c: Coords) -> u64 {
        let cols = self.topo.lines_per_row();
        let banks = self.topo.banks;
        let ranks = self.topo.ranks;
        let rows = self.topo.rows;
        let line = match self.scheme {
            Interleave::RowRankBankCol => {
                ((c.row * ranks + c.rank) * banks + c.bank) * cols + c.col
            }
            Interleave::BankInterleaved => {
                let lo_bits = 4usize;
                let col_lo = c.col % lo_bits;
                let col_hi = c.col / lo_bits;
                ((((c.row * (cols / lo_bits) + col_hi) * ranks + c.rank) * banks + c.bank)
                    * lo_bits)
                    + col_lo
            }
            Interleave::RankContiguous => ((c.rank * rows + c.row) * banks + c.bank) * cols + c.col,
        };
        (line * self.topo.line_bytes) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::table2_channel()
    }

    #[test]
    fn decode_encode_roundtrip_all_schemes() {
        for scheme in
            [Interleave::RowRankBankCol, Interleave::BankInterleaved, Interleave::RankContiguous]
        {
            let m = AddressMapper::new(topo(), scheme);
            for line in [0u64, 1, 63, 64, 12345, 999_999, 4_000_000] {
                let addr = line * 64;
                let c = m.decode(addr);
                assert_eq!(m.encode(c), addr, "scheme {scheme:?} line {line}");
            }
        }
    }

    #[test]
    fn row_rank_bank_col_keeps_row_streaks() {
        let m = AddressMapper::new(topo(), Interleave::RowRankBankCol);
        let a = m.decode(0);
        let b = m.decode(64);
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.rank, b.rank);
        assert_eq!(b.col, a.col + 1);
    }

    #[test]
    fn bank_interleaved_spreads_buckets_across_banks() {
        let m = AddressMapper::new(topo(), Interleave::BankInterleaved);
        // Lines 0..3 share a bank (one bucket); line 4 moves to the next bank.
        let a = m.decode(0);
        let b = m.decode(3 * 64);
        let c = m.decode(4 * 64);
        assert_eq!(a.bank, b.bank);
        assert_ne!(a.bank, c.bank);
    }

    #[test]
    fn rank_contiguous_isolates_ranks() {
        let m = AddressMapper::new(topo(), Interleave::RankContiguous);
        let per_rank_lines = (topo().capacity_lines() / topo().ranks) as u64;
        let last_of_rank0 = m.decode((per_rank_lines - 1) * 64);
        let first_of_rank1 = m.decode(per_rank_lines * 64);
        assert_eq!(last_of_rank0.rank, 0);
        assert_eq!(first_of_rank1.rank, 1);
    }

    #[test]
    #[should_panic(expected = "beyond channel capacity")]
    fn decode_rejects_out_of_range() {
        let m = AddressMapper::new(topo(), Interleave::RowRankBankCol);
        m.decode(topo().capacity_bytes() as u64);
    }

    #[test]
    fn coords_stay_in_bounds_exhaustive_sample() {
        let t = topo();
        for scheme in
            [Interleave::RowRankBankCol, Interleave::BankInterleaved, Interleave::RankContiguous]
        {
            let m = AddressMapper::new(t.clone(), scheme);
            let step = (t.capacity_lines() / 1000).max(1) as u64;
            for line in (0..t.capacity_lines() as u64).step_by(step as usize) {
                let c = m.decode(line * 64);
                assert!(
                    c.rank < t.ranks
                        && c.bank < t.banks
                        && c.row < t.rows
                        && c.col < t.lines_per_row()
                );
            }
        }
    }
}
