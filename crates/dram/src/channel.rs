//! One DDR3 channel: request queues, FR-FCFS scheduler, banks/ranks with
//! full timing constraints, refresh, power-down, and energy accounting.
//!
//! The model issues at most one DRAM command per memory-clock cycle (the
//! command-bus constraint) and tracks the shared data bus including
//! rank-to-rank switch (tRTRS) and read/write turnaround penalties. It is
//! a faithful small-scale reimplementation of the USIMM scheduling model
//! the paper uses, tuned so cycle loops can skip ahead when no command
//! could possibly issue.

use std::collections::{BinaryHeap, VecDeque};

use sdimm_telemetry::{recorder::FlightEventKind, FlightRecorder, TraceSink};

use crate::address::{AddressMapper, Coords, Interleave};
use crate::bank::{RowOutcome, RowState};
use crate::cmdlog::{CmdLog, DdrCmd};
use crate::config::{ChannelConfig, Cycle, PowerPolicy, SchedulerPolicy};
use crate::power::{compute_energy, EnergyBreakdown, EnergyCounters};
use crate::rank::{PowerState, Rank};
use crate::request::{Completion, Request, RequestId, RequestKind};
use crate::stats::ChannelStats;
use crate::wear::{RowPressure, WearConfig};

/// Bus turnaround penalty (cycles) when the data bus switches direction.
const BUS_TURNAROUND: Cycle = 2;

/// Age (cycles) past which the oldest request is scheduled before row hits,
/// preventing FR-FCFS starvation.
const STARVATION_LIMIT: Cycle = 2000;

#[derive(Debug, Clone, Copy)]
struct QEntry {
    req: Request,
    coords: Coords,
    /// Flat bank index (`rank * banks + bank`), precomputed at enqueue so
    /// the scheduler scan walks one flat cache array instead of chasing
    /// `Vec<Rank> → Vec<Bank>` pointers per entry.
    bidx: u32,
    /// Bank group (`bank / banks_per_group`), precomputed at enqueue so
    /// the scan's tRRD_L/tCCD_L lookups are one array index, no division.
    group: u16,
}

/// Sentinel for [`BankCache::open_row`]: the bank is precharged.
const NO_ROW: usize = usize::MAX;

/// Flat per-bank mirror of the timing state the scheduler scan reads
/// every invocation. Kept in sync with [`crate::bank::Bank`] at every
/// mutation site (ACT/PRE/CAS/refresh); `debug_validate_caches`
/// cross-checks the mirror against the banks in debug builds.
#[derive(Debug, Clone, Copy)]
struct BankCache {
    /// Open row, or [`NO_ROW`] when precharged.
    open_row: usize,
    /// Earliest legal CAS (tRCD after ACT, tCCD after a burst).
    next_cas: Cycle,
    /// Earliest legal ACT (tRP after PRE, tRC after the previous ACT).
    next_act: Cycle,
    /// Earliest legal PRE (tRAS after ACT, tRTP/tWR after a burst).
    next_pre: Cycle,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    finish: Cycle,
    id: RequestId,
    kind: RequestKind,
    arrival: Cycle,
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on finish time.
        other.finish.cmp(&self.finish).then(other.id.cmp(&self.id))
    }
}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy)]
enum Decision {
    Cas {
        write: bool,
        idx: usize,
    },
    Act {
        write: bool,
        idx: usize,
    },
    Pre {
        write: bool,
        idx: usize,
    },
    /// Precharge issued for maintenance: ahead of a refresh, or to close
    /// an idle rank's banks so it can enter power-down.
    MaintenancePre {
        rank: usize,
        bank: usize,
    },
    Refresh {
        rank: usize,
    },
    Idle {
        retry_at: Cycle,
    },
}

/// A cycle-level DDR3 channel with its memory controller.
///
/// # Example
///
/// ```
/// use dram_sim::channel::DramChannel;
/// use dram_sim::config::ChannelConfig;
///
/// let mut ch = DramChannel::new(ChannelConfig::table2());
/// let id = ch.enqueue_read(0x1000).expect("queue has space");
/// let done = ch.run_until_idle(100_000);
/// assert!(done.iter().any(|c| c.id == id));
/// ```
#[derive(Debug)]
pub struct DramChannel {
    cfg: ChannelConfig,
    mapper: AddressMapper,
    now: Cycle,
    next_id: u64,
    read_q: VecDeque<QEntry>,
    write_q: VecDeque<QEntry>,
    draining: bool,
    ranks: Vec<Rank>,
    /// Per-rank earliest read CAS (tWTR after a write burst).
    rank_next_read: Vec<Cycle>,
    /// Per-rank "refresh urgently pending" flag.
    refresh_pending: Vec<bool>,
    /// Ranks pinned down by the low-power protocol (no auto-wake by policy).
    forced_down: Vec<bool>,
    bus_free_at: Cycle,
    bus_last_rank: Option<usize>,
    bus_last_write: Option<bool>,
    /// Earliest cycle at which scheduling could possibly make progress.
    next_wake: Cycle,
    /// Per-rank background-energy accounting mark.
    bg_mark: Vec<Cycle>,
    /// Per-rank count of queued entries (read + write) — an incremental
    /// mirror of scanning both queues, so power management is O(ranks).
    rank_queued: Vec<u32>,
    /// Per-rank count of banks with an open row — incremental mirror of
    /// [`Rank::all_banks_idle`].
    rank_open_banks: Vec<u32>,
    /// Flat per-bank earliest-legal-issue cache (rank-major order).
    bank_cache: Vec<BankCache>,
    /// Start of the current blocked-with-queued-work interval, if any.
    /// Stall cycles accrue lazily as time actually elapses, so the total
    /// is independent of how callers split their `tick` calls.
    stall_since: Option<Cycle>,
    pending: BinaryHeap<Pending>,
    completions: VecDeque<Completion>,
    stats: ChannelStats,
    energy: EnergyCounters,
    /// Trace recording handle; disabled by default (one branch per event).
    sink: TraceSink,
    /// Command capture for replay auditing; disabled by default.
    cmd_log: CmdLog,
    /// Flight-recorder tap; disabled by default (one branch per command).
    flight: FlightRecorder,
    /// Channel index reported in flight-recorder DDR events.
    flight_channel: u8,
    /// Per-row wear tracker; disabled (`None`) by default, one branch
    /// per ACT/WR/REF when detached.
    wear: Option<Box<RowPressure>>,
    /// Chrome-trace process id this channel reports under.
    trace_pid: u32,
    /// Chrome-trace thread id (one track per channel).
    trace_tid: u32,
}

impl DramChannel {
    /// Creates an idle channel from `cfg` with the default interleaving.
    pub fn new(cfg: ChannelConfig) -> Self {
        Self::with_interleave(cfg, Interleave::RowRankBankCol)
    }

    /// Creates a channel with an explicit address-interleaving scheme.
    pub fn with_interleave(cfg: ChannelConfig, scheme: Interleave) -> Self {
        let ranks = (0..cfg.topology.ranks)
            .map(|_| Rank::new(cfg.topology.banks, cfg.topology.bank_groups, &cfg.timing))
            .collect::<Vec<_>>();
        let n = ranks.len();
        let banks = cfg.topology.banks;
        DramChannel {
            mapper: AddressMapper::new(cfg.topology.clone(), scheme),
            ranks,
            rank_next_read: vec![0; n],
            refresh_pending: vec![false; n],
            forced_down: vec![false; n],
            bg_mark: vec![0; n],
            rank_queued: vec![0; n],
            rank_open_banks: vec![0; n],
            bank_cache: vec![
                BankCache { open_row: NO_ROW, next_cas: 0, next_act: 0, next_pre: 0 };
                n * banks
            ],
            stall_since: None,
            cfg,
            now: 0,
            next_id: 0,
            read_q: VecDeque::new(),
            write_q: VecDeque::new(),
            draining: false,
            bus_free_at: 0,
            bus_last_rank: None,
            bus_last_write: None,
            next_wake: 0,
            pending: BinaryHeap::new(),
            completions: VecDeque::new(),
            stats: ChannelStats::default(),
            energy: EnergyCounters::default(),
            sink: TraceSink::disabled(),
            cmd_log: CmdLog::disabled(),
            flight: FlightRecorder::disabled(),
            flight_channel: 0,
            wear: None,
            trace_pid: 0,
            trace_tid: 0,
        }
    }

    /// Attaches a trace sink; the channel's events land on thread track
    /// `tid` of process track `pid` in the exported Chrome trace.
    pub fn set_trace(&mut self, sink: TraceSink, pid: u32, tid: u32) {
        if sink.is_enabled() {
            sink.thread_name(pid, tid, &format!("dram.chan{}", tid));
        }
        self.sink = sink;
        self.trace_pid = pid;
        self.trace_tid = tid;
    }

    /// Attaches a command-capture log: every DDR command (ACT/PRE/CAS/
    /// REF and CKE transitions) is recorded with full coordinates so the
    /// `sdimm-audit` replay checker can re-validate the stream against
    /// its own DDR3 constraint table. Disabled by default; one branch
    /// per command when detached.
    pub fn set_cmd_log(&mut self, log: CmdLog) {
        self.cmd_log = log;
    }

    /// Attaches a flight recorder: every DDR command is also mirrored
    /// into the recorder's bounded ring (tagged with this channel's
    /// index) so a black-box dump shows the command stream leading up
    /// to a fault. Disabled by default; one branch per command.
    pub fn set_flight_recorder(&mut self, recorder: FlightRecorder, channel: u8) {
        self.flight = recorder;
        self.flight_channel = channel;
    }

    /// Routes one command to the audit log and the flight recorder.
    fn log_cmd(&mut self, cycle: Cycle, rank: usize, cmd: DdrCmd) {
        self.cmd_log.record(cycle, rank, cmd);
        if self.flight.is_enabled() {
            self.flight.record_at(
                cycle,
                cmd.flight_kind(self.flight_channel, rank.min(u8::MAX as usize) as u8),
            );
        }
    }

    /// Attaches a per-row wear tracker configured from this channel's
    /// standard spec and topology (see [`crate::wear`]). Threshold
    /// crossings bump `ChannelStats::hammer_alarms` and, when a flight
    /// recorder is attached, land on its hammer lane. Disabled by
    /// default; one branch per ACT/WR/REF when detached.
    pub fn enable_wear(&mut self) {
        self.wear = Some(Box::new(RowPressure::new(WearConfig::for_channel(&self.cfg))));
    }

    /// The wear tracker, if [`enable_wear`](Self::enable_wear) was called.
    pub fn wear(&self) -> Option<&RowPressure> {
        self.wear.as_deref()
    }

    /// Clears performance statistics (not energy or timing state) so a
    /// measured window starts clean after warm-up traffic. The wear
    /// tracker resets with the stats: warm-up activations must not
    /// leak into the measured window's wear and disturbance report.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        if let Some(w) = self.wear.as_deref_mut() {
            w.reset();
        }
        // A blocked interval straddling the reset only counts its
        // post-reset portion.
        self.stall_since = self.stall_since.map(|_| self.now);
    }

    /// Current simulated cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The channel configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// The address mapper this channel decodes requests with — lets
    /// reporting code re-encode physical (rank, bank, row) coordinates
    /// back into the channel-local addresses a protocol layer speaks.
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Read-queue occupancy.
    pub fn read_queue_len(&self) -> usize {
        self.read_q.len()
    }

    /// Write-queue occupancy.
    pub fn write_queue_len(&self) -> usize {
        self.write_q.len()
    }

    /// True when no requests are queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty() && self.pending.is_empty()
    }

    /// Performance statistics so far.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Raw energy counters so far (background residency up to `now`).
    pub fn energy_counters(&mut self) -> EnergyCounters {
        for r in 0..self.ranks.len() {
            self.account_bg(r);
        }
        self.energy.clone()
    }

    /// Computes the energy breakdown for the run so far.
    pub fn energy(&mut self) -> EnergyBreakdown {
        let counters = self.energy_counters();
        compute_energy(&counters, &self.cfg.power, &self.cfg.timing, self.cfg.location)
    }

    /// Enqueues a cache-line read. Returns `None` when the read queue is
    /// full (the caller must retry after ticking).
    pub fn enqueue_read(&mut self, addr: u64) -> Option<RequestId> {
        if self.read_q.len() >= self.cfg.read_queue_capacity {
            return None;
        }
        let id = RequestId(self.next_id);
        // Write-to-read forwarding: a queued write to the same line
        // services the read without touching DRAM.
        if self.write_q.iter().any(|e| e.req.addr == addr) {
            self.next_id += 1;
            self.pending.push(Pending {
                finish: self.now.saturating_add(1),
                id,
                kind: RequestKind::Read,
                arrival: self.now,
            });
            return Some(id);
        }
        self.next_id += 1;
        let req = Request { id, addr, kind: RequestKind::Read, arrival: self.now };
        let coords = self.mapper.decode(addr);
        self.rank_queued[coords.rank] += 1;
        let (bidx, group) = (self.flat_bank(&coords), self.bank_group(&coords));
        self.read_q.push_back(QEntry { req, coords, bidx, group });
        self.next_wake = self.now;
        Some(id)
    }

    /// Enqueues a cache-line write. Returns `None` when the write queue is
    /// full.
    pub fn enqueue_write(&mut self, addr: u64) -> Option<RequestId> {
        if self.write_q.len() >= self.cfg.write_drain.capacity {
            return None;
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let req = Request { id, addr, kind: RequestKind::Write, arrival: self.now };
        let coords = self.mapper.decode(addr);
        self.rank_queued[coords.rank] += 1;
        let (bidx, group) = (self.flat_bank(&coords), self.bank_group(&coords));
        self.write_q.push_back(QEntry { req, coords, bidx, group });
        self.next_wake = self.now;
        Some(id)
    }

    /// Pins `rank` in precharge power-down (the SDIMM low-power scheme).
    /// The rank is woken automatically if a request targets it.
    pub fn force_rank_down(&mut self, rank: usize) {
        self.forced_down[rank] = true;
        self.next_wake = self.now;
    }

    /// Releases a pinned rank and begins its wakeup immediately so tXP is
    /// hidden behind the current access (the paper wakes the next rank
    /// "early enough to hide the wakeup latency").
    pub fn wake_rank(&mut self, rank: usize) {
        self.forced_down[rank] = false;
        self.account_bg(rank);
        let was_down = matches!(self.ranks[rank].power_state(), PowerState::PowerDown { .. });
        let t = self.cfg.timing.clone();
        self.ranks[rank].exit_power_down(self.now, &t);
        if was_down {
            self.log_cmd(self.now, rank, DdrCmd::PowerUp);
        }
        self.next_wake = self.now;
        if self.sink.is_enabled() {
            self.sink.instant(
                "dram.power",
                &format!("wake.rank{rank}"),
                self.trace_pid,
                self.trace_tid,
                self.now,
            );
        }
    }

    /// Power state of `rank` (for tests and the low-power experiments).
    pub fn rank_power_state(&self, rank: usize) -> PowerState {
        self.ranks[rank].power_state()
    }

    /// Total cycles `rank` has spent powered down.
    pub fn rank_powerdown_cycles(&self, rank: usize) -> Cycle {
        self.ranks[rank].powerdown_cycles(self.now)
    }

    /// Takes all completions that have finished by `now`.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        while let Some(p) = self.pending.peek() {
            if p.finish <= self.now {
                // lint: panic-ok(invariant: peeked)
                let p = self.pending.pop().expect("peeked");
                let latency = p.finish - p.arrival;
                match p.kind {
                    RequestKind::Read => {
                        self.stats.reads_completed += 1;
                        self.stats.read_latency_sum += latency;
                        self.stats.read_latency_max = self.stats.read_latency_max.max(latency);
                        self.stats.read_latency_hist.record(latency);
                        self.sink.span(
                            "dram",
                            "read",
                            self.trace_pid,
                            self.trace_tid,
                            p.arrival,
                            p.finish,
                        );
                    }
                    RequestKind::Write => {
                        self.stats.writes_completed += 1;
                        self.sink.span(
                            "dram",
                            "write",
                            self.trace_pid,
                            self.trace_tid,
                            p.arrival,
                            p.finish,
                        );
                    }
                }
                self.completions.push_back(Completion {
                    id: p.id,
                    kind: p.kind,
                    finish: p.finish,
                    latency,
                });
            } else {
                break;
            }
        }
        self.completions.drain(..).collect()
    }

    /// Advances simulated time by `cycles`, issuing commands as they
    /// become legal.
    ///
    /// The loop is event-driven: scheduler decisions happen only at
    /// `next_wake` cycles, and those cycles depend solely on the channel
    /// state — not on how callers slice their `tick` calls. `tick(a)`
    /// followed by `tick(b)` issues the same command stream and accrues
    /// the same statistics as `tick(a + b)` (the split-invariance
    /// property tests pin this down).
    pub fn tick(&mut self, cycles: Cycle) {
        let end = self.now.saturating_add(cycles);
        while self.now < end {
            if self.now >= self.next_wake {
                self.settle_stall();
                self.stats.scheduler_invocations += 1;
                if self.schedule_once() {
                    // A command issued this cycle; the next may issue on
                    // the following cycle.
                    self.next_wake = self.now.saturating_add(1);
                }
            }
            let target = self.next_wake.min(end);
            self.now = target.max(self.now.saturating_add(1)).min(end);
        }
        self.settle_stall();
    }

    /// Earliest future cycle at which this channel could do observable
    /// work: the scheduler's next wake-up (which already folds refresh
    /// deadlines and power-down eligibility edges via `Decision::Idle`)
    /// or the earliest in-flight completion, whichever comes first. A
    /// value at or before [`now`](Self::now) means work is ready
    /// immediately. Callers may advance the channel to this horizon in
    /// one `tick` without changing any observable behavior.
    pub fn next_event(&self) -> Cycle {
        self.next_completion().map_or(self.next_wake, |c| c.min(self.next_wake))
    }

    /// Cycle at which the earliest in-flight request finishes (and so
    /// becomes drainable), or `None` when nothing is in flight. Returns
    /// `now` when already-finished completions are waiting to be drained.
    pub fn next_completion(&self) -> Option<Cycle> {
        if !self.completions.is_empty() {
            return Some(self.now);
        }
        self.pending.peek().map(|p| p.finish)
    }

    /// Lower bound on the next completion this channel can deliver: the
    /// earliest in-flight (post-CAS) finish, or — for requests still
    /// queued ahead of their CAS — the earliest cycle a CAS issued at
    /// the next scheduler wake-up could move data (`next_wake + data
    /// latency + burst`; any real CAS issues at or after `next_wake`,
    /// so no completion can precede this bound). `Cycle::MAX` when the
    /// channel holds no work at all.
    pub fn completion_horizon(&self) -> Cycle {
        let mut h = self.next_completion().unwrap_or(Cycle::MAX);
        if !self.read_q.is_empty() || !self.write_q.is_empty() {
            let t = &self.cfg.timing;
            h = h.min(self.next_wake.saturating_add(t.cl.min(t.cwl)).saturating_add(t.t_burst));
        }
        h
    }

    /// Accrues the elapsed portion of a blocked-with-queued-work interval
    /// into `stalled_cycles` and restarts the mark at `now`. Called when
    /// time has advanced (scheduler wake-up, end of a tick); crediting
    /// elapsed time lazily — rather than the planned wait at decision
    /// time — keeps the counter identical under arbitrary tick splits.
    fn settle_stall(&mut self) {
        if let Some(since) = self.stall_since {
            self.stats.stalled_cycles =
                self.stats.stalled_cycles.saturating_add(self.now.saturating_sub(since));
            self.stall_since = Some(self.now);
        }
    }

    /// Runs until the channel is idle or `limit` cycles have elapsed,
    /// returning all completions. Useful for batch-style callers.
    ///
    /// The chunk size only bounds how often the idle check runs — `tick`
    /// jumps event-to-event internally, so oversized chunks cost nothing
    /// and the completions are identical under any slicing.
    pub fn run_until_idle(&mut self, limit: Cycle) -> Vec<Completion> {
        let deadline = self.now.saturating_add(limit);
        let mut out = Vec::new();
        while !self.is_idle() && self.now < deadline {
            self.tick(deadline.saturating_sub(self.now).min(10_000));
            out.extend(self.drain_completions());
        }
        out.extend(self.drain_completions());
        out
    }

    // ----- internals -------------------------------------------------

    /// Flat bank-cache index for `coords`.
    fn flat_bank(&self, coords: &Coords) -> u32 {
        debug_assert!(coords.row != NO_ROW, "row index collides with the idle sentinel");
        (coords.rank * self.cfg.topology.banks + coords.bank) as u32
    }

    /// Bank group for `coords` (0 on group-less standards).
    fn bank_group(&self, coords: &Coords) -> u16 {
        (coords.bank / self.cfg.topology.banks_per_group()) as u16
    }

    /// Re-mirrors one bank's timing state into the flat cache. Must be
    /// called after every mutation of that bank.
    fn sync_bank_cache(&mut self, rank: usize, bank: usize) {
        let b = self.ranks[rank].bank(bank);
        self.bank_cache[rank * self.cfg.topology.banks + bank] = BankCache {
            open_row: match b.state() {
                RowState::Open(r) => r,
                RowState::Idle => NO_ROW,
            },
            next_cas: b.next_cas(),
            next_act: b.next_act(),
            next_pre: b.next_pre(),
        };
    }

    /// Cross-checks every incremental mirror (queued-work counters,
    /// open-bank counters, flat bank cache) against the authoritative
    /// structures. Debug builds run this each scheduler invocation; in
    /// release the mirrors are trusted and the `sdimm-audit` replay
    /// checker re-validates the resulting command stream independently.
    #[cfg(debug_assertions)]
    fn debug_validate_caches(&self) {
        for (r, rank) in self.ranks.iter().enumerate() {
            let queued = self
                .read_q
                .iter()
                .chain(self.write_q.iter())
                .filter(|e| e.coords.rank == r)
                .count();
            assert_eq!(queued, self.rank_queued[r] as usize, "rank {r} queued-work counter");
            let open = (0..rank.bank_count())
                .filter(|&b| matches!(rank.bank(b).state(), RowState::Open(_)))
                .count();
            assert_eq!(open, self.rank_open_banks[r] as usize, "rank {r} open-bank counter");
            for b in 0..rank.bank_count() {
                let bc = &self.bank_cache[r * self.cfg.topology.banks + b];
                let bank = rank.bank(b);
                let row = match bank.state() {
                    RowState::Open(row) => row,
                    RowState::Idle => NO_ROW,
                };
                assert!(
                    bc.open_row == row
                        && bc.next_cas == bank.next_cas()
                        && bc.next_act == bank.next_act()
                        && bc.next_pre == bank.next_pre(),
                    "bank cache stale for rank {r} bank {b}"
                );
            }
        }
    }

    /// Accounts background-energy residency for `rank` up to `now`.
    fn account_bg(&mut self, rank: usize) {
        let dt = self.now.saturating_sub(self.bg_mark[rank]);
        if dt == 0 {
            self.bg_mark[rank] = self.now;
            return;
        }
        match self.ranks[rank].power_state() {
            PowerState::PowerDown { .. } => {
                self.energy.powerdown_cycles = self.energy.powerdown_cycles.saturating_add(dt)
            }
            PowerState::Active => {
                if self.rank_open_banks[rank] == 0 {
                    self.energy.precharge_standby_cycles =
                        self.energy.precharge_standby_cycles.saturating_add(dt);
                } else {
                    self.energy.active_standby_cycles =
                        self.energy.active_standby_cycles.saturating_add(dt);
                }
            }
        }
        self.bg_mark[rank] = self.now;
    }

    /// Whether `rank` should be heading toward power-down right now.
    fn wants_sleep(&self, rank: usize) -> bool {
        if self.rank_queued[rank] > 0 || self.refresh_pending[rank] {
            return false;
        }
        if !matches!(self.ranks[rank].power_state(), PowerState::Active) {
            return false;
        }
        if self.forced_down[rank] {
            return true;
        }
        match self.cfg.power_policy {
            PowerPolicy::AlwaysOn => false,
            PowerPolicy::PowerDown { idle_cycles } => {
                self.now.saturating_sub(self.ranks[rank].last_activity()) >= idle_cycles
            }
        }
    }

    /// Applies the idle-rank power policy and wakes ranks with work.
    /// Runs every scheduler invocation, so each rank's checks are O(1)
    /// against the incremental counters — no queue or bank scans.
    fn manage_power(&mut self) {
        for i in 0..self.ranks.len() {
            let has_work = self.rank_queued[i] > 0;
            match self.ranks[i].power_state() {
                PowerState::PowerDown { .. } => {
                    if has_work {
                        self.account_bg(i);
                        let t = self.cfg.timing.clone();
                        self.ranks[i].exit_power_down(self.now, &t);
                        self.log_cmd(self.now, i, DdrCmd::PowerUp);
                        if self.sink.is_enabled() {
                            self.sink.instant(
                                "dram.power",
                                &format!("wake.rank{i}"),
                                self.trace_pid,
                                self.trace_tid,
                                self.now,
                            );
                        }
                    }
                }
                PowerState::Active => {
                    let should_sleep = if self.forced_down[i] {
                        !has_work
                    } else {
                        match self.cfg.power_policy {
                            PowerPolicy::AlwaysOn => false,
                            PowerPolicy::PowerDown { idle_cycles } => {
                                !has_work
                                    && self.now.saturating_sub(self.ranks[i].last_activity())
                                        >= idle_cycles
                            }
                        }
                    };
                    if should_sleep
                        && self.rank_open_banks[i] == 0
                        && !self.refresh_pending[i]
                        && self.now >= self.ranks[i].ready_at()
                    {
                        self.account_bg(i);
                        self.ranks[i].enter_power_down(self.now);
                        self.log_cmd(self.now, i, DdrCmd::PowerDown);
                        if self.sink.is_enabled() {
                            self.sink.instant(
                                "dram.power",
                                &format!("powerdown.rank{i}"),
                                self.trace_pid,
                                self.trace_tid,
                                self.now,
                            );
                        }
                    }
                }
            }
        }
    }

    /// Effective data-bus availability for a CAS targeting `rank`.
    fn bus_ready_for(&self, rank: usize, write: bool) -> Cycle {
        let mut free = self.bus_free_at;
        if let Some(last) = self.bus_last_rank {
            if last != rank {
                free = free.saturating_add(self.cfg.timing.t_rtrs);
            }
        }
        if let Some(last_write) = self.bus_last_write {
            if last_write != write {
                free += BUS_TURNAROUND;
            }
        }
        free
    }

    /// Picks the best action over one queue under FR-FCFS (or FCFS).
    fn scan_queue(&self, write: bool, best_retry: &mut Cycle) -> Option<Decision> {
        let q = if write { &self.write_q } else { &self.read_q };
        if q.is_empty() {
            return None;
        }
        let limit = match self.cfg.scheduler {
            SchedulerPolicy::FrFcfs => q.len(),
            SchedulerPolicy::Fcfs => 1,
        };

        // Anti-starvation: an over-age head-of-queue is served ahead of
        // younger row hits — but only when one of its commands can
        // actually issue. A head that is stuck for reasons no scheduling
        // order can fix (owed refresh, a long tRAS before its precharge,
        // the tFAW window) must not idle the whole channel, so when the
        // head-only scan yields nothing the scan falls back to plain
        // FR-FCFS over the rest of the queue.
        let head_age = self.now.saturating_sub(q[0].req.arrival);
        if head_age > STARVATION_LIMIT {
            if let Some(d) = self.scan_entries(q, write, 1, best_retry) {
                return Some(d);
            }
        }
        self.scan_entries(q, write, limit, best_retry)
    }

    /// FR-FCFS scan over the first `limit` entries of `q`: an issuable
    /// CAS wins immediately; otherwise the oldest issuable ACT, then the
    /// oldest issuable PRE (suppressed while an older entry still wants
    /// the open row). Blocked entries lower `best_retry`.
    ///
    /// This is the scheduler's innermost loop: each entry reads its
    /// bank's earliest-legal-issue times from the flat [`BankCache`]
    /// (one indexed load via the precomputed `bidx`), and "does an older
    /// entry want this bank" is answered by a bitmask of banks already
    /// visited this scan instead of re-walking the queue prefix.
    fn scan_entries(
        &self,
        q: &VecDeque<QEntry>,
        write: bool,
        limit: usize,
        best_retry: &mut Cycle,
    ) -> Option<Decision> {
        let mut act_choice: Option<usize> = None;
        let mut pre_choice: Option<usize> = None;
        let t = &self.cfg.timing;
        let data_latency = if write { t.cwl } else { t.cl };
        // Rank-level readiness is constant for the duration of one scan
        // (issues mutate it, but a scan only reads): memoize it the
        // first time an entry touches each rank, so deep queues pay the
        // rank-state walk (tFAW ring, bus turnaround) once per rank
        // instead of once per entry, and shallow queues pay nothing
        // extra. Topologies beyond the array bound fall back to querying
        // the rank directly.
        const MAX_RANKS: usize = 8;
        let mut rank_filled: u8 = 0;
        let mut rank_ready = [0 as Cycle; MAX_RANKS];
        let mut rank_act_allowed = [0 as Cycle; MAX_RANKS];
        let mut rank_cas_allowed = [0 as Cycle; MAX_RANKS];
        let mut rank_bus = [0 as Cycle; MAX_RANKS];
        // Banks touched by entries older than the current one. Every
        // supported topology fits rank×bank into 128 bits; the fallback
        // prefix walk keeps exotic configs correct.
        let mut seen: u128 = 0;
        for (idx, e) in q.iter().enumerate().take(limit) {
            let bc = &self.bank_cache[e.bidx as usize];
            let bit = if (e.bidx as usize) < 128 { 1u128 << e.bidx } else { 0 };
            let r = e.coords.rank;
            let (r_ready, r_act_allowed, r_cas_allowed, r_bus) = if r < MAX_RANKS {
                if rank_filled & (1 << r) == 0 {
                    rank_ready[r] = self.ranks[r].ready_at();
                    rank_act_allowed[r] = self.ranks[r].next_act_allowed();
                    rank_cas_allowed[r] = self.ranks[r].cas_allowed_rank();
                    rank_bus[r] = self.bus_ready_for(r, write);
                    rank_filled |= 1 << r;
                }
                (rank_ready[r], rank_act_allowed[r], rank_cas_allowed[r], rank_bus[r])
            } else {
                (
                    self.ranks[r].ready_at(),
                    self.ranks[r].next_act_allowed(),
                    self.ranks[r].cas_allowed_rank(),
                    self.bus_ready_for(r, write),
                )
            };
            if bc.open_row == e.coords.row {
                // tCCD_S rank-wide plus tCCD_L within the bank group; the
                // group bound is a single array load off the rank.
                let mut ready = bc
                    .next_cas
                    .max(r_ready)
                    .max(r_cas_allowed)
                    .max(self.ranks[r].cas_group_bound(e.group as usize));
                if !write {
                    ready = ready.max(self.rank_next_read[e.coords.rank]);
                }
                // The CAS must be timed so its burst clears the shared
                // bus: a CAS at cycle `c` occupies the bus over
                // [c + data_latency, c + data_latency + tBURST). In the
                // first cycles of a run `bus_free` can be below the data
                // latency; the bus then imposes no constraint (the burst
                // start is already past `bus_free`) — an explicit branch
                // rather than an unsigned clamp to cycle 0, so the
                // boundary semantics are stated instead of incidental.
                // The resulting no-overlap invariant is re-validated in
                // release builds by the `sdimm-audit` replay checker.
                let bus_free = r_bus;
                if bus_free > data_latency {
                    ready = ready.max(bus_free - data_latency);
                }
                if ready <= self.now {
                    return Some(Decision::Cas { write, idx });
                }
                *best_retry = (*best_retry).min(ready);
                // An entry whose row is open but not yet CAS-ready should
                // not trigger a PRE from a younger conflicting entry —
                // keep scanning for other banks only.
                seen |= bit;
                continue;
            }
            if bc.open_row == NO_ROW {
                // Idle bank: ACT candidate — unless a refresh is owed, in
                // which case no new rows may open on that rank.
                if !self.refresh_pending[e.coords.rank] {
                    let ready = bc
                        .next_act
                        .max(r_act_allowed)
                        .max(self.ranks[r].act_group_bound(e.group as usize));
                    if ready <= self.now && act_choice.is_none() {
                        act_choice = Some(idx);
                    } else {
                        *best_retry = (*best_retry).min(ready.max(self.now.saturating_add(1)));
                    }
                }
                seen |= bit;
                continue;
            }
            // Row conflict: precharge candidate — only if no older queued
            // entry wants this bank (it may still want the open row).
            let open_row_wanted = if bit != 0 {
                seen & bit != 0
            } else {
                q.iter()
                    .take(idx)
                    .any(|o| o.coords.rank == e.coords.rank && o.coords.bank == e.coords.bank)
            };
            if !open_row_wanted {
                let ready = bc.next_pre.max(r_ready);
                if ready <= self.now && pre_choice.is_none() {
                    pre_choice = Some(idx);
                } else {
                    *best_retry = (*best_retry).min(ready.max(self.now.saturating_add(1)));
                }
            }
            seen |= bit;
        }
        if let Some(idx) = act_choice {
            return Some(Decision::Act { write, idx });
        }
        if let Some(idx) = pre_choice {
            return Some(Decision::Pre { write, idx });
        }
        None
    }

    /// Finds the next command to issue, if any.
    fn decide(&mut self) -> Decision {
        let mut best_retry = Cycle::MAX;

        // Refresh has priority once due: mark pending, close banks, issue.
        if self.cfg.refresh_enabled {
            for i in 0..self.ranks.len() {
                if self.ranks[i].refresh_due(self.now) {
                    self.refresh_pending[i] = true;
                }
                if self.refresh_pending[i] {
                    if let PowerState::PowerDown { .. } = self.ranks[i].power_state() {
                        self.account_bg(i);
                        let t = self.cfg.timing.clone();
                        self.ranks[i].exit_power_down(self.now, &t);
                        self.log_cmd(self.now, i, DdrCmd::PowerUp);
                    }
                    if self.rank_open_banks[i] == 0 {
                        if self.now >= self.ranks[i].ready_at() {
                            return Decision::Refresh { rank: i };
                        }
                        best_retry = best_retry.min(self.ranks[i].ready_at());
                    } else {
                        // Precharge open banks of the refreshing rank.
                        let base = i * self.cfg.topology.banks;
                        for b in 0..self.ranks[i].bank_count() {
                            if self.bank_cache[base + b].open_row != NO_ROW {
                                let ready = self.bank_cache[base + b]
                                    .next_pre
                                    .max(self.ranks[i].ready_at());
                                if ready <= self.now {
                                    return Decision::MaintenancePre { rank: i, bank: b };
                                }
                                best_retry = best_retry.min(ready);
                            }
                        }
                    }
                }
            }
        }

        // Close open banks of ranks that want to power down (forced by
        // the low-power protocol or eligible under the idle policy) so
        // they can actually drop CKE.
        for i in 0..self.ranks.len() {
            if self.rank_open_banks[i] == 0 || !self.wants_sleep(i) {
                continue;
            }
            let base = i * self.cfg.topology.banks;
            for b in 0..self.ranks[i].bank_count() {
                if self.bank_cache[base + b].open_row != NO_ROW {
                    let ready = self.bank_cache[base + b].next_pre.max(self.ranks[i].ready_at());
                    if ready <= self.now {
                        return Decision::MaintenancePre { rank: i, bank: b };
                    }
                    best_retry = best_retry.min(ready);
                }
            }
        }

        // Write-drain hysteresis: derive one read/write priority decision
        // per scheduler invocation. While draining, writes are serviced
        // exclusively until the queue falls to the low watermark — reads
        // are starved only in drain mode, and the priority cannot flip
        // back mid-drain just because no write command is issuable this
        // cycle. Outside drain mode, reads always go first and writes
        // issue only when no read is queued.
        if self.write_q.len() >= self.cfg.write_drain.hi {
            self.draining = true;
        } else if self.write_q.len() <= self.cfg.write_drain.lo {
            self.draining = false;
        }
        if self.draining {
            if let Some(d) = self.scan_queue(true, &mut best_retry) {
                return d;
            }
        } else {
            if let Some(d) = self.scan_queue(false, &mut best_retry) {
                return d;
            }
            if self.read_q.is_empty() {
                if let Some(d) = self.scan_queue(true, &mut best_retry) {
                    return d;
                }
            }
        }

        // Nothing issuable: wake for the next refresh deadline and for the
        // moment an idle rank becomes eligible to power down.
        if self.cfg.refresh_enabled {
            for r in &self.ranks {
                best_retry = best_retry.min(r.next_refresh());
            }
        }
        for (i, r) in self.ranks.iter().enumerate() {
            if matches!(r.power_state(), PowerState::Active) {
                let eligible_at = match (self.forced_down[i], self.cfg.power_policy) {
                    (true, _) => Some(self.now.saturating_add(1)),
                    (false, PowerPolicy::PowerDown { idle_cycles }) => {
                        Some(r.last_activity().saturating_add(idle_cycles))
                    }
                    (false, PowerPolicy::AlwaysOn) => None,
                };
                if let Some(at) = eligible_at {
                    best_retry = best_retry.min(at.max(self.now.saturating_add(1)));
                }
            }
        }
        if best_retry == Cycle::MAX {
            // Queues empty with nothing scheduled: sleep a long horizon.
            best_retry = self.now.saturating_add(4096);
        }
        Decision::Idle { retry_at: best_retry }
    }

    /// Attempts to issue one command at the current cycle. Returns whether
    /// a command was issued; updates `next_wake` otherwise.
    fn schedule_once(&mut self) -> bool {
        #[cfg(debug_assertions)]
        self.debug_validate_caches();
        self.manage_power();
        let decision = self.decide();
        if matches!(decision, Decision::Idle { .. }) {
            // The hot no-issue path: skip the timing clone below.
            if let Decision::Idle { retry_at } = decision {
                self.next_wake = retry_at.max(self.now.saturating_add(1));
                // Blocked with work queued: start (or continue) a stall
                // interval. Cycles accrue in `settle_stall` as time
                // actually elapses, so totals are tick-split-invariant.
                if self.read_q.is_empty() && self.write_q.is_empty() {
                    self.stall_since = None;
                } else if self.stall_since.is_none() {
                    self.stall_since = Some(self.now);
                }
            }
            return false;
        }
        self.stall_since = None;
        let t = self.cfg.timing.clone();
        match decision {
            Decision::Refresh { rank } => {
                self.account_bg(rank);
                self.log_cmd(self.now, rank, DdrCmd::Refresh);
                self.ranks[rank].begin_refresh(self.now, &t);
                for b in 0..self.cfg.topology.banks {
                    self.sync_bank_cache(rank, b);
                }
                self.refresh_pending[rank] = false;
                self.energy.refreshes += 1;
                self.stats.refreshes += 1;
                if let Some(w) = self.wear.as_deref_mut() {
                    w.on_refresh(rank);
                }
                if self.sink.is_enabled() {
                    self.sink.instant(
                        "dram.cmd",
                        &format!("refresh.rank{rank}"),
                        self.trace_pid,
                        self.trace_tid,
                        self.now,
                    );
                }
                true
            }
            Decision::MaintenancePre { rank, bank } => {
                self.account_bg(rank);
                self.log_cmd(self.now, rank, DdrCmd::Pre { bank });
                self.ranks[rank].bank_mut(bank).precharge(self.now, &t);
                self.ranks[rank].record_activity(self.now);
                self.rank_open_banks[rank] -= 1;
                self.sync_bank_cache(rank, bank);
                true
            }
            Decision::Cas { write, idx } => {
                self.issue_cas(write, idx);
                true
            }
            Decision::Act { write, idx } => {
                let e = if write { self.write_q[idx] } else { self.read_q[idx] };
                self.account_bg(e.coords.rank);
                self.log_cmd(
                    self.now,
                    e.coords.rank,
                    DdrCmd::Act { bank: e.coords.bank, row: e.coords.row },
                );
                self.ranks[e.coords.rank].bank_mut(e.coords.bank).activate(
                    self.now,
                    e.coords.row,
                    &t,
                );
                self.ranks[e.coords.rank].record_activate(self.now, e.group as usize, &t);
                self.rank_open_banks[e.coords.rank] += 1;
                self.sync_bank_cache(e.coords.rank, e.coords.bank);
                self.energy.activates += 1;
                // Classify for stats at first ACT for this request.
                self.stats.row_misses += 1;
                self.stats.activations += 1;
                if let Some(w) = self.wear.as_deref_mut() {
                    let alarms = w.on_act(e.coords.rank, e.coords.bank, e.coords.row);
                    for alarm in alarms.into_iter().flatten() {
                        self.stats.hammer_alarms += 1;
                        if self.flight.is_enabled() {
                            self.flight.record_at(
                                self.now,
                                FlightEventKind::HammerAlarm {
                                    channel: self.flight_channel,
                                    rank: alarm.victim.rank.min(u8::MAX as usize) as u8,
                                    bank: alarm.victim.bank.min(u8::MAX as usize) as u8,
                                    row: alarm.victim.row.min(u32::MAX as usize) as u32,
                                    window: alarm.window.min(u64::from(u32::MAX)) as u32,
                                },
                            );
                        }
                    }
                }
                self.sink.instant("dram.cmd", "act", self.trace_pid, self.trace_tid, self.now);
                true
            }
            Decision::Pre { write, idx } => {
                let e = if write { self.write_q[idx] } else { self.read_q[idx] };
                self.account_bg(e.coords.rank);
                self.log_cmd(self.now, e.coords.rank, DdrCmd::Pre { bank: e.coords.bank });
                self.ranks[e.coords.rank].bank_mut(e.coords.bank).precharge(self.now, &t);
                self.ranks[e.coords.rank].record_activity(self.now);
                self.rank_open_banks[e.coords.rank] -= 1;
                self.sync_bank_cache(e.coords.rank, e.coords.bank);
                self.stats.row_conflicts += 1;
                self.sink.instant(
                    "dram.cmd",
                    "pre.conflict",
                    self.trace_pid,
                    self.trace_tid,
                    self.now,
                );
                true
            }
            Decision::Idle { .. } => unreachable!("handled before the issue arms"),
        }
    }

    fn issue_cas(&mut self, write: bool, idx: usize) {
        let t = self.cfg.timing.clone();
        let e = if write {
            // lint: panic-ok(invariant: scanned index)
            self.write_q.remove(idx).expect("scanned index")
        } else {
            // lint: panic-ok(invariant: scanned index)
            self.read_q.remove(idx).expect("scanned index")
        };
        let rank_idx = e.coords.rank;
        let bank_idx = e.coords.bank;
        self.rank_queued[rank_idx] -= 1;

        // Row-hit statistic: CAS on an open row that required no ACT this
        // scheduling round counts as a hit if the open row matched from
        // the start; we approximate by classifying now.
        if let RowOutcome::Hit = self.ranks[rank_idx].bank(bank_idx).classify(e.coords.row) {
            self.stats.row_hits += 1;
        }

        let data_latency = if write { t.cwl } else { t.cl };
        let data_start = self.now.saturating_add(data_latency);
        let data_end = data_start.saturating_add(t.t_burst);

        let cmd = if write {
            DdrCmd::Wr { bank: bank_idx, row: e.coords.row }
        } else {
            DdrCmd::Rd { bank: bank_idx, row: e.coords.row }
        };
        self.log_cmd(self.now, rank_idx, cmd);

        if write {
            self.ranks[rank_idx].bank_mut(bank_idx).write(self.now, &t);
            self.rank_next_read[rank_idx] =
                self.rank_next_read[rank_idx].max(data_end.saturating_add(t.t_wtr));
            self.energy.writes += 1;
            if let Some(w) = self.wear.as_deref_mut() {
                w.on_write(rank_idx, bank_idx, e.coords.row);
            }
        } else {
            self.ranks[rank_idx].bank_mut(bank_idx).read(self.now, &t);
            self.energy.reads += 1;
        }
        self.sync_bank_cache(rank_idx, bank_idx);
        self.ranks[rank_idx].record_cas(self.now, e.group as usize, &t);

        self.sink.instant(
            "dram.cmd",
            if write { "cas.write" } else { "cas.read" },
            self.trace_pid,
            self.trace_tid,
            self.now,
        );

        self.bus_free_at = data_end;
        self.bus_last_rank = Some(rank_idx);
        self.bus_last_write = Some(write);
        self.stats.data_bus_busy_cycles = self.stats.data_bus_busy_cycles.saturating_add(t.t_burst);
        self.energy.io_bits += (self.cfg.topology.line_bytes * 8) as u64;

        self.pending.push(Pending {
            finish: data_end,
            id: e.req.id,
            kind: e.req.kind,
            arrival: e.req.arrival,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChannelConfig, PowerPolicy, Timing};

    fn quiet_cfg() -> ChannelConfig {
        let mut cfg = ChannelConfig::table2();
        cfg.refresh_enabled = false;
        cfg
    }

    #[test]
    fn single_read_completes_with_expected_latency() {
        let mut ch = DramChannel::new(quiet_cfg());
        let t = Timing::ddr3_1600();
        let id = ch.enqueue_read(0).unwrap();
        let done = ch.run_until_idle(10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        // Cold access: ACT at ~0, CAS at tRCD, data at +CL+tBURST, plus a
        // cycle of command-bus pipelining.
        let expected = t.t_rcd + t.cl + t.t_burst;
        assert!(
            done[0].latency >= expected && done[0].latency <= expected + 4,
            "latency {} vs expected ~{}",
            done[0].latency,
            expected
        );
    }

    #[test]
    fn row_hits_are_faster_than_cold_access() {
        let mut ch = DramChannel::new(quiet_cfg());
        ch.enqueue_read(0).unwrap();
        ch.enqueue_read(64).unwrap();
        ch.enqueue_read(128).unwrap();
        let done = ch.run_until_idle(10_000);
        assert_eq!(done.len(), 3);
        assert!(ch.stats().row_hits >= 2, "sequential lines should hit the open row");
    }

    #[test]
    fn row_conflict_forces_precharge() {
        let mut ch = DramChannel::new(quiet_cfg());
        let topo = ch.config().topology.clone();
        // Two addresses in the same bank, different rows.
        let stride = (topo.row_bytes * topo.banks * topo.ranks) as u64;
        ch.enqueue_read(0).unwrap();
        ch.enqueue_read(stride).unwrap();
        let done = ch.run_until_idle(10_000);
        assert_eq!(done.len(), 2);
        assert!(ch.stats().row_conflicts >= 1, "expected a row conflict");
    }

    #[test]
    fn reads_prioritized_over_writes_until_drain() {
        let mut ch = DramChannel::new(quiet_cfg());
        for i in 0..10 {
            ch.enqueue_write((i * 1_000_000) as u64).unwrap();
        }
        let rid = ch.enqueue_read(64).unwrap();
        ch.tick(200);
        let done = ch.drain_completions();
        assert!(
            done.iter().any(|c| c.id == rid),
            "read must complete while small write queue waits"
        );
    }

    #[test]
    fn drain_hysteresis_starves_reads_until_low_watermark() {
        // Regression test for the mid-drain priority flip: once the write
        // queue crosses the high watermark, reads must wait until the
        // queue drains to the low watermark — a read must not slip in on
        // cycles where no write command happens to be issuable.
        let mut ch = DramChannel::new(quiet_cfg());
        let hi = ch.config().write_drain.hi;
        let lo = ch.config().write_drain.lo;
        let topo = ch.config().topology.clone();
        let row_stride = (topo.row_bytes * topo.banks * topo.ranks) as u64;
        // Every write targets its own row of one bank, so each is a row
        // miss even after FR-FCFS reordering (alternating between two
        // rows would be rescheduled into two row-hit streaks). Each
        // write then spends most of its time waiting on tRAS/tRP with
        // no write command issuable — exactly the idle slots a
        // mid-drain priority flip would hand to the read.
        for i in 0..(hi + 1) as u64 {
            ch.enqueue_write(i * row_stride).unwrap();
        }
        // A read in a different rank (unaffected by tWTR from the write
        // bursts), ready to issue the moment it is scanned.
        let rank_stride = (topo.row_bytes * topo.banks) as u64;
        let rid = ch.enqueue_read(rank_stride).unwrap();

        let mut read_done_at = None;
        while read_done_at.is_none() && ch.now() < 50_000 {
            ch.tick(8);
            if ch.drain_completions().iter().any(|c| c.id == rid) {
                read_done_at = Some(ch.now());
            }
        }
        read_done_at.expect("read must eventually complete");
        assert!(
            ch.stats().writes_completed as usize >= hi - lo - 4,
            "read completed after only {} writes; drain mode must hold reads until \
             the queue reaches the low watermark ({} of {} writes)",
            ch.stats().writes_completed,
            hi - lo,
            hi + 1
        );
        // Hysteresis: draining stopped at the low watermark, not at zero.
        assert!(
            ch.write_queue_len() >= lo / 2 && ch.write_queue_len() <= lo,
            "write queue should sit near the low watermark when the read is served, got {}",
            ch.write_queue_len()
        );
    }

    #[test]
    fn blocked_starving_head_does_not_idle_queue() {
        // Regression test for anti-starvation head-of-queue handling: an
        // over-age head that cannot issue any command (here: pinned
        // behind an enormous tRAS before its row conflict can precharge)
        // must not stall every other ready request in the queue.
        let mut cfg = quiet_cfg();
        cfg.timing.t_ras = 50_000;
        cfg.timing.t_rc = 50_100;
        let mut ch = DramChannel::new(cfg);
        let topo = ch.config().topology.clone();
        let row_stride = (topo.row_bytes * topo.banks * topo.ranks) as u64;
        let bank_stride = topo.row_bytes as u64;

        // Open row 0 of bank 0 and retire a read from it.
        ch.enqueue_read(0).unwrap();
        // Row conflict in bank 0: its PRE is legal only at tRAS = 50k.
        ch.enqueue_read(row_stride).unwrap();
        // Age the conflicting head past STARVATION_LIMIT.
        ch.tick(STARVATION_LIMIT + 200);
        assert_eq!(ch.drain_completions().len(), 1, "only the row-0 read can finish");

        // Younger reads to other banks: all trivially servable.
        for i in 1..=30u64 {
            ch.enqueue_read(i * bank_stride).unwrap();
        }
        ch.tick(5_000);
        let done = ch.drain_completions();
        assert!(
            done.len() >= 25,
            "ready requests must flow past a permanently-blocked starving head, got {}",
            done.len()
        );
    }

    #[test]
    fn early_cycle_bursts_never_overlap_on_the_bus() {
        // Boundary test for the bus-constraint arithmetic at simulation
        // start, where `bus_free` is below the data latency: the very
        // first bursts must still be serialized by at least tBURST.
        let mut ch = DramChannel::new(quiet_cfg());
        let t = Timing::ddr3_1600();
        let bank_stride = ch.config().topology.row_bytes as u64;
        for i in 0..3u64 {
            ch.enqueue_write(i * bank_stride).unwrap();
        }
        for i in 3..6u64 {
            ch.enqueue_read(i * bank_stride).unwrap();
        }
        let done = ch.run_until_idle(10_000);
        assert_eq!(done.len(), 6);
        let mut finishes: Vec<Cycle> = done.iter().map(|c| c.finish).collect();
        finishes.sort_unstable();
        for w in finishes.windows(2) {
            assert!(
                w[1] - w[0] >= t.t_burst,
                "data bursts overlap near cycle 0: finishes {} and {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn write_drain_triggers_above_hi_watermark() {
        let mut ch = DramChannel::new(quiet_cfg());
        for i in 0..41 {
            ch.enqueue_write((i as u64) * 4096).unwrap();
        }
        ch.tick(5_000);
        let _ = ch.drain_completions();
        assert!(ch.stats().writes_completed > 0, "drain mode should retire writes");
    }

    #[test]
    fn forwarding_from_write_queue() {
        let mut ch = DramChannel::new(quiet_cfg());
        ch.enqueue_write(0x2000).unwrap();
        let rid = ch.enqueue_read(0x2000).unwrap();
        ch.tick(5);
        let done = ch.drain_completions();
        let fwd = done.iter().find(|c| c.id == rid).expect("forwarded read completes fast");
        assert!(fwd.latency <= 2);
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut ch = DramChannel::new(quiet_cfg());
        let cap = ch.config().read_queue_capacity;
        for i in 0..cap {
            assert!(ch.enqueue_read((i * 64) as u64).is_some());
        }
        assert!(ch.enqueue_read(0xFFFF00).is_none(), "read queue must reject overflow");
    }

    #[test]
    fn bandwidth_approaches_bus_limit_for_streams() {
        let mut ch = DramChannel::new(quiet_cfg());
        let mut issued = 0u64;
        let mut completed = 0u64;
        let mut addr = 0u64;
        // Stream sequential reads for 20k cycles.
        while ch.now() < 20_000 {
            while issued - completed < 32 {
                if ch.enqueue_read(addr).is_some() {
                    addr += 64;
                    issued += 1;
                } else {
                    break;
                }
            }
            ch.tick(16);
            completed += ch.drain_completions().len() as u64;
        }
        let util = ch.stats().bus_utilization(ch.now());
        assert!(util > 0.7, "streaming reads should near-saturate the bus, got {util}");
    }

    #[test]
    fn refresh_happens_when_enabled() {
        let mut cfg = ChannelConfig::table2();
        cfg.refresh_enabled = true;
        let mut ch = DramChannel::new(cfg);
        ch.tick(7_000); // past tREFI=6240
        assert!(ch.stats().refreshes >= 1, "refresh must fire after tREFI");
    }

    #[test]
    fn idle_rank_powers_down_and_wakes_for_work() {
        let mut cfg = quiet_cfg();
        cfg.power_policy = PowerPolicy::PowerDown { idle_cycles: 100 };
        let mut ch = DramChannel::new(cfg);
        ch.tick(500);
        assert!(
            matches!(ch.rank_power_state(0), PowerState::PowerDown { .. }),
            "idle rank should power down"
        );
        let id = ch.enqueue_read(0).unwrap();
        let done = ch.run_until_idle(10_000);
        assert!(done.iter().any(|c| c.id == id), "request must wake the rank");
        assert!(ch.rank_powerdown_cycles(0) >= 300);
    }

    #[test]
    fn forced_down_rank_stays_down_until_woken() {
        let mut ch = DramChannel::new(quiet_cfg());
        ch.force_rank_down(2);
        ch.tick(50);
        assert!(matches!(ch.rank_power_state(2), PowerState::PowerDown { .. }));
        ch.wake_rank(2);
        ch.tick(50);
        assert!(matches!(ch.rank_power_state(2), PowerState::Active));
    }

    #[test]
    fn energy_accumulates_background_and_dynamic() {
        let mut ch = DramChannel::new(quiet_cfg());
        for i in 0..16 {
            ch.enqueue_read((i * 64) as u64).unwrap();
        }
        ch.run_until_idle(50_000);
        ch.tick(1_000);
        let e = ch.energy();
        assert!(e.background_nj > 0.0);
        assert!(e.activate_nj > 0.0);
        assert!(e.burst_nj > 0.0);
        assert!(e.io_nj > 0.0);
    }

    #[test]
    fn completions_report_monotone_finish_times() {
        let mut ch = DramChannel::new(quiet_cfg());
        for i in 0..32 {
            ch.enqueue_read((i * 64 + i * 128 * 1024) as u64).unwrap();
        }
        let done = ch.run_until_idle(100_000);
        assert_eq!(done.len(), 32);
        for w in done.windows(2) {
            assert!(w[0].finish <= w[1].finish, "drain order must be finish order");
        }
    }

    #[test]
    fn fcfs_policy_still_makes_progress() {
        let mut cfg = quiet_cfg();
        cfg.scheduler = SchedulerPolicy::Fcfs;
        let mut ch = DramChannel::new(cfg);
        for i in 0..8 {
            ch.enqueue_read((i * 911 * 64) as u64).unwrap();
        }
        let done = ch.run_until_idle(100_000);
        assert_eq!(done.len(), 8);
    }

    #[test]
    fn idle_tick_skips_ahead_without_per_cycle_polling() {
        // Regression guard for the event-driven tick fast path: an empty
        // channel advanced one million cycles must jump between wakeup
        // events, not evaluate the scheduler every cycle.
        let mut ch = DramChannel::new(quiet_cfg());
        ch.tick(1_000_000);
        assert_eq!(ch.now(), 1_000_000);
        let calls = ch.stats().scheduler_invocations;
        assert!(calls < 1_000, "idle tick ran the scheduler {calls} times over 1M cycles");
    }

    #[test]
    fn idle_tick_with_refresh_still_skips_ahead() {
        // With refresh enabled the channel wakes once per tREFI (plus a
        // few cycles around each refresh) — still thousands of times
        // fewer scheduler runs than cycles.
        let mut cfg = ChannelConfig::table2();
        cfg.refresh_enabled = true;
        let mut ch = DramChannel::new(cfg);
        ch.tick(1_000_000);
        assert_eq!(ch.now(), 1_000_000);
        assert!(ch.stats().refreshes >= 100, "refresh must keep firing while idle");
        let calls = ch.stats().scheduler_invocations;
        assert!(calls < 10_000, "refresh-only tick ran the scheduler {calls} times over 1M cycles");
    }

    #[test]
    fn mixed_read_write_all_complete() {
        let mut ch = DramChannel::new(quiet_cfg());
        let mut expected = 0;
        for i in 0..20u64 {
            if i % 3 == 0 {
                ch.enqueue_write(i * 64 * 7919).unwrap();
            } else {
                ch.enqueue_read(i * 64 * 104729).unwrap();
            }
            expected += 1;
        }
        let done = ch.run_until_idle(200_000);
        assert_eq!(done.len(), expected);
        assert!(ch.is_idle());
    }

    /// Byte address of `(rank, bank, row, col)` under the channel's
    /// default interleaving.
    fn addr_of(ch: &DramChannel, rank: usize, bank: usize, row: usize, col: usize) -> u64 {
        let mapper = AddressMapper::new(ch.config().topology.clone(), Interleave::RowRankBankCol);
        mapper.encode(Coords { rank, bank, row, col })
    }

    #[test]
    fn wear_tracker_attributes_acts_and_writes_per_row() {
        let mut ch = DramChannel::new(quiet_cfg());
        ch.enable_wear();
        let a = addr_of(&ch, 0, 0, 100, 0);
        let b = addr_of(&ch, 0, 0, 200, 0);
        ch.enqueue_read(a).unwrap();
        ch.enqueue_read(b).unwrap(); // conflict: second ACT
        ch.enqueue_write(a).unwrap(); // third ACT + one WR
        ch.run_until_idle(100_000);
        let snap = ch.wear().expect("wear enabled").snapshot();
        assert_eq!(snap.total_acts, ch.stats().activations, "tracker must match the counter");
        assert_eq!(snap.total_acts, 3);
        assert_eq!(snap.total_writes, 1);
        assert_eq!(ch.wear().unwrap().acts(0, 0, 100), 2);
        assert_eq!(ch.wear().unwrap().acts(0, 0, 200), 1);
    }

    #[test]
    fn warmup_reset_clears_wear_with_the_stats() {
        // Warm-up boundary regression (PR 2 pattern): reset_stats at
        // the measurement boundary must zero the wear tracker too, or
        // warm-up activations leak into the measured threat report.
        let mut ch = DramChannel::new(quiet_cfg());
        ch.enable_wear();
        for i in 0..8u64 {
            ch.enqueue_read(i * 1_000_000).unwrap();
        }
        ch.run_until_idle(100_000);
        assert!(ch.stats().activations > 0);
        ch.reset_stats();
        assert_eq!(ch.stats().activations, 0);
        assert_eq!(ch.stats().hammer_alarms, 0);
        let snap = ch.wear().unwrap().snapshot();
        assert_eq!(snap.total_acts, 0, "warm-up ACTs leaked past reset");
        assert_eq!(snap.peak_window, 0);
        // Post-reset traffic is counted from zero and still matches.
        ch.enqueue_read(addr_of(&ch, 0, 0, 7, 0)).unwrap();
        ch.run_until_idle(100_000);
        let snap = ch.wear().unwrap().snapshot();
        assert_eq!(snap.total_acts, 1);
        assert_eq!(snap.total_acts, ch.stats().activations);
    }

    #[test]
    fn double_sided_hammer_crosses_the_ddr4_threshold() {
        // Satellite: injected hot-row traffic must cross the DDR4
        // hammer threshold. Double-sided hammer on rows v±1 in one
        // bank: every ACT on either aggressor bumps victim v's window,
        // and v (chosen far from the REF round-robin start) is never
        // refreshed within the run, so the window accumulates to the
        // threshold. Refresh stays ENABLED to prove REF traffic on
        // other rows does not close the victim's window.
        let spec = crate::spec::DramSpec::ddr4_2400();
        let cfg = spec.main_channel();
        let threshold = spec.hammer_threshold;
        let mut ch = DramChannel::new(cfg);
        ch.enable_wear();
        let victim = 20_000usize;
        let lo = addr_of(&ch, 0, 0, victim - 1, 0);
        let hi = addr_of(&ch, 0, 0, victim + 1, 0);
        // One request at a time, strictly alternating the two
        // aggressors: each lands on a bank whose open row is the other
        // aggressor, forcing PRE+ACT per request (batching them would
        // let FR-FCFS group row hits and skip the ACTs a real hammer
        // loop is built to force). Small tick quanta keep the ACT rate
        // dense enough to cross the threshold within one tREFW — a
        // hammer that paces itself slower than the refresh wheel is
        // harmless, and the model correctly shows that.
        let mut flip = false;
        for _ in 0..threshold + 16 {
            let a = if flip { hi } else { lo };
            flip = !flip;
            ch.enqueue_read(a).expect("single request always fits");
            while ch.drain_completions().is_empty() {
                ch.tick(32);
            }
        }
        let wear = ch.wear().unwrap();
        assert!(
            wear.window(0, 0, victim) >= threshold,
            "victim window {} never reached the DDR4 threshold {threshold}",
            wear.window(0, 0, victim)
        );
        assert!(ch.stats().hammer_alarms >= 1, "crossing must raise an alarm");
        assert!(ch.stats().refreshes > 0, "refresh was supposed to stay enabled");
        let snap = wear.snapshot();
        assert_eq!(snap.peak_victim, Some(crate::wear::RowId { rank: 0, bank: 0, row: victim }));
        assert_eq!(snap.total_acts, ch.stats().activations);
    }
}
