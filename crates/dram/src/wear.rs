//! Per-row activation & wear accounting with a refresh-window
//! disturbance model — the reliability observatory's data plane.
//!
//! A [`RowPressure`] tracker rides inside a
//! [`crate::channel::DramChannel`] (attached like the trace sink and
//! command log: disabled by default, one branch per event) and
//! maintains two views of row pressure:
//!
//! 1. **Lifetime wear** — per-row ACT and WR counts, optionally
//!    bucketed to a coarser row granularity
//!    ([`WearConfig::row_granularity`]) so million-row sweeps stay
//!    cheap. This is the endurance/wear-leveling view: ORAM tree roots
//!    show up here orders of magnitude hotter than leaves.
//! 2. **Disturbance windows** — for each *victim* row, the activations
//!    its physically adjacent rows (`row ± 1` in the same bank)
//!    accumulate **between that row's own refreshes**. RowHammer flips
//!    are bounded per refresh window, not per lifetime, so the window
//!    resets when the victim is refreshed: each REF command refreshes
//!    the next [`WearConfig::rows_per_refresh`] rows of every bank in
//!    the rank, round-robin, exactly as the per-standard
//!    `rows / refresh_rounds` stride in [`crate::spec::DramSpec`]
//!    prescribes. The peak window across the run is compared against
//!    the standard's [`WearConfig::hammer_threshold`] in the threat
//!    report, and the first crossing per victim per window raises a
//!    [`HammerAlarm`].
//!
//! The tracker is deliberately redundant with the channel's own
//! counters (`ChannelStats::activations` must equal the sum of per-row
//! ACTs) and is itself audited: `sdimm-audit` re-derives the per-row
//! ACT totals from the captured command stream with none of this code.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::config::ChannelConfig;

/// Multiplicative hasher for the tracker's flat row keys. The keys are
/// dense, well-distributed integers (no attacker controls them), so one
/// odd-constant multiply with a high-to-low mix replaces the default
/// DoS-resistant hash on the per-ACT hot path.
#[derive(Debug, Default)]
struct RowKeyHasher(u64);

impl Hasher for RowKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write_u64(&mut self, key: u64) {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (unused here): FNV-1a.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
    }
}

type RowMap<V> = HashMap<u64, V, BuildHasherDefault<RowKeyHasher>>;

/// Lifetime counters of one accounting bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Counts {
    acts: u64,
    writes: u64,
}

/// Geometry and thresholds for a [`RowPressure`] tracker, derived from
/// a channel's standard spec and topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WearConfig {
    /// Ranks on the channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Rows per bank.
    pub rows: usize,
    /// Rows folded into one lifetime-wear accounting bucket (1 = exact
    /// per-row counts). Disturbance windows are always exact-row.
    pub row_granularity: usize,
    /// Rows of every bank refreshed (round-robin) by one REF command.
    pub rows_per_refresh: usize,
    /// Adjacent-row activations per victim refresh window at which the
    /// standard considers disturbance plausible.
    pub hammer_threshold: u64,
}

impl WearConfig {
    /// Derives the tracker configuration for a channel: geometry from
    /// its topology, refresh stride and hammer threshold from its
    /// standard's spec table, exact per-row lifetime granularity.
    pub fn for_channel(cfg: &ChannelConfig) -> Self {
        let spec = cfg.standard.spec();
        WearConfig {
            ranks: cfg.topology.ranks,
            banks: cfg.topology.banks,
            rows: cfg.topology.rows,
            row_granularity: 1,
            rows_per_refresh: spec.rows_per_refresh(),
            hammer_threshold: spec.hammer_threshold,
        }
    }

    /// Flat key for a physical row (rank-major, then bank, then row).
    fn key(&self, rank: usize, bank: usize, row: usize) -> u64 {
        ((rank * self.banks + bank) * self.rows + row) as u64
    }

    /// Inverse of [`key`](Self::key).
    fn coords(&self, key: u64) -> RowId {
        let key = key as usize;
        RowId {
            rank: key / (self.banks * self.rows),
            bank: (key / self.rows) % self.banks,
            row: key % self.rows,
        }
    }
}

/// A physical row address: the identity wear is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RowId {
    /// Rank index on the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: usize,
    /// Row index within the bank (bucket-aligned for lifetime counts
    /// when `row_granularity > 1`).
    pub row: usize,
}

/// A victim row whose disturbance window just crossed the standard's
/// hammer threshold (raised once per victim per window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HammerAlarm {
    /// The victim row (the row *adjacent* to the one being activated).
    pub victim: RowId,
    /// The window count at the moment of crossing (== threshold).
    pub window: u64,
}

/// Lifetime wear of one accounting bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowWear {
    /// Bucket identity (row is bucket-aligned under coarse granularity).
    pub id: RowId,
    /// ACT commands attributed to the bucket.
    pub acts: u64,
    /// Write CAS commands attributed to the bucket.
    pub writes: u64,
}

/// Deterministic export of a tracker's state: all touched buckets in
/// ascending physical order plus the aggregate disturbance verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WearSnapshot {
    /// Adjacent-row activation budget the peak window is judged against.
    pub hammer_threshold: u64,
    /// Total ACTs across all rows (must equal `ChannelStats::activations`).
    pub total_acts: u64,
    /// Total write CAS across all rows.
    pub total_writes: u64,
    /// ACTs per rank (index = rank).
    pub per_rank_acts: Vec<u64>,
    /// Largest disturbance window any victim accumulated, with the
    /// victim itself (`None` when no adjacent activations happened).
    pub peak_window: u64,
    /// The victim row behind `peak_window`.
    pub peak_victim: Option<RowId>,
    /// Threshold crossings raised over the tracked interval.
    pub alarms: u64,
    /// Every touched bucket, sorted by (rank, bank, row).
    pub rows: Vec<RowWear>,
}

impl WearSnapshot {
    /// The `k` highest-ACT buckets, ties broken by physical order (so
    /// the selection is deterministic and byte-stable in reports).
    pub fn hottest(&self, k: usize) -> Vec<RowWear> {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| b.acts.cmp(&a.acts).then(a.id.cmp(&b.id)));
        rows.truncate(k);
        rows
    }
}

/// The per-channel tracker. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct RowPressure {
    cfg: WearConfig,
    /// Lifetime ACT and write CAS counts per bucket key.
    counts: RowMap<Counts>,
    /// Open disturbance windows: victim row key → adjacent ACTs since
    /// the victim's last refresh. Exact-row, never bucketed.
    windows: RowMap<u64>,
    /// Peak window ever observed, with its victim.
    peak: Option<(u64, u64)>,
    /// Threshold crossings (once per victim per window).
    alarms: u64,
    /// Per-rank REF round-robin position (0..refresh_rounds).
    ref_round: Vec<u64>,
}

impl RowPressure {
    /// Creates an empty tracker.
    pub fn new(cfg: WearConfig) -> Self {
        assert!(cfg.row_granularity > 0, "zero row granularity");
        assert!(cfg.rows_per_refresh > 0, "zero refresh stride");
        let ranks = cfg.ranks;
        RowPressure {
            cfg,
            counts: RowMap::default(),
            windows: RowMap::default(),
            peak: None,
            alarms: 0,
            ref_round: vec![0; ranks],
        }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &WearConfig {
        &self.cfg
    }

    fn bucket_key(&self, rank: usize, bank: usize, row: usize) -> u64 {
        let bucket = row - row % self.cfg.row_granularity;
        self.cfg.key(rank, bank, bucket)
    }

    /// Accounts one ACT to `(rank, bank, row)`: bumps the row's
    /// lifetime count and the disturbance windows of its two physical
    /// neighbors. Returns the alarms (at most one per neighbor) whose
    /// windows crossed the hammer threshold on this activation.
    pub fn on_act(&mut self, rank: usize, bank: usize, row: usize) -> [Option<HammerAlarm>; 2] {
        self.counts.entry(self.bucket_key(rank, bank, row)).or_default().acts += 1;
        let mut out = [None, None];
        let below = row.checked_sub(1);
        let above = if row + 1 < self.cfg.rows { Some(row + 1) } else { None };
        for (slot, victim) in [below, above].into_iter().flatten().enumerate() {
            let key = self.cfg.key(rank, bank, victim);
            let w = self.windows.entry(key).or_insert(0);
            *w += 1;
            let window = *w;
            if self.peak.is_none_or(|(p, _)| window > p) {
                self.peak = Some((window, key));
            }
            if window == self.cfg.hammer_threshold {
                self.alarms += 1;
                out[slot] = Some(HammerAlarm { victim: RowId { rank, bank, row: victim }, window });
            }
        }
        out
    }

    /// Accounts one write CAS to `(rank, bank, row)`.
    pub fn on_write(&mut self, rank: usize, bank: usize, row: usize) {
        self.counts.entry(self.bucket_key(rank, bank, row)).or_default().writes += 1;
    }

    /// Accounts one REF on `rank`: the next `rows_per_refresh` rows of
    /// every bank (round-robin across REFs, as real devices do) are
    /// refreshed, which closes those victims' disturbance windows.
    pub fn on_refresh(&mut self, rank: usize) {
        let rounds = (self.cfg.rows / self.cfg.rows_per_refresh) as u64;
        let round = self.ref_round[rank] % rounds;
        self.ref_round[rank] = self.ref_round[rank].wrapping_add(1);
        let first = round as usize * self.cfg.rows_per_refresh;
        for bank in 0..self.cfg.banks {
            for row in first..first + self.cfg.rows_per_refresh {
                self.windows.remove(&self.cfg.key(rank, bank, row));
            }
        }
    }

    /// Clears all wear counts, windows, peaks, and alarms — the
    /// warm-up/measure boundary reset. The REF round-robin position is
    /// *kept*: it is physical device state, not a statistic.
    pub fn reset(&mut self) {
        self.counts.clear();
        self.windows.clear();
        self.peak = None;
        self.alarms = 0;
    }

    /// Current disturbance window of a victim row (0 if closed).
    pub fn window(&self, rank: usize, bank: usize, row: usize) -> u64 {
        self.windows.get(&self.cfg.key(rank, bank, row)).copied().unwrap_or(0)
    }

    /// Lifetime ACTs of the bucket containing `(rank, bank, row)`.
    pub fn acts(&self, rank: usize, bank: usize, row: usize) -> u64 {
        self.counts.get(&self.bucket_key(rank, bank, row)).map_or(0, |c| c.acts)
    }

    /// Threshold crossings so far.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Exports a deterministic snapshot (see [`WearSnapshot`]).
    pub fn snapshot(&self) -> WearSnapshot {
        let mut touched: Vec<(u64, Counts)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        touched.sort_unstable_by_key(|&(k, _)| k);
        let mut rows = Vec::with_capacity(touched.len());
        let mut per_rank_acts = vec![0u64; self.cfg.ranks];
        let mut total_acts = 0u64;
        let mut total_writes = 0u64;
        for &(key, Counts { acts, writes }) in &touched {
            let id = self.cfg.coords(key);
            per_rank_acts[id.rank] += acts;
            total_acts += acts;
            total_writes += writes;
            rows.push(RowWear { id, acts, writes });
        }
        let (peak_window, peak_victim) = match self.peak {
            Some((w, key)) => (w, Some(self.cfg.coords(key))),
            None => (0, None),
        };
        WearSnapshot {
            hammer_threshold: self.cfg.hammer_threshold,
            total_acts,
            total_writes,
            per_rank_acts,
            peak_window,
            peak_victim,
            alarms: self.alarms,
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WearConfig {
        WearConfig {
            ranks: 2,
            banks: 4,
            rows: 64,
            row_granularity: 1,
            rows_per_refresh: 8,
            hammer_threshold: 10,
        }
    }

    #[test]
    fn acts_accumulate_per_row_and_rank() {
        let mut rp = RowPressure::new(cfg());
        rp.on_act(0, 1, 5);
        rp.on_act(0, 1, 5);
        rp.on_act(1, 0, 7);
        rp.on_write(0, 1, 5);
        let snap = rp.snapshot();
        assert_eq!(snap.total_acts, 3);
        assert_eq!(snap.total_writes, 1);
        assert_eq!(snap.per_rank_acts, vec![2, 1]);
        assert_eq!(rp.acts(0, 1, 5), 2);
        assert_eq!(snap.hottest(1)[0].id, RowId { rank: 0, bank: 1, row: 5 });
    }

    #[test]
    fn neighbors_accumulate_disturbance_not_the_aggressor() {
        let mut rp = RowPressure::new(cfg());
        rp.on_act(0, 0, 10);
        assert_eq!(rp.window(0, 0, 9), 1);
        assert_eq!(rp.window(0, 0, 11), 1);
        assert_eq!(rp.window(0, 0, 10), 0);
        // Edge rows have only one neighbor; no wraparound.
        rp.on_act(0, 0, 0);
        assert_eq!(rp.window(0, 0, 1), 1);
        rp.on_act(0, 0, 63);
        assert_eq!(rp.window(0, 0, 62), 1);
    }

    #[test]
    fn refresh_closes_windows_round_robin() {
        // REF must close the disturbance window of exactly the rows in
        // the current round-robin block, on the refreshed rank only.
        let mut rp = RowPressure::new(cfg());
        rp.on_act(0, 0, 4); // victims: rows 3 and 5, both in block 0..8
        rp.on_act(0, 0, 20); // victims: rows 19 and 21, in block 16..24
        rp.on_act(1, 0, 4); // same rows on the other rank
        rp.on_refresh(0); // refreshes rank 0 rows 0..8
        assert_eq!(rp.window(0, 0, 3), 0, "refreshed victim must close");
        assert_eq!(rp.window(0, 0, 5), 0);
        assert_eq!(rp.window(0, 0, 19), 1, "unrefreshed victim stays open");
        assert_eq!(rp.window(1, 0, 3), 1, "other rank untouched");
        rp.on_refresh(0); // rows 8..16
        rp.on_refresh(0); // rows 16..24
        assert_eq!(rp.window(0, 0, 19), 0);
        // Lifetime counts are unaffected by refresh.
        assert_eq!(rp.snapshot().total_acts, 3);
    }

    #[test]
    fn refresh_round_robin_wraps() {
        let mut rp = RowPressure::new(cfg());
        for _ in 0..8 {
            rp.on_refresh(0); // 64 rows / 8 per REF = 8 rounds
        }
        rp.on_act(0, 0, 4);
        rp.on_refresh(0); // round 8 ≡ block 0..8 again
        assert_eq!(rp.window(0, 0, 3), 0);
    }

    #[test]
    fn threshold_crossing_raises_one_alarm_per_window() {
        let mut rp = RowPressure::new(cfg());
        let mut raised = Vec::new();
        for _ in 0..15 {
            raised.extend(rp.on_act(0, 0, 10).into_iter().flatten());
        }
        // Both neighbors (9 and 11) crossed exactly once.
        assert_eq!(raised.len(), 2);
        assert_eq!(rp.alarms(), 2);
        assert!(raised.iter().all(|a| a.window == 10));
        let snap = rp.snapshot();
        assert_eq!(snap.peak_window, 15);
        assert_eq!(snap.peak_victim, Some(RowId { rank: 0, bank: 0, row: 9 }));
        // After a refresh closes the window the alarm can fire again.
        rp.on_refresh(0); // rows 0..8
        rp.on_refresh(0); // rows 8..16: closes 9 and 11
        for _ in 0..10 {
            rp.on_act(0, 0, 10);
        }
        assert_eq!(rp.alarms(), 4);
    }

    #[test]
    fn coarse_granularity_buckets_lifetime_but_not_windows() {
        let mut c = cfg();
        c.row_granularity = 16;
        let mut rp = RowPressure::new(c);
        rp.on_act(0, 0, 3);
        rp.on_act(0, 0, 12);
        assert_eq!(rp.acts(0, 0, 0), 2, "both land in bucket 0");
        assert_eq!(rp.window(0, 0, 2), 1, "windows stay exact-row");
        assert_eq!(rp.window(0, 0, 11), 1);
        let snap = rp.snapshot();
        assert_eq!(snap.rows.len(), 1);
        assert_eq!(snap.rows[0].id.row, 0);
    }

    #[test]
    fn reset_clears_counts_but_keeps_refresh_position() {
        let mut rp = RowPressure::new(cfg());
        rp.on_refresh(0); // advance the round-robin to block 8..16
        for _ in 0..12 {
            rp.on_act(0, 0, 10);
        }
        rp.reset();
        let snap = rp.snapshot();
        assert_eq!(snap.total_acts, 0);
        assert_eq!(snap.peak_window, 0);
        assert_eq!(snap.alarms, 0);
        assert_eq!(rp.window(0, 0, 9), 0);
        // The kept round-robin position: the next REF covers 8..16.
        rp.on_act(0, 0, 10);
        rp.on_refresh(0);
        assert_eq!(rp.window(0, 0, 9), 0, "block 8..16 was refreshed");
    }

    #[test]
    fn config_derivation_matches_the_spec_tables() {
        use crate::config::ChannelConfig;
        use crate::spec::DramStandard;
        let cfg = ChannelConfig::table2_for(DramStandard::Ddr4_2400);
        let w = WearConfig::for_channel(&cfg);
        assert_eq!(w.hammer_threshold, 50_000);
        assert_eq!(w.rows_per_refresh, 4); // 32768 rows / 8192 rounds
        assert_eq!(w.ranks, cfg.topology.ranks);
        let hbm = WearConfig::for_channel(&ChannelConfig::table2_for(DramStandard::Hbm2));
        assert_eq!(hbm.rows_per_refresh, 1); // 16384 rows / 16384 rounds
    }

    #[test]
    fn snapshot_rows_are_sorted_and_deterministic() {
        let mut rp = RowPressure::new(cfg());
        rp.on_act(1, 3, 60);
        rp.on_act(0, 2, 1);
        rp.on_write(0, 0, 5);
        let snap = rp.snapshot();
        let ids: Vec<RowId> = snap.rows.iter().map(|r| r.id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
        assert_eq!(snap.rows.len(), 3, "write-only rows are included");
    }
}
