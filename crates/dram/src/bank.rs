//! Per-bank state machine and timing bookkeeping.

use crate::config::{Cycle, Timing};

/// Row-buffer state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowState {
    /// All rows closed (bank precharged).
    Idle,
    /// A row is open in the row buffer.
    Open(usize),
}

/// Outcome classification of an access for row-buffer statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The needed row was already open: a single CAS suffices.
    Hit,
    /// The bank was idle: ACT then CAS.
    Miss,
    /// A different row was open: PRE, ACT, then CAS.
    Conflict,
}

/// One DRAM bank: row buffer plus the earliest cycle each command type may
/// issue, updated as commands are accepted.
#[derive(Debug, Clone)]
pub struct Bank {
    state: RowState,
    /// Earliest cycle an ACT may issue (tRC from previous ACT, tRP from PRE).
    next_act: Cycle,
    /// Earliest cycle a PRE may issue (tRAS from ACT, tRTP/tWR from CAS).
    next_pre: Cycle,
    /// Earliest cycle a RD/WR may issue (tRCD from ACT).
    next_cas: Cycle,
}

impl Default for Bank {
    fn default() -> Self {
        Bank::new()
    }
}

impl Bank {
    /// A precharged, idle bank with no pending constraints.
    pub fn new() -> Self {
        Bank { state: RowState::Idle, next_act: 0, next_pre: 0, next_cas: 0 }
    }

    /// Current row-buffer state.
    pub fn state(&self) -> RowState {
        self.state
    }

    /// Classifies what an access to `row` would experience right now.
    pub fn classify(&self, row: usize) -> RowOutcome {
        match self.state {
            RowState::Idle => RowOutcome::Miss,
            RowState::Open(r) if r == row => RowOutcome::Hit,
            RowState::Open(_) => RowOutcome::Conflict,
        }
    }

    /// Earliest cycle an ACT to this bank may issue.
    pub fn next_act(&self) -> Cycle {
        self.next_act
    }

    /// Earliest cycle a PRE to this bank may issue.
    pub fn next_pre(&self) -> Cycle {
        self.next_pre
    }

    /// Earliest cycle a RD/WR to the open row may issue.
    pub fn next_cas(&self) -> Cycle {
        self.next_cas
    }

    /// Records an ACT issued at `now` opening `row`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the bank is not idle or the ACT violates timing.
    pub fn activate(&mut self, now: Cycle, row: usize, t: &Timing) {
        debug_assert_eq!(self.state, RowState::Idle, "ACT to non-idle bank");
        debug_assert!(now >= self.next_act, "ACT at {now} before allowed {}", self.next_act);
        self.state = RowState::Open(row);
        self.next_cas = now.saturating_add(t.t_rcd);
        self.next_pre = now.saturating_add(t.t_ras);
        self.next_act = now.saturating_add(t.t_rc);
    }

    /// Records a PRE issued at `now`.
    pub fn precharge(&mut self, now: Cycle, t: &Timing) {
        debug_assert!(matches!(self.state, RowState::Open(_)), "PRE to idle bank");
        debug_assert!(now >= self.next_pre, "PRE at {now} before allowed {}", self.next_pre);
        self.state = RowState::Idle;
        self.next_act = self.next_act.max(now.saturating_add(t.t_rp));
    }

    /// Records a column read issued at `now`.
    pub fn read(&mut self, now: Cycle, t: &Timing) {
        debug_assert!(matches!(self.state, RowState::Open(_)));
        debug_assert!(now >= self.next_cas);
        self.next_pre = self.next_pre.max(now.saturating_add(t.t_rtp));
    }

    /// Records a column write issued at `now`.
    pub fn write(&mut self, now: Cycle, t: &Timing) {
        debug_assert!(matches!(self.state, RowState::Open(_)));
        debug_assert!(now >= self.next_cas);
        self.next_pre = self.next_pre.max(now.saturating_add(t.write_to_pre()));
    }

    /// Forces the bank closed with precharge timing, used when a refresh
    /// implicitly precharges all banks.
    pub fn force_precharge_for_refresh(&mut self, ready_again: Cycle) {
        self.state = RowState::Idle;
        self.next_act = self.next_act.max(ready_again);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Timing {
        Timing::ddr3_1600()
    }

    #[test]
    fn fresh_bank_is_idle_and_unconstrained() {
        let b = Bank::new();
        assert_eq!(b.state(), RowState::Idle);
        assert_eq!(b.next_act(), 0);
    }

    #[test]
    fn classify_hit_miss_conflict() {
        let mut b = Bank::new();
        assert_eq!(b.classify(5), RowOutcome::Miss);
        b.activate(0, 5, &t());
        assert_eq!(b.classify(5), RowOutcome::Hit);
        assert_eq!(b.classify(6), RowOutcome::Conflict);
    }

    #[test]
    fn activate_sets_rcd_ras_rc_windows() {
        let mut b = Bank::new();
        let tm = t();
        b.activate(100, 1, &tm);
        assert_eq!(b.next_cas(), 100 + tm.t_rcd);
        assert_eq!(b.next_pre(), 100 + tm.t_ras);
        assert_eq!(b.next_act(), 100 + tm.t_rc);
    }

    #[test]
    fn read_extends_precharge_by_rtp() {
        let mut b = Bank::new();
        let tm = t();
        b.activate(0, 1, &tm);
        // A late read pushes tRTP beyond tRAS.
        b.read(40, &tm);
        assert_eq!(b.next_pre(), 40 + tm.t_rtp);
        assert!(b.next_pre() > tm.t_ras);
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let mut b = Bank::new();
        let tm = t();
        b.activate(0, 1, &tm);
        b.write(tm.t_rcd, &tm);
        assert_eq!(b.next_pre(), tm.t_rcd + tm.cwl + tm.t_burst + tm.t_wr);
    }

    #[test]
    fn precharge_closes_and_gates_next_act() {
        let mut b = Bank::new();
        let tm = t();
        b.activate(0, 1, &tm);
        b.precharge(tm.t_ras, &tm);
        assert_eq!(b.state(), RowState::Idle);
        // tRC (39) binds over tRAS+tRP (28+11=39): equal here.
        assert_eq!(b.next_act(), (tm.t_ras + tm.t_rp).max(tm.t_rc));
    }

    #[test]
    fn refresh_force_precharge_overrides_state() {
        let mut b = Bank::new();
        let tm = t();
        b.activate(0, 3, &tm);
        b.force_precharge_for_refresh(500);
        assert_eq!(b.state(), RowState::Idle);
        assert!(b.next_act() >= 500);
    }
}
