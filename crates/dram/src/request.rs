//! Memory requests and their lifecycle.

use crate::config::Cycle;

/// Unique identifier for a request within one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// Kind of a memory request at cache-line granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Read one cache line.
    Read,
    /// Write one cache line.
    Write,
}

/// A cache-line request presented to a memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Identifier assigned by the channel at enqueue time.
    pub id: RequestId,
    /// Line-aligned physical address within the channel.
    pub addr: u64,
    /// Read or write.
    pub kind: RequestKind,
    /// Cycle at which the request entered the controller queue.
    pub arrival: Cycle,
}

/// A finished request, reported back to the issuing agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request that finished.
    pub id: RequestId,
    /// Read or write.
    pub kind: RequestKind,
    /// Cycle at which the last data beat left/entered the device.
    ///
    /// For reads this is when data is available to the requester; writes
    /// complete (from the requester's view) at enqueue, but this records
    /// when the burst actually retired for bandwidth accounting.
    pub finish: Cycle,
    /// Queue + service latency in cycles (finish − arrival).
    pub latency: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_order() {
        assert!(RequestId(1) < RequestId(2));
    }

    #[test]
    fn completion_latency_is_consistent() {
        let c = Completion { id: RequestId(3), kind: RequestKind::Read, finish: 120, latency: 40 };
        assert_eq!(c.finish - c.latency, 80);
    }
}
