//! DRAM energy accounting, following the Micron power-calculator
//! methodology: background energy by power state, activate/precharge
//! energy per row cycle, burst energy per column access, refresh energy,
//! and I/O energy per bit transferred (with distinct on-DIMM and off-DIMM
//! constants, which is where the SDIMM locality savings show up).

use crate::config::{ChannelLocation, Cycle, PowerParams, Timing};

/// Nanoseconds per memory-clock cycle at DDR3-1600 (800 MHz clock).
pub const NS_PER_CYCLE: f64 = 1.25;

/// Event and residency counters from which energy is computed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyCounters {
    /// Row activations issued (each implies one later precharge).
    pub activates: u64,
    /// Column reads issued.
    pub reads: u64,
    /// Column writes issued.
    pub writes: u64,
    /// Refresh operations issued (per rank).
    pub refreshes: u64,
    /// Rank-cycles spent in active standby (some bank open, CKE high).
    pub active_standby_cycles: Cycle,
    /// Rank-cycles spent in precharge standby (all banks closed, CKE high).
    pub precharge_standby_cycles: Cycle,
    /// Rank-cycles spent in precharge power-down (CKE low).
    pub powerdown_cycles: Cycle,
    /// Bits moved across the channel's data bus.
    pub io_bits: u64,
}

impl EnergyCounters {
    /// Adds another counter set into this one (for multi-channel totals).
    pub fn merge(&mut self, other: &EnergyCounters) {
        self.activates += other.activates;
        self.reads += other.reads;
        self.writes += other.writes;
        self.refreshes += other.refreshes;
        self.active_standby_cycles =
            self.active_standby_cycles.saturating_add(other.active_standby_cycles);
        self.precharge_standby_cycles =
            self.precharge_standby_cycles.saturating_add(other.precharge_standby_cycles);
        self.powerdown_cycles = self.powerdown_cycles.saturating_add(other.powerdown_cycles);
        self.io_bits += other.io_bits;
    }
}

/// Energy breakdown in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Row activate + precharge energy.
    pub activate_nj: f64,
    /// Column read/write burst energy.
    pub burst_nj: f64,
    /// Refresh energy.
    pub refresh_nj: f64,
    /// Background (standby + power-down) energy.
    pub background_nj: f64,
    /// I/O and termination energy.
    pub io_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.activate_nj + self.burst_nj + self.refresh_nj + self.background_nj + self.io_nj
    }

    /// Adds another breakdown into this one.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.activate_nj += other.activate_nj;
        self.burst_nj += other.burst_nj;
        self.refresh_nj += other.refresh_nj;
        self.background_nj += other.background_nj;
        self.io_nj += other.io_nj;
    }
}

/// Computes the energy for `counters` accumulated on a channel with the
/// given device parameters, timing, and physical location.
pub fn compute_energy(
    counters: &EnergyCounters,
    p: &PowerParams,
    t: &Timing,
    location: ChannelLocation,
) -> EnergyBreakdown {
    let devs = p.devices_per_rank as f64;
    // mA × V = mW; mW × ns = pJ; /1000 ⇒ nJ.
    let mw_to_nj = |mw: f64, ns: f64| mw * ns / 1000.0;

    // Activate/precharge: Micron's formula charges (IDD0 − weighted
    // standby) over one tRC per ACT.
    let trc_ns = t.t_rc as f64 * NS_PER_CYCLE;
    let tras_ns = t.t_ras as f64 * NS_PER_CYCLE;
    let act_standby = (p.idd3n * tras_ns + p.idd2n * (trc_ns - tras_ns)) / trc_ns;
    let act_mw = (p.idd0 - act_standby) * p.vdd * devs;
    let activate_nj = counters.activates as f64 * mw_to_nj(act_mw, trc_ns);

    // Read/write bursts: (IDD4x − IDD3N) over the burst duration.
    let burst_ns = t.t_burst as f64 * NS_PER_CYCLE;
    let rd_mw = (p.idd4r - p.idd3n) * p.vdd * devs;
    let wr_mw = (p.idd4w - p.idd3n) * p.vdd * devs;
    let burst_nj = counters.reads as f64 * mw_to_nj(rd_mw, burst_ns)
        + counters.writes as f64 * mw_to_nj(wr_mw, burst_ns);

    // Refresh: (IDD5 − IDD3N) over tRFC per refresh.
    let trfc_ns = t.t_rfc as f64 * NS_PER_CYCLE;
    let ref_mw = (p.idd5 - p.idd3n) * p.vdd * devs;
    let refresh_nj = counters.refreshes as f64 * mw_to_nj(ref_mw, trfc_ns);

    // Background by residency.
    let bg = |idd: f64, cycles: Cycle| mw_to_nj(idd * p.vdd * devs, cycles as f64 * NS_PER_CYCLE);
    let background_nj = bg(p.idd3n, counters.active_standby_cycles)
        + bg(p.idd2n, counters.precharge_standby_cycles)
        + bg(p.idd2p, counters.powerdown_cycles);

    // I/O energy per bit by location.
    let pj_per_bit = match location {
        ChannelLocation::OffDimm => p.io_pj_per_bit_offdimm,
        ChannelLocation::OnDimm => p.io_pj_per_bit_ondimm,
    };
    let io_nj = counters.io_bits as f64 * pj_per_bit / 1000.0;

    EnergyBreakdown { activate_nj, burst_nj, refresh_nj, background_nj, io_nj }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PowerParams, Timing};

    fn params() -> (PowerParams, Timing) {
        (PowerParams::ddr3_1600_x8(), Timing::ddr3_1600())
    }

    #[test]
    fn zero_counters_zero_energy() {
        let (p, t) = params();
        let e = compute_energy(&EnergyCounters::default(), &p, &t, ChannelLocation::OffDimm);
        assert_eq!(e.total_nj(), 0.0);
    }

    #[test]
    fn activates_cost_energy() {
        let (p, t) = params();
        let c = EnergyCounters { activates: 1000, ..Default::default() };
        let e = compute_energy(&c, &p, &t, ChannelLocation::OffDimm);
        assert!(e.activate_nj > 0.0);
        assert_eq!(e.burst_nj, 0.0);
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let (p, t) = params();
        let r = EnergyCounters { reads: 100, ..Default::default() };
        let w = EnergyCounters { writes: 100, ..Default::default() };
        let er = compute_energy(&r, &p, &t, ChannelLocation::OffDimm);
        let ew = compute_energy(&w, &p, &t, ChannelLocation::OffDimm);
        assert!(ew.burst_nj > er.burst_nj, "IDD4W > IDD4R must show in energy");
    }

    #[test]
    fn powerdown_is_cheaper_than_standby() {
        let (p, t) = params();
        let down = EnergyCounters { powerdown_cycles: 1_000_000, ..Default::default() };
        let up = EnergyCounters { precharge_standby_cycles: 1_000_000, ..Default::default() };
        let ed = compute_energy(&down, &p, &t, ChannelLocation::OffDimm);
        let eu = compute_energy(&up, &p, &t, ChannelLocation::OffDimm);
        assert!(
            ed.background_nj < eu.background_nj / 3.0,
            "power-down should save ≥3×: {} vs {}",
            ed.background_nj,
            eu.background_nj
        );
    }

    #[test]
    fn on_dimm_io_cheaper_than_off_dimm() {
        let (p, t) = params();
        let c = EnergyCounters { io_bits: 64 * 8 * 1000, ..Default::default() };
        let on = compute_energy(&c, &p, &t, ChannelLocation::OnDimm);
        let off = compute_energy(&c, &p, &t, ChannelLocation::OffDimm);
        assert!(on.io_nj < off.io_nj / 2.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = EnergyCounters { reads: 5, ..Default::default() };
        let b = EnergyCounters { reads: 7, io_bits: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.reads, 12);
        assert_eq!(a.io_bits, 3);
    }

    #[test]
    fn breakdown_total_is_sum() {
        let e = EnergyBreakdown {
            activate_nj: 1.0,
            burst_nj: 2.0,
            refresh_nj: 3.0,
            background_nj: 4.0,
            io_nj: 5.0,
        };
        assert!((e.total_nj() - 15.0).abs() < 1e-12);
    }
}
