//! Spec-driven memory-standard backends.
//!
//! A [`DramSpec`] describes one memory standard entirely as data: its
//! bank-group geometry, data-bus width, burst length, the full
//! [`Timing`] table, and datasheet-class device power parameters. The
//! scheduler ([`crate::channel::DramChannel`]) and the independent
//! replay auditor (`sdimm-audit`) are both parameterized by the same
//! spec through [`ChannelConfig`], so adding a standard is a pure data
//! change — every timing rule (including the bank-group-aware
//! `tCCD_S`/`tCCD_L` and `tRRD_S`/`tRRD_L` classes DDR3 never needed)
//! is then re-validated from scratch on its captured command streams.
//!
//! [`DramSpec::validate`] enforces the cross-field JEDEC relationships
//! (burst duration derived from burst length on a double-data-rate bus,
//! the full four-activate window, long ≥ short constraint pairs, …) so
//! a hand-edited table cannot ship internally inconsistent bus
//! occupancy vs CAS-gap timing.

use crate::config::{
    ChannelConfig, ChannelLocation, Cycle, PowerParams, PowerPolicy, SchedulerPolicy, Timing,
    Topology, WriteDrain,
};

/// Cache-line / transfer size in bytes, common to every modeled spec.
pub const LINE_BYTES: usize = 64;

/// The memory standards this simulator ships timing tables for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DramStandard {
    /// DDR3-1600 (11-11-11), the paper's Table II configuration.
    #[default]
    Ddr3_1600,
    /// DDR3-800 (6-6-6), the slower-device sensitivity point.
    Ddr3_800,
    /// DDR4-2400 (17-17-17): 16 banks in 4 bank groups, x64 BL8.
    Ddr4_2400,
    /// LPDDR4-3200: x32 bus, BL16, no bank groups, slow cores.
    Lpddr4_3200,
    /// HBM2 (1 Gb/s/pin pseudo-channel): x128 bus, BL4, 4 bank groups.
    Hbm2,
}

impl DramStandard {
    /// Every supported standard, in crossover-figure presentation order.
    pub const ALL: [DramStandard; 5] = [
        DramStandard::Ddr3_1600,
        DramStandard::Ddr3_800,
        DramStandard::Ddr4_2400,
        DramStandard::Lpddr4_3200,
        DramStandard::Hbm2,
    ];

    /// The canonical lowercase name (the value `--standard` accepts).
    pub fn name(&self) -> &'static str {
        match self {
            DramStandard::Ddr3_1600 => "ddr3_1600",
            DramStandard::Ddr3_800 => "ddr3_800",
            DramStandard::Ddr4_2400 => "ddr4_2400",
            DramStandard::Lpddr4_3200 => "lpddr4_3200",
            DramStandard::Hbm2 => "hbm2",
        }
    }

    /// Parses a standard name as given on a command line. Accepts the
    /// canonical names with `_` or `-` separators, case-insensitively.
    pub fn parse(s: &str) -> Option<Self> {
        let norm = s.to_ascii_lowercase().replace('-', "_");
        DramStandard::ALL.into_iter().find(|std| std.name() == norm)
    }

    /// Memory-clock period in nanoseconds (for latency reporting).
    pub fn t_ck_ns(&self) -> f64 {
        match self {
            DramStandard::Ddr3_1600 => 1.25,
            DramStandard::Ddr3_800 => 2.5,
            DramStandard::Ddr4_2400 => 1.0 / 1.2,
            DramStandard::Lpddr4_3200 => 0.625,
            DramStandard::Hbm2 => 1.0,
        }
    }

    /// The full spec table for this standard.
    pub fn spec(&self) -> DramSpec {
        match self {
            DramStandard::Ddr3_1600 => DramSpec::ddr3_1600(),
            DramStandard::Ddr3_800 => DramSpec::ddr3_800(),
            DramStandard::Ddr4_2400 => DramSpec::ddr4_2400(),
            DramStandard::Lpddr4_3200 => DramSpec::lpddr4_3200(),
            DramStandard::Hbm2 => DramSpec::hbm2(),
        }
    }
}

/// One memory standard expressed as data: geometry, bus shape, the full
/// timing table, and device power parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DramSpec {
    /// Which standard this table describes.
    pub standard: DramStandard,
    /// Bank groups per rank (1 where the standard has none).
    pub bank_groups: usize,
    /// Banks per rank, across all groups.
    pub banks: usize,
    /// Rows per bank.
    pub rows: usize,
    /// Row-buffer size in bytes per rank.
    pub row_bytes: usize,
    /// Data-bus width in bits per channel.
    pub bus_bits: usize,
    /// Burst length in beats (transfers per CAS).
    pub burst_length: usize,
    /// The full timing table, in this standard's memory-clock cycles.
    pub timing: Timing,
    /// Device currents/voltage for the energy model.
    pub power: PowerParams,
    /// RowHammer disturbance budget: activations of a physically
    /// adjacent row, accumulated within one victim refresh window, at
    /// which bit flips become plausible. Denser/newer processes flip at
    /// lower counts, so the value shrinks from DDR3 to HBM2.
    pub hammer_threshold: u64,
    /// REF commands needed to refresh every row once (tREFW / tREFI):
    /// each REF advances an internal round-robin counter over
    /// `rows / refresh_rounds` rows per bank.
    pub refresh_rounds: u64,
}

impl DramSpec {
    /// DDR3-1600: the Table II configuration as a spec table. Identical
    /// values to [`Timing::ddr3_1600`] / [`Topology::table2_channel`].
    pub fn ddr3_1600() -> Self {
        DramSpec {
            standard: DramStandard::Ddr3_1600,
            bank_groups: 1,
            banks: 8,
            rows: 32768,
            row_bytes: 8192,
            bus_bits: 64,
            burst_length: 8,
            timing: Timing::ddr3_1600(),
            power: PowerParams::ddr3_1600_x8(),
            hammer_threshold: 139_000, // first-generation disturbance point
            refresh_rounds: 8192,      // 64 ms tREFW / 7.8 µs tREFI
        }
    }

    /// DDR3-800 (6-6-6), sharing the DDR3 geometry.
    pub fn ddr3_800() -> Self {
        DramSpec {
            standard: DramStandard::Ddr3_800,
            timing: Timing::ddr3_800(),
            ..DramSpec::ddr3_1600()
        }
    }

    /// DDR4-2400 (17-17-17), datasheet-class 8 Gb x8 values at
    /// tCK = 0.833 ns: 16 banks in 4 groups, and the first table where
    /// the short/long constraint pairs split (tCCD 4/6, tRRD 4/6).
    pub fn ddr4_2400() -> Self {
        DramSpec {
            standard: DramStandard::Ddr4_2400,
            bank_groups: 4,
            banks: 16,
            rows: 32768,
            row_bytes: 8192,
            bus_bits: 64,
            burst_length: 8,
            timing: Timing {
                cl: 17,
                cwl: 12,
                t_rcd: 17,
                t_rp: 17,
                t_ras: 39,
                t_rc: 56,
                t_rrd: 4,   // tRRD_S
                t_rrd_l: 6, // tRRD_L
                t_faw: 26,  // 21.5 ns
                t_wr: 18,   // 15 ns
                t_wtr: 9,   // tWTR_L 7.5 ns
                t_rtp: 9,   // 7.5 ns
                t_ccd: 4,   // tCCD_S = BL/2
                t_ccd_l: 6, // tCCD_L 5 ns
                t_burst: 4, // BL8 on a DDR bus
                t_rtrs: 2,
                t_refi: 9363, // 7.8 µs
                t_rfc: 421,   // 350 ns (8 Gb)
                t_cke: 6,     // 5 ns
                t_xp: 8,      // 6 ns
            },
            power: PowerParams {
                vdd: 1.2,
                idd0: 58.0,
                idd2p: 30.0,
                idd2n: 50.0,
                idd3p: 44.0,
                idd3n: 62.0,
                idd4r: 165.0,
                idd4w: 160.0,
                idd5: 260.0,
                devices_per_rank: 9,
                io_pj_per_bit_offdimm: 3.9,
                io_pj_per_bit_ondimm: 1.2,
            },
            hammer_threshold: 50_000, // ~3x tighter than DDR3-era parts
            refresh_rounds: 8192,     // 64 ms tREFW / 7.8 µs tREFI
        }
    }

    /// LPDDR4-3200 at tCK = 0.625 ns: a x32 channel, so a 64-byte line
    /// needs BL16 (8 clocks on the bus) — the long-burst end of the
    /// crossover figure. No bank groups; long constraints equal short.
    pub fn lpddr4_3200() -> Self {
        DramSpec {
            standard: DramStandard::Lpddr4_3200,
            bank_groups: 1,
            banks: 8,
            rows: 32768,
            row_bytes: 4096,
            bus_bits: 32,
            burst_length: 16,
            timing: Timing {
                cl: 28,
                cwl: 14,
                t_rcd: 29, // 18 ns
                t_rp: 34,  // 21 ns
                t_ras: 68, // 42 ns
                t_rc: 102,
                t_rrd: 16, // 10 ns
                t_rrd_l: 16,
                t_faw: 64, // 40 ns
                t_wr: 29,  // 18 ns
                t_wtr: 16, // 10 ns
                t_rtp: 12, // 7.5 ns
                t_ccd: 8,  // BL16/2
                t_ccd_l: 8,
                t_burst: 8,
                t_rtrs: 2,
                t_refi: 6240, // 3.9 µs
                t_rfc: 288,   // 180 ns (8 Gb)
                t_cke: 12,    // 7.5 ns
                t_xp: 12,     // 7.5 ns
            },
            power: PowerParams {
                vdd: 1.1,
                idd0: 24.0,
                idd2p: 1.2,
                idd2n: 6.0,
                idd3p: 2.4,
                idd3n: 16.0,
                idd4r: 160.0,
                idd4w: 170.0,
                idd5: 60.0,
                devices_per_rank: 2, // 2 × x16 dies per 32-bit channel
                io_pj_per_bit_offdimm: 2.0,
                io_pj_per_bit_ondimm: 0.8,
            },
            hammer_threshold: 40_000, // mobile-density parts flip earlier
            refresh_rounds: 8192,     // 32 ms tREFW / 3.9 µs tREFI
        }
    }

    /// HBM2 pseudo-channel at tCK = 1 ns (2 Gb/s/pin): a x128 bus moves
    /// a 64-byte line in BL4 (2 clocks) — the short-burst end of the
    /// crossover figure. 16 banks in 4 groups, small 2 KB rows.
    pub fn hbm2() -> Self {
        DramSpec {
            standard: DramStandard::Hbm2,
            bank_groups: 4,
            banks: 16,
            rows: 16384,
            row_bytes: 2048,
            bus_bits: 128,
            burst_length: 4,
            timing: Timing {
                cl: 14,
                cwl: 6,
                t_rcd: 14,
                t_rp: 14,
                t_ras: 33,
                t_rc: 47,
                t_rrd: 4,   // tRRD_S
                t_rrd_l: 6, // tRRD_L
                t_faw: 20,
                t_wr: 16,
                t_wtr: 8,
                t_rtp: 7,
                t_ccd: 2,   // tCCD_S = BL/2
                t_ccd_l: 4, // tCCD_L
                t_burst: 2, // BL4 on a DDR bus
                t_rtrs: 2,
                t_refi: 3900, // 3.9 µs
                t_rfc: 260,   // 260 ns (8 Gb stack layer)
                t_cke: 8,
                t_xp: 8,
            },
            power: PowerParams {
                vdd: 1.2,
                idd0: 65.0,
                idd2p: 20.0,
                idd2n: 40.0,
                idd3p: 30.0,
                idd3n: 55.0,
                idd4r: 145.0,
                idd4w: 150.0,
                idd5: 180.0,
                devices_per_rank: 1,        // one stack serves the pseudo-channel
                io_pj_per_bit_offdimm: 0.8, // 2.5D interposer link
                io_pj_per_bit_ondimm: 0.5,
            },
            hammer_threshold: 30_000, // stacked dies are the most fragile
            refresh_rounds: 16384,    // small rows: 64 ms tREFW / 3.9 µs tREFI
        }
    }

    /// Data-burst duration in clocks implied by the bus shape: on a
    /// double-data-rate bus, `burst_length` beats take `burst_length/2`
    /// clocks. The authoritative derivation for [`Timing::t_burst`].
    pub fn derived_burst_cycles(&self) -> Cycle {
        (self.burst_length / 2) as Cycle
    }

    /// Burst length implied by moving one cache line over `bus_bits`.
    pub fn derived_burst_length(&self) -> usize {
        LINE_BYTES * 8 / self.bus_bits
    }

    /// Cross-field JEDEC sanity checks, run for every shipped table (a
    /// unit test walks [`DramStandard::ALL`]) and cheap enough to call
    /// at channel construction in debug builds.
    ///
    /// Returns a description of the first violated relationship.
    pub fn validate(&self) -> Result<(), String> {
        let t = &self.timing;
        let name = self.standard.name();
        if self.bank_groups == 0 || !self.banks.is_multiple_of(self.bank_groups) {
            return Err(format!(
                "{name}: {} banks do not split evenly into {} bank groups",
                self.banks, self.bank_groups
            ));
        }
        if self.burst_length != self.derived_burst_length() {
            return Err(format!(
                "{name}: burst length {} moves {} bytes over a x{} bus, not a {}-byte line",
                self.burst_length,
                self.burst_length * self.bus_bits / 8,
                self.bus_bits,
                LINE_BYTES
            ));
        }
        if t.t_burst != self.derived_burst_cycles() {
            return Err(format!(
                "{name}: t_burst {} drifted from BL{}/2 = {} clocks",
                t.t_burst,
                self.burst_length,
                self.derived_burst_cycles()
            ));
        }
        if t.t_ccd < t.t_burst {
            return Err(format!(
                "{name}: tCCD {} shorter than the {}-clock burst it spaces",
                t.t_ccd, t.t_burst
            ));
        }
        if t.t_ccd_l < t.t_ccd {
            return Err(format!("{name}: tCCD_L {} below tCCD_S {}", t.t_ccd_l, t.t_ccd));
        }
        if t.t_rrd_l < t.t_rrd {
            return Err(format!("{name}: tRRD_L {} below tRRD_S {}", t.t_rrd_l, t.t_rrd));
        }
        if self.bank_groups == 1 && (t.t_ccd_l != t.t_ccd || t.t_rrd_l != t.t_rrd) {
            return Err(format!("{name}: long constraints must equal short without bank groups"));
        }
        if t.t_rc < t.t_ras.saturating_add(t.t_rp) {
            return Err(format!("{name}: tRC {} below tRAS+tRP", t.t_rc));
        }
        if t.t_ras < t.t_rcd {
            return Err(format!("{name}: tRAS {} below tRCD {}", t.t_ras, t.t_rcd));
        }
        // The four-activate window covers four tRRD_S-spaced ACTs — the
        // full JEDEC relationship (an earlier DDR3-only assert precedence-
        // reduced this to 2×tRRD).
        // lint: literal-ok(the JEDEC window is defined over four ACTs)
        if t.t_faw < 4 * t.t_rrd {
            return Err(format!("{name}: tFAW {} below 4×tRRD_S", t.t_faw));
        }
        if t.cl < t.cwl {
            return Err(format!("{name}: CL {} below CWL {}", t.cl, t.cwl));
        }
        if t.t_refi <= t.t_rfc {
            return Err(format!("{name}: tREFI {} not above tRFC {}", t.t_refi, t.t_rfc));
        }
        if !self.row_bytes.is_multiple_of(LINE_BYTES) {
            return Err(format!("{name}: row size {} not line-aligned", self.row_bytes));
        }
        if self.hammer_threshold == 0 {
            return Err(format!("{name}: zero hammer threshold disables the disturbance model"));
        }
        if self.refresh_rounds == 0 || !self.rows.is_multiple_of(self.refresh_rounds as usize) {
            return Err(format!(
                "{name}: {} rows do not split evenly into {} refresh rounds",
                self.rows, self.refresh_rounds
            ));
        }
        Ok(())
    }

    /// Rows refreshed per bank by a single REF command: the round-robin
    /// stride of the disturbance-window model in [`crate::wear`].
    pub fn rows_per_refresh(&self) -> usize {
        self.rows / self.refresh_rounds as usize
    }

    /// The channel geometry for this spec with `ranks` ranks. For HBM2
    /// a "rank" models a stack-die select on the pseudo-channel; the
    /// protocol layers above are agnostic to the distinction.
    pub fn topology(&self, ranks: usize) -> Topology {
        Topology {
            ranks,
            banks: self.banks,
            bank_groups: self.bank_groups,
            rows: self.rows,
            row_bytes: self.row_bytes,
            line_bytes: LINE_BYTES,
        }
    }

    /// A main-memory channel (Table II-class: 8 ranks, off-DIMM I/O).
    pub fn main_channel(&self) -> ChannelConfig {
        self.channel(8, ChannelLocation::OffDimm)
    }

    /// An SDIMM internal channel (quad-rank, on-DIMM I/O).
    pub fn sdimm_internal_channel(&self) -> ChannelConfig {
        self.channel(4, ChannelLocation::OnDimm)
    }

    fn channel(&self, ranks: usize, location: ChannelLocation) -> ChannelConfig {
        debug_assert!(self.validate().is_ok(), "spec table failed validation");
        ChannelConfig {
            standard: self.standard,
            timing: self.timing.clone(),
            topology: self.topology(ranks),
            scheduler: SchedulerPolicy::FrFcfs,
            write_drain: WriteDrain::default(),
            power_policy: PowerPolicy::AlwaysOn,
            power: self.power.clone(),
            location,
            read_queue_capacity: 64,
            refresh_enabled: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shipped_table_validates() {
        for std in DramStandard::ALL {
            std.spec().validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn validate_rejects_burst_drift() {
        // Satellite regression: a table whose t_burst disagrees with the
        // bus shape (the documented "BL8 on a x64 bus ⇒ 4 clocks"
        // derivation) must be rejected, not silently simulated.
        let mut spec = DramSpec::ddr4_2400();
        spec.timing.t_burst = 2;
        assert!(spec.validate().unwrap_err().contains("t_burst"));
        let mut spec = DramSpec::lpddr4_3200();
        spec.burst_length = 8; // moves only 32 bytes over the x32 bus
        assert!(spec.validate().unwrap_err().contains("burst length"));
    }

    #[test]
    fn validate_rejects_short_faw_window() {
        // Satellite regression: the precedence-weakened form (2×tRRD)
        // accepted this table; the full four-ACT window must not.
        let mut spec = DramSpec::ddr3_1600();
        spec.timing.t_faw = 2 * spec.timing.t_rrd + 1;
        assert!(spec.validate().unwrap_err().contains("tFAW"));
    }

    #[test]
    fn validate_rejects_inverted_long_short_pairs() {
        let mut spec = DramSpec::ddr4_2400();
        spec.timing.t_ccd_l = spec.timing.t_ccd - 1;
        assert!(spec.validate().unwrap_err().contains("tCCD_L"));
        let mut spec = DramSpec::hbm2();
        spec.timing.t_rrd_l = spec.timing.t_rrd - 1;
        assert!(spec.validate().unwrap_err().contains("tRRD_L"));
    }

    #[test]
    fn groupless_standards_must_keep_long_equal_to_short() {
        let mut spec = DramSpec::lpddr4_3200();
        spec.timing.t_ccd_l = spec.timing.t_ccd + 2;
        assert!(spec.validate().unwrap_err().contains("bank groups"));
    }

    #[test]
    fn ddr3_spec_reproduces_the_legacy_constructors() {
        let spec = DramSpec::ddr3_1600();
        assert_eq!(spec.timing, Timing::ddr3_1600());
        assert_eq!(spec.topology(8), Topology::table2_channel());
        assert_eq!(spec.topology(4), Topology::sdimm_internal());
        // The spec-built channels match the legacy constructors exactly
        // (field-wise; ChannelConfig has no PartialEq).
        let a = format!("{:?}", ChannelConfig::table2_for(DramStandard::Ddr3_1600));
        let b = format!("{:?}", ChannelConfig::table2());
        assert_eq!(a, b);
        let a = format!("{:?}", ChannelConfig::sdimm_internal_for(DramStandard::Ddr3_1600));
        assert_eq!(a, format!("{:?}", ChannelConfig::sdimm_internal()));
    }

    #[test]
    fn parse_round_trips_and_accepts_dashes() {
        for std in DramStandard::ALL {
            assert_eq!(DramStandard::parse(std.name()), Some(std));
        }
        assert_eq!(DramStandard::parse("DDR4-2400"), Some(DramStandard::Ddr4_2400));
        assert_eq!(DramStandard::parse("ddr5_4800"), None);
    }

    #[test]
    fn bank_group_geometry_is_consistent() {
        for std in DramStandard::ALL {
            let spec = std.spec();
            let topo = spec.topology(8);
            assert_eq!(topo.banks_per_group() * spec.bank_groups, spec.banks, "{}", std.name());
            // Every supported topology fits the scheduler's flat bitmask.
            assert!(topo.ranks * topo.banks <= 128, "{}", std.name());
        }
    }

    #[test]
    fn hammer_thresholds_tighten_with_density() {
        // Newer/denser standards must carry strictly lower disturbance
        // budgets than the DDR3-era tables, and every table must cover
        // all rows in a whole number of refresh rounds.
        assert!(DramSpec::ddr4_2400().hammer_threshold < DramSpec::ddr3_1600().hammer_threshold);
        assert!(DramSpec::lpddr4_3200().hammer_threshold < DramSpec::ddr4_2400().hammer_threshold);
        assert!(DramSpec::hbm2().hammer_threshold < DramSpec::lpddr4_3200().hammer_threshold);
        for std in DramStandard::ALL {
            let spec = std.spec();
            assert_eq!(
                spec.rows_per_refresh() * spec.refresh_rounds as usize,
                spec.rows,
                "{}",
                std.name()
            );
        }
        let mut spec = DramSpec::ddr4_2400();
        spec.refresh_rounds = 3000;
        assert!(spec.validate().unwrap_err().contains("refresh rounds"));
        spec = DramSpec::ddr4_2400();
        spec.hammer_threshold = 0;
        assert!(spec.validate().unwrap_err().contains("hammer"));
    }

    #[test]
    fn burst_shapes_span_the_crossover_range() {
        // The point of the crossover figure: burst occupancy per line
        // ranges 2 (HBM2) → 8 (LPDDR4) clocks across the standards.
        assert_eq!(DramSpec::hbm2().timing.t_burst, 2);
        assert_eq!(DramSpec::ddr4_2400().timing.t_burst, 4);
        assert_eq!(DramSpec::lpddr4_3200().timing.t_burst, 8);
    }
}
