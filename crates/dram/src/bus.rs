//! Occupancy model for the shared off-DIMM DDR bus when it carries SDIMM
//! buffer commands instead of raw DRAM commands.
//!
//! When a channel is populated with SDIMMs, the CPU-side controller talks
//! to the secure buffers: short commands (PROBE, FETCH_RESULT, ...) occupy
//! only the command/address bus, long commands additionally move a cache
//! line on the data bus. The DRAM timing behind the buffer is simulated by
//! each SDIMM's internal [`crate::channel::DramChannel`]; this bus only
//! arbitrates the shared external link.

use crate::config::Cycle;

/// Bytes the 64-bit DDR data bus moves per memory-clock cycle (two beats
/// of 8 bytes at double data rate).
pub const DATA_BYTES_PER_CYCLE: u64 = 16;

/// A shared command + data bus with FIFO arbitration.
#[derive(Debug, Clone)]
pub struct Bus {
    cmd_free_at: Cycle,
    data_free_at: Cycle,
    /// Total cycles of data-bus occupancy (utilization statistics).
    data_busy_cycles: Cycle,
    /// Total command slots consumed.
    commands: u64,
    /// Total data bytes moved (I/O energy accounting).
    data_bytes: u64,
}

/// Time window reserved on the bus for one transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusSlot {
    /// Cycle the command issues.
    pub cmd_at: Cycle,
    /// Cycle the data transfer (if any) completes; equals `cmd_at` for
    /// command-only transfers.
    pub done_at: Cycle,
}

impl Default for Bus {
    fn default() -> Self {
        Bus::new()
    }
}

impl Bus {
    /// An idle bus at cycle 0.
    pub fn new() -> Self {
        Bus { cmd_free_at: 0, data_free_at: 0, data_busy_cycles: 0, commands: 0, data_bytes: 0 }
    }

    /// Reserves a command slot and `data_bytes` of data-bus time, no
    /// earlier than `now`. Returns the reserved window.
    pub fn reserve(&mut self, now: Cycle, data_bytes: u64) -> BusSlot {
        let cmd_at = now.max(self.cmd_free_at);
        self.cmd_free_at = cmd_at.saturating_add(1);
        self.commands += 1;
        if data_bytes == 0 {
            return BusSlot { cmd_at, done_at: cmd_at.saturating_add(1) };
        }
        let dur = data_bytes.div_ceil(DATA_BYTES_PER_CYCLE).max(1);
        let start = cmd_at.saturating_add(1).max(self.data_free_at);
        let done_at = start + dur;
        self.data_free_at = done_at;
        self.data_busy_cycles = self.data_busy_cycles.saturating_add(dur);
        self.data_bytes += data_bytes;
        BusSlot { cmd_at, done_at }
    }

    /// Earliest cycle the data bus is free.
    pub fn data_free_at(&self) -> Cycle {
        self.data_free_at
    }

    /// Cycles of data-bus occupancy so far.
    pub fn data_busy_cycles(&self) -> Cycle {
        self.data_busy_cycles
    }

    /// Command slots consumed so far.
    pub fn commands(&self) -> u64 {
        self.commands
    }

    /// Total data bytes moved.
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    /// Data-bus utilization over `elapsed` cycles.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.data_busy_cycles as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_only_transfer_takes_one_cycle() {
        let mut bus = Bus::new();
        let s = bus.reserve(10, 0);
        assert_eq!(s.cmd_at, 10);
        assert_eq!(s.done_at, 11);
        assert_eq!(bus.data_busy_cycles(), 0);
    }

    #[test]
    fn cache_line_takes_four_data_cycles() {
        let mut bus = Bus::new();
        let s = bus.reserve(0, 64);
        assert_eq!(s.done_at - (s.cmd_at + 1), 4);
        assert_eq!(bus.data_bytes(), 64);
    }

    #[test]
    fn back_to_back_transfers_serialize_on_data_bus() {
        let mut bus = Bus::new();
        let a = bus.reserve(0, 64);
        let b = bus.reserve(0, 64);
        assert!(b.done_at >= a.done_at + 4);
    }

    #[test]
    fn short_commands_overlap_data() {
        let mut bus = Bus::new();
        let long = bus.reserve(0, 64);
        let probe = bus.reserve(2, 0);
        assert!(probe.done_at < long.done_at, "PROBE may slip under a data burst");
    }

    #[test]
    fn command_bus_is_one_per_cycle() {
        let mut bus = Bus::new();
        let a = bus.reserve(5, 0);
        let b = bus.reserve(5, 0);
        assert_eq!(a.cmd_at, 5);
        assert_eq!(b.cmd_at, 6);
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut bus = Bus::new();
        bus.reserve(0, 64);
        bus.reserve(0, 64);
        assert!((bus.utilization(16) - 0.5).abs() < 1e-9);
    }
}
