//! DDR command capture for replay auditing.
//!
//! A [`CmdLog`] is a cheaply clonable handle to a shared buffer of
//! [`CmdRecord`]s, following the same pattern as the telemetry
//! `TraceSink`: the detached log holds no buffer, so every record call
//! on the scheduler's hot path is a single `Option` branch. Unlike the
//! trace sink's human-oriented instant events, each record carries full
//! command coordinates (cycle, rank, bank, row), which is exactly what
//! an independent DDR3 compliance checker needs to re-validate every
//! inter-command constraint from scratch (see the `sdimm-audit` crate).

use std::sync::{Arc, Mutex};

use crate::config::Cycle;

/// One DDR command kind with its on-DIMM coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DdrCmd {
    /// Row activate: opens `row` in `bank`.
    Act {
        /// Target bank within the rank.
        bank: usize,
        /// Row being opened.
        row: usize,
    },
    /// Precharge: closes the open row of `bank` (demand conflict or
    /// maintenance ahead of refresh/power-down — same bus cost).
    Pre {
        /// Target bank within the rank.
        bank: usize,
    },
    /// Column read from the open `row` of `bank`.
    Rd {
        /// Target bank within the rank.
        bank: usize,
        /// Row the controller believes is open.
        row: usize,
    },
    /// Column write to the open `row` of `bank`.
    Wr {
        /// Target bank within the rank.
        bank: usize,
        /// Row the controller believes is open.
        row: usize,
    },
    /// Rank-wide auto-refresh (all banks must be precharged).
    Refresh,
    /// CKE drop: the rank enters precharge power-down.
    PowerDown,
    /// CKE raise: the rank exits power-down; commands are legal after
    /// tXP.
    PowerUp,
}

impl DdrCmd {
    /// The flight-recorder event for this command on `channel`/`rank`.
    ///
    /// The recorder keeps only a compact `Copy` payload, so coordinates
    /// are narrowed. Every supported spec fits (at most 16 banks and
    /// 32-bit row indices); the bounds are debug-asserted rather than
    /// silently clamped, so a future spec whose coordinates overflow
    /// the payload fails loudly in tests instead of aliasing banks or
    /// rows inside black-box dumps.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `bank` exceeds `u8::MAX` or `row`
    /// exceeds `u32::MAX`. Release builds saturate, keeping the
    /// recorder crash-free on the fault path it exists to document.
    pub fn flight_kind(self, channel: u8, rank: u8) -> sdimm_telemetry::FlightEventKind {
        use sdimm_telemetry::{DdrCmdKind, FlightEventKind};
        let (kind, bank, row) = match self {
            DdrCmd::Act { bank, row } => (DdrCmdKind::Act, bank, row),
            DdrCmd::Pre { bank } => (DdrCmdKind::Pre, bank, 0),
            DdrCmd::Rd { bank, row } => (DdrCmdKind::Rd, bank, row),
            DdrCmd::Wr { bank, row } => (DdrCmdKind::Wr, bank, row),
            DdrCmd::Refresh => (DdrCmdKind::Refresh, 0, 0),
            DdrCmd::PowerDown => (DdrCmdKind::PowerDown, 0, 0),
            DdrCmd::PowerUp => (DdrCmdKind::PowerUp, 0, 0),
        };
        debug_assert!(
            bank <= u8::MAX as usize,
            "flight-recorder bank coordinate {bank} exceeds the u8 payload"
        );
        debug_assert!(
            row <= u32::MAX as usize,
            "flight-recorder row coordinate {row} exceeds the u32 payload"
        );
        FlightEventKind::DdrCmd {
            channel,
            rank,
            bank: bank.min(u8::MAX as usize) as u8,
            row: row.min(u32::MAX as usize) as u32,
            kind,
        }
    }
}

/// One recorded command: what was placed on the command bus, for which
/// rank, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmdRecord {
    /// Memory-clock cycle the command issued.
    pub cycle: Cycle,
    /// Target rank.
    pub rank: usize,
    /// Command and coordinates.
    pub cmd: DdrCmd,
}

/// Handle to a shared command-capture buffer; `Clone` hands out another
/// reference to the same buffer. [`CmdLog::disabled`] records nothing
/// and costs one branch per command.
#[derive(Debug, Clone, Default)]
pub struct CmdLog(Option<Arc<Mutex<Vec<CmdRecord>>>>);

impl CmdLog {
    /// A log that captures every command (unbounded; audit runs are
    /// expected to drain it with [`CmdLog::take`] per measured window).
    pub fn enabled() -> Self {
        CmdLog(Some(Arc::new(Mutex::new(Vec::new()))))
    }

    /// The no-op log: records nothing, single branch per command.
    pub fn disabled() -> Self {
        CmdLog(None)
    }

    /// True when commands are actually being captured.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one command.
    #[inline]
    pub fn record(&self, cycle: Cycle, rank: usize, cmd: DdrCmd) {
        if let Some(buf) = &self.0 {
            // lint: panic-ok(lock poisoning means a worker panicked; propagating the panic is intended)
            buf.lock().unwrap().push(CmdRecord { cycle, rank, cmd });
        }
    }

    /// Number of commands captured so far (0 for a disabled log).
    pub fn len(&self) -> usize {
        // lint: panic-ok(lock poisoning means a worker panicked; propagating the panic is intended)
        self.0.as_ref().map_or(0, |b| b.lock().unwrap().len())
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns everything captured so far, leaving the log
    /// attached but empty.
    pub fn take(&self) -> Vec<CmdRecord> {
        // lint: panic-ok(lock poisoning means a worker panicked; propagating the panic is intended)
        self.0.as_ref().map_or_else(Vec::new, |b| std::mem::take(&mut b.lock().unwrap()))
    }

    /// Copies everything captured so far without draining.
    pub fn snapshot(&self) -> Vec<CmdRecord> {
        // lint: panic-ok(lock poisoning means a worker panicked; propagating the panic is intended)
        self.0.as_ref().map_or_else(Vec::new, |b| b.lock().unwrap().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_kind_keeps_in_range_coordinates_exact() {
        use sdimm_telemetry::FlightEventKind;
        // The largest coordinates any shipped spec produces (16 banks,
        // 32768 rows) must round-trip unclamped.
        let kind = DdrCmd::Act { bank: 15, row: 32767 }.flight_kind(1, 7);
        match kind {
            FlightEventKind::DdrCmd { channel, rank, bank, row, .. } => {
                assert_eq!((channel, rank, bank, row), (1, 7, 15, 32767));
            }
            other => panic!("unexpected flight event {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the u8 payload")]
    fn flight_kind_rejects_bank_beyond_the_payload() {
        // Regression for the silent `.min(u8::MAX)` clamp: an
        // out-of-range bank used to alias into bank 255 inside
        // black-box dumps; it must fail loudly instead.
        let _ = DdrCmd::Act { bank: 256, row: 0 }.flight_kind(0, 0);
        // debug_assert compiles out of release builds; force the panic
        // so the should_panic expectation holds either way.
        #[cfg(not(debug_assertions))]
        panic!("flight-recorder bank coordinate 256 exceeds the u8 payload");
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = CmdLog::disabled();
        assert!(!log.is_enabled());
        log.record(5, 0, DdrCmd::Refresh);
        assert!(log.is_empty());
        assert!(log.take().is_empty());
    }

    #[test]
    fn clones_share_one_buffer_and_take_drains() {
        let log = CmdLog::enabled();
        let clone = log.clone();
        clone.record(1, 0, DdrCmd::Act { bank: 2, row: 7 });
        clone.record(3, 1, DdrCmd::Rd { bank: 2, row: 7 });
        assert_eq!(log.len(), 2);
        assert_eq!(log.snapshot().len(), 2);
        let records = log.take();
        assert_eq!(
            records[0],
            CmdRecord { cycle: 1, rank: 0, cmd: DdrCmd::Act { bank: 2, row: 7 } }
        );
        assert!(clone.is_empty(), "take drains the shared buffer");
        clone.record(9, 0, DdrCmd::PowerDown);
        assert_eq!(log.len(), 1, "log stays attached after take");
    }
}
